(** Reusable experiment fixtures: a keyring, a server fleet and pluggable
    (possibly Byzantine) wire handlers, runnable under {!Sim.Direct} or
    registered into a {!Sim.Engine}. *)

type t = {
  n : int;
  b : int;
  keyring : Store.Keyring.t;
  servers : Store.Server.t array;
  hmap : (now:float -> from:int -> string -> string option) array;
}

val key_of : string -> Crypto.Rsa.keypair
(** Deterministic cached 512-bit keypair for a client name. *)

val make :
  ?n:int ->
  ?b:int ->
  ?capacity:int ->
  ?epoch_admin:Crypto.Rsa.public ->
  ?guard:bool ->
  ?clients:string list ->
  unit ->
  t
(** Fresh world; default n=4, b=1, guard off, clients
    [alice;bob;carol;mallory] (all registered in the keyring).

    [capacity] (default [n]) creates that many server processes: ids
    [0 .. n-1] are the initial membership and the rest are standbys a
    config-epoch reconfiguration can bring in later. MAC keys cover
    every process. [epoch_admin] pins the administrator's public key in
    every server's config (announced epochs must then verify against
    it); installing a genesis epoch is the caller's job
    ({!Store.Server.set_epoch}). *)

val wrap : t -> int -> Store.Faults.behavior -> unit
(** Replace server [i]'s handler with a Byzantine wrapper. *)

val in_direct : t -> (unit -> 'a) -> 'a
(** Run protocol code synchronously against this world. *)

val register_engine : t -> Sim.Engine.t -> unit
(** Register every server handler with an engine (for timed runs). *)

val connect :
  ?cfg:(Store.Client.config -> Store.Client.config) ->
  ?recover:[ `Fresh | `Reconstruct ] ->
  t ->
  string ->
  group:string ->
  Store.Client.t
(** Connect or fail loudly (experiments assume healthy quorums). *)

val flood : t -> unit
(** Total synchronous dissemination. *)
