open Store

let measured fn =
  Metrics.reset ();
  let v = fn () in
  (v, Metrics.read ())

let grid = [ (4, 1); (7, 2); (10, 3); (13, 4); (19, 6); (31, 10) ]

let paper cfg = { cfg with Client.paper_cost_model = true }
let mw cfg = { cfg with Client.mode = Client.Multi_writer }
let cc cfg = { cfg with Client.consistency = Client.CC }

(* ------------------------------------------------------------------ E1 *)

let e1_context_messages () =
  let rows =
    List.map
      (fun (n, b) ->
        let w = Worlds.make ~n ~b () in
        let q = Quorums.context_quorum ~n ~b in
        let read_msgs, store_msgs =
          Worlds.in_direct w (fun () ->
              let alice = Worlds.connect w "alice" ~group:"g" in
              let () = Result.get_ok (Client.write alice ~item:"x" "v") in
              let _, m_store = measured (fun () -> Client.disconnect alice) in
              let _, m_read =
                measured (fun () -> Worlds.connect w "alice" ~group:"g")
              in
              (m_read.Metrics.messages, m_store.Metrics.messages))
        in
        [
          Table.cell_int n; Table.cell_int b; Table.cell_int q;
          Table.cell_int read_msgs; Table.cell_int store_msgs;
          Table.cell_int (2 * q);
          Table.cell_int (2 * Quorums.masking_quorum ~n ~b);
        ])
      grid
  in
  {
    Table.id = "E1";
    title = "Context op message cost (paper: 2*ceil((n+b+1)/2) per op)";
    header =
      [ "n"; "b"; "quorum"; "read msgs"; "store msgs"; "paper 2q"; "masking 2q'" ];
    rows;
    notes =
      [
        "measured on failure-free runs; read and store must equal the paper's 2q";
        "masking-quorum column: 2*ceil((n+2b+1)/2), the section 6 comparison";
      ];
  }

(* ------------------------------------------------------------------ E2 *)

let e2_context_crypto () =
  let rows =
    List.map
      (fun (n, b) ->
        let w = Worlds.make ~n ~b () in
        let q = Quorums.context_quorum ~n ~b in
        let store_m, read_m =
          Worlds.in_direct w (fun () ->
              let alice = Worlds.connect w "alice" ~group:"g" in
              let () = Result.get_ok (Client.write alice ~item:"x" "v") in
              let _, store_m = measured (fun () -> Client.disconnect alice) in
              let _, read_m =
                measured (fun () -> Worlds.connect w "alice" ~group:"g")
              in
              (store_m, read_m))
        in
        [
          Table.cell_int n; Table.cell_int b;
          Table.cell_int store_m.Metrics.signs;
          Table.cell_int store_m.Metrics.server_verifies;
          Table.cell_int read_m.Metrics.verifies;
          Table.cell_int q;
        ])
      grid
  in
  {
    Table.id = "E2";
    title = "Context op crypto cost (paper: 1 sign, q server verifies, 1 read verify)";
    header =
      [ "n"; "b"; "store signs"; "store srv-verifies"; "read verifies"; "q" ];
    rows;
    notes =
      [ "read verifies = 1 is the paper's best case: latest record checks out first" ];
  }

(* ------------------------------------------------------------------ E3 *)

let e3_data_costs () =
  let consistency_rows label cfg_mod =
    List.map
      (fun (n, b) ->
        let w = Worlds.make ~n ~b () in
        Worlds.in_direct w (fun () ->
            let alice =
              Worlds.connect w "alice" ~group:"g" ~cfg:(fun c -> paper (cfg_mod c))
            in
            let _, wm = measured (fun () -> Result.get_ok (Client.write alice ~item:"x" "v")) in
            let _, rm =
              measured (fun () ->
                  match Client.read alice ~item:"x" with
                  | Ok _ -> ()
                  | Error e -> failwith (Client.error_to_string e))
            in
            [
              label; Table.cell_int n; Table.cell_int b;
              Table.cell_int wm.Metrics.messages;
              Table.cell_int (b + 1);
              Table.cell_int wm.Metrics.signs;
              Table.cell_int wm.Metrics.server_verifies;
              Table.cell_int rm.Metrics.messages;
              Table.cell_int ((2 * (b + 1)) + 2);
              Table.cell_int rm.Metrics.verifies;
            ]))
      grid
  in
  {
    Table.id = "E3";
    title = "Single-writer data op costs (paper: write b+1 msgs / 1 sign / b+1 verifies)";
    header =
      [
        "level"; "n"; "b"; "write msgs"; "paper b+1"; "signs"; "srv-verifies";
        "read msgs"; "paper 2(b+1)+2"; "read verifies";
      ];
    rows = consistency_rows "MRC" Fun.id @ consistency_rows "CC" cc;
    notes =
      [
        "writes use the paper's fire-and-forget cost model";
        "read cost is the best case: the b+1 polled servers hold a fresh copy";
      ];
  }

(* ------------------------------------------------------------------ E4 *)

let e4_multi_writer_costs () =
  let rows =
    List.map
      (fun (n, b) ->
        let w = Worlds.make ~n ~b () in
        Worlds.in_direct w (fun () ->
            let alice =
              Worlds.connect w "alice" ~group:"g" ~cfg:(fun c -> paper (mw c))
            in
            let _, wm = measured (fun () -> Result.get_ok (Client.write alice ~item:"x" "v")) in
            let _, rm =
              measured (fun () ->
                  match Client.read alice ~item:"x" with
                  | Ok _ -> ()
                  | Error e -> failwith (Client.error_to_string e))
            in
            [
              Table.cell_int n; Table.cell_int b;
              Table.cell_int wm.Metrics.messages;
              Table.cell_int ((2 * b) + 1);
              Table.cell_int rm.Metrics.messages;
              Table.cell_int (2 * ((2 * b) + 1));
              Table.cell_int rm.Metrics.verifies;
              Table.cell_int rm.Metrics.digests;
            ]))
      grid
  in
  {
    Table.id = "E4";
    title = "Multi-writer (malicious clients) costs: b+1 becomes 2b+1, reads need no client verify";
    header =
      [
        "n"; "b"; "write msgs"; "paper 2b+1"; "read msgs"; "paper 2(2b+1)";
        "read verifies"; "read digests";
      ];
    rows;
    notes =
      [
        "read verifies = 0: servers vouch (b+1 identical) instead of client signature checks";
        "digest checks bind each vouched value to its 3-tuple timestamp";
      ];
  }

(* ------------------------------------------------------------------ E5 *)

let e5_quorum_comparison () =
  let rows =
    List.concat_map
      (fun (n, b) ->
        (* Ours *)
        let w = Worlds.make ~n ~b () in
        let ours =
          Worlds.in_direct w (fun () ->
              let alice =
                Worlds.connect w "alice" ~group:"g" ~cfg:paper
              in
              let _, wm = measured (fun () -> Result.get_ok (Client.write alice ~item:"x" "v")) in
              let _, rm =
                measured (fun () -> Result.get_ok (Result.map ignore (Client.read alice ~item:"x")))
              in
              let _, cm = measured (fun () -> Result.get_ok (Client.disconnect alice)) in
              [
                "secure-store"; Table.cell_int n; Table.cell_int b;
                Table.cell_int wm.Metrics.messages; Table.cell_int rm.Metrics.messages;
                Table.cell_int cm.Metrics.messages;
                Table.cell_int wm.Metrics.server_verifies;
                Table.cell_int rm.Metrics.verifies;
              ])
        in
        (* Masking quorum *)
        let keyring = Keyring.create () in
        Keyring.register keyring "alice" (Worlds.key_of "alice").Crypto.Rsa.public;
        let mq_servers =
          Array.init n (fun id -> Baselines.Masking_quorum.Server.create ~id ~keyring)
        in
        let mq_hmap = Array.map Baselines.Masking_quorum.Server.handler mq_servers in
        let mq_handlers dst ~from req =
          if dst >= 0 && dst < n then mq_hmap.(dst) ~now:0.0 ~from req else None
        in
        let masking =
          Sim.Direct.run ~handlers:mq_handlers (fun () ->
              let c =
                Baselines.Masking_quorum.create ~n ~b ~uid:"alice"
                  ~key:(Worlds.key_of "alice") ~keyring ()
              in
              let _, wm =
                measured (fun () ->
                    match Baselines.Masking_quorum.write c ~item:"x" "v" with
                    | Ok () -> ()
                    | Error e -> failwith (Baselines.Masking_quorum.error_to_string e))
              in
              let _, rm =
                measured (fun () ->
                    match Baselines.Masking_quorum.read c ~item:"x" with
                    | Ok _ -> ()
                    | Error e -> failwith (Baselines.Masking_quorum.error_to_string e))
              in
              [
                "masking-quorum"; Table.cell_int n; Table.cell_int b;
                Table.cell_int wm.Metrics.messages; Table.cell_int rm.Metrics.messages;
                "-";
                Table.cell_int wm.Metrics.server_verifies;
                Table.cell_int rm.Metrics.verifies;
              ])
        in
        (* Crash quorum *)
        let cq_servers = Array.init n (fun id -> Baselines.Crash_quorum.Server.create ~id) in
        let cq_hmap = Array.map Baselines.Crash_quorum.Server.handler cq_servers in
        let cq_handlers dst ~from req =
          if dst >= 0 && dst < n then cq_hmap.(dst) ~now:0.0 ~from req else None
        in
        let crash =
          Sim.Direct.run ~handlers:cq_handlers (fun () ->
              let c = Baselines.Crash_quorum.create ~n ~uid:"alice" () in
              let _, wm =
                measured (fun () -> Result.get_ok (Baselines.Crash_quorum.write c ~item:"x" "v"))
              in
              let _, rm =
                measured (fun () ->
                    Result.get_ok (Result.map ignore (Baselines.Crash_quorum.read c ~item:"x")))
              in
              [
                "crash-majority"; Table.cell_int n; Table.cell_int b;
                Table.cell_int wm.Metrics.messages; Table.cell_int rm.Metrics.messages;
                "-";
                Table.cell_int wm.Metrics.server_verifies;
                Table.cell_int rm.Metrics.verifies;
              ])
        in
        [ ours; masking; crash ])
      [ (5, 1); (9, 2); (13, 3); (21, 5) ]
  in
  {
    Table.id = "E5";
    title = "Data op cost: secure store vs Byzantine masking quorum vs crash majority";
    header =
      [
        "protocol"; "n"; "b"; "write msgs"; "read msgs"; "ctx-store msgs";
        "write srv-verifies"; "read client-verifies";
      ];
    rows;
    notes =
      [
        "paper section 6: the store's data ops cost O(b), both quorum baselines O(n)";
        "the store additionally pays the context ops once per session (column 6)";
        "masking-quorum grid uses n >= 4b+1 (its own liveness bound)";
      ];
  }

(* ------------------------------------------------------------------ E6 *)

let e6_pbft_messages () =
  let rows =
    List.map
      (fun (n, f) ->
        let engine =
          Sim.Engine.create ~seed:11
            ~latency:(Sim.Latency.make (Sim.Latency.Constant 0.001))
            ()
        in
        let cluster = Baselines.Pbft_lite.create_cluster ~engine ~n ~f in
        Metrics.reset ();
        let committed = ref false in
        Sim.Engine.spawn engine ~client:(n + 1) (fun () ->
            let c = Baselines.Pbft_lite.client cluster ~id:(n + 1) in
            match Baselines.Pbft_lite.execute c (Baselines.Pbft_lite.Put { item = "x"; value = "v" }) with
            | Ok _ -> committed := true
            | Error Baselines.Pbft_lite.Timeout -> ());
        Sim.Engine.run engine;
        assert !committed;
        let m = Metrics.read () in
        let ours_total = (f + 1) + ((2 * (f + 1)) + 2) in
        [
          Table.cell_int n; Table.cell_int f;
          Table.cell_int m.Metrics.messages;
          Table.cell_int (Baselines.Pbft_lite.expected_messages_per_op ~n);
          Table.cell_int m.Metrics.macs;
          Table.cell_int ours_total;
        ])
      [ (4, 1); (7, 2); (10, 3); (13, 4); (19, 6) ]
  in
  {
    Table.id = "E6";
    title = "PBFT-lite messages per committed op: O(n^2) vs the store's O(b)";
    header =
      [ "n"; "f"; "msgs/op"; "formula"; "MAC ops"; "store write+read msgs" ];
    rows;
    notes =
      [
        "formula: 1 + (n-1) + (n-1)^2 + n(n-1) + n (request, pre-prepare, prepare, commit, replies)";
        "store column: (b+1) + (2(b+1)+2) with b=f, for the same logical write+read";
      ];
  }

(* ------------------------------------------------------------------ E7 *)

let e7_dissemination ?(seed = 42) () =
  let n = 7 and b = 2 in
  let duration = 120.0 in
  let write_mean_interval = 2.0 in
  let read_interval = 1.0 in
  let run_one gossip_period =
    let w = Worlds.make ~n ~b () in
    let engine =
      Sim.Engine.create ~seed ~latency:(Sim.Latency.make (Sim.Latency.Uniform { lo = 0.001; hi = 0.005 })) ()
    in
    Worlds.register_engine w engine;
    (match gossip_period with
    | Some period ->
      ignore
        (Gossip.install engine ~servers:w.servers ~period
           ~rng:(Sim.Srng.create (seed + 1)) ())
    | None -> ());
    let latest_written = ref 0 in
    let lag_stats = Sim.Stats.create () in
    let latency_stats = Sim.Stats.create () in
    let fresh_reads = ref 0 in
    let total_reads = ref 0 in
    let failed_reads = ref 0 in
    let reader_stats = ref None in
    Sim.Engine.spawn engine ~client:(-2) (fun () ->
        let alice =
          Worlds.connect w "alice" ~group:"g"
            ~cfg:(fun c -> { c with Client.timeout = 0.5 })
        in
        let rng = Sim.Srng.create (seed + 2) in
        let rec loop () =
          if Sim.Runtime.now () < duration then begin
            Sim.Runtime.sleep (Sim.Srng.exponential rng ~mean:write_mean_interval);
            incr latest_written;
            (match Client.write alice ~item:"x" (string_of_int !latest_written) with
            | Ok () -> ()
            | Error _ -> decr latest_written);
            loop ()
          end
        in
        loop ());
    Sim.Engine.spawn engine ~client:(-3) (fun () ->
        let bob =
          Worlds.connect w "bob" ~group:"g"
            ~cfg:(fun c ->
              {
                c with
                Client.read_spread = true;
                seed;
                timeout = 0.5;
                read_retries = 1;
                retry_delay = 0.1;
              })
        in
        reader_stats := Some (Client.stats bob);
        let rec loop () =
          if Sim.Runtime.now () < duration then begin
            Sim.Runtime.sleep read_interval;
            let start = Sim.Runtime.now () in
            incr total_reads;
            (match Client.read bob ~item:"x" with
            | Ok v ->
              Sim.Stats.add latency_stats (Sim.Runtime.now () -. start);
              let version = int_of_string v in
              Sim.Stats.add lag_stats (float_of_int (!latest_written - version));
              if version = !latest_written then incr fresh_reads
            | Error _ -> incr failed_reads);
            loop ()
          end
        in
        loop ());
    Sim.Engine.run ~until:(duration +. 20.0) engine;
    let stats = Option.get !reader_stats in
    let mean_msgs =
      float_of_int stats.Client.messages /. float_of_int (max 1 stats.Client.reads)
    in
    let mean_rounds =
      float_of_int stats.Client.read_rounds /. float_of_int (max 1 stats.Client.reads)
    in
    let label =
      match gossip_period with
      | Some p -> Printf.sprintf "%.2g s" p
      | None -> "off"
    in
    [
      label;
      Table.cell_int !total_reads;
      Table.cell_pct
        (float_of_int !fresh_reads /. float_of_int (max 1 !total_reads));
      Table.cell_float ~decimals:2 (Sim.Stats.mean lag_stats);
      Table.cell_float ~decimals:1 mean_msgs;
      Table.cell_int ((2 * (b + 1)) + 2);
      Table.cell_float ~decimals:2 mean_rounds;
      Table.cell_ms (Sim.Stats.percentile latency_stats 95.0);
      Table.cell_int !failed_reads;
    ]
  in
  let rows =
    List.map run_one [ Some 0.25; Some 0.5; Some 1.0; Some 2.0; Some 5.0; None ]
  in
  {
    Table.id = "E7";
    title =
      "Read freshness & cost vs gossip period (n=7 b=2, Poisson writes every ~2s, random read sets)";
    header =
      [
        "gossip"; "reads"; "latest"; "mean lag"; "msgs/read"; "best case";
        "rounds/read"; "p95 ms"; "failures";
      ];
    rows;
    notes =
      [
        "paper: 'when writes are infrequent, most reads access disseminated data' —";
        "fast gossip drives msgs/read toward the 2(b+1)+2 best case and lag toward 0";
        Printf.sprintf "seed=%d; reader polls random b+1 subsets (read_spread)" seed;
      ];
  }

(* ------------------------------------------------------------------ E8 *)

let e8_fault_injection ?(seed = 7) () =
  let behaviors =
    [
      Faults.Honest; Faults.Crash; Faults.Silent_reads; Faults.Stale;
      Faults.Corrupt_value; Faults.Corrupt_meta; Faults.Equivocate;
      Faults.Drop_gossip;
    ]
  in
  let run_one behavior =
    let n = 4 and b = 1 in
    let w = Worlds.make ~n ~b () in
    Worlds.wrap w 0 behavior;
    let rng = Sim.Srng.create seed in
    let written = ref [] in
    let reads_ok = ref 0 and reads_failed = ref 0 in
    let mrc_violations = ref 0 and integrity_violations = ref 0 in
    let last_seen = ref (-1) in
    Worlds.in_direct w (fun () ->
        let alice = Worlds.connect w "alice" ~group:"g" in
        let bob =
          Worlds.connect w "bob" ~group:"g"
            ~cfg:(fun c ->
              { c with Client.read_spread = true; seed; read_retries = 0 })
        in
        let version = ref 0 in
        for _ = 1 to 60 do
          match Sim.Srng.int_below rng 3 with
          | 0 ->
            incr version;
            let v = string_of_int !version in
            (match Client.write alice ~item:"x" v with
            | Ok () -> written := v :: !written
            | Error _ -> decr version)
          | 1 -> ignore (Gossip.exchange_once ~servers:w.servers ~rng ())
          | _ -> (
            match Client.read bob ~item:"x" with
            | Ok v ->
              incr reads_ok;
              if not (List.mem v !written) then incr integrity_violations;
              let version = int_of_string v in
              if version < !last_seen then incr mrc_violations;
              last_seen := max !last_seen version
            | Error _ -> incr reads_failed)
        done);
    let attempts = !reads_ok + !reads_failed in
    [
      Faults.to_string behavior;
      Table.cell_int attempts;
      Table.cell_pct (float_of_int !reads_ok /. float_of_int (max 1 attempts));
      Table.cell_int !mrc_violations;
      Table.cell_int !integrity_violations;
    ]
  in
  {
    Table.id = "E8";
    title = "Fault injection (n=4, b=1, one Byzantine server): safety holds, availability degrades gracefully";
    header = [ "behavior"; "reads"; "ok"; "MRC violations"; "integrity violations" ];
    rows = List.map run_one behaviors;
    notes =
      [
        "violations must be 0 in every row: a lying server can delay but never corrupt";
        Printf.sprintf "random schedule of writes / gossip rounds / spread reads, seed=%d" seed;
      ];
  }

(* ------------------------------------------------------------------ E8b *)

let e8b_spurious_context () =
  let attack ~guard =
    let w = Worlds.make ~n:4 ~b:1 ~guard () in
    let dep = Uid.make ~group:"plan" ~item:"dep" in
    let doc = Uid.make ~group:"plan" ~item:"doc" in
    (* A legitimate base version of dep exists everywhere. *)
    Worlds.in_direct w (fun () ->
        let alice =
          Worlds.connect w "alice" ~group:"plan" ~cfg:(fun c -> cc (mw c))
        in
        Result.get_ok (Client.write alice ~item:"dep" "base"));
    Worlds.flood w;
    (* Mallory's poisoned write: context claims a dep version that exists
       nowhere. *)
    let bogus_ctx =
      Context.of_bindings
        [ (dep, Stamp.multi ~time:999_999_999 ~writer:"mallory" ~value:"?") ]
    in
    let poisoned =
      Signing.sign_write ~key:(Worlds.key_of "mallory") ~writer:"mallory"
        ~uid:doc
        ~stamp:(Stamp.multi ~time:50 ~writer:"mallory" ~value:"poison")
        ~wctx:bogus_ctx "poison"
    in
    Array.iter
      (fun s ->
        ignore
          (Server.handle s ~now:0.0 ~from:(-1)
             {
               Payload.token = None; epoch = 0;
               request = Payload.Write_req { write = poisoned; await_ack = true };
             }))
      w.servers;
    Worlds.in_direct w (fun () ->
        let bob =
          Worlds.connect w "bob" ~group:"plan"
            ~cfg:(fun c -> { (cc (mw c)) with Client.read_retries = 0 })
        in
        let doc_result =
          match Client.read bob ~item:"doc" with
          | Ok v -> v
          | Error (Client.Not_found _) -> "(not visible)"
          | Error e -> "(" ^ Client.error_to_string e ^ ")"
        in
        let poisoned_ctx =
          Stamp.compare (Context.find (Client.context bob) dep) (Stamp.scalar 0) > 0
          && Stamp.time (Context.find (Client.context bob) dep) >= 999_999_999
        in
        let dep_result =
          match Client.read bob ~item:"dep" with
          | Ok v -> v
          | Error (Client.Stale _) -> "(stale forever: DoS)"
          | Error e -> "(" ^ Client.error_to_string e ^ ")"
        in
        [
          (if guard then "on" else "off");
          doc_result;
          (if poisoned_ctx then "yes" else "no");
          dep_result;
        ])
  in
  {
    Table.id = "E8b";
    title = "Spurious-context denial of service (section 5.3) and the server-side guard";
    header = [ "guard"; "doc read"; "reader ctx poisoned"; "dep read" ];
    rows = [ attack ~guard:false; attack ~guard:true ];
    notes =
      [
        "guard off: the poisoned write is visible, pollutes reader contexts, and";
        "subsequent reads of the named dependency stall forever (the paper's attack)";
        "guard on: servers hold the write until its causal predecessors exist";
      ];
  }

(* ------------------------------------------------------------------ E10 *)

let e10_wan_latency ?(seed = 21) () =
  let n = 7 and b = 1 in
  let run_net label latency timeout =
    let ops :
        (string * Sim.Stats.t) list ref =
      ref []
    in
    let stat name =
      match List.assoc_opt name !ops with
      | Some s -> s
      | None ->
        let s = Sim.Stats.create () in
        ops := (name, s) :: !ops;
        s
    in
    let iterations = 40 in
    (* --- secure store --- *)
    let w = Worlds.make ~n ~b () in
    let engine = Sim.Engine.create ~seed ~latency () in
    Worlds.register_engine w engine;
    Sim.Engine.spawn engine ~client:(-2) (fun () ->
        let alice =
          Worlds.connect w "alice" ~group:"g"
            ~cfg:(fun c -> { c with Client.timeout })
        in
        for i = 1 to iterations do
          let t0 = Sim.Runtime.now () in
          (match Client.write alice ~item:"x" (string_of_int i) with
          | Ok () -> Sim.Stats.add (stat "store write (b+1)") (Sim.Runtime.now () -. t0)
          | Error _ -> ());
          let t0 = Sim.Runtime.now () in
          match Client.read alice ~item:"x" with
          | Ok _ -> Sim.Stats.add (stat "store read (b+1)") (Sim.Runtime.now () -. t0)
          | Error _ -> ()
        done;
        let t0 = Sim.Runtime.now () in
        match Client.disconnect alice with
        | Ok () -> Sim.Stats.add (stat "store ctx op (q)") (Sim.Runtime.now () -. t0)
        | Error _ -> ());
    Sim.Engine.run engine;
    (* --- masking quorum --- *)
    let keyring = Keyring.create () in
    Keyring.register keyring "alice" (Worlds.key_of "alice").Crypto.Rsa.public;
    let mq_servers =
      Array.init n (fun id -> Baselines.Masking_quorum.Server.create ~id ~keyring)
    in
    let engine = Sim.Engine.create ~seed:(seed + 1) ~latency () in
    Array.iteri
      (fun i s -> Sim.Engine.add_server engine i (Baselines.Masking_quorum.Server.handler s))
      mq_servers;
    Sim.Engine.spawn engine ~client:(-2) (fun () ->
        let c =
          Baselines.Masking_quorum.create ~n ~b ~timeout ~uid:"alice"
            ~key:(Worlds.key_of "alice") ~keyring ()
        in
        for i = 1 to iterations do
          let t0 = Sim.Runtime.now () in
          (match Baselines.Masking_quorum.write c ~item:"x" (string_of_int i) with
          | Ok () -> Sim.Stats.add (stat "masking write (q')") (Sim.Runtime.now () -. t0)
          | Error _ -> ());
          let t0 = Sim.Runtime.now () in
          match Baselines.Masking_quorum.read c ~item:"x" with
          | Ok _ -> Sim.Stats.add (stat "masking read (q')") (Sim.Runtime.now () -. t0)
          | Error _ -> ()
        done);
    Sim.Engine.run engine;
    (* --- pbft --- *)
    let engine = Sim.Engine.create ~seed:(seed + 2) ~latency () in
    let cluster = Baselines.Pbft_lite.create_cluster ~engine ~n ~f:b in
    Sim.Engine.spawn engine ~client:(n + 1) (fun () ->
        let c = Baselines.Pbft_lite.client cluster ~id:(n + 1) in
        for i = 1 to iterations do
          let t0 = Sim.Runtime.now () in
          match
            Baselines.Pbft_lite.execute c
              (Baselines.Pbft_lite.Put { item = "x"; value = string_of_int i })
          with
          | Ok _ -> Sim.Stats.add (stat "pbft put (n^2)") (Sim.Runtime.now () -. t0)
          | Error _ -> ()
        done);
    Sim.Engine.run engine;
    List.rev_map
      (fun (name, s) ->
        [
          label; name;
          Table.cell_int (Sim.Stats.count s);
          Table.cell_ms (Sim.Stats.percentile s 50.0);
          Table.cell_ms (Sim.Stats.percentile s 99.0);
        ])
      !ops
  in
  let lan_rows = run_net "LAN" Sim.Latency.lan 1.0 in
  let wan_rows = run_net "WAN" Sim.Latency.wan 2.0 in
  {
    Table.id = "E10";
    title = "Operation latency, LAN vs WAN (n=7, b=f=1)";
    header = [ "net"; "operation"; "ops"; "p50 ms"; "p99 ms" ];
    rows = lan_rows @ wan_rows;
    notes =
      [
        "paper section 6: small quorums pay off most in widely-distributed settings;";
        "PBFT's multi-phase exchange costs ~5 sequential hops vs the store's 1-2";
        Printf.sprintf "WAN: %s; seed=%d" (Sim.Latency.describe Sim.Latency.wan) seed;
      ];
  }

(* ------------------------------------------------------------------ E11 *)

let e11_read_strategies () =
  let sizes = [ ("64 B", 64); ("1 KiB", 1024); ("64 KiB", 65536) ] in
  let rows =
    List.concat_map
      (fun (label, size) ->
        let value = String.make size 'v' in
        let run strategy cfg_mod =
          let w = Worlds.make ~n:7 ~b:2 () in
          Worlds.in_direct w (fun () ->
              let alice =
                Worlds.connect w "alice" ~group:"g" ~cfg:(fun c -> paper (cfg_mod c))
              in
              Result.get_ok (Client.write alice ~item:"x" value);
              let _, m =
                measured (fun () ->
                    Result.get_ok (Result.map ignore (Client.read alice ~item:"x")))
              in
              [
                strategy; label;
                Table.cell_int m.Metrics.messages;
                Table.cell_int m.Metrics.bytes;
                Table.cell_int m.Metrics.verifies;
              ])
        in
        [
          run "two-round (Fig. 2)" Fun.id;
          run "inline (1 round)" (fun c -> { c with Client.inline_read = true });
        ])
      sizes
  in
  {
    Table.id = "E11";
    title = "Read strategy ablation (n=7 b=2): round trips vs bandwidth";
    header = [ "strategy"; "value"; "msgs"; "bytes"; "verifies" ];
    rows;
    notes =
      [
        "two-round: b+1 meta polls then one value fetch — minimal bandwidth;";
        "inline: every polled server ships its current write — one round trip,";
        "matching the paper's 'read response time = write response time' best case";
      ];
  }

(* ------------------------------------------------------------------ E12 *)

let e12_dispersal () =
  let n = 7 and b = 2 in
  let sizes = [ ("1 KiB", 1024); ("64 KiB", 65536); ("1 MiB", 1 lsl 20) ] in
  let rows =
    List.concat_map
      (fun (label, size) ->
        let value = String.make size 'v' in
        (* Replication (paper write: b+1 full copies). *)
        let w = Worlds.make ~n ~b () in
        let replication =
          Worlds.in_direct w (fun () ->
              let alice = Worlds.connect w "alice" ~group:"g" ~cfg:paper in
              let _, wm = measured (fun () -> Result.get_ok (Client.write alice ~item:"x" value)) in
              let _, rm =
                measured (fun () ->
                    Result.get_ok (Result.map ignore (Client.read alice ~item:"x")))
              in
              [
                "replication (b+1)"; label;
                Table.cell_int wm.Metrics.bytes;
                Table.cell_int ((b + 1) * size);
                Table.cell_int rm.Metrics.bytes;
              ])
        in
        (* Dispersal: n fragments of |ct|/(b+1). *)
        let w = Worlds.make ~n ~b () in
        let dispersal =
          Worlds.in_direct w (fun () ->
              let d =
                Dispersal.make ~n ~b ~writer:"alice" ~key:(Worlds.key_of "alice")
                  ~keyring:w.keyring ~group:"g" ~secret:"s" ()
              in
              let _, wm =
                measured (fun () ->
                    match Dispersal.write d ~item:"x" value with
                    | Ok () -> ()
                    | Error e -> failwith (Dispersal.error_to_string e))
              in
              let _, rm =
                measured (fun () ->
                    match Dispersal.read d ~item:"x" with
                    | Ok _ -> ()
                    | Error e -> failwith (Dispersal.error_to_string e))
              in
              let stored_per_server = (size / (b + 1)) + 64 in
              [
                "dispersal (k=b+1)"; label;
                Table.cell_int wm.Metrics.bytes;
                Table.cell_int (n * stored_per_server);
                Table.cell_int rm.Metrics.bytes;
              ])
        in
        [ replication; dispersal ])
      sizes
  in
  {
    Table.id = "E12";
    title = "Storage strategy ablation (n=7 b=2): replication vs fragmentation-scattering";
    header = [ "strategy"; "value"; "write bytes"; "~stored bytes"; "read bytes" ];
    rows;
    notes =
      [
        "dispersal stores n/(b+1) ~= 2.3x the value in total vs b+1 = 3x for replication,";
        "and no single server ever holds a whole (even encrypted) value";
      ];
  }

(* ------------------------------------------------------------------ E13 *)

let e13_dynamic_quorums () =
  let n = 10 and b = 3 in
  let w = Worlds.make ~n ~b () in
  Worlds.wrap w 0 Faults.Corrupt_value;
  let evidence = Fault_evidence.create ~servers:(List.init n Fun.id) ~b in
  let row phase m_read m_ctx =
    [
      phase;
      Table.cell_int (Fault_evidence.effective_b evidence);
      Table.cell_int m_read.Metrics.messages;
      Table.cell_int m_ctx.Metrics.messages;
    ]
  in
  let rows =
    Worlds.in_direct w (fun () ->
        let alice =
          Worlds.connect w "alice" ~group:"g"
            ~cfg:(fun c -> { c with Client.evidence = Some evidence })
        in
        Result.get_ok (Client.write alice ~item:"x" "v1");
        (* Phase 1: the corrupt server is polled, detected and proven. *)
        let _, m_read1 =
          measured (fun () ->
              Result.get_ok (Result.map ignore (Client.read alice ~item:"x")))
        in
        let _, m_ctx1 = measured (fun () -> Result.get_ok (Client.disconnect alice)) in
        let r1 = row "before detection settles" m_read1 m_ctx1 in
        (* Phase 2: with the proof, read sets and quorums shrink. *)
        let alice =
          Worlds.connect w "alice" ~group:"g"
            ~cfg:(fun c -> { c with Client.evidence = Some evidence })
        in
        let _, m_read2 =
          measured (fun () ->
              Result.get_ok (Result.map ignore (Client.read alice ~item:"x")))
        in
        let _, m_ctx2 = measured (fun () -> Result.get_ok (Client.disconnect alice)) in
        let r2 = row "after proof" m_read2 m_ctx2 in
        [ r1; r2 ])
  in
  {
    Table.id = "E13";
    title =
      "Dynamic quorums (n=10 b=3, one provably-corrupt server): costs shrink with evidence";
    header = [ "phase"; "effective b"; "read msgs"; "ctx-op msgs" ];
    rows;
    notes =
      [
        "a corrupted reply is a transferable proof of misbehaviour: the client";
        "excludes the server and lowers b, shrinking b+1 read sets and";
        "ceil((n+b+1)/2) context quorums (Alvisi et al., cited in section 3)";
      ];
  }

(* ------------------------------------------------------------------ E14 *)

let e14_context_size () =
  let n = 7 and b = 2 in
  let q = Quorums.context_quorum ~n ~b in
  let rows =
    List.map
      (fun items ->
        let w = Worlds.make ~n ~b () in
        Worlds.in_direct w (fun () ->
            let alice = Worlds.connect w "alice" ~group:"g" in
            for i = 1 to items do
              Result.get_ok (Client.write alice ~item:("item" ^ string_of_int i) "v")
            done;
            let _, store_m = measured (fun () -> Result.get_ok (Client.disconnect alice)) in
            let _, read_m = measured (fun () -> Worlds.connect w "alice" ~group:"g") in
            [
              Table.cell_int items;
              Table.cell_int store_m.Metrics.messages;
              Table.cell_int store_m.Metrics.bytes;
              Table.cell_int read_m.Metrics.messages;
              Table.cell_int read_m.Metrics.bytes;
            ]))
      [ 1; 4; 16; 64; 256 ]
  in
  (* Reconstruction cost, measured separately (crashed session: context
     never stored, client reads every item from every server). *)
  let recon_rows =
    List.map
      (fun items ->
        let w = Worlds.make ~n ~b () in
        Worlds.in_direct w (fun () ->
            let alice = Worlds.connect w "alice" ~group:"g" in
            for i = 1 to items do
              Result.get_ok (Client.write alice ~item:("item" ^ string_of_int i) "v")
            done;
            (* no disconnect: the session "crashes" *)
            Worlds.flood w;
            let _, m =
              measured (fun () -> Worlds.connect w "alice" ~group:"g" ~recover:`Reconstruct)
            in
            [
              Table.cell_int items;
              "-"; "-";
              Table.cell_int m.Metrics.messages;
              Table.cell_int m.Metrics.bytes;
            ]))
      [ 1; 16; 256 ]
  in
  {
    Table.id = "E14";
    title =
      Printf.sprintf
        "Context machinery cost vs group size (n=7 b=2, q=%d): store/read vs reconstruction"
        q;
    header = [ "items"; "store msgs"; "store bytes"; "acquire msgs"; "acquire bytes" ];
    rows = rows @ ([ "--recon--"; ""; ""; ""; "" ] :: recon_rows);
    notes =
      [
        "store/acquire messages stay at 2q regardless of group size; only bytes grow";
        "reconstruction rows (after a crashed session): 2q msgs for the failed context";
        "read plus 2n for the group scan, and bytes grow with every stored item";
      ];
  }

let all ?seed () =
  [
    e1_context_messages ();
    e2_context_crypto ();
    e3_data_costs ();
    e4_multi_writer_costs ();
    e5_quorum_comparison ();
    e6_pbft_messages ();
    e7_dissemination ?seed ();
    e8_fault_injection ?seed ();
    e8b_spurious_context ();
    e10_wan_latency ?seed ();
    e11_read_strategies ();
    e12_dispersal ();
    e13_dynamic_quorums ();
    e14_context_size ();
  ]
