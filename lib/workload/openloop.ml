(* YCSB-style constant-time zipfian sampler (Gray et al.'s "Quickly
   generating billion-record synthetic databases" rejection-free form):
   the zeta sums are precomputed once, and each sample is one uniform
   draw plus arithmetic. *)
type zipf = {
  keys : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zipf ~keys ~theta =
  if keys < 1 then invalid_arg "Openloop.zipf: keys must be >= 1";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Openloop.zipf: theta must be in [0, 1)";
  let zeta n =
    let s = ref 0.0 in
    for i = 1 to n do
      s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !s
  in
  let zetan = zeta keys in
  let zeta2 = if keys >= 2 then 1.0 +. (1.0 /. Float.pow 2.0 theta) else zetan in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    if keys < 2 then 1.0
    else
      (1.0 -. Float.pow (2.0 /. float_of_int keys) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
  in
  { keys; theta; zetan; alpha; eta }

let draw z ~u =
  if z.keys = 1 then 0
  else begin
    let uz = u *. z.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
    else
      let r =
        float_of_int z.keys
        *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha
      in
      min (z.keys - 1) (int_of_float r)
  end

(* Knuth's multiplicative hash spreads consecutive ranks — the popular
   ones — across the group space instead of clustering them in group 0
   (and hence on one shard). *)
let scramble k = k * 2654435761 land max_int

let group_of_key ~groups k = scramble k mod groups

let uid_of_key ~groups k =
  Store.Uid.make
    ~group:("g" ^ string_of_int (group_of_key ~groups k))
    ~item:("k" ^ string_of_int k)

type kind = Read | Write

type op = { at : float; uid : Store.Uid.t; kind : kind }

let plan ~seed ~keys ~theta ~groups ~rate ~duration ~write_ratio ~owned_groups =
  if groups < 1 then invalid_arg "Openloop.plan: groups must be >= 1";
  if rate <= 0.0 then invalid_arg "Openloop.plan: rate must be positive";
  let z = zipf ~keys ~theta in
  let prng = Crypto.Prng.create ~seed:("openloop!" ^ seed) in
  let owned = Array.of_list owned_groups in
  let count = int_of_float (rate *. duration) in
  Array.init count (fun i ->
      let u = Crypto.Prng.float_unit prng in
      let k = draw z ~u in
      let kind =
        if Crypto.Prng.float_unit prng < write_ratio then Write else Read
      in
      let uid =
        match kind with
        | Read -> uid_of_key ~groups k
        | Write ->
          (* Single-writer discipline: this planner's writes stay inside
             its own groups. The remap is keyed by the rank so the same
             hot key always rewrites to the same owned group. *)
          if
            Array.length owned = 0
            || Array.exists (fun g -> g = group_of_key ~groups k) owned
          then uid_of_key ~groups k
          else
            Store.Uid.make
              ~group:
                ("g"
                ^ string_of_int owned.(scramble k mod Array.length owned))
              ~item:("k" ^ string_of_int k)
      in
      { at = float_of_int i /. rate; uid; kind })

type summary = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

let summarize latencies =
  let n = Array.length latencies in
  if n = 0 then
    { count = 0; mean_ns = 0.0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0;
      max_ns = 0.0 }
  else begin
    let sorted = Array.copy latencies in
    Array.sort compare sorted;
    let pct p =
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
    in
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    {
      count = n;
      mean_ns = sum /. float_of_int n;
      p50_ns = pct 50.0;
      p95_ns = pct 95.0;
      p99_ns = pct 99.0;
      max_ns = sorted.(n - 1);
    }
  end
