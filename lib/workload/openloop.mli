(** Open-loop workload plans: zipfian key popularity, fixed arrival
    schedule.

    A closed-loop driver (issue, wait, issue) measures only its own
    back-pressure: when the store slows down, the driver slows down, and
    saturation hides. An open-loop driver fixes the arrival schedule in
    advance — requests become due at [i/rate] regardless of how the
    store is doing — and measures each op's latency from its *scheduled*
    arrival, so queueing delay under overload is part of the number, the
    way user-facing latency actually behaves.

    Key popularity is zipfian over a large keyspace (the YCSB
    constant-time sampler: one uniform draw, no per-sample loop), with
    ranks scrambled across groups so the hot keys do not all land on one
    shard. Plans are pure data built from a seeded PRNG: the same
    arguments produce the same plan in any process, which is how a
    multi-process bench keeps workers disjoint and reproducible. *)

type zipf

val zipf : keys:int -> theta:float -> zipf
(** Sampler over ranks [0 .. keys-1] with P(rank i) ∝ 1/(i+1)^theta.
    [theta = 0] is uniform; YCSB's default skew is 0.99.
    @raise Invalid_argument unless [keys >= 1] and [0 <= theta < 1]. *)

val draw : zipf -> u:float -> int
(** Rank for one uniform draw [u] in [0, 1). Constant time. *)

val group_of_key : groups:int -> int -> int
(** The group a key naturally belongs to — a multiplicative scramble of
    the rank, so consecutive (popular) ranks spread across groups. *)

val uid_of_key : groups:int -> int -> Store.Uid.t
(** ["g<group>/k<key>"] for the key's natural group. *)

type kind = Read | Write

type op = { at : float; uid : Store.Uid.t; kind : kind }
(** One planned request: due [at] seconds after the plan's epoch. *)

val plan :
  seed:string ->
  keys:int ->
  theta:float ->
  groups:int ->
  rate:float ->
  duration:float ->
  write_ratio:float ->
  owned_groups:int list ->
  op array
(** A fixed-interval arrival schedule of [rate *. duration] ops. Reads
    sample the whole keyspace; writes are remapped into [owned_groups]
    (keyed by the op's rank, so the remap is deterministic) because the
    store is single-writer per group — a bench worker may only write
    groups it owns. [owned_groups = []] means every group is owned. *)

type summary = {
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

val summarize : float array -> summary
(** Exact (nearest-rank) percentiles over the given latencies, in
    nanoseconds. Zeros for an empty array. *)
