type t = {
  n : int;
  b : int;
  keyring : Store.Keyring.t;
  servers : Store.Server.t array;
  hmap : (now:float -> from:int -> string -> string option) array;
}

let key_cache : (string, Crypto.Rsa.keypair) Hashtbl.t = Hashtbl.create 16

let key_of name =
  match Hashtbl.find_opt key_cache name with
  | Some k -> k
  | None ->
    let k =
      Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("wk-" ^ name))
    in
    Hashtbl.replace key_cache name k;
    k

let default_clients = [ "alice"; "bob"; "carol"; "mallory" ]

(* [capacity] servers exist as processes (ids [0 .. capacity-1]); the
   initial membership is [0 .. n-1] and the rest are standbys a
   reconfiguration can bring in later. MAC keys cover every process so
   a client's fast path keeps working after a membership change. *)
let make ?(n = 4) ?(b = 1) ?capacity ?epoch_admin ?(guard = false)
    ?(clients = default_clients) () =
  let capacity = max n (Option.value capacity ~default:n) in
  let keyring = Store.Keyring.create () in
  List.iter
    (fun c ->
      Store.Keyring.register keyring c (key_of c).Crypto.Rsa.public;
      (* Pairwise MAC secrets for the Mac_fast write path: every
         client×server pair gets a deterministic derived key, standing in
         for the session-key exchange a deployment would run. *)
      for server = 0 to capacity - 1 do
        Store.Keyring.register_mac keyring ~client:c ~server
          (Crypto.Sha256.digest (Printf.sprintf "wk-mac!%s!%d" c server))
      done)
    clients;
  let config =
    {
      (Store.Server.default_config ~n ~b) with
      Store.Server.malicious_client_guard = guard;
      epoch_admin;
    }
  in
  let servers =
    Array.init capacity (fun id -> Store.Server.create ~config ~id ~keyring ~n ~b ())
  in
  { n; b; keyring; servers; hmap = Array.map Store.Server.handler servers }

let wrap t i behavior = t.hmap.(i) <- Store.Faults.wrap behavior t.servers.(i)

let handlers t dst ~from request =
  if dst >= 0 && dst < Array.length t.hmap then t.hmap.(dst) ~now:0.0 ~from request
  else None

let in_direct t fn = Sim.Direct.run ~handlers:(handlers t) fn

let register_engine t engine =
  Array.iteri
    (fun i _ ->
      Sim.Engine.add_server engine i (fun ~now ~from payload ->
          t.hmap.(i) ~now ~from payload))
    t.servers

let connect ?(cfg = Fun.id) ?recover t name ~group =
  let config = cfg (Store.Client.default_config ~n:t.n ~b:t.b) in
  match
    Store.Client.connect ?recover ~config ~uid:name ~key:(key_of name)
      ~keyring:t.keyring ~group ()
  with
  | Ok c -> c
  | Error e ->
    failwith ("Worlds.connect: " ^ Store.Client.error_to_string e)

let flood t = Store.Gossip.flood ~servers:t.servers
