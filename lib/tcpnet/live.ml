open Effect.Deep

type endpoints = Sim.Runtime.node_id -> (string * int) option
type transport = [ `Pooled | `Legacy ]

(* --- legacy one-shot transport (kept as the measured baseline) --------- *)

(* One request per connection: the original demo transport. Retained so
   `bench e10` can measure pooled-vs-per-connection on the same code
   path, and as a fallback. [read_timeout] bounds the blocking read so a
   silent server cannot pin the thread (and its fd) forever — the thread
   reaps itself at the deadline instead of leaking. *)
let call_once ~timeout endpoint payload =
  match Addr.connect ~read_timeout:timeout endpoint with
  | None -> None
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        match
          Frame.write_frame fd ("\x01" ^ payload);
          Frame.read_frame fd
        with
        | Some r when String.length r >= 1 && r.[0] = '\x01' ->
          Some (String.sub r 1 (String.length r - 1))
        | Some _ | None -> None
        | exception _ -> None)

let send_once endpoint payload =
  match Addr.connect endpoint with
  | None -> ()
  | Some fd ->
    (try Frame.write_frame fd (Frame.encode_oneway payload) with _ -> ());
    (try Unix.close fd with _ -> ())

let do_scatter_legacy ~endpoints ~parts ~quorum ~timeout =
  let lock = Mutex.create () in
  let replies = ref [] in
  let arrived = ref 0 in
  List.iter
    (fun (dst, request) ->
      match endpoints dst with
      | None -> ()
      | Some endpoint ->
        ignore
          (Thread.create
             (fun () ->
               match call_once ~timeout endpoint request with
               | Some payload ->
                 Mutex.lock lock;
                 replies := { Sim.Runtime.from = dst; payload } :: !replies;
                 incr arrived;
                 Mutex.unlock lock
               | None -> ())
             ()))
    parts;
  (* The legacy waiter polls at 1 ms granularity — part of what the
     pooled transport exists to avoid. *)
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let done_ =
      Mutex.lock lock;
      let d = !arrived >= quorum in
      Mutex.unlock lock;
      d
    in
    if done_ || Unix.gettimeofday () >= deadline then ()
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ();
  Mutex.lock lock;
  let result = List.rev !replies in
  Mutex.unlock lock;
  result

let do_call_many_legacy ~endpoints (spec : Sim.Runtime.call_spec) =
  do_scatter_legacy ~endpoints
    ~parts:(List.map (fun dst -> (dst, spec.Sim.Runtime.request)) spec.dsts)
    ~quorum:spec.Sim.Runtime.quorum ~timeout:spec.Sim.Runtime.timeout

(* --- pooled transport (default) ---------------------------------------- *)

let do_call_many ~pool ~endpoints ~shard_of (spec : Sim.Runtime.call_spec) =
  let dsts =
    List.filter_map
      (fun dst -> Option.map (fun ep -> (dst, ep)) (endpoints dst))
      spec.Sim.Runtime.dsts
  in
  (* One quorum round always addresses one replica set, and a replica
     set lives wholly inside one shard — so the first destination's
     shard speaks for the round. *)
  let shard =
    match spec.Sim.Runtime.dsts with [] -> None | dst :: _ -> shard_of dst
  in
  Pool.call_many pool ~timeout:spec.Sim.Runtime.timeout ?shard
    ~quorum:spec.Sim.Runtime.quorum dsts spec.Sim.Runtime.request
  |> List.map (fun (from, payload) -> { Sim.Runtime.from; payload })

let do_call_scatter ~pool ~endpoints ~shard_of (spec : Sim.Runtime.scatter_spec)
    =
  let parts =
    List.filter_map
      (fun (dst, request) ->
        Option.map (fun ep -> (dst, ep, request)) (endpoints dst))
      spec.Sim.Runtime.parts
  in
  let shard =
    match spec.Sim.Runtime.parts with
    | [] -> None
    | (dst, _) :: _ -> shard_of dst
  in
  Pool.call_scatter pool ~timeout:spec.Sim.Runtime.timeout ?shard
    ~quorum:spec.Sim.Runtime.quorum parts
  |> List.map (fun (from, payload) -> { Sim.Runtime.from; payload })

let run ?(transport = `Pooled) ?pool ?(shard_of = fun _ -> None) ~endpoints fn =
  (* Lazy so the legacy path never materializes the shared pool (its
     timekeeper thread and self-pipe fds) — in particular not in the
     fd-leak scenarios the legacy baseline exists to measure. *)
  let pool =
    match pool with Some p -> lazy p | None -> lazy (Pool.shared ())
  in
  let call_many spec =
    match transport with
    | `Pooled -> do_call_many ~pool:(Lazy.force pool) ~endpoints ~shard_of spec
    | `Legacy -> do_call_many_legacy ~endpoints spec
  in
  let call_scatter (spec : Sim.Runtime.scatter_spec) =
    match transport with
    | `Pooled ->
      do_call_scatter ~pool:(Lazy.force pool) ~endpoints ~shard_of spec
    | `Legacy ->
      do_scatter_legacy ~endpoints ~parts:spec.parts ~quorum:spec.quorum
        ~timeout:spec.timeout
  in
  let send_oneway dst payload =
    match endpoints dst with
    | None -> ()
    | Some endpoint -> (
      match transport with
      | `Pooled ->
        ignore
          (Pool.send (Lazy.force pool) ?shard:(shard_of dst) endpoint payload
            : bool)
      | `Legacy -> send_once endpoint payload)
  in
  let rec interpret : 'a. (unit -> 'a) -> 'a =
    fun fn ->
      match_with fn ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Sim.Runtime.Now ->
                Some
                  (fun (k : (a, _) continuation) ->
                    continue k (Unix.gettimeofday ()))
              | Sim.Runtime.Sleep d ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Thread.delay (max 0.0 d);
                    continue k ())
              | Sim.Runtime.Fork f ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (Thread.create (fun () -> interpret f) ());
                    continue k ())
              | Sim.Runtime.Send_oneway (dst, payload) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    send_oneway dst payload;
                    continue k ())
              | Sim.Runtime.Call_many spec ->
                Some
                  (fun (k : (a, _) continuation) ->
                    continue k (call_many spec))
              | Sim.Runtime.Call_scatter spec ->
                Some
                  (fun (k : (a, _) continuation) ->
                    continue k (call_scatter spec))
              | _ -> None);
        }
  in
  interpret fn
