(* Minimal HTTP/1.0 exposition server.

   One accept loop, one short-lived thread per request, Connection:
   close on every response — a Prometheus scrape arrives every few
   seconds at most, so there is nothing to win from keep-alive and a
   whole protocol's worth of complexity to lose. Routes are thunks so
   the body is rendered at scrape time, under no lock of ours (the
   renderers take their own). *)

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  mutable running : bool;
  mutable accept_th : Thread.t option;
}

let http_date () =
  (* Fixed-format; exposition clients ignore it but proxies like it. *)
  let open Unix in
  let t = gmtime (time ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |].(t.tm_wday) in
  let mon =
    [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct";
       "Nov"; "Dec" |].(t.tm_mon)
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day t.tm_mday mon
    (t.tm_year + 1900) t.tm_hour t.tm_min t.tm_sec

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      if w > 0 then go (off + w)
  in
  go 0

let respond fd ~status ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %s\r\nDate: %s\r\nContent-Type: %s\r\n\
        Content-Length: %d\r\nConnection: close\r\n\r\n%s"
       status (http_date ()) content_type (String.length body) body)

(* Read up to the end of the header block. Request bodies are ignored —
   every method we accept has none. *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  (* Headers end at the first CRLFCRLF; nothing after it matters. *)
  let headers_done contents =
    let rec find i =
      if i + 3 >= String.length contents then false
      else if String.sub contents i 4 = "\r\n\r\n" then true
      else find (i + 1)
    in
    find 0
  in
  let rec go () =
    if Buffer.length buf > 16384 then None
    else
      let contents = Buffer.contents buf in
      if headers_done contents then Some contents
      else
        match Unix.read fd chunk 0 512 with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> None
  in
  go ()

let parse_request_line req =
  match String.index_opt req '\r' with
  | None -> None
  | Some i -> (
    match String.split_on_char ' ' (String.sub req 0 i) with
    | [ meth; target; _version ] ->
      (* Routes key on the bare path; the query string (sans '?') is
         handed to the renderer, "" when absent. *)
      let path, query =
        match String.index_opt target '?' with
        | Some q ->
          ( String.sub target 0 q,
            String.sub target (q + 1) (String.length target - q - 1) )
        | None -> (target, "")
      in
      Some (meth, path, query)
    | _ -> None)

let handle routes fd =
  Addr.set_nodelay fd;
  (try
     match read_request fd with
     | None -> ()
     | Some req -> (
       match parse_request_line req with
       | None ->
         respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
           "bad request\n"
       | Some (meth, _, _) when meth <> "GET" ->
         respond fd ~status:"405 Method Not Allowed" ~content_type:"text/plain"
           "only GET is served here\n"
       | Some (_, path, query) -> (
         match List.assoc_opt path routes with
         | None ->
           respond fd ~status:"404 Not Found" ~content_type:"text/plain"
             (Printf.sprintf "no route %s\n" path)
         | Some render -> (
           (* A failing renderer must not 200: the scraper should mark
              the target down, not ingest an error message as metrics. *)
           match render query with
           | content_type, body -> respond fd ~status:"200 OK" ~content_type body
           | exception e ->
             respond fd ~status:"500 Internal Server Error"
               ~content_type:"text/plain"
               (Printf.sprintf "render failed: %s\n" (Printexc.to_string e)))))
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port ~routes () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Addr.inet_addr host, port));
  Unix.listen listener 16;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t = { listener; bound_port; running = true; accept_th = None } in
  let accept_loop () =
    while t.running do
      match Unix.accept listener with
      | fd, _ -> ignore (Thread.create (handle routes) fd)
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    done
  in
  t.accept_th <- Some (Thread.create accept_loop ());
  t

let port t = t.bound_port

(* Same shutdown-close-join dance as Server_host.stop: shutdown wakes
   the blocked accept, joining guarantees the port is free on return. *)
let stop t =
  t.running <- false;
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  match t.accept_th with Some th -> Thread.join th | None -> ()

let get ?(host = "127.0.0.1") ~port ~path () =
  match Addr.connect ~read_timeout:5.0 (host, port) with
  | None -> Error (Printf.sprintf "connect to %s:%d failed" host port)
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          write_all fd
            (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host);
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 4096 with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          in
          drain ();
          let raw = Buffer.contents buf in
          let rec header_end i =
            if i + 3 >= String.length raw then None
            else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else header_end (i + 1)
          in
          match header_end 0 with
          | None -> Error "malformed HTTP response"
          | Some body_at ->
            let status_line =
              match String.index_opt raw '\r' with
              | Some i -> String.sub raw 0 i
              | None -> raw
            in
            let body =
              String.sub raw body_at (String.length raw - body_at)
            in
            if
              String.length status_line >= 12
              && String.sub status_line 9 3 = "200"
            then Ok body
            else Error status_line
        with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
