(** Length-prefixed framing over stream sockets.

    A frame is a 4-byte big-endian length followed by that many bytes.
    Frames are capped at 16 MiB — a malformed or malicious peer cannot
    make us allocate unboundedly. *)

val max_frame : int

val write_frame : Unix.file_descr -> string -> unit
(** @raise Unix.Unix_error on socket errors.
    @raise Invalid_argument if the payload exceeds {!max_frame}. *)

val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF before or inside a frame, or on an oversized
    length prefix. *)

type read_result =
  | Frame of string
  | Eof  (** clean EOF before or inside a frame *)
  | Oversized of int
      (** length prefix over {!max_frame}; the claimed length — nothing
          was allocated or consumed past the 4-byte header *)

val read_frame_ext : Unix.file_descr -> read_result
(** Like {!read_frame} but distinguishes an oversized length prefix from
    EOF, so servers can answer a framed error before closing. *)

(** {1 Pipelined sub-protocol}

    Inside each frame, the first byte is a tag: [0x00] one-way and
    [0x01] one-shot call are the legacy protocol; [0x02] carries a
    4-byte big-endian correlation id, letting many requests share one
    connection with out-of-order replies; [0x03] is a connection-level
    framed error for requests the server could not even parse. A
    pipelined response carries a status byte after the id: [0x00] no
    reply, [0x01] ok + payload, [0x02] rejected + message.

    Sharded hosts add two tags: [0x04] is a pipelined call whose 4-byte
    id is followed by a 2-byte big-endian shard id, and [0x05] is a
    one-way with a 2-byte shard id — the host dispatches either to that
    shard's server state. Responses are unchanged (the correlation id
    already names the request, shard included).

    Distributed tracing adds four more: [0x06]/[0x07] are the traced
    twins of [0x02]/[0x04] and [0x08]/[0x09] of [0x00]/[0x05], each
    carrying a trace-context extension right after the fixed header —
    a 1-byte extension length (exactly {!ctx_bytes}), a 16-byte trace
    id, an 8-byte big-endian span id (top bit clear) and a flags byte.
    An untraced sender emits the legacy tags byte-for-byte, so peers
    that predate the extension interoperate unchanged. *)

val max_id : int
(** Correlation ids live in [0 .. max_id] (30 bits, wraps). *)

val max_shard : int
(** Shard ids live in [0 .. max_shard] (16 bits on the wire). *)

(** The wire trace context: 16 raw trace-id bytes, the sending span's
    id, and sampling flags (bit 0 sampled, bit 1 forced). *)
type trace_ctx = { trace : string; span : int; flags : int }

val trace_id_bytes : int
(** 16 — raw length of a trace id. *)

val ctx_bytes : int
(** 25 — encoded context length (the value of the extension's length
    byte; anything else is rejected as malformed). *)

val encode_oneway : ?shard:int -> ?trace:trace_ctx -> string -> string
(** With [shard], a sharded one-way; with [trace], the traced twin tag.
    @raise Invalid_argument when [shard] exceeds {!max_shard} or the
    trace id is not {!trace_id_bytes} bytes. *)

val encode_call : id:int -> ?trace:trace_ctx -> string -> string

(** {2 Prebuilt call buffers}

    A quorum broadcast sends one payload to every endpoint; only the
    correlation id differs per connection. [prebuilt_call] builds the
    full wire image (length prefix, tag, zeroed id, optional shard,
    payload) once; each send patches the id with {!set_prebuilt_id} and
    writes the buffer with {!write_prebuilt} — no per-endpoint encode or
    copy. The caller must serialize patch+write pairs on one buffer. *)

type prebuilt = Bytes.t

val prebuilt_call : ?shard:int -> ?trace:trace_ctx -> string -> prebuilt
val set_prebuilt_id : prebuilt -> int -> unit
val write_prebuilt : Unix.file_descr -> prebuilt -> unit
val encode_reply : id:int -> string option -> string
val encode_reject : id:int -> string -> string
val encode_conn_error : string -> string

type request =
  | Oneway of string
  | Legacy_call of string
  | Call of { id : int; payload : string }
  | Sharded_call of { id : int; shard : int; payload : string }
  | Sharded_oneway of { shard : int; payload : string }

val parse_request : string -> request option
(** [None] on an empty frame, unknown tag, truncated pipelined header,
    or a correlation id above {!max_id} — the server answers those with
    {!encode_conn_error}. Traced frames parse to the same constructors
    (their context is dropped); use {!parse_request_traced} to keep it. *)

val parse_request_traced : string -> (request * trace_ctx option) option
(** Like {!parse_request} but returns the trace context of a traced
    frame. [None] additionally on a malformed context: a truncated
    extension, a length byte other than {!ctx_bytes} (over-long or
    short trace ids), or a span id with the top bit set. *)

type response =
  | Reply of { id : int; payload : string option }
  | Reject of { id : int; message : string }
  | Conn_error of string

val parse_response : string -> response option
