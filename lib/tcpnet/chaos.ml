type plan = {
  seed : int;
  drop : float;
  delay : float;
  jitter : float;
  corrupt : float;
  reset : float;
  drip_bytes : int;
  drip_delay : float;
  blackhole : (float * float) list;
}

let plan ?(drop = 0.) ?(delay = 0.) ?(jitter = 0.) ?(corrupt = 0.)
    ?(reset = 0.) ?(drip_bytes = 0) ?(drip_delay = 0.) ?(blackhole = []) ~seed
    () =
  { seed; drop; delay; jitter; corrupt; reset; drip_bytes; drip_delay; blackhole }

(* Every fault decision is a pure function of
   (seed, connection index, direction, frame index, decision field):
   the first 30 bits of a SHA-256 digest, mapped to [0,1). No mutable
   RNG state means the schedule cannot depend on thread interleaving or
   wall-clock timing — re-running with the same seed replays the same
   drops, corruptions and resets at the same frame positions, which is
   what makes chaos failures reproducible (and lets tests assert it via
   {!decision_digest}). *)
let rand plan ~conn ~dir ~frame field =
  let d =
    Crypto.Sha256.digest
      (Printf.sprintf "%d/%d/%d/%d/%s" plan.seed conn dir frame field)
  in
  let b i = Char.code d.[i] in
  let bits = (b 0 lsl 22) lor (b 1 lsl 14) lor (b 2 lsl 6) lor (b 3 lsr 2) in
  float_of_int bits /. 1073741824.0

let decision_digest plan ~frames =
  let ctx = Crypto.Sha256.init () in
  for conn = 0 to 1 do
    for dir = 0 to 1 do
      for frame = 0 to frames - 1 do
        List.iter
          (fun field ->
            Crypto.Sha256.update ctx
              (Printf.sprintf "%.9f;" (rand plan ~conn ~dir ~frame field)))
          [ "drop"; "corrupt"; "reset"; "jitter" ]
      done
    done
  done;
  Crypto.Hexs.encode (Crypto.Sha256.finalize ctx)

type stats = {
  mutable conns : int;
  mutable forwarded : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable resets : int;
  mutable refused : int;
  mutable killed : int;
}

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  target : string * int;
  plan : plan;
  started_at : float;
  mutable running : bool;
  mutable healed : bool;
  lock : Mutex.t; (* guards conns, next_conn and stats *)
  mutable conns : Unix.file_descr list;
  mutable next_conn : int;
  stats : stats;
  mutable accept_th : Thread.t option;
  mutable monitor_th : Thread.t option;
}

let with_lock t fn =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) fn

let note t fn = with_lock t (fun () -> fn t.stats)

let track t fd = with_lock t (fun () -> t.conns <- fd :: t.conns)
let untrack t fd =
  with_lock t (fun () -> t.conns <- List.filter (fun c -> c <> fd) t.conns)

(* Blackhole windows are wall-clock intervals relative to proxy start.
   Inside one, the endpoint behaves like a partitioned host: existing
   connections are killed and new ones are torn down on arrival — the
   failure is *visible* (EOF / RST), so a client's pool marks the
   endpoint down and a server's gossip push returns false and requeues,
   rather than frames silently vanishing into an apparently healthy
   stream. *)
let blackholed t now =
  (not t.healed)
  && List.exists
       (fun (a, b) ->
         let rel = now -. t.started_at in
         rel >= a && rel < b)
       t.plan.blackhole

let header_of len =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.to_string b

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

let drip_write fd s ~chunk ~pause =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n = min chunk (len - off) in
      write_all fd (String.sub s off n);
      if off + n < len then Thread.delay pause;
      go (off + n)
    end
  in
  go 0

(* One pump per direction. Frames (not bytes) are the fault unit: the
   pump reassembles each length-prefixed frame before deciding, so a
   corruption flips payload bytes under a valid header and a drop
   removes a whole message — the stream stays parseable, exercising the
   endpoints' protocol handling rather than just their resync (reset
   covers torn streams separately, by dying after header + half the
   payload). *)
let pump t ~conn_id ~dir ~src ~dst ~finish =
  let frame_idx = ref 0 in
  let p = t.plan in
  let rec loop () =
    if t.running then
      match Frame.read_frame src with
      | None -> ()
      | Some payload ->
        let i = !frame_idx in
        incr frame_idx;
        if blackholed t (Unix.gettimeofday ()) then ()
        else begin
          let healed = t.healed in
          let r field = rand p ~conn:conn_id ~dir ~frame:i field in
          if (not healed) && p.reset > 0. && r "reset" < p.reset then begin
            note t (fun s -> s.resets <- s.resets + 1);
            let keep = String.length payload / 2 in
            try
              write_all dst
                (header_of (String.length payload) ^ String.sub payload 0 keep)
            with Unix.Unix_error _ | Sys_error _ -> ()
            (* fall through: [finish] tears both sides down mid-frame *)
          end
          else if (not healed) && p.drop > 0. && r "drop" < p.drop then begin
            note t (fun s -> s.dropped <- s.dropped + 1);
            loop ()
          end
          else begin
            let d =
              if healed then 0.
              else
                p.delay
                +. (if p.jitter > 0. then p.jitter *. r "jitter" else 0.)
            in
            if d > 0. then Thread.delay d;
            let payload =
              if
                (not healed) && p.corrupt > 0.
                && String.length payload > 0
                && r "corrupt" < p.corrupt
              then begin
                note t (fun s -> s.corrupted <- s.corrupted + 1);
                let b = Bytes.of_string payload in
                let at =
                  min
                    (int_of_float (r "corrupt-at" *. float_of_int (Bytes.length b)))
                    (Bytes.length b - 1)
                in
                let flip = 1 + int_of_float (r "corrupt-bits" *. 254.) in
                Bytes.set b at
                  (Char.chr (Char.code (Bytes.get b at) lxor flip land 0xff));
                Bytes.to_string b
              end
              else payload
            in
            let buf = header_of (String.length payload) ^ payload in
            if (not healed) && p.drip_bytes > 0 then
              drip_write dst buf ~chunk:p.drip_bytes ~pause:p.drip_delay
            else write_all dst buf;
            note t (fun s -> s.forwarded <- s.forwarded + 1);
            loop ()
          end
        end
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  finish ()

let shutdown_fd fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let splice t client_fd server_fd =
  let conn_id = with_lock t (fun () ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      t.stats.conns <- t.stats.conns + 1;
      id)
  in
  Addr.set_nodelay client_fd;
  Addr.set_nodelay server_fd;
  track t client_fd;
  track t server_fd;
  (* Either pump dying tears down both directions; the second to finish
     closes the fds (shutdown wakes the peer pump out of its read). *)
  let remaining = ref 2 in
  let fin_lock = Mutex.create () in
  let finish () =
    shutdown_fd client_fd;
    shutdown_fd server_fd;
    Mutex.lock fin_lock;
    decr remaining;
    let last = !remaining = 0 in
    Mutex.unlock fin_lock;
    if last then begin
      untrack t client_fd;
      untrack t server_fd;
      (try Unix.close client_fd with Unix.Unix_error _ -> ());
      try Unix.close server_fd with Unix.Unix_error _ -> ()
    end
  in
  ignore
    (Thread.create
       (fun () -> pump t ~conn_id ~dir:0 ~src:client_fd ~dst:server_fd ~finish)
       ());
  ignore
    (Thread.create
       (fun () -> pump t ~conn_id ~dir:1 ~src:server_fd ~dst:client_fd ~finish)
       ())

let accept_loop t () =
  while t.running do
    match Unix.accept t.listener with
    | fd, _ ->
      if blackholed t (Unix.gettimeofday ()) then begin
        note t (fun s -> s.refused <- s.refused + 1);
        shutdown_fd fd;
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else (
        match Addr.connect t.target with
        | Some server_fd -> splice t fd server_fd
        | None ->
          (try Unix.close fd with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error _ -> ()
  done

(* Kills idle connections when a blackhole window opens: the pumps only
   re-check the window per forwarded frame, so a quiet connection would
   otherwise ride out the partition untouched. *)
let monitor t () =
  while t.running do
    Thread.delay 0.02;
    if blackholed t (Unix.gettimeofday ()) then begin
      let conns = with_lock t (fun () -> t.conns) in
      if conns <> [] then begin
        note t (fun s -> s.killed <- s.killed + List.length conns);
        List.iter shutdown_fd conns
      end
    end
  done

let start ?(port = 0) ~plan ~target () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 64;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      listener;
      bound_port;
      target;
      plan;
      started_at = Unix.gettimeofday ();
      running = true;
      healed = false;
      lock = Mutex.create ();
      conns = [];
      next_conn = 0;
      stats =
        {
          conns = 0;
          forwarded = 0;
          dropped = 0;
          corrupted = 0;
          resets = 0;
          refused = 0;
          killed = 0;
        };
      accept_th = None;
      monitor_th = None;
    }
  in
  t.accept_th <- Some (Thread.create (accept_loop t) ());
  if t.plan.blackhole <> [] then t.monitor_th <- Some (Thread.create (monitor t) ());
  t

let port t = t.bound_port

let heal t = t.healed <- true

let stats t =
  with_lock t (fun () ->
      {
        conns = t.stats.conns;
        forwarded = t.stats.forwarded;
        dropped = t.stats.dropped;
        corrupted = t.stats.corrupted;
        resets = t.stats.resets;
        refused = t.stats.refused;
        killed = t.stats.killed;
      })

let stop t =
  t.running <- false;
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.accept_th with Some th -> Thread.join th | None -> ());
  (* Monitor wakes within its 20 ms tick and sees [running = false]. *)
  (match t.monitor_th with Some th -> Thread.join th | None -> ());
  let conns = with_lock t (fun () -> t.conns) in
  List.iter shutdown_fd conns
