(** Endpoint addressing for the TCP transport.

    Centralizes the two per-socket details every caller used to repeat:
    numeric host strings are parsed once and cached (they were re-parsed
    on every connect), and [TCP_NODELAY] is set on every socket — the
    transport exchanges small framed RPCs, the worst case for Nagle. *)

val inet_addr : string -> Unix.inet_addr
(** Cached [Unix.inet_addr_of_string]. @raise Failure on a bad host. *)

val sockaddr : string * int -> Unix.sockaddr

val set_nodelay : Unix.file_descr -> unit
(** Best-effort [TCP_NODELAY] (no-op on non-TCP sockets). *)

val connect : ?read_timeout:float -> string * int -> Unix.file_descr option
(** Dial the endpoint: fresh socket, [TCP_NODELAY], optional
    [SO_RCVTIMEO] so blocked reads fail deterministically. [None] when
    the host is unparsable or the connect fails (the socket is closed). *)
