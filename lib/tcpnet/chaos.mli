(** Deterministic fault-injecting TCP proxy.

    A chaos proxy sits between a client and one server endpoint and
    perturbs the framed byte stream according to a seeded {!plan}:
    dropped frames, fixed and jittered delay, payload byte corruption,
    mid-frame connection resets, slow-drip writes, and timed
    blackhole/partition windows during which the endpoint kills existing
    connections and tears down new ones.

    Every per-frame decision is a pure function of
    [(seed, connection index, direction, frame index, field)] — a
    SHA-256 hash mapped to [0,1) — so there is no mutable RNG and the
    fault schedule is independent of timing and thread interleaving:
    the same seed replays the same schedule ({!decision_digest} lets
    tests assert it).

    The proxy is frame-aware: it reassembles each length-prefixed
    {!Frame} before deciding, so corruption flips payload bytes under a
    valid header and a drop removes a whole message, keeping the stream
    parseable (resets cover torn streams: header plus half a payload,
    then both sides die). Blackholes produce *visible* failures (EOF /
    refused), so pools mark the endpoint down and gossip pushes requeue,
    rather than frames silently vanishing. *)

type plan = {
  seed : int;
  drop : float;  (** per-frame drop probability *)
  delay : float;  (** fixed per-frame forwarding delay, seconds *)
  jitter : float;  (** extra uniform [0, jitter) delay on top of [delay] *)
  corrupt : float;  (** per-frame probability of flipping one payload byte *)
  reset : float;
      (** per-frame probability of writing header + half the payload and
          then killing the connection *)
  drip_bytes : int;  (** when > 0, forward in chunks of this many bytes *)
  drip_delay : float;  (** pause between drip chunks, seconds *)
  blackhole : (float * float) list;
      (** partition windows, seconds relative to {!start}: within
          [(from, until)) the proxy refuses new connections and kills
          live ones *)
}

val plan :
  ?drop:float ->
  ?delay:float ->
  ?jitter:float ->
  ?corrupt:float ->
  ?reset:float ->
  ?drip_bytes:int ->
  ?drip_delay:float ->
  ?blackhole:(float * float) list ->
  seed:int ->
  unit ->
  plan
(** All faults default off: [plan ~seed ()] is a pass-through. *)

val decision_digest : plan -> frames:int -> string
(** Hex digest over the plan's fault decisions for the first two
    connections, both directions, [frames] frames each. Equal for equal
    seeds, (overwhelmingly) distinct otherwise — the reproducibility
    check for a fault schedule. *)

type stats = {
  mutable conns : int;  (** connections accepted and spliced *)
  mutable forwarded : int;  (** frames forwarded (possibly corrupted) *)
  mutable dropped : int;
  mutable corrupted : int;
  mutable resets : int;
  mutable refused : int;  (** connections torn down on arrival (blackhole) *)
  mutable killed : int;  (** live fds shut down entering a blackhole *)
}

type t

val start : ?port:int -> plan:plan -> target:string * int -> unit -> t
(** Listen on [port] (default [0] = ephemeral, see {!port}) and splice
    every accepted connection to [target] through the fault plan. *)

val port : t -> int

val heal : t -> unit
(** Permanently switch to pass-through: all faults (including remaining
    blackhole windows) stop applying to subsequent frames. Used to end a
    soak's chaos phase and let the cluster converge. *)

val stats : t -> stats
(** A snapshot (the returned record is a copy). *)

val stop : t -> unit
(** Stop accepting, kill spliced connections, join the proxy threads. *)
