(** Pooled, pipelined RPC transport.

    Persistent connections (a bounded few per endpoint) carry
    correlation-id framed requests ({!Frame.encode_call}), so many RPCs
    share one connection and replies may arrive out of order. Each
    connection has one reader thread resolving a pending-request table;
    quorum fan-outs wait on a Condition woken by completion or by a
    single timekeeper thread at the deadline — there is no polling, no
    per-call thread, and no per-call socket. Failed endpoints back off
    exponentially up to a cap before redial.

    Transport counters ([tcp_connects]/[tcp_reuses]/[tcp_reconnects]/
    [rpcs], the in-flight high-water mark, RPC latency percentiles) are
    reported through {!Store.Metrics}. *)

type t

val create :
  ?max_connections_per_endpoint:int (** default 2 *) ->
  ?backoff_base:float (** first redial delay, default 0.05 s *) ->
  ?backoff_max:float (** backoff cap, default 2 s *) ->
  ?suspect_after:int
    (** consecutive RPC failures (timeouts, dead connections, failed
        dials) before the endpoint is suspected, default 5 *) ->
  ?suspect_base:float (** first suspicion window, default 0.25 s *) ->
  ?suspect_max:float (** suspicion window cap, default 5 s *) ->
  unit ->
  t

val shared : unit -> t
(** The process-wide pool (created on first use) — what {!Live} and
    {!Server_host} gossip use by default, so clients and servers in one
    process share connections. *)

type result =
  | Reply of string  (** the server answered *)
  | Rejected of string  (** the server answered with a framed error *)
  | No_reply  (** the server processed the call but had no response *)
  | Dropped  (** never delivered: endpoint down, connection died, or timeout *)

val call : t -> ?timeout:float -> ?shard:int -> string * int -> string -> result
(** One RPC. The result distinguishes "server rejected" ([Rejected])
    from "connection died" ([Dropped]). Default timeout 5 s. [shard]
    addresses one shard of a multi-shard host ({!Frame} tag [0x04]). *)

val call_many :
  t ->
  ?timeout:float ->
  ?shard:int ->
  quorum:int ->
  (int * (string * int)) list ->
  string ->
  (int * string) list
(** Fan the request out to every [(node_id, endpoint)] destination and
    return [(node_id, reply)] pairs in arrival order, as soon as
    [quorum] replies are in, every destination has failed, or the
    timeout fires. Abandoned requests are dropped from the pending
    tables immediately — nothing keeps running past completion.

    The request is encoded into its wire frame once per round and the
    buffer shared across destinations (only the correlation id is
    patched per send) — a quorum broadcast costs one encode, not
    [n]. With [shard], every destination is addressed as that shard
    (a quorum group lives wholly inside one shard by construction). *)

val call_scatter :
  t ->
  ?timeout:float ->
  ?shard:int ->
  quorum:int ->
  (int * (string * int) * string) list ->
  (int * string) list
(** Like {!call_many} but with a distinct request per destination — one
    [(node_id, endpoint, request)] triple each — under a single quorum
    wait. The dispersal data path uses this to ship each server its own
    fragment piece in one round. Each request is encoded into its own
    frame (there is no shared buffer to patch); completion semantics are
    exactly {!call_many}'s. *)

val send : t -> ?shard:int -> string * int -> string -> bool
(** Fire-and-forget one-way message on a pooled connection (gossip
    pushes). Retries once on a connection found dead at write time.
    [false] when the message could not even be written (endpoint down,
    in backoff, or suspected) — the caller can requeue; [true] means
    written, not delivered. [shard] addresses one shard of a
    multi-shard host. *)

val connection_count : t -> string * int -> int
(** Live pooled connections to the endpoint (introspection). *)

type health = {
  endpoint : string * int;
  connections : int;  (** live pooled connections *)
  consecutive_failures : int;
      (** RPC-level failures (timeouts, dead connections, failed dials)
          since the last framed response from the endpoint *)
  last_error : string option;
  down_until : float;
      (** absolute time until which the endpoint is avoided — the later
          of the dial backoff and the suspicion window; [0.] healthy *)
}

val health : t -> health list
(** Per-endpoint health, sorted by endpoint. After [suspect_after]
    consecutive failures an endpoint enters a suspicion window
    (submissions fail fast, even on live connections — a blackholed
    server accepts connections and says nothing); when the window
    expires it is half-open: traffic is admitted, a success clears the
    suspicion, the next failure re-arms a doubled window up to
    [suspect_max]. The same data is published to
    {!Store.Metrics.endpoint_health} as it changes. *)

val current_backoff : t -> string * int -> float
(** The endpoint's current redial backoff delay in seconds; [0.] when
    healthy (introspection for tests). *)

val in_flight : t -> int
(** Requests currently registered and unanswered across the pool. *)

val evict : t -> string * int -> unit
(** Retire an endpoint for good (membership churn): close its
    connections, drop its backoff and suspicion state, and remove its
    {!Store.Metrics.endpoint_health} row — without this, health and
    suspicion entries for servers no longer in any active config
    accumulate forever. A later submission to the same address starts
    from a clean slate. *)

val shutdown : t -> unit
(** Close every pooled connection and stop the timekeeper. The pool must
    not be used afterwards (tests only — the shared pool lives as long
    as the process). *)
