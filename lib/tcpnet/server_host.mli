(** Host a {!Store.Server} behind a TCP listener.

    Wire sub-protocol (inside {!Frame}s): the original one-shot tags
    ([0x00] one-way, [0x01] call) remain, and [0x02] adds correlation-id
    pipelining — many requests in flight on one connection, replies in
    any order of completion, each echoing the request id and a status
    byte. Unparsable frames are answered with a framed [0x03] error
    instead of a silent drop, so a client can tell "server rejected"
    from "connection died".

    One thread per connection. The store mutex is scoped to server-state
    mutation only: envelope decode and signature verification (RSA) run
    outside it, so connections contend only on the state update. The
    optional gossip thread pushes newly accepted writes to peers over
    the shared connection {!Pool} (persistent connections, not a dial
    per push); pushes that fail (peer down, endpoint suspected) are
    requeued in a bounded per-peer backlog and retried next round, so a
    write accepted during a partition still reaches peers once the
    partition heals. *)

type gossip = { peers : (string * int) list; period : float }

(** One shard hosted by a process: its server state, its (per-shard)
    Byzantine behaviour, and its gossip peers — the endpoints of the
    other replicas of the *same shard*. *)
type shard_spec = {
  shard : int;  (** wire shard id, [0 .. Frame.max_shard] *)
  server : Store.Server.t;
  behavior : Store.Faults.behavior;
  peers : (string * int) list;  (** [[]] = no gossip for this shard *)
}

type t

val start :
  ?gossip:gossip ->
  ?behavior:Store.Faults.behavior ->
  server:Store.Server.t ->
  port:int ->
  unit ->
  t
(** Bind, listen and serve on a background thread; returns immediately.
    [port = 0] picks an ephemeral port (see {!port}).

    [behavior] (default {!Store.Faults.Honest}) hosts the server behind
    the corresponding Byzantine wrapper, so the simulator's fault suite
    runs unchanged over real sockets. A behaviour that answers nothing
    (e.g. [Crash], [Silent_reads] on queries) is genuinely silent on the
    wire — the client runs into its deadline, not a framed "no reply". *)

val start_sharded :
  ?gossip_period:float -> shards:shard_spec list -> port:int -> unit -> t
(** Host several shard replicas behind one listener. Sharded frames
    ([0x04]/[0x05]) dispatch to the matching shard's server under that
    shard's own lock — S independent locks instead of one global store
    mutex — and each shard gossips to its own peer set on its own
    thread, with the shard tag on the wire. Calls for a shard this host
    does not serve are rejected with a framed error (a stale shard
    table looks different from a dead server). Untagged legacy traffic
    lands on the first listed shard.
    @raise Invalid_argument on an empty or duplicate shard list. *)

val port : t -> int

val hosted_shards : t -> int list
(** Shard ids this host serves, ascending. *)

val drain : ?max_passes:int -> t -> unit
(** Graceful departure, the first half of a handoff: put every hosted
    shard's server into draining mode (new client writes are denied;
    reads, gossip and {!Store.Payload.Evidence_upgrade} still served),
    then synchronously push the remaining gossip backlog to the peers —
    up to [max_passes] (default 10) rounds, so a dead peer cannot wedge
    the drain. The caller then snapshots and {!stop}s. *)

val set_request_tracing : bool -> unit
(** Whether request handling opens [server_request] spans (decode /
    verify / apply phases) when tracing is globally enabled. On by
    default. An in-process cluster turns it off to measure client-only
    tracing overhead — the deployment shape, where server span cost
    lives in other processes (bench e17 does this). *)

val stop : t -> unit
(** Close the listener, stop the gossip thread, and shut down accepted
    connections (pooled clients see EOF and redial on next use). *)
