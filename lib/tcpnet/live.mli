(** Real-time, real-socket interpretation of the {!Sim.Runtime} effects.

    The third interpreter for the same protocol code: [Now] is the wall
    clock, [Sleep] blocks the thread, and [Call_many]/[Send_oneway] go
    over TCP. Endpoint resolution maps node ids to [(host, port)] pairs
    served by {!Server_host}.

    Two transports interpret the network effects:
    - [`Pooled] (default): {!Pool} — persistent per-endpoint
      connections, correlation-id pipelining, condition-based quorum
      wakeup, no per-call threads or sockets;
    - [`Legacy]: the original connect-per-request transport (one thread
      and one socket per destination per call, 1 ms poll-wait), kept as
      the measured baseline for `bench e10` and as a fallback. Its
      sockets now carry a read timeout so per-call threads always reap
      themselves at the deadline. *)

type endpoints = Sim.Runtime.node_id -> (string * int) option
type transport = [ `Pooled | `Legacy ]

val run :
  ?transport:transport ->
  ?pool:Pool.t ->
  ?shard_of:(Sim.Runtime.node_id -> int option) ->
  endpoints:endpoints ->
  (unit -> 'a) ->
  'a
(** Interpret the thunk's effects over TCP ([pool] defaults to
    {!Pool.shared}). Unresolvable or unreachable destinations simply
    never reply (indistinguishable from a crashed server, as in the
    paper's model).

    [shard_of] (default [fun _ -> None]) maps a node id to the shard its
    traffic must be tagged with on the wire — with the flat id scheme of
    {!Store.Router.shard_servers}, [fun node -> Some (node / n)]. A
    quorum round is tagged by its first destination's shard: the router
    guarantees every round addresses a single shard's replica set. The
    legacy transport ignores shards. *)
