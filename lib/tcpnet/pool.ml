(* Pooled, pipelined RPC transport.

   One persistent connection (a few, bounded) per endpoint; requests are
   framed with a correlation id ({!Frame.encode_call}) so many can be in
   flight at once and replies may come back in any order. A dedicated
   reader thread per connection completes a pending-request table;
   callers wait on a Condition, woken either by quorum completion or by
   the pool's single timekeeper thread at their deadline (self-pipe +
   select — no polling). Dead connections are detected by the reader
   (EOF) or the writer (EPIPE), their pending requests fail fast, and
   the next use redials, behind a capped exponential backoff. *)

type result = Reply of string | Rejected of string | No_reply | Dropped

(* [t0]/[histo] are the tracing hook: when spans are enabled at submit
   time, the reader feeds [reply - t0] to the endpoint's latency
   histogram on delivery. Timing rides the pending entry itself rather
   than a wrapper closure — the hook must stay cheap on the submit
   path. *)
type pending = {
  complete : result -> unit;
  t0 : float;
  histo : Obs.Histo.t option;
}

(* [conn] and [endpoint_state] are mutually recursive: the owner link
   lets completion paths that only hold a connection (timeout reaping,
   reader death) attribute the failure to the right endpoint's health. *)
type conn = {
  fd : Unix.file_descr;
  owner : endpoint_state;
  pending : (int, pending) Hashtbl.t;
  plock : Mutex.t;  (* guards [pending], [in_flight], [alive] *)
  wlock : Mutex.t;  (* serializes frame writes *)
  mutable alive : bool;
  mutable in_flight : int;
}

and endpoint_state = {
  ep : string * int;
  ep_name : string;  (* "host:port", precomputed: hooks on the submit
                        path must not pay for formatting *)
  elock : Mutex.t;
  econd : Condition.t; (* signalled when a dial resolves either way *)
  mutable conns : conn list;
  mutable dialing : int;
  mutable fail_streak : int;
  mutable down_until : float;
  mutable last_backoff : float;
  mutable ever_connected : bool;
  (* Health beyond dial backoff: RPC-level consecutive failures
     (timeouts, dead connections, failed dials) drive a suspicion
     window during which submissions fail fast even though live
     connections may exist (a blackholed server accepts connections and
     says nothing). When the window expires the endpoint is half-open:
     traffic is admitted again, a success clears the suspicion, the
     next failure re-arms a doubled window. *)
  mutable rpc_fail_streak : int;
  mutable last_error : string option;
  mutable suspect_until : float;
  mutable suspect_backoff : float;
  (* Resolved lazily on the first traced submit and kept: the reply
     path records into it before waking the quorum waiter, so it must
     not pay a registry lookup per reply. (A Metrics.reset_gauges
     while tracing is live detaches this cache from the registry;
     gauge resets are a test-only pristine-slate affair.) *)
  mutable ep_histo : Obs.Histo.t option;
}

(* A quorum fan-out in progress. [outstanding] remembers every (conn,
   id) registration so completion — by quorum, exhaustion or deadline —
   can drop the abandoned entries instead of leaking them until the
   connection dies. *)
type group = {
  glock : Mutex.t;
  gcond : Condition.t;
  quorum : int;
  total : int;
  deadline : float;
  mutable replies : (int * string) list; (* newest first *)
  mutable arrived : int;
  mutable failures : int;
  mutable last_error : result option;
  mutable finished : bool;
  mutable outstanding : (conn * int) list;
}

type timer = {
  tlock : Mutex.t;
  mutable entries : (float * group) list; (* ascending by deadline *)
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  mutable tstop : bool;
}

type t = {
  lock : Mutex.t; (* guards [endpoints], [id_counter] *)
  endpoints : (string * int, endpoint_state) Hashtbl.t;
  timer : timer;
  max_conns : int;
  backoff_base : float;
  backoff_max : float;
  suspect_after : int;
  suspect_base : float;
  suspect_max : float;
  mutable id_counter : int;
  inflight : int Atomic.t;
}

(* --- timekeeper -------------------------------------------------------- *)

let timer_loop timer () =
  let buf = Bytes.create 64 in
  let rec loop () =
    Mutex.lock timer.tlock;
    let stop = timer.tstop in
    let next = match timer.entries with [] -> None | (d, _) :: _ -> Some d in
    Mutex.unlock timer.tlock;
    if stop then begin
      (try Unix.close timer.pipe_rd with _ -> ());
      try Unix.close timer.pipe_wr with _ -> ()
    end
    else begin
      let now = Unix.gettimeofday () in
      let wait = match next with None -> -1.0 | Some d -> d -. now in
      (if wait > 0.0 || next = None then
         match Unix.select [ timer.pipe_rd ] [] [] wait with
         | [ fd ], _, _ -> ignore (Unix.read fd buf 0 64)
         | _ -> ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let now = Unix.gettimeofday () in
      Mutex.lock timer.tlock;
      let rec split fired = function
        | (d, g) :: rest when d <= now -> split (g :: fired) rest
        | rest -> (fired, rest)
      in
      let fired, rest = split [] timer.entries in
      timer.entries <- rest;
      Mutex.unlock timer.tlock;
      List.iter
        (fun g ->
          Mutex.lock g.glock;
          Condition.broadcast g.gcond;
          Mutex.unlock g.glock)
        fired;
      loop ()
    end
  in
  loop ()

let timer_wake timer =
  try ignore (Unix.write timer.pipe_wr (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> () (* full pipe already guarantees a wakeup *)

let timer_register timer deadline group =
  Mutex.lock timer.tlock;
  let wake =
    match timer.entries with [] -> true | (d, _) :: _ -> deadline < d
  in
  let rec insert = function
    | [] -> [ (deadline, group) ]
    | (d, _) :: _ as l when deadline < d -> (deadline, group) :: l
    | e :: rest -> e :: insert rest
  in
  timer.entries <- insert timer.entries;
  Mutex.unlock timer.tlock;
  if wake then timer_wake timer

(* Groups that finish early (quorum before deadline) drop their entry
   now rather than retaining the group — replies included — until the
   deadline and waking the timekeeper for nobody. *)
let timer_unregister timer group =
  Mutex.lock timer.tlock;
  timer.entries <- List.filter (fun (_, g) -> g != group) timer.entries;
  Mutex.unlock timer.tlock

(* --- pool -------------------------------------------------------------- *)

let create ?(max_connections_per_endpoint = 2) ?(backoff_base = 0.05)
    ?(backoff_max = 2.0) ?(suspect_after = 5) ?(suspect_base = 0.25)
    ?(suspect_max = 5.0) () =
  let pipe_rd, pipe_wr = Unix.pipe () in
  Unix.set_nonblock pipe_wr;
  let timer =
    { tlock = Mutex.create (); entries = []; pipe_rd; pipe_wr; tstop = false }
  in
  ignore (Thread.create (timer_loop timer) ());
  {
    lock = Mutex.create ();
    endpoints = Hashtbl.create 16;
    timer;
    max_conns = max 1 max_connections_per_endpoint;
    backoff_base;
    backoff_max;
    suspect_after = max 1 suspect_after;
    suspect_base;
    suspect_max;
    id_counter = 0;
    inflight = Atomic.make 0;
  }

let shared_pool = lazy (create ())
let shared () = Lazy.force shared_pool

(* Forward declaration dance avoided: defined below, used here only
   after the state exists. *)
let publish_health_ref = ref (fun (_ : endpoint_state) -> ())

let endpoint_state pool ep =
  Mutex.lock pool.lock;
  let st, created =
    match Hashtbl.find_opt pool.endpoints ep with
    | Some st -> (st, false)
    | None ->
      let st =
        {
          ep;
          ep_name = Printf.sprintf "%s:%d" (fst ep) (snd ep);
          elock = Mutex.create ();
          econd = Condition.create ();
          conns = [];
          dialing = 0;
          fail_streak = 0;
          down_until = 0.0;
          last_backoff = 0.0;
          ever_connected = false;
          rpc_fail_streak = 0;
          last_error = None;
          suspect_until = 0.0;
          suspect_backoff = 0.0;
          ep_histo = None;
        }
      in
      Hashtbl.replace pool.endpoints ep st;
      (st, true)
  in
  Mutex.unlock pool.lock;
  (* First sighting: publish a healthy row so introspection shows every
     endpoint the pool knows, not only the ones that have failed. *)
  if created then !publish_health_ref st;
  st

let next_id pool =
  Mutex.lock pool.lock;
  let id = pool.id_counter in
  pool.id_counter <- (id + 1) land Frame.max_id;
  Mutex.unlock pool.lock;
  id

let track_inflight pool d =
  let v = Atomic.fetch_and_add pool.inflight d + d in
  if d > 0 then Store.Metrics.note_inflight v

(* --- endpoint health --------------------------------------------------- *)

let publish_health st =
  Mutex.lock st.elock;
  let h =
    {
      Store.Metrics.endpoint = st.ep_name;
      connections = List.length st.conns;
      consecutive_failures = st.rpc_fail_streak;
      last_error = st.last_error;
      down_until = max st.down_until st.suspect_until;
    }
  in
  Mutex.unlock st.elock;
  Store.Metrics.note_endpoint_health h

let () = publish_health_ref := publish_health

let note_rpc_ok st =
  Mutex.lock st.elock;
  let changed =
    st.rpc_fail_streak <> 0 || st.suspect_until <> 0.0 || st.last_error <> None
  in
  st.rpc_fail_streak <- 0;
  st.last_error <- None;
  st.suspect_until <- 0.0;
  st.suspect_backoff <- 0.0;
  Mutex.unlock st.elock;
  if changed then publish_health st

let note_rpc_fail pool st error =
  Mutex.lock st.elock;
  st.rpc_fail_streak <- st.rpc_fail_streak + 1;
  st.last_error <- Some error;
  if st.rpc_fail_streak >= pool.suspect_after then begin
    let d =
      if st.suspect_backoff = 0.0 then pool.suspect_base
      else min pool.suspect_max (st.suspect_backoff *. 2.0)
    in
    st.suspect_backoff <- d;
    st.suspect_until <- Unix.gettimeofday () +. d
  end;
  Mutex.unlock st.elock;
  publish_health st

(* Fail fast while the suspicion window is open. Once it expires the
   endpoint is half-open: requests flow again and the next completion
   decides (success clears, failure re-arms a doubled window). *)
let suspected st = Unix.gettimeofday () < st.suspect_until

(* Tear a connection down: unlink it, fail its pending requests, and
   shut the socket so the reader (the fd's sole closer) wakes up.
   Idempotent — the writer and the reader may both get here. *)
let kill_conn pool st conn =
  Mutex.lock conn.plock;
  let was_alive = conn.alive in
  conn.alive <- false;
  let orphans =
    Hashtbl.fold (fun _ p acc -> p :: acc) conn.pending []
  in
  Hashtbl.reset conn.pending;
  conn.in_flight <- 0;
  Mutex.unlock conn.plock;
  if was_alive then begin
    Mutex.lock st.elock;
    st.conns <- List.filter (fun c -> c != conn) st.conns;
    Mutex.unlock st.elock;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ())
  end;
  if was_alive && orphans <> [] then
    note_rpc_fail pool st "connection died with requests in flight"
  else if was_alive then publish_health st;
  track_inflight pool (-List.length orphans);
  List.iter (fun p -> p.complete Dropped) orphans

let reader pool st conn () =
  let deliver id result =
    Mutex.lock conn.plock;
    let p = Hashtbl.find_opt conn.pending id in
    (match p with
    | Some _ ->
      Hashtbl.remove conn.pending id;
      conn.in_flight <- conn.in_flight - 1
    | None -> ());
    Mutex.unlock conn.plock;
    (* Any framed response is evidence the endpoint is alive — including
       responses to requests we already abandoned. *)
    note_rpc_ok st;
    match p with
    | Some p ->
      track_inflight pool (-1);
      (match p.histo with
      | None -> p.complete result
      | Some h ->
        (* Clock first, observe last: completing may be the quorum
           signal, and the histogram update must not delay it. *)
        let t1 = Unix.gettimeofday () in
        p.complete result;
        Obs.Histo.observe h ((t1 -. p.t0) *. 1e9))
    | None -> () (* reply for an abandoned (post-quorum) request *)
  in
  let rec loop () =
    match Frame.read_frame conn.fd with
    | None -> ()
    | Some frame ->
      (match Frame.parse_response frame with
      | Some (Frame.Reply { id; payload = Some p }) -> deliver id (Reply p)
      | Some (Frame.Reply { id; payload = None }) -> deliver id No_reply
      | Some (Frame.Reject { id; message }) -> deliver id (Rejected message)
      | Some (Frame.Conn_error _) | None -> ());
      loop ()
  in
  (try loop () with _ -> ());
  kill_conn pool st conn;
  try Unix.close conn.fd with _ -> ()

let backoff_delay pool streak =
  min pool.backoff_max (pool.backoff_base *. (2.0 ** float_of_int (streak - 1)))

(* Pick the least-loaded live connection; dial a new one only when every
   existing connection is busy and the per-endpoint cap allows it. When
   the cap is already consumed by dials in flight (no connection to
   reuse yet), wait for a dial to resolve rather than over-dialing past
   the bound. *)
let acquire pool st =
  Mutex.lock st.elock;
  let rec pick () =
    (* Backoff only gates dialing: a failed extra dial must not take
       usable live connections out of service, so with live connections
       we fall through and reuse the least-loaded one instead. *)
    let in_backoff = Unix.gettimeofday () < st.down_until in
    if st.conns = [] && in_backoff then begin
      Mutex.unlock st.elock;
      None
    end
    else begin
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | Some b when b.in_flight <= c.in_flight -> acc
            | _ -> Some c)
          None st.conns
      in
      let at_cap = List.length st.conns + st.dialing >= pool.max_conns in
      match best with
      | Some c when c.in_flight = 0 || at_cap || in_backoff ->
        Mutex.unlock st.elock;
        Store.Metrics.incr_tcp_reuse ();
        Some c
      | None when at_cap ->
        (* Every slot is a dial in progress; its completion (either
           way) is broadcast on [econd]. *)
        Condition.wait st.econd st.elock;
        pick ()
      | _ ->
        st.dialing <- st.dialing + 1;
        Mutex.unlock st.elock;
        let fd = Addr.connect st.ep in
        Mutex.lock st.elock;
        st.dialing <- st.dialing - 1;
        (match fd with
        | Some fd ->
          let conn =
            {
              fd;
              owner = st;
              pending = Hashtbl.create 8;
              plock = Mutex.create ();
              wlock = Mutex.create ();
              alive = true;
              in_flight = 0;
            }
          in
          st.conns <- conn :: st.conns;
          st.fail_streak <- 0;
          st.down_until <- 0.0;
          st.last_backoff <- 0.0;
          let reconnect = st.ever_connected in
          st.ever_connected <- true;
          Condition.broadcast st.econd;
          Mutex.unlock st.elock;
          Store.Metrics.incr_tcp_connect ();
          if reconnect then Store.Metrics.incr_tcp_reconnect ();
          publish_health st;
          ignore (Thread.create (reader pool st conn) ());
          Some conn
        | None ->
          st.fail_streak <- st.fail_streak + 1;
          let delay = backoff_delay pool st.fail_streak in
          st.last_backoff <- delay;
          st.down_until <- Unix.gettimeofday () +. delay;
          Condition.broadcast st.econd;
          Mutex.unlock st.elock;
          None)
    end
  in
  pick ()

let write_frame_on conn bytes =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () -> Frame.write_frame conn.fd bytes)

let group_complete group ~from result =
  Mutex.lock group.glock;
  (if not group.finished then begin
     (match result with
     | Reply payload ->
       group.replies <- (from, payload) :: group.replies;
       group.arrived <- group.arrived + 1
     | (Rejected _ | No_reply | Dropped) as err ->
       group.failures <- group.failures + 1;
       group.last_error <- Some err);
     if
       group.arrived >= group.quorum
       || group.arrived + group.failures >= group.total
     then begin
       group.finished <- true;
       Condition.broadcast group.gcond
     end
   end);
  Mutex.unlock group.glock

let write_prebuilt_on conn buf =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () -> Frame.write_prebuilt conn.fd buf)

(* Register a pending entry and write the request. A connection that
   died between acquire and write is retried once on a fresh dial; a
   write that fails after registration kills the connection, which
   completes our entry (and everyone else's) as [Dropped].

   [buf] is the broadcast's shared prebuilt frame (encoded once per
   quorum round, not once per destination); only the 4 correlation-id
   bytes are patched per send. Patching is safe because a group's
   submissions — including these retries — all run sequentially in the
   calling thread, and the bytes are fully written out before the next
   destination patches them again. *)
let rec submit ?(attempts = 2) pool group st ~from buf =
  if suspected st then group_complete group ~from Dropped
  else if attempts = 0 then group_complete group ~from Dropped
  else
    match acquire pool st with
    | None ->
      note_rpc_fail pool st "dial failed or endpoint in backoff";
      group_complete group ~from Dropped
    | Some conn -> (
      let id = next_id pool in
      (* Tracing hook, behind [Obs.Span.enabled] so the traced-off hot
         path stays identical: no clock reads, no extra allocation.
         [run_group] annotates the caller's span with the (endpoint,
         correlation id) pairs so a span can be matched to the
         per-endpoint percentiles it contributed to. *)
      let histo, t0 =
        if not (Obs.Span.enabled ()) then (None, 0.0)
        else begin
          let h =
            match st.ep_histo with
            | Some h -> h
            | None ->
              let h = Store.Metrics.endpoint_rpc_histo st.ep_name in
              st.ep_histo <- Some h;
              h
          in
          (Some h, Unix.gettimeofday ())
        end
      in
      let complete r = group_complete group ~from r in
      Mutex.lock conn.plock;
      let registered =
        conn.alive
        &&
        (Hashtbl.replace conn.pending id { complete; t0; histo };
         conn.in_flight <- conn.in_flight + 1;
         true)
      in
      Mutex.unlock conn.plock;
      if not registered then
        submit ~attempts:(attempts - 1) pool group st ~from buf
      else begin
        track_inflight pool 1;
        Mutex.lock group.glock;
        group.outstanding <- (conn, id) :: group.outstanding;
        Mutex.unlock group.glock;
        Frame.set_prebuilt_id buf id;
        match write_prebuilt_on conn buf with
        | () -> ()
        | exception _ ->
          (* Reclaim our entry (unless the reader beat us to it) so the
             retry does not double-count this destination. *)
          Mutex.lock conn.plock;
          let mine = Hashtbl.mem conn.pending id in
          if mine then begin
            Hashtbl.remove conn.pending id;
            conn.in_flight <- conn.in_flight - 1
          end;
          Mutex.unlock conn.plock;
          kill_conn pool st conn;
          if mine then begin
            track_inflight pool (-1);
            submit ~attempts:(attempts - 1) pool group st ~from buf
          end
      end)

let make_group ~quorum ~total ~deadline =
  {
    glock = Mutex.create ();
    gcond = Condition.create ();
    quorum = max 1 quorum;
    total;
    deadline;
    replies = [];
    arrived = 0;
    failures = 0;
    last_error = None;
    finished = false;
    outstanding = [];
  }

let await group =
  Mutex.lock group.glock;
  let timed_out = ref false in
  let rec wait () =
    if group.finished then ()
    else if Unix.gettimeofday () >= group.deadline then begin
      group.finished <- true;
      timed_out := true
    end
    else begin
      Condition.wait group.gcond group.glock;
      wait ()
    end
  in
  wait ();
  let replies = List.rev group.replies in
  let outstanding = group.outstanding in
  group.outstanding <- [];
  Mutex.unlock group.glock;
  (outstanding, replies, !timed_out)

(* Abandon the requests a finished group no longer cares about: their
   table entries go away now, not whenever the server or the connection
   eventually gets around to it. When the group died of its deadline
   (rather than completing at quorum), each still-pending entry is a
   server that never answered in time — an endpoint-health failure. A
   quorum-complete group's leftovers are just slower-than-quorum servers
   and say nothing about health. *)
let drop_outstanding pool ~timed_out outstanding =
  List.iter
    (fun (conn, id) ->
      Mutex.lock conn.plock;
      let mine = Hashtbl.mem conn.pending id in
      if mine then begin
        Hashtbl.remove conn.pending id;
        conn.in_flight <- conn.in_flight - 1
      end;
      Mutex.unlock conn.plock;
      if mine then begin
        track_inflight pool (-1);
        if timed_out then note_rpc_fail pool conn.owner "request timed out"
      end)
    outstanding

(* [dsts] carries a prebuilt frame per destination. A broadcast passes
   the same shared buffer in every triple (encoded once, id patched per
   send); a scatter passes a distinct frame per destination. *)
let run_group pool group dsts =
  let start = Unix.gettimeofday () in
  timer_register pool.timer group.deadline group;
  List.iter
    (fun (from, ep, buf) -> submit pool group (endpoint_state pool ep) ~from buf)
    dsts;
  (* One annotation per round, not per destination: an (ep, corr) pair
     for every request actually registered, so a slow span's attrs
     point straight at the per-endpoint histograms involved. Rendering
     is deferred to dump time (see {!Obs.Span.attr}). *)
  if Obs.Span.enabled () then begin
    Mutex.lock group.glock;
    let pairs =
      List.rev_map
        (fun (conn, id) -> (conn.owner.ep_name, id))
        group.outstanding
    in
    Mutex.unlock group.glock;
    Obs.Span.annotate_rpc pairs
  end;
  let outstanding, replies, timed_out = await group in
  timer_unregister pool.timer group;
  drop_outstanding pool ~timed_out outstanding;
  Store.Metrics.incr_rpc ();
  Store.Metrics.record_rpc_ns ((Unix.gettimeofday () -. start) *. 1e9);
  replies

(* The wire trace context for this thread's active span, read once per
   round. [Obs.Span.current_ctx] is gated on the enabled flag, so the
   disabled path pays one load and branch, nothing more. *)
let wire_trace () =
  match Obs.Span.current_ctx () with
  | Some (c : Obs.Span.ctx) ->
    Some { Frame.trace = c.trace; span = c.span; flags = c.flags }
  | None -> None

let call_many pool ?(timeout = 5.0) ?shard ~quorum dsts payload =
  match dsts with
  | [] -> []
  | _ ->
    let group =
      make_group ~quorum ~total:(List.length dsts)
        ~deadline:(Unix.gettimeofday () +. timeout)
    in
    let buf = Frame.prebuilt_call ?shard ?trace:(wire_trace ()) payload in
    run_group pool group (List.map (fun (from, ep) -> (from, ep, buf)) dsts)

let call_scatter pool ?(timeout = 5.0) ?shard ~quorum parts =
  match parts with
  | [] -> []
  | _ ->
    let group =
      make_group ~quorum ~total:(List.length parts)
        ~deadline:(Unix.gettimeofday () +. timeout)
    in
    let trace = wire_trace () in
    run_group pool group
      (List.map
         (fun (from, ep, payload) ->
           (from, ep, Frame.prebuilt_call ?shard ?trace payload))
         parts)

let call pool ?(timeout = 5.0) ?shard endpoint payload =
  let group =
    make_group ~quorum:1 ~total:1 ~deadline:(Unix.gettimeofday () +. timeout)
  in
  match
    run_group pool group
      [ (0, endpoint, Frame.prebuilt_call ?shard ?trace:(wire_trace ()) payload) ]
  with
  | (_, payload) :: _ -> Reply payload
  | [] -> ( match group.last_error with Some err -> err | None -> Dropped)

let send pool ?shard endpoint payload =
  let st = endpoint_state pool endpoint in
  let frame = Frame.encode_oneway ?shard ?trace:(wire_trace ()) payload in
  let rec go attempts =
    if attempts = 0 then false
    else if suspected st then false
    else
      match acquire pool st with
      | None ->
        note_rpc_fail pool st "dial failed or endpoint in backoff";
        false
      | Some conn -> (
        match write_frame_on conn frame with
        | () -> true
        | exception _ ->
          kill_conn pool st conn;
          go (attempts - 1))
  in
  go 2

(* --- introspection / teardown ------------------------------------------ *)

let connection_count pool ep =
  match
    Mutex.lock pool.lock;
    let st = Hashtbl.find_opt pool.endpoints ep in
    Mutex.unlock pool.lock;
    st
  with
  | None -> 0
  | Some st ->
    Mutex.lock st.elock;
    let n = List.length st.conns in
    Mutex.unlock st.elock;
    n

let current_backoff pool ep =
  match
    Mutex.lock pool.lock;
    let st = Hashtbl.find_opt pool.endpoints ep in
    Mutex.unlock pool.lock;
    st
  with
  | None -> 0.0
  | Some st ->
    Mutex.lock st.elock;
    let b = st.last_backoff in
    Mutex.unlock st.elock;
    b

let in_flight pool = Atomic.get pool.inflight

type health = {
  endpoint : string * int;
  connections : int;
  consecutive_failures : int;
  last_error : string option;
  down_until : float;
}

let health pool =
  let states =
    Mutex.lock pool.lock;
    let ss = Hashtbl.fold (fun _ st acc -> st :: acc) pool.endpoints [] in
    Mutex.unlock pool.lock;
    ss
  in
  let snap st =
    Mutex.lock st.elock;
    let h =
      {
        endpoint = st.ep;
        connections = List.length st.conns;
        consecutive_failures = st.rpc_fail_streak;
        last_error = st.last_error;
        down_until = max st.down_until st.suspect_until;
      }
    in
    Mutex.unlock st.elock;
    h
  in
  List.sort compare (List.map snap states)

(* Retire an endpoint for good (membership churn): drop its state —
   connections, backoff, suspicion counters — and its health row. A
   later submission to the same address starts from a clean slate, like
   a first sighting; without eviction, suspicion state for servers no
   longer in any active config accumulates forever. *)
let evict pool ep =
  let st =
    Mutex.lock pool.lock;
    let st = Hashtbl.find_opt pool.endpoints ep in
    Hashtbl.remove pool.endpoints ep;
    Mutex.unlock pool.lock;
    st
  in
  match st with
  | None -> ()
  | Some st ->
    Mutex.lock st.elock;
    let conns = st.conns in
    Mutex.unlock st.elock;
    List.iter (fun conn -> kill_conn pool st conn) conns;
    Store.Metrics.forget_endpoint_health st.ep_name

let shutdown pool =
  Mutex.lock pool.timer.tlock;
  pool.timer.tstop <- true;
  Mutex.unlock pool.timer.tlock;
  timer_wake pool.timer;
  let states =
    Mutex.lock pool.lock;
    let ss = Hashtbl.fold (fun _ st acc -> st :: acc) pool.endpoints [] in
    Hashtbl.reset pool.endpoints;
    Mutex.unlock pool.lock;
    ss
  in
  List.iter
    (fun st ->
      Mutex.lock st.elock;
      let conns = st.conns in
      Mutex.unlock st.elock;
      List.iter (fun conn -> kill_conn pool st conn) conns)
    states
