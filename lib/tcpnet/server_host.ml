type gossip = { peers : (string * int) list; period : float }

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  mutable running : bool;
  mutable accept_th : Thread.t option;
  lock : Mutex.t; (* guards server *state mutation* only — see below *)
  conns_lock : Mutex.t;
  mutable conns : Unix.file_descr list; (* accepted sockets, for [stop] *)
}

let with_lock t fn =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) fn

let track_conn t fd =
  Mutex.lock t.conns_lock;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_lock

let untrack_conn t fd =
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conns_lock

(* Request processing is split around the lock: envelope decode and
   signature verification (the expensive RSA math, via
   {!Store.Server.preverify}'s cache warming) happen outside it, so
   concurrent connections only serialize on the actual server-state
   mutation. [Error] means the request could not even be decoded.

   Dispatch goes through {!Store.Faults.handle_typed}: with the default
   [Honest] behaviour that is exactly {!Store.Server.handle}, and a
   Byzantine behaviour reuses the simulator's wrappers unchanged — a
   misbehaving host diverges only in what it says on the wire, never in
   the underlying honest state machine. *)
(* Server-side request spans ride the same global Span switch, plus
   this local one: an in-process cluster (bench e17, tests) silences the
   server half to measure *client* tracing overhead — the deployment
   shape, where servers are separate processes and their span cost
   cannot serialize into client latency through the shared runtime
   lock. The untraced arm repeats the six-line body rather than calling
   [with_phase] no-ops, which would still pay a span lookup per phase
   on every request. *)
let trace_requests = ref true
let set_request_tracing v = trace_requests := v

let process t ~behavior server raw :
    (Store.Payload.response option, string) Result.t =
  if !trace_requests && Obs.Span.enabled () then
    Obs.Span.with_op "server_request" @@ fun () ->
    match
      Obs.Span.with_phase "decode" (fun () -> Store.Payload.decode_envelope raw)
    with
    | None -> Error "malformed envelope"
    | Some env ->
      Obs.Span.with_phase "verify" (fun () -> Store.Server.preverify server env);
      Ok
        (Obs.Span.with_phase "apply" (fun () ->
             with_lock t (fun () ->
                 Store.Faults.handle_typed behavior server
                   ~now:(Unix.gettimeofday ()) ~from:(-1) env)))
  else
    match Store.Payload.decode_envelope raw with
    | None -> Error "malformed envelope"
    | Some env ->
      Store.Server.preverify server env;
      Ok
        (with_lock t (fun () ->
             Store.Faults.handle_typed behavior server
               ~now:(Unix.gettimeofday ()) ~from:(-1) env))

let handle_connection t ~behavior server fd =
  Addr.set_nodelay fd;
  let process t server raw = process t ~behavior server raw in
  let rec loop () =
    match Frame.read_frame_ext fd with
    | Frame.Eof -> ()
    | Frame.Oversized len ->
      (* Answer before hanging up: the stream cannot be resynchronized
         (we refuse to consume [len] bytes), but the client learns why
         the connection is going away. Nothing was allocated. *)
      (try
         Frame.write_frame fd
           (Frame.encode_conn_error
              (Printf.sprintf "frame too large (%d > %d)" len Frame.max_frame))
       with Unix.Unix_error _ | Sys_error _ -> ())
    | Frame.Frame frame ->
      (match Frame.parse_request frame with
      | Some (Frame.Oneway payload) ->
        ignore (process t server payload : (_, _) Result.t)
      | Some (Frame.Legacy_call payload) ->
        (* Legacy semantics preserved: malformed or reply-less requests
           answer with the bare "no reply" byte. A Byzantine behaviour
           that answers nothing is genuinely silent on the wire, exactly
           as in the simulator — the client meets its deadline, not a
           framed "nothing". *)
        (match process t server payload with
        | Ok (Some r) -> Frame.write_frame fd ("\x01" ^ Store.Payload.encode_response r)
        | Ok None when behavior <> Store.Faults.Honest -> ()
        | Ok None | Error _ -> Frame.write_frame fd "\x00")
      | Some (Frame.Call { id; payload }) ->
        (match process t server payload with
        | Ok (Some r) ->
          Frame.write_frame fd
            (Frame.encode_reply ~id (Some (Store.Payload.encode_response r)))
        | Ok None when behavior <> Store.Faults.Honest -> ()
        | Ok None -> Frame.write_frame fd (Frame.encode_reply ~id None)
        | Error msg -> Frame.write_frame fd (Frame.encode_reject ~id msg))
      | None ->
        (* A frame we cannot even parse gets a framed error rather than
           a silent drop, so clients can tell "server rejected" from
           "connection died". Frames stay self-delimiting, so the
           stream is still in sync — keep serving. *)
        Frame.write_frame fd (Frame.encode_conn_error "malformed frame"));
      loop ()
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  untrack_conn t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Gossip pushes ride the shared connection pool: one persistent
   connection per peer instead of a dial per push per peer. *)
let push_to_peer ~host ~port payload = Pool.send (Pool.shared ()) (host, port) payload

(* Writes popped off the gossip buffer are the server's only copy of
   "what my peers have not seen": if a push fails they must be requeued,
   or a write accepted while a peer was down would never reach it (the
   pull side only fetches what the summary advertises as *missing*, and
   the summary is per-item — a peer that later catches a newer write for
   the same item masks the lost one entirely). The backlog is per-peer
   and bounded: a long-dead peer costs at most [max_backlog] retained
   writes, oldest dropped first (anti-entropy via the summary exchange
   still recovers those once the peer returns). *)
let max_backlog = 512

let gossip_loop t server { peers; period } =
  let backlog : (string * int, Store.Payload.write list) Hashtbl.t =
    Hashtbl.create (List.length peers)
  in
  while t.running do
    Thread.delay period;
    Obs.Span.with_op "gossip_round" @@ fun () ->
    (* One critical section for both: a write accepted between taking
       the buffer and summarizing would be advertised in [have] without
       appearing in [writes], so peers would skip pulling it. *)
    let fresh, have =
      Obs.Span.with_phase "drain" (fun () ->
          with_lock t (fun () ->
              ( Store.Server.take_gossip_buffer server,
                Store.Server.gossip_summary server )))
    in
    Obs.Span.with_phase "push" @@ fun () ->
    List.iter
      (fun peer ->
        let pending =
          (match Hashtbl.find_opt backlog peer with Some w -> w | None -> [])
          @ fresh
        in
        match pending with
        | [] -> ()
        | writes ->
          (* Backlogged writes were accepted before this round's
             summary was taken, so [have] still covers them. *)
          let payload =
            Store.Payload.encode_envelope
              {
                Store.Payload.token = None;
                request = Store.Payload.Gossip_push { writes; have };
              }
          in
          let host, port = peer in
          if push_to_peer ~host ~port payload then Hashtbl.remove backlog peer
          else begin
            let writes =
              let n = List.length writes in
              if n <= max_backlog then writes
              else (* drop oldest; the tail is the newest *)
                List.filteri (fun i _ -> i >= n - max_backlog) writes
            in
            Hashtbl.replace backlog peer writes
          end)
      peers
  done

let start ?gossip ?(behavior = Store.Faults.Honest) ~server ~port () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 64;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      listener;
      bound_port;
      running = true;
      accept_th = None;
      lock = Mutex.create ();
      conns_lock = Mutex.create ();
      conns = [];
    }
  in
  let accept_loop () =
    while t.running do
      match Unix.accept listener with
      | fd, _ ->
        track_conn t fd;
        ignore (Thread.create (handle_connection t ~behavior server) fd)
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    done
  in
  t.accept_th <- Some (Thread.create accept_loop ());
  (match gossip with
  | Some g -> ignore (Thread.create (gossip_loop t server) g)
  | None -> ());
  t

let port t = t.bound_port

let stop t =
  t.running <- false;
  (* [shutdown] before [close]: a thread blocked in [accept] holds a
     kernel reference that keeps the port bound even after [close], and
     on Linux [close] alone does not wake it. [shutdown] does; joining
     the accept thread then guarantees the port is free on return, so a
     caller can rebind it immediately. *)
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.accept_th with Some th -> Thread.join th | None -> ());
  (* Shut accepted connections down too: pooled clients hold persistent
     connections, and a stopped server must look stopped to them (their
     readers see EOF and redial on the next use). The connection thread
     owns the close. *)
  Mutex.lock t.conns_lock;
  let conns = t.conns in
  Mutex.unlock t.conns_lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns
