type gossip = { peers : (string * int) list; period : float }

type shard_spec = {
  shard : int;
  server : Store.Server.t;
  behavior : Store.Faults.behavior;
  peers : (string * int) list;
}

(* One hosted shard: its server state machine, its own lock (the whole
   point of sharded hosting — S independent locks instead of one global
   store mutex), its behaviour wrapper, and its gossip peer set.
   [tagged] records whether outgoing gossip must carry the wire shard id
   (multi-shard hosts; a legacy single-server host pushes untagged
   one-ways so pre-sharding peers keep understanding it). *)
type shard_state = {
  sid : int;
  sserver : Store.Server.t;
  sbehavior : Store.Faults.behavior;
  slock : Mutex.t;
  speers : (string * int) list;
  tagged : bool;
  (* Most recent wire trace context seen by this shard, consumed (once)
     by the next gossip round so anti-entropy work triggered by a traced
     client op records as part of that op's distributed trace. A plain
     mutable cell: the race between a request thread writing and the
     gossip thread consuming only ever mis-attributes one round. *)
  mutable slast_trace : Frame.trace_ctx option;
}

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  mutable running : bool;
  mutable accept_th : Thread.t option;
  shards : (int, shard_state) Hashtbl.t;
  default_shard : shard_state; (* untagged legacy traffic lands here *)
  conns_lock : Mutex.t;
  mutable conns : Unix.file_descr list; (* accepted sockets, for [stop] *)
}

let with_lock st fn =
  Mutex.lock st.slock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.slock) fn

let track_conn t fd =
  Mutex.lock t.conns_lock;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conns_lock

let untrack_conn t fd =
  Mutex.lock t.conns_lock;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conns_lock

(* Request processing is split around the lock: envelope decode and
   signature verification (the expensive RSA math, via
   {!Store.Server.preverify}'s cache warming) happen outside it, so
   concurrent connections only serialize on the actual server-state
   mutation — and only against requests for the *same shard*. [Error]
   means the request could not even be decoded.

   Dispatch goes through {!Store.Faults.handle_typed}: with the default
   [Honest] behaviour that is exactly {!Store.Server.handle}, and a
   Byzantine behaviour reuses the simulator's wrappers unchanged — a
   misbehaving host diverges only in what it says on the wire, never in
   the underlying honest state machine. Behaviour is per shard, so one
   host can be Byzantine inside one shard and honest in the others. *)
(* Server-side request spans ride the same global Span switch, plus
   this local one: an in-process cluster (bench e17, tests) silences the
   server half to measure *client* tracing overhead — the deployment
   shape, where servers are separate processes and their span cost
   cannot serialize into client latency through the shared runtime
   lock. The untraced arm repeats the six-line body rather than calling
   [with_phase] no-ops, which would still pay a span lookup per phase
   on every request. *)
let trace_requests = ref true
let set_request_tracing v = trace_requests := v

let span_ctx = function
  | Some (c : Frame.trace_ctx) ->
    Some { Obs.Span.trace = c.trace; span = c.span; flags = c.flags }
  | None -> None

let process st ?ctx raw : (Store.Payload.response option, string) Result.t =
  let t0 = Unix.gettimeofday () in
  (match ctx with Some _ -> st.slast_trace <- ctx | None -> ());
  let result =
    if !trace_requests && Obs.Span.enabled () then
      Obs.Span.with_op ?ctx:(span_ctx ctx) "server_request" @@ fun () ->
      Obs.Span.annotate
        (Printf.sprintf "server=%d shard=%d" (Store.Server.id st.sserver)
           st.sid);
      match
        Obs.Span.with_phase "decode" (fun () ->
            Store.Payload.decode_envelope raw)
      with
      | None -> Error "malformed envelope"
      | Some env ->
        Obs.Span.with_phase "verify" (fun () ->
            Store.Server.preverify st.sserver env);
        Ok
          (Obs.Span.with_phase "apply" (fun () ->
               with_lock st (fun () ->
                   Store.Faults.handle_typed st.sbehavior st.sserver
                     ~now:(Unix.gettimeofday ()) ~from:(-1) env)))
    else
      match Store.Payload.decode_envelope raw with
      | None -> Error "malformed envelope"
      | Some env ->
        Store.Server.preverify st.sserver env;
        Ok
          (with_lock st (fun () ->
               Store.Faults.handle_typed st.sbehavior st.sserver
                 ~now:(Unix.gettimeofday ()) ~from:(-1) env))
  in
  Store.Metrics.note_shard_request ~shard:st.sid
    ((Unix.gettimeofday () -. t0) *. 1e9);
  result

let handle_connection t fd =
  Addr.set_nodelay fd;
  (* A pipelined reply (or Byzantine silence) for one shard's call; the
     correlation id already names the request, so responses need no
     shard field of their own. *)
  let reply_call st ~id ?ctx payload =
    match process st ?ctx payload with
    | Ok (Some r) ->
      Frame.write_frame fd
        (Frame.encode_reply ~id (Some (Store.Payload.encode_response r)))
    | Ok None when st.sbehavior <> Store.Faults.Honest -> ()
    | Ok None -> Frame.write_frame fd (Frame.encode_reply ~id None)
    | Error msg -> Frame.write_frame fd (Frame.encode_reject ~id msg)
  in
  let rec loop () =
    match Frame.read_frame_ext fd with
    | Frame.Eof -> ()
    | Frame.Oversized len ->
      (* Answer before hanging up: the stream cannot be resynchronized
         (we refuse to consume [len] bytes), but the client learns why
         the connection is going away. Nothing was allocated. *)
      (try
         Frame.write_frame fd
           (Frame.encode_conn_error
              (Printf.sprintf "frame too large (%d > %d)" len Frame.max_frame))
       with Unix.Unix_error _ | Sys_error _ -> ())
    | Frame.Frame frame ->
      (match Frame.parse_request_traced frame with
      | Some (Frame.Oneway payload, ctx) ->
        ignore (process t.default_shard ?ctx payload : (_, _) Result.t)
      | Some (Frame.Sharded_oneway { shard; payload }, ctx) -> (
        (* A one-way for a shard we do not host is dropped, like any
           one-way failure: the gossip protocol self-heals via summaries. *)
        match Hashtbl.find_opt t.shards shard with
        | Some st -> ignore (process st ?ctx payload : (_, _) Result.t)
        | None -> ())
      | Some (Frame.Legacy_call payload, _) ->
        (* Legacy semantics preserved: malformed or reply-less requests
           answer with the bare "no reply" byte. A Byzantine behaviour
           that answers nothing is genuinely silent on the wire, exactly
           as in the simulator — the client meets its deadline, not a
           framed "nothing". *)
        let st = t.default_shard in
        (match process st payload with
        | Ok (Some r) ->
          Frame.write_frame fd ("\x01" ^ Store.Payload.encode_response r)
        | Ok None when st.sbehavior <> Store.Faults.Honest -> ()
        | Ok None | Error _ -> Frame.write_frame fd "\x00")
      | Some (Frame.Call { id; payload }, ctx) ->
        reply_call t.default_shard ~id ?ctx payload
      | Some (Frame.Sharded_call { id; shard; payload }, ctx) -> (
        match Hashtbl.find_opt t.shards shard with
        | Some st -> reply_call st ~id ?ctx payload
        | None ->
          (* A shard we do not host is a routing error on the client's
             side (stale table, wrong endpoint) — answered, not dropped,
             so the router can tell misrouting from a dead server. *)
          Frame.write_frame fd
            (Frame.encode_reject ~id (Printf.sprintf "shard %d not hosted" shard)))
      | None ->
        (* A frame we cannot even parse gets a framed error rather than
           a silent drop, so clients can tell "server rejected" from
           "connection died". Frames stay self-delimiting, so the
           stream is still in sync — keep serving. *)
        Frame.write_frame fd (Frame.encode_conn_error "malformed frame"));
      loop ()
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  untrack_conn t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Gossip pushes ride the shared connection pool: one persistent
   connection per peer instead of a dial per push per peer. A tagged
   (multi-shard) host addresses the peer's same-shard state. *)
let push_to_peer ?shard ~host ~port payload =
  Pool.send (Pool.shared ()) ?shard (host, port) payload

(* Writes popped off the gossip buffer are the server's only copy of
   "what my peers have not seen": if a push fails they must be requeued,
   or a write accepted while a peer was down would never reach it (the
   pull side only fetches what the summary advertises as *missing*, and
   the summary is per-item — a peer that later catches a newer write for
   the same item masks the lost one entirely). The backlog is per-peer
   and bounded: a long-dead peer costs at most [max_backlog] retained
   writes, oldest dropped first (anti-entropy via the summary exchange
   still recovers those once the peer returns). *)
let max_backlog = 512

(* One gossip thread per hosted shard: shard s's writes go to shard s's
   peer replicas and nowhere else — partners are per shard, exactly like
   the locks. *)
let gossip_loop t st ~period =
  let shard = if st.tagged then Some st.sid else None in
  let backlog : (string * int, Store.Payload.write list) Hashtbl.t =
    Hashtbl.create (List.length st.speers)
  in
  while t.running do
    Thread.delay period;
    Obs.Span.with_op "gossip_round" @@ fun () ->
    (* Adopt (and consume) the trace of the most recent traced request
       against this shard: the round's drain/push/repair become children
       of the client op that produced the work, and the pool stamps the
       same context onto outgoing pushes so peer-side spans join too. *)
    (match st.slast_trace with
    | Some c when Obs.Span.enabled () ->
      st.slast_trace <- None;
      Obs.Span.set_trace ~parent:c.span ~flags:c.flags c.trace
    | _ -> ());
    (* One critical section for both: a write accepted between taking
       the buffer and summarizing would be advertised in [have] without
       appearing in [writes], so peers would skip pulling it. *)
    let fresh, have, epoch =
      Obs.Span.with_phase "drain" (fun () ->
          with_lock st (fun () ->
              ( Store.Server.take_gossip_buffer st.sserver,
                Store.Server.gossip_summary st.sserver,
                Store.Server.epoch st.sserver )))
    in
    (Obs.Span.with_phase "push" @@ fun () ->
     List.iter
       (fun peer ->
         let pending =
           (match Hashtbl.find_opt backlog peer with Some w -> w | None -> [])
           @ fresh
         in
         match (pending, epoch) with
         | [], None -> ()
         | writes, _ ->
           (* Backlogged writes were accepted before this round's
              summary was taken, so [have] still covers them. In an
              epoch-enabled cluster, pushes fire even with nothing to
              send: the epoch rides every push, so a peer that missed an
              announcement catches up from here. *)
           let payload =
             Store.Payload.encode_envelope
               {
                 Store.Payload.token = None; epoch = 0;
                 request = Store.Payload.Gossip_push { writes; have; epoch };
               }
           in
           let host, port = peer in
           if push_to_peer ?shard ~host ~port payload then begin
             (* gossip rides the same wire as client RPCs: count its
                bytes into the global tally so a co-located bench can
                report total bytes-on-wire to full dissemination *)
             Store.Metrics.add_messages 1;
             Store.Metrics.add_bytes (String.length payload);
             Hashtbl.remove backlog peer
           end
           else begin
             let writes =
               let n = List.length writes in
               if n <= max_backlog then writes
               else (* drop oldest; the tail is the newest *)
                 List.filteri (fun i _ -> i >= n - max_backlog) writes
             in
             Hashtbl.replace backlog peer writes
           end)
       st.speers);
    (* Fragment anti-entropy: rebuild any verified fragment this shard
       should hold for a current dispersed write but lost (crash before
       the metadata arrived by gossip, disk loss, ...). The worklist
       check is a cheap scan and almost always empty; when it is not,
       the repair runs under the shard lock (its final store must not
       race request handling), so the peer pulls use a short timeout to
       bound the hold. We do not know which peer endpoint carries which
       server id, so the fetch probes the peer set for the wanted index
       — misses answer with a tiny [Frag_reply None]. *)
    Obs.Span.with_phase "repair" @@ fun () ->
    let missing =
      with_lock st (fun () -> Store.Server.missing_fragments st.sserver)
    in
    if missing <> [] then begin
      let fetch ~peer:_ request =
        let payload =
          Store.Payload.encode_envelope
            { Store.Payload.token = None; epoch = 0; request }
        in
        List.find_map
          (fun endpoint ->
            match
              Pool.call (Pool.shared ()) ~timeout:1.0 ?shard endpoint payload
            with
            | Pool.Reply r -> (
              match Store.Payload.decode_response r with
              | Some (Store.Payload.Frag_reply (Some _) as resp) -> Some resp
              | _ -> None)
            | Pool.Rejected _ | Pool.No_reply | Pool.Dropped -> None)
          st.speers
      in
      List.iter
        (fun w ->
          ignore
            (with_lock st (fun () ->
                 Store.Server.repair_fragment st.sserver ~fetch w)
              : bool))
        missing
    end
  done

let launch ~specs ~tagged ~gossip_period ~port =
  (match specs with [] -> invalid_arg "Server_host: no shards to host" | _ -> ());
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 64;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let states =
    List.map
      (fun spec ->
        {
          sid = spec.shard;
          sserver = spec.server;
          sbehavior = spec.behavior;
          slock = Mutex.create ();
          speers = spec.peers;
          tagged;
          slast_trace = None;
        })
      specs
  in
  let shards = Hashtbl.create (List.length states) in
  List.iter
    (fun st ->
      if Hashtbl.mem shards st.sid then
        invalid_arg "Server_host: duplicate shard id";
      Hashtbl.replace shards st.sid st)
    states;
  let t =
    {
      listener;
      bound_port;
      running = true;
      accept_th = None;
      shards;
      default_shard = List.hd states;
      conns_lock = Mutex.create ();
      conns = [];
    }
  in
  let accept_loop () =
    while t.running do
      match Unix.accept listener with
      | fd, _ ->
        track_conn t fd;
        ignore (Thread.create (handle_connection t) fd)
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    done
  in
  t.accept_th <- Some (Thread.create accept_loop ());
  List.iter
    (fun st ->
      if st.speers <> [] then
        ignore (Thread.create (fun () -> gossip_loop t st ~period:gossip_period) ()))
    states;
  t

let start ?gossip ?(behavior = Store.Faults.Honest) ~server ~port () =
  let peers, period =
    match gossip with
    | Some (g : gossip) -> (g.peers, g.period)
    | None -> ([], 1.0)
  in
  launch
    ~specs:[ { shard = 0; server; behavior; peers } ]
    ~tagged:false ~gossip_period:period ~port

let start_sharded ?(gossip_period = 1.0) ~shards ~port () =
  launch ~specs:shards ~tagged:true ~gossip_period ~port

let port t = t.bound_port
let hosted_shards t = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) t.shards [])

(* Graceful departure: stop accepting new client writes on every hosted
   shard, then synchronously push the remaining gossip backlog to the
   peers, so the departing state is replicated before the caller
   snapshots and stops. Bounded passes: gossip one-ways are fire-and-
   forget, so a dead peer must not wedge the drain. *)
let drain ?(max_passes = 10) t =
  Hashtbl.iter
    (fun _ st -> with_lock st (fun () -> Store.Server.begin_drain st.sserver))
    t.shards;
  let flush_shard st =
    let shard = if st.tagged then Some st.sid else None in
    let passes = ref 0 in
    let more = ref true in
    while !more && !passes < max_passes do
      incr passes;
      let writes, have, epoch =
        with_lock st (fun () ->
            ( Store.Server.take_gossip_buffer st.sserver,
              Store.Server.gossip_summary st.sserver,
              Store.Server.epoch st.sserver ))
      in
      match writes with
      | [] -> more := false
      | writes ->
        let payload =
          Store.Payload.encode_envelope
            {
              Store.Payload.token = None; epoch = 0;
              request = Store.Payload.Gossip_push { writes; have; epoch };
            }
        in
        List.iter
          (fun (host, port) -> ignore (push_to_peer ?shard ~host ~port payload))
          st.speers
    done
  in
  Hashtbl.iter (fun _ st -> if st.speers <> [] then flush_shard st) t.shards

let stop t =
  t.running <- false;
  (* [shutdown] before [close]: a thread blocked in [accept] holds a
     kernel reference that keeps the port bound even after [close], and
     on Linux [close] alone does not wake it. [shutdown] does; joining
     the accept thread then guarantees the port is free on return, so a
     caller can rebind it immediately. *)
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.accept_th with Some th -> Thread.join th | None -> ());
  (* Shut accepted connections down too: pooled clients hold persistent
     connections, and a stopped server must look stopped to them (their
     readers see EOF and redial on the next use). The connection thread
     owns the close. *)
  Mutex.lock t.conns_lock;
  let conns = t.conns in
  Mutex.unlock t.conns_lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns
