(* Endpoint addressing shared by every transport socket. [inet_addr_of_string]
   re-parses the dotted quad on each call, which showed up in profiles once
   connections stopped dominating; the cache makes repeated dials to the same
   endpoint a hashtable hit. *)

(* The pooled transport treats writing to a dead peer as a normal code
   path (the writer's EPIPE feeds kill_conn/retry), but the default
   SIGPIPE disposition would kill the process before the error-handling
   code ever sees Unix_error EPIPE. Ignore it once, at transport load. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> () (* no SIGPIPE on this platform *)

let cache : (string, Unix.inet_addr) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()

let inet_addr host =
  Mutex.lock cache_lock;
  match Hashtbl.find_opt cache host with
  | Some addr ->
    Mutex.unlock cache_lock;
    addr
  | None ->
    Mutex.unlock cache_lock;
    (* Parse outside the lock: a bad host raises without poisoning it. *)
    let addr = Unix.inet_addr_of_string host in
    Mutex.lock cache_lock;
    Hashtbl.replace cache host addr;
    Mutex.unlock cache_lock;
    addr

let sockaddr (host, port) = Unix.ADDR_INET (inet_addr host, port)

(* Small framed RPCs are exactly the traffic Nagle's algorithm delays;
   every transport socket disables it. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let connect ?read_timeout endpoint =
  match sockaddr endpoint with
  | exception _ -> None
  | addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      set_nodelay fd;
      (match read_timeout with
      | Some t -> (
        try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
        with Unix.Unix_error _ -> ())
      | None -> ());
      Unix.connect fd addr
    with
    | () -> Some fd
    | exception _ ->
      (try Unix.close fd with _ -> ());
      None)
