(** Minimal HTTP/1.0 server for metrics exposition.

    Serves GET requests from a fixed route table — enough for a
    Prometheus scrape or a [store_cli stats] pretty-print, and nothing
    more (no keep-alive, no chunking, no request bodies). Routes render
    at request time so every scrape sees fresh state. *)

type t

val start :
  ?host:string ->
  port:int ->
  routes:(string * (string -> string * string)) list ->
  unit ->
  t
(** [start ~port ~routes ()] binds [host] (default loopback) and serves
    each request on its own thread. A route maps a path (["/metrics"])
    to a renderer taking the request's query string (sans ['?'], [""]
    when absent — ["/trace?id=ab12"] calls the ["/trace"] route with
    ["id=ab12"]) and returning [(content_type, body)]. [port] may be [0]
    to let the kernel pick; see {!port}. Unknown paths get 404, anything
    but GET gets 405. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Shut the listener down and join the accept thread; the bound port is
    free again on return. In-flight request threads finish on their
    own. *)

val get : ?host:string -> port:int -> path:string -> unit -> (string, string) result
(** One-shot HTTP GET against such a server (or anything speaking plain
    HTTP): [Ok body] on a 200, [Error] with the status line or failure
    otherwise. Used by [store_cli stats] and tests; honors a 5s socket
    read timeout. *)
