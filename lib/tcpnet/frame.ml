let max_frame = 16 * 1024 * 1024

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Frame.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go pos =
    if pos >= len then Some (Bytes.unsafe_to_string buf)
    else begin
      match Unix.read fd buf pos (len - pos) with
      | 0 -> None
      | n -> go (pos + n)
    end
  in
  go 0

(* The oversized case is distinguished from EOF so a server can answer a
   framed error before dropping the connection. The claimed length is
   never allocated: an attacker sending a huge prefix costs us 4 bytes
   of header, not [len] bytes of buffer. *)
type read_result = Frame of string | Eof | Oversized of int

let read_frame_ext fd =
  match read_exactly fd 4 with
  | None -> Eof
  | Some header ->
    let b i = Char.code header.[i] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then Oversized len
    else (match read_exactly fd len with Some s -> Frame s | None -> Eof)

let read_frame fd =
  match read_frame_ext fd with Frame s -> Some s | Eof | Oversized _ -> None

(* --- pipelined sub-protocol (inside frames) ----------------------------- *)

(* Tag bytes. 0x00/0x01 are the original one-shot protocol and stay
   valid; 0x02 adds a 4-byte big-endian correlation id so many requests
   can be in flight on one connection and replies may arrive in any
   order; 0x03 is a connection-level framed error (not id-correlated). *)

let tag_oneway = '\x00'
let tag_call = '\x01'
let tag_pipelined = '\x02'
let tag_conn_error = '\x03'
let tag_sharded_call = '\x04'
let tag_sharded_oneway = '\x05'
let tag_traced_call = '\x06'
let tag_traced_sharded_call = '\x07'
let tag_traced_oneway = '\x08'
let tag_traced_sharded_oneway = '\x09'

let max_id = 0x3fffffff
let max_shard = 0xffff

(* --- trace-context extension --------------------------------------------
   Tags 0x06-0x09 mirror 0x02/0x04/0x00/0x05 but carry a trace context
   right after the fixed header: a 1-byte extension length (exactly
   [ctx_bytes] today — a versioning hook, not a variable field), a
   16-byte trace id, an 8-byte big-endian span id (top bit must be
   clear) and a flags byte. Peers that predate the extension never see
   these tags: an untraced sender emits the legacy tags byte-for-byte. *)

type trace_ctx = { trace : string; span : int; flags : int }

let trace_id_bytes = 16
let ctx_bytes = trace_id_bytes + 8 + 1

let put_ctx buf pos { trace; span; flags } =
  if String.length trace <> trace_id_bytes then
    invalid_arg "Frame: trace id must be 16 bytes";
  if span < 0 then invalid_arg "Frame: span id out of range";
  Bytes.set buf pos (Char.chr ctx_bytes);
  Bytes.blit_string trace 0 buf (pos + 1) trace_id_bytes;
  for i = 0 to 7 do
    Bytes.set buf
      (pos + 1 + trace_id_bytes + i)
      (Char.chr ((span lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.set buf (pos + 1 + trace_id_bytes + 8) (Char.chr (flags land 0xff))

(* [None] on any malformation: truncated extension, a length byte other
   than [ctx_bytes] (over-long or short trace ids), or a span id with
   the top bit set (unrepresentable as a nonnegative int). *)
let get_ctx s pos =
  if pos >= String.length s then None
  else
    let len = Char.code s.[pos] in
    if len <> ctx_bytes || pos + 1 + len > String.length s then None
    else
      let trace = String.sub s (pos + 1) trace_id_bytes in
      let b i = Char.code s.[pos + 1 + trace_id_bytes + i] in
      if b 0 land 0x80 <> 0 then None
      else begin
        let span = ref 0 in
        for i = 0 to 7 do
          span := (!span lsl 8) lor b i
        done;
        let flags = Char.code s.[pos + 1 + trace_id_bytes + 8] in
        Some ({ trace; span = !span; flags }, pos + 1 + len)
      end

let put_shard buf pos shard =
  if shard < 0 || shard > max_shard then
    invalid_arg "Frame: shard id out of range";
  Bytes.set buf pos (Char.chr ((shard lsr 8) land 0xff));
  Bytes.set buf (pos + 1) (Char.chr (shard land 0xff))

let get_shard s pos =
  (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let put_id buf pos id =
  Bytes.set buf pos (Char.chr ((id lsr 24) land 0xff));
  Bytes.set buf (pos + 1) (Char.chr ((id lsr 16) land 0xff));
  Bytes.set buf (pos + 2) (Char.chr ((id lsr 8) land 0xff));
  Bytes.set buf (pos + 3) (Char.chr (id land 0xff))

let get_id s pos =
  let b i = Char.code s.[pos + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let with_id ~tag ~id ?status payload =
  if id < 0 || id > max_id then invalid_arg "Frame: correlation id out of range";
  let slen = match status with Some _ -> 1 | None -> 0 in
  let buf = Bytes.create (5 + slen + String.length payload) in
  Bytes.set buf 0 tag;
  put_id buf 1 id;
  (match status with Some s -> Bytes.set buf 5 s | None -> ());
  Bytes.blit_string payload 0 buf (5 + slen) (String.length payload);
  Bytes.unsafe_to_string buf

let encode_oneway ?shard ?trace payload =
  match (shard, trace) with
  | None, None -> String.make 1 tag_oneway ^ payload
  | Some shard, None ->
    let len = String.length payload in
    let buf = Bytes.create (3 + len) in
    Bytes.set buf 0 tag_sharded_oneway;
    put_shard buf 1 shard;
    Bytes.blit_string payload 0 buf 3 len;
    Bytes.unsafe_to_string buf
  | None, Some ctx ->
    let len = String.length payload in
    let buf = Bytes.create (1 + 1 + ctx_bytes + len) in
    Bytes.set buf 0 tag_traced_oneway;
    put_ctx buf 1 ctx;
    Bytes.blit_string payload 0 buf (2 + ctx_bytes) len;
    Bytes.unsafe_to_string buf
  | Some shard, Some ctx ->
    let len = String.length payload in
    let buf = Bytes.create (3 + 1 + ctx_bytes + len) in
    Bytes.set buf 0 tag_traced_sharded_oneway;
    put_shard buf 1 shard;
    put_ctx buf 3 ctx;
    Bytes.blit_string payload 0 buf (4 + ctx_bytes) len;
    Bytes.unsafe_to_string buf

let encode_call ~id ?trace payload =
  match trace with
  | None -> with_id ~tag:tag_pipelined ~id payload
  | Some ctx ->
    if id < 0 || id > max_id then
      invalid_arg "Frame: correlation id out of range";
    let len = String.length payload in
    let buf = Bytes.create (5 + 1 + ctx_bytes + len) in
    Bytes.set buf 0 tag_traced_call;
    put_id buf 1 id;
    put_ctx buf 5 ctx;
    Bytes.blit_string payload 0 buf (6 + ctx_bytes) len;
    Bytes.unsafe_to_string buf

(* --- prebuilt call buffers ---------------------------------------------
   A quorum broadcast sends the same payload to every endpoint; only the
   per-connection correlation id differs. A prebuilt buffer is the full
   wire image — frame length prefix included — built once per broadcast;
   each submission patches the 4 id bytes in place and writes the buffer
   directly. The caller must serialize patch+write per buffer (the pool's
   group submit loop runs them sequentially in one thread). *)

type prebuilt = Bytes.t

let prebuilt_call ?shard ?trace payload =
  let plen = String.length payload in
  let slen = match shard with Some _ -> 2 | None -> 0 in
  (* The context is identical for every destination of a broadcast (it
     names the sending span), so it is baked into the shared buffer at
     build time; only the correlation id is patched per send. *)
  let clen = match trace with Some _ -> 1 + ctx_bytes | None -> 0 in
  let body = 5 + slen + clen + plen in
  if body > max_frame then invalid_arg "Frame.prebuilt_call: frame too large";
  let buf = Bytes.create (4 + body) in
  Bytes.set buf 0 (Char.chr ((body lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((body lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((body lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (body land 0xff));
  (match (shard, trace) with
  | None, None -> Bytes.set buf 4 tag_pipelined
  | Some s, None ->
    Bytes.set buf 4 tag_sharded_call;
    put_shard buf 9 s
  | None, Some ctx ->
    Bytes.set buf 4 tag_traced_call;
    put_ctx buf 9 ctx
  | Some s, Some ctx ->
    Bytes.set buf 4 tag_traced_sharded_call;
    put_shard buf 9 s;
    put_ctx buf 11 ctx);
  put_id buf 5 0;
  Bytes.blit_string payload 0 buf (9 + slen + clen) plen;
  buf

let set_prebuilt_id buf id =
  if id < 0 || id > max_id then invalid_arg "Frame: correlation id out of range";
  put_id buf 5 id

let write_prebuilt fd buf = write_all fd buf 0 (Bytes.length buf)

let status_no_reply = '\x00'
let status_ok = '\x01'
let status_rejected = '\x02'

let encode_reply ~id = function
  | Some payload -> with_id ~tag:tag_pipelined ~id ~status:status_ok payload
  | None -> with_id ~tag:tag_pipelined ~id ~status:status_no_reply ""

let encode_reject ~id message =
  with_id ~tag:tag_pipelined ~id ~status:status_rejected message

let encode_conn_error message = String.make 1 tag_conn_error ^ message

type request =
  | Oneway of string
  | Legacy_call of string
  | Call of { id : int; payload : string }
  | Sharded_call of { id : int; shard : int; payload : string }
  | Sharded_oneway of { shard : int; payload : string }

let parse_request_traced frame =
  if String.length frame = 0 then None
  else
    let rest () = String.sub frame 1 (String.length frame - 1) in
    let tail pos = String.sub frame pos (String.length frame - pos) in
    match frame.[0] with
    | c when c = tag_oneway -> Some (Oneway (rest ()), None)
    | c when c = tag_call -> Some (Legacy_call (rest ()), None)
    | c when c = tag_pipelined ->
      if String.length frame < 5 then None
      else
        (* Ids above [max_id] cannot be echoed back ({!encode_reply}
           would refuse them), so a hostile id is rejected at parse time
           and answered with a framed error — not an exception in the
           connection thread. *)
        let id = get_id frame 1 in
        if id > max_id then None
        else Some (Call { id; payload = tail 5 }, None)
    | c when c = tag_sharded_call ->
      if String.length frame < 7 then None
      else
        let id = get_id frame 1 in
        if id > max_id then None
        else
          Some (Sharded_call { id; shard = get_shard frame 5; payload = tail 7 }, None)
    | c when c = tag_sharded_oneway ->
      if String.length frame < 3 then None
      else Some (Sharded_oneway { shard = get_shard frame 1; payload = tail 3 }, None)
    | c when c = tag_traced_call ->
      if String.length frame < 5 then None
      else
        let id = get_id frame 1 in
        if id > max_id then None
        else
          Option.map
            (fun (ctx, pos) -> (Call { id; payload = tail pos }, Some ctx))
            (get_ctx frame 5)
    | c when c = tag_traced_sharded_call ->
      if String.length frame < 7 then None
      else
        let id = get_id frame 1 in
        if id > max_id then None
        else
          Option.map
            (fun (ctx, pos) ->
              (Sharded_call { id; shard = get_shard frame 5; payload = tail pos },
               Some ctx))
            (get_ctx frame 7)
    | c when c = tag_traced_oneway ->
      Option.map
        (fun (ctx, pos) -> (Oneway (tail pos), Some ctx))
        (get_ctx frame 1)
    | c when c = tag_traced_sharded_oneway ->
      if String.length frame < 3 then None
      else
        Option.map
          (fun (ctx, pos) ->
            (Sharded_oneway { shard = get_shard frame 1; payload = tail pos },
             Some ctx))
          (get_ctx frame 3)
    | _ -> None

let parse_request frame =
  Option.map fst (parse_request_traced frame)

type response =
  | Reply of { id : int; payload : string option }
      (** [None] is the pipelined analogue of the legacy "no reply". *)
  | Reject of { id : int; message : string }
  | Conn_error of string

let parse_response frame =
  if String.length frame = 0 then None
  else
    match frame.[0] with
    | c when c = tag_conn_error ->
      Some (Conn_error (String.sub frame 1 (String.length frame - 1)))
    | c when c = tag_pipelined ->
      if String.length frame < 6 then None
      else
        let id = get_id frame 1 in
        let body = String.sub frame 6 (String.length frame - 6) in
        (match frame.[5] with
        | s when s = status_ok -> Some (Reply { id; payload = Some body })
        | s when s = status_no_reply -> Some (Reply { id; payload = None })
        | s when s = status_rejected -> Some (Reject { id; message = body })
        | _ -> None)
    | _ -> None
