type node_id = int
type reply = { from : node_id; payload : string }

type call_spec = {
  dsts : node_id list;
  request : string;
  quorum : int;
  timeout : float;
}

type scatter_spec = {
  parts : (node_id * string) list;
  quorum : int;
  timeout : float;
}

type _ Effect.t +=
  | Now : float Effect.t
  | Sleep : float -> unit Effect.t
  | Call_many : call_spec -> reply list Effect.t
  | Call_scatter : scatter_spec -> reply list Effect.t
  | Send_oneway : (node_id * string) -> unit Effect.t
  | Fork : (unit -> unit) -> unit Effect.t

let default_timeout = 5.0

let now () = Effect.perform Now
let sleep d = Effect.perform (Sleep d)

let call_many ?(timeout = default_timeout) ~quorum dsts request =
  let quorum = min quorum (List.length dsts) in
  Effect.perform (Call_many { dsts; request; quorum; timeout })

let call_scatter ?(timeout = default_timeout) ~quorum parts =
  let quorum = min quorum (List.length parts) in
  Effect.perform (Call_scatter { parts; quorum; timeout })

let call_one ?timeout dst request =
  match call_many ?timeout ~quorum:1 [ dst ] request with
  | { payload; _ } :: _ -> Some payload
  | [] -> None

let send dst payload = Effect.perform (Send_oneway (dst, payload))
let fork fn = Effect.perform (Fork fn)
