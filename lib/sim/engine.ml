open Effect.Deep

type counters = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Heap.t;
  handlers : (Runtime.node_id, now:float -> from:Runtime.node_id -> string -> string option) Hashtbl.t;
  down : (Runtime.node_id, unit) Hashtbl.t;
  mutable reachable : Runtime.node_id -> Runtime.node_id -> bool;
  latency : Latency.t;
  root_rng : Srng.t;
  net_rng : Srng.t;
  counters : counters;
  mutable running : bool;
}

type periodic = { mutable active : bool }

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1) ?(latency = Latency.lan) () =
  let root_rng = Srng.create seed in
  {
    clock = 0.0;
    seq = 0;
    events = Heap.create ~compare:compare_event;
    handlers = Hashtbl.create 16;
    down = Hashtbl.create 4;
    reachable = (fun _ _ -> true);
    latency;
    net_rng = Srng.split root_rng;
    root_rng;
    counters = { messages_sent = 0; bytes_sent = 0; messages_dropped = 0 };
    running = false;
  }

let now t = t.clock
let counters t = t.counters
let rng t = t.root_rng

let reset_counters t =
  t.counters.messages_sent <- 0;
  t.counters.bytes_sent <- 0;
  t.counters.messages_dropped <- 0

let add_server t id handler = Hashtbl.replace t.handlers id handler

let set_down t id down =
  if down then Hashtbl.replace t.down id () else Hashtbl.remove t.down id

let set_reachable t pred = t.reachable <- pred

let schedule t at thunk =
  let at = max at t.clock in
  t.seq <- t.seq + 1;
  Heap.push t.events { time = at; seq = t.seq; thunk }

let is_up t id = not (Hashtbl.mem t.down id)

(* Deliver [payload] from [src] to [dst] after a sampled delay, invoking
   [on_delivery] at arrival (or counting a drop). *)
let transmit t ~src ~dst ~payload ~on_delivery =
  t.counters.messages_sent <- t.counters.messages_sent + 1;
  t.counters.bytes_sent <- t.counters.bytes_sent + String.length payload;
  if not (t.reachable src dst) then
    t.counters.messages_dropped <- t.counters.messages_dropped + 1
  else
    match Latency.sample t.latency t.net_rng with
    | None -> t.counters.messages_dropped <- t.counters.messages_dropped + 1
    | Some delay -> schedule t (t.clock +. delay) on_delivery

type pending_call = {
  mutable replies : Runtime.reply list;
  mutable reply_count : int;
  mutable resumed : bool;
  needed : int;
}

let send_oneway t ~src ~dst ~payload =
  if is_up t src || src < 0 then
    transmit t ~src ~dst ~payload ~on_delivery:(fun () ->
        if is_up t dst then
          match Hashtbl.find_opt t.handlers dst with
          | None -> ()
          | Some handler ->
            (* One-way messages may still produce a response payload (a
               gossip ack, say); it is intentionally discarded. *)
            ignore (handler ~now:t.clock ~from:src payload))

let post t ~src ~dst payload = send_oneway t ~src ~dst ~payload

(* Shared engine for Call_many (one request broadcast) and Call_scatter
   (a distinct request per destination): transmit every part, count
   replies, resume the continuation at quorum or timeout. *)
let start_scatter t ~client ~parts ~quorum ~timeout
    (k : (Runtime.reply list, unit) continuation) =
  let needed = max 0 (min quorum (List.length parts)) in
  let pending = { replies = []; reply_count = 0; resumed = false; needed } in
  let finish () =
    if not pending.resumed then begin
      pending.resumed <- true;
      continue k (List.rev pending.replies)
    end
  in
  (* Timeout fires with whatever has arrived. *)
  schedule t (t.clock +. timeout) finish;
  if needed = 0 then finish ()
  else
    List.iter
      (fun (dst, request) ->
        transmit t ~src:client ~dst ~payload:request
          ~on_delivery:(fun () ->
            if is_up t dst then
              match Hashtbl.find_opt t.handlers dst with
              | None -> ()
              | Some handler -> (
                match handler ~now:t.clock ~from:client request with
                | None -> ()
                | Some response ->
                  transmit t ~src:dst ~dst:client ~payload:response
                    ~on_delivery:(fun () ->
                      if not pending.resumed then begin
                        pending.replies <-
                          { Runtime.from = dst; payload = response }
                          :: pending.replies;
                        pending.reply_count <- pending.reply_count + 1;
                        if pending.reply_count >= pending.needed then finish ()
                      end))))
      parts

let start_call t ~client (spec : Runtime.call_spec)
    (k : (Runtime.reply list, unit) continuation) =
  start_scatter t ~client
    ~parts:(List.map (fun dst -> (dst, spec.request)) spec.dsts)
    ~quorum:spec.quorum ~timeout:spec.timeout k

let rec exec_fiber t ~client fn =
  match_with fn ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Runtime.Now ->
            Some (fun (k : (a, unit) continuation) -> continue k t.clock)
          | Runtime.Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t (t.clock +. d) (fun () -> continue k ()))
          | Runtime.Fork fn ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule t t.clock (fun () -> exec_fiber t ~client fn);
                continue k ())
          | Runtime.Send_oneway (dst, payload) ->
            Some
              (fun (k : (a, unit) continuation) ->
                send_oneway t ~src:client ~dst ~payload;
                continue k ())
          | Runtime.Call_many spec ->
            Some (fun (k : (a, unit) continuation) -> start_call t ~client spec k)
          | Runtime.Call_scatter spec ->
            Some
              (fun (k : (a, unit) continuation) ->
                start_scatter t ~client ~parts:spec.parts ~quorum:spec.quorum
                  ~timeout:spec.timeout k)
          | _ -> None);
    }

let spawn t ?(at = 0.0) ?(client = -1) fn =
  schedule t at (fun () -> exec_fiber t ~client fn)

let every t ?(start = 0.0) ~period ?(client = -1) fn =
  let token = { active = true } in
  let rec tick at =
    schedule t at (fun () ->
        if token.active then begin
          exec_fiber t ~client fn;
          tick (t.clock +. period)
        end)
  in
  tick start;
  token

let cancel token = token.active <- false

let run ?until t =
  if t.running then invalid_arg "Engine.run: re-entrant call";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue_loop = ref true in
      while !continue_loop do
        match Heap.pop t.events with
        | None -> continue_loop := false
        | Some ev -> (
          match until with
          | Some limit when ev.time > limit ->
            (* Push back so a later run can resume from here. *)
            Heap.push t.events ev;
            t.clock <- limit;
            continue_loop := false
          | _ ->
            t.clock <- ev.time;
            ev.thunk ())
      done)
