open Effect.Deep

type handlers = Runtime.node_id -> from:Runtime.node_id -> string -> string option

let client_id = -1
let epsilon = 1e-6

let run ~handlers fn =
  let clock = ref 0.0 in
  let tick () =
    clock := !clock +. epsilon;
    !clock
  in
  let rec interpret : 'a. (unit -> 'a) -> 'a =
    fun fn ->
      match_with fn ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Runtime.Now ->
                Some (fun (k : (a, _) continuation) -> continue k (tick ()))
              | Runtime.Sleep _ ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (tick ());
                    continue k ())
              | Runtime.Fork f ->
                Some
                  (fun (k : (a, _) continuation) ->
                    interpret f;
                    continue k ())
              | Runtime.Send_oneway (dst, payload) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (handlers dst ~from:client_id payload);
                    continue k ())
              | Runtime.Call_many spec ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (tick ());
                    let replies =
                      List.filter_map
                        (fun dst ->
                          match handlers dst ~from:client_id spec.request with
                          | None -> None
                          | Some payload -> Some { Runtime.from = dst; payload })
                        spec.dsts
                    in
                    continue k replies)
              | Runtime.Call_scatter spec ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (tick ());
                    let replies =
                      List.filter_map
                        (fun (dst, request) ->
                          match handlers dst ~from:client_id request with
                          | None -> None
                          | Some payload -> Some { Runtime.from = dst; payload })
                        spec.parts
                    in
                    continue k replies)
              | _ -> None);
        }
  in
  interpret fn
