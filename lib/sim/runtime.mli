(** The network-effect interface protocol code is written against.

    Client protocols (reads, writes, context acquisition…) call these
    functions in direct style; an effect handler decides what they mean:
    {!Engine} interprets them under simulated time and latency, {!Direct}
    interprets them as synchronous in-process calls (for unit tests), and
    [Tcpnet.Live] interprets them over real sockets. The protocol source
    is identical in all three — this is the repository's analogue of the
    paper's claim that clients drive the protocol and servers stay
    passive. *)

type node_id = int
(** Servers are [0 .. n-1]; clients use negative ids. *)

type reply = { from : node_id; payload : string }

type call_spec = {
  dsts : node_id list;
  request : string;
  quorum : int;  (** resume as soon as this many replies arrive *)
  timeout : float;  (** give up (returning what arrived) after this long *)
}

type scatter_spec = {
  parts : (node_id * string) list;
      (** one (destination, request) pair per destination — the payloads
          differ, unlike {!call_spec} which broadcasts one request *)
  quorum : int;
  timeout : float;
}

type _ Effect.t +=
  | Now : float Effect.t
  | Sleep : float -> unit Effect.t
  | Call_many : call_spec -> reply list Effect.t
  | Call_scatter : scatter_spec -> reply list Effect.t
  | Send_oneway : (node_id * string) -> unit Effect.t
  | Fork : (unit -> unit) -> unit Effect.t

val now : unit -> float
val sleep : float -> unit

val call_many :
  ?timeout:float -> quorum:int -> node_id list -> string -> reply list
(** RPC the request to every destination; return once [quorum] replies
    are in (or the timeout fires, possibly with fewer). The quorum is
    clamped to the destination count. Default timeout 5 s. *)

val call_scatter :
  ?timeout:float -> quorum:int -> (node_id * string) list -> reply list
(** Like {!call_many} but with a distinct request per destination — the
    dispersal data path uses this to ship each server its own fragment
    piece in one round with a single quorum wait. The quorum is clamped
    to the destination count. *)

val call_one : ?timeout:float -> node_id -> string -> string option
(** Single-destination convenience. *)

val send : node_id -> string -> unit
(** Fire-and-forget (gossip pushes). *)

val fork : (unit -> unit) -> unit
(** Run a new fiber concurrently with the caller. *)

val default_timeout : float
