(** Binary wire codec: length-delimited, varint-based combinators.

    Every message the store sends is encoded with these, so the
    simulator's byte counters measure realistic message sizes and the TCP
    transport reuses the exact same representation. Decoding is total:
    malformed input raises {!Error}, which protocol code treats as a
    Byzantine reply. *)

exception Error of string

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  (** Non-negative native ints, LEB128. *)

  val float : t -> float -> unit
  (** IEEE 754 double, 8 bytes. *)

  val string : t -> string -> unit
  (** Varint length prefix then raw bytes. *)

  val fixed : t -> len:int -> string -> unit
  (** Raw bytes with no length prefix — for fields whose width both sides
      know statically (digests, MAC tags). Saves the prefix byte on every
      hash of a Merkle path and makes width errors encoding-time errors.
      @raise Invalid_argument when the string is not exactly [len] bytes. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
  val bool : t -> bool -> unit
  val to_string : t -> string
end

module Dec : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val varint : t -> int
  val float : t -> float
  val string : t -> string

  val fixed : t -> len:int -> string
  (** Read exactly [len] raw bytes (the {!Enc.fixed} counterpart). *)

  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b
  val bool : t -> bool
  val at_end : t -> bool
  val expect_end : t -> unit
end

val encode : (Enc.t -> 'a -> unit) -> 'a -> string
val decode : (Dec.t -> 'a) -> string -> 'a
(** Runs the decoder and checks all input was consumed.
    @raise Error on malformed or trailing input. *)

val decode_opt : (Dec.t -> 'a) -> string -> 'a option
