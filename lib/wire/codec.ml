exception Error of string

let fail msg = raise (Error msg)

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let varint t v =
    if v < 0 then invalid_arg "Codec.Enc.varint: negative";
    let rec go v =
      if v < 0x80 then u8 t v
      else begin
        u8 t (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let float t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let fixed t ~len s =
    if String.length s <> len then
      invalid_arg
        (Printf.sprintf "Codec.Enc.fixed: expected %d bytes, got %d" len
           (String.length s));
    Buffer.add_string t s

  let option t enc = function
    | None -> u8 t 0
    | Some v ->
      u8 t 1;
      enc t v

  let list t enc l =
    varint t (List.length l);
    List.iter (enc t) l

  let pair t enc_a enc_b (a, b) =
    enc_a t a;
    enc_b t b

  let bool t v = u8 t (if v then 1 else 0)
  let to_string = Buffer.contents
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.src then fail "unexpected end of input";
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 62 then fail "varint too wide";
      let b = u8 t in
      let chunk = b land 0x7f in
      (* A chunk whose bits would spill past the native int width (or
         into the sign bit) is an overflow, not a huge value. *)
      if shift > 0 && (chunk lsl shift) lsr shift <> chunk then
        fail "varint overflow";
      let acc = acc lor (chunk lsl shift) in
      if acc < 0 then fail "varint overflow";
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = varint t in
    if t.pos + n > String.length t.src then fail "string overruns input";
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let fixed t ~len =
    if len < 0 || t.pos + len > String.length t.src then
      fail "fixed field overruns input";
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let option t dec = match u8 t with
    | 0 -> None
    | 1 -> Some (dec t)
    | _ -> fail "bad option tag"

  let list t dec =
    let n = varint t in
    if n > String.length t.src - t.pos then fail "list count overruns input";
    List.init n (fun _ -> dec t)

  let pair t dec_a dec_b =
    let a = dec_a t in
    let b = dec_b t in
    (a, b)

  let bool t = match u8 t with
    | 0 -> false
    | 1 -> true
    | _ -> fail "bad bool tag"

  let at_end t = t.pos = String.length t.src
  let expect_end t = if not (at_end t) then fail "trailing bytes"
end

let encode enc v =
  let t = Enc.create () in
  enc t v;
  Enc.to_string t

let decode dec s =
  let t = Dec.of_string s in
  let v = dec t in
  Dec.expect_end t;
  v

let decode_opt dec s = match decode dec s with
  | v -> Some v
  | exception Error _ -> None
