(** RSA signatures with PKCS#1 v1.5-style SHA-256 encoding.

    The secure store signs every write message and every context blob; a
    compromised server cannot forge either because it never holds a client
    private key. Key sizes of 512 bits keep tests fast; 1024+ is available
    for the crypto microbenchmarks. *)

type public = { n : Bignum.t; e : Bignum.t }

type crt
(** Precomputed CRT exponents and Montgomery contexts for the two prime
    factors; lets [sign] run two half-width exponentiations instead of
    one full-width one (~3-4x). *)

type keypair = {
  public : public;
  d : Bignum.t; (* private exponent *)
  p : Bignum.t;
  q : Bignum.t;
  crt : crt option; (* [None] forces the slow single-exponentiation path *)
}

val generate : ?bits:int -> Prng.t -> keypair
(** Fresh keypair with a [bits]-bit modulus (default 512) and e = 65537.
    CRT parameters are precomputed at generation time. *)

val precompute_crt : d:Bignum.t -> p:Bignum.t -> q:Bignum.t -> crt option
(** CRT parameters for an existing key; [None] if [q] has no inverse
    mod [p] (never the case for distinct primes). *)

val modulus_bytes : public -> int

val sign : keypair -> string -> string
(** Signature over SHA-256 of the message, one modulus-width string. *)

val verify : public -> msg:string -> signature:string -> bool
(** Total: malformed signatures return [false] rather than raising. *)

val public_to_string : public -> string
val public_of_string : string -> public option
(** Compact serialization for embedding public keys in directories. *)

val fingerprint : public -> string
(** SHA-256 of the serialized public key, hex, first 16 chars. *)
