(* Little-endian limbs, 26 bits per limb. Invariant: no most-significant
   zero limb; zero is the empty array. 26-bit limbs keep every product
   below 2^52 so schoolbook multiplication and Montgomery reduction can
   accumulate carries in a native 63-bit int without overflow. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let is_zero a = Array.length a = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let to_int_opt a =
  (* A native int holds at most 62 bits: 2 full limbs plus 10 bits. *)
  let n = Array.length a in
  if n > 3 || (n = 3 && a.(2) >= 1 lsl 10) then None
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    Some !v
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let num_bits a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * limb_bits) + width top
  end

let bit a i =
  let l = i / limb_bits in
  l < Array.length a && (a.(l) lsr (i mod limb_bits)) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let v = av + bv + !carry in
    out.(i) <- v land limb_mask;
    carry := v lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let v = a.(i) - bv - !borrow in
    if v < 0 then begin
      out.(i) <- v + (1 lsl limb_bits);
      borrow := 1
    end
    else begin
      out.(i) <- v;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let la = Array.length a in
    let ls = k / limb_bits and bits = k mod limb_bits in
    let out = Array.make (la + ls + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      out.(i + ls) <- out.(i + ls) lor (v land limb_mask);
      out.(i + ls + 1) <- out.(i + ls + 1) lor (v lsr limb_bits)
    done;
    normalize out
  end

let shift_right a k =
  if k = 0 then a
  else begin
    let la = Array.length a in
    let ls = k / limb_bits and bits = k mod limb_bits in
    if ls >= la then zero
    else begin
      let n = la - ls in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let v = ref (a.(i + ls) lsr bits) in
        if bits > 0 && i + ls + 1 < la then
          v := !v lor ((a.(i + ls + 1) lsl (limb_bits - bits)) land limb_mask);
        out.(i) <- !v
      done;
      normalize out
    end
  end

let add_int a v = add a (of_int v)
let sub_int a v = sub a (of_int v)

let mul_int a v =
  if v < 0 || v >= 1 lsl 30 then invalid_arg "Bignum.mul_int: out of range";
  mul a (of_int v)

let mod_int a m =
  if m <= 0 || m >= 1 lsl 30 then invalid_arg "Bignum.mod_int: out of range";
  let r = ref 0 in
  for i = Array.length a - 1 downto 0 do
    r := (((!r lsl limb_bits) lor a.(i)) mod m)
  done;
  !r

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division: O(bits(a) * limbs(b)); plenty for key-sized
       operands and only used outside multiplication-heavy inner loops. *)
    let nb = num_bits a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = nb - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := if is_zero !r then one else add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let rem a b = snd (divmod a b)

(* --- Montgomery arithmetic for odd moduli ------------------------------- *)

type mont = {
  m : int array; (* modulus limbs, length k *)
  mt : t; (* the modulus as a normalized value, for reductions *)
  k : int;
  m' : int; (* -m^{-1} mod 2^26 *)
  r2 : int array; (* (2^26)^(2k) mod m, for conversion into the domain *)
  one_m : int array; (* R mod m: 1 in the Montgomery domain *)
  scratch : int array; (* k+2 limbs reused across mont_mul_into calls *)
}

(* CIOS Montgomery product into [dst]: dst = x*y / R mod m with R = 2^(26k).
   x, y and dst are limb arrays of length k; dst may alias x or y because
   the product accumulates in ctx.scratch and is blitted out at the end. *)
let mont_mul_into ctx dst x y =
  let k = ctx.k and m = ctx.m and m' = ctx.m' in
  let t = ctx.scratch in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    let xi = Array.unsafe_get x i in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let v = Array.unsafe_get t j + (xi * Array.unsafe_get y j) + !c in
      Array.unsafe_set t j (v land limb_mask);
      c := v lsr limb_bits
    done;
    let v = t.(k) + !c in
    t.(k) <- v land limb_mask;
    t.(k + 1) <- t.(k + 1) + (v lsr limb_bits);
    let mi = t.(0) * m' land limb_mask in
    let v = t.(0) + (mi * m.(0)) in
    let c = ref (v lsr limb_bits) in
    for j = 1 to k - 1 do
      let v = Array.unsafe_get t j + (mi * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (j - 1) (v land limb_mask);
      c := v lsr limb_bits
    done;
    let v = t.(k) + !c in
    t.(k - 1) <- v land limb_mask;
    t.(k) <- t.(k + 1) + (v lsr limb_bits);
    t.(k + 1) <- 0
  done;
  (* Result is t[0..k] < 2m; one conditional subtraction normalizes. *)
  let ge_m =
    t.(k) > 0
    ||
    let rec go i =
      if i < 0 then true
      else if t.(i) <> m.(i) then t.(i) > m.(i)
      else go (i - 1)
    in
    go (k - 1)
  in
  if ge_m then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let v = t.(i) - m.(i) - !borrow in
      if v < 0 then begin
        t.(i) <- v + (1 lsl limb_bits);
        borrow := 1
      end
      else begin
        t.(i) <- v;
        borrow := 0
      end
    done;
    t.(k) <- t.(k) - !borrow;
    assert (t.(k) = 0)
  end;
  Array.blit t 0 dst 0 k

let pad k a =
  let out = Array.make k 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

let mont_init mt =
  let m = mt in
  let k = Array.length m in
  if k = 0 || m.(0) land 1 = 0 then
    invalid_arg "Bignum.mont_of_modulus: modulus must be odd";
  (* Newton iteration for the inverse of m.(0) modulo 2^26. *)
  let inv = ref 1 in
  for _ = 1 to 5 do
    inv := !inv * ((2 - (m.(0) * !inv)) land limb_mask) land limb_mask
  done;
  assert (m.(0) * !inv land limb_mask = 1);
  let m' = ((1 lsl limb_bits) - !inv) land limb_mask in
  let r2 = pad k (rem (shift_left one (2 * k * limb_bits)) m) in
  let one_m = pad k (rem (shift_left one (k * limb_bits)) m) in
  { m; mt; k; m'; r2; one_m; scratch = Array.make (k + 2) 0 }

(* Rebuilding a context costs a division per modulus; RSA reuses the same
   handful of moduli for every sign/verify, so a small cache pays for
   itself immediately. Flushed wholesale when full — eviction precision
   does not matter at this size. *)
let mont_cache : (t, mont) Hashtbl.t = Hashtbl.create 16
let mont_cache_limit = 16

let mont_of_modulus m =
  match Hashtbl.find_opt mont_cache m with
  | Some ctx -> ctx
  | None ->
    let ctx = mont_init m in
    if Hashtbl.length mont_cache >= mont_cache_limit then
      Hashtbl.reset mont_cache;
    Hashtbl.add mont_cache m ctx;
    ctx

let mont_modulus ctx = ctx.mt

(* Fixed 4-bit windowed exponentiation over a precomputed context. Only
   odd powers base^1, base^3, ..., base^15 are tabulated: a window value
   v = u * 2^z (u odd) is folded in as (4-z) squarings, one multiply by
   base^u, then z more squarings. *)
let mont_modexp_ctx ctx ~base ~exp =
  if is_zero exp then (if equal ctx.mt one then zero else one)
  else begin
    let k = ctx.k in
    let base = rem base ctx.mt in
    let bm = Array.make k 0 in
    mont_mul_into ctx bm (pad k base) ctx.r2;
    let b2 = Array.make k 0 in
    mont_mul_into ctx b2 bm bm;
    (* odd_pows.(i) = base^(2i+1) in the Montgomery domain *)
    let odd_pows = Array.init 8 (fun _ -> Array.make k 0) in
    Array.blit bm 0 odd_pows.(0) 0 k;
    for i = 1 to 7 do
      mont_mul_into ctx odd_pows.(i) odd_pows.(i - 1) b2
    done;
    let acc = Array.copy ctx.one_m in
    let nwin = (num_bits exp + 3) / 4 in
    for w = nwin - 1 downto 0 do
      let v = ref 0 in
      for j = 3 downto 0 do
        v := (!v lsl 1) lor (if bit exp ((4 * w) + j) then 1 else 0)
      done;
      if !v = 0 then
        for _ = 1 to 4 do
          mont_mul_into ctx acc acc acc
        done
      else begin
        let z = ref 0 in
        while !v land 1 = 0 do
          v := !v lsr 1;
          incr z
        done;
        for _ = 1 to 4 - !z do
          mont_mul_into ctx acc acc acc
        done;
        mont_mul_into ctx acc acc odd_pows.(!v lsr 1);
        for _ = 1 to !z do
          mont_mul_into ctx acc acc acc
        done
      end
    done;
    let out = Array.make k 0 in
    mont_mul_into ctx out acc (pad k one);
    normalize out
  end

let modexp ~base ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let base = rem base modulus in
    if is_zero exp then one
    else if not (is_even modulus) then
      mont_modexp_ctx (mont_of_modulus modulus) ~base ~exp
    else begin
      (* Even modulus fallback: plain square-and-multiply with reduction. *)
      let acc = ref one in
      for i = num_bits exp - 1 downto 0 do
        acc := rem (mul !acc !acc) modulus;
        if bit exp i then acc := rem (mul !acc base) modulus
      done;
      !acc
    end
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed values for the extended Euclid coefficients. *)
let signed_add (an, a) (bn, b) =
  if an = bn then (an, add a b)
  else if compare a b >= 0 then (an, sub a b)
  else (bn, sub b a)

let mod_inverse a ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then Some zero
  else begin
    let old_r = ref a and r = ref modulus in
    let old_x = ref (false, one) and x = ref (false, zero) in
    while not (is_zero !r) do
      let q, r' = divmod !old_r !r in
      old_r := !r;
      r := r';
      let xn, xv = !x in
      let step = signed_add !old_x (not xn, mul q xv) in
      old_x := !x;
      x := step
    done;
    if not (equal !old_r one) then None
    else begin
      let neg, v = !old_x in
      let v = rem v modulus in
      Some (if neg && not (is_zero v) then sub modulus v else v)
    end
  end

(* --- Byte and text conversions ------------------------------------------ *)

let of_bytes_be s =
  let n = String.length s in
  if n = 0 then zero
  else begin
    let limbs = ((8 * n) + limb_bits - 1) / limb_bits in
    let a = Array.make limbs 0 in
    for i = 0 to n - 1 do
      let byte = Char.code s.[n - 1 - i] in
      let bitpos = 8 * i in
      let l = bitpos / limb_bits and off = bitpos mod limb_bits in
      a.(l) <- a.(l) lor ((byte lsl off) land limb_mask);
      if off > limb_bits - 8 then a.(l + 1) <- a.(l + 1) lor (byte lsr (limb_bits - off))
    done;
    normalize a
  end

let byte_at a i =
  let bitpos = 8 * i in
  let l = bitpos / limb_bits and off = bitpos mod limb_bits in
  let la = Array.length a in
  if l >= la then 0
  else begin
    let v = a.(l) lsr off in
    let v =
      if off > limb_bits - 8 && l + 1 < la then
        v lor (a.(l + 1) lsl (limb_bits - off))
      else v
    in
    v land 0xff
  end

let to_bytes_be ?len a =
  let min_len = (num_bits a + 7) / 8 in
  let n =
    match len with
    | None -> min_len
    | Some l ->
      if l < min_len then invalid_arg "Bignum.to_bytes_be: value too large";
      l
  in
  String.init n (fun i -> Char.chr (byte_at a (n - 1 - i)))

let of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Hexs.decode h)

let to_hex a = if is_zero a then "00" else Hexs.encode (to_bytes_be a)
let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
