let leaf_hash payload = Sha256.digest ("\x00" ^ payload)
let node_hash l r = Sha256.digest ("\x01" ^ l ^ r)
let empty_root = Sha256.digest "\x02merkle-empty"

type tree = { leaves : string array; levels : string array list }
(* [levels] runs from the leaf-hash level up to the singleton root level.
   An odd node at the end of a level is promoted unchanged. *)

type proof = { index : int; path : (string * [ `Left | `Right ]) list }

let build_levels leaf_hashes =
  let rec up acc level =
    if Array.length level <= 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init ((n + 1) / 2) (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) parent
    end
  in
  up [] leaf_hashes

let of_leaves payloads =
  let leaves = Array.of_list payloads in
  if Array.length leaves = 0 then { leaves; levels = [] }
  else { leaves; levels = build_levels (Array.map leaf_hash leaves) }

let size t = Array.length t.leaves

let root t =
  match List.rev t.levels with
  | [] -> empty_root
  | top :: _ -> top.(0)

let prove t index =
  if index < 0 || index >= Array.length t.leaves then None
  else begin
    let rec walk i levels acc =
      match levels with
      | [] | [ _ ] -> List.rev acc
      | level :: rest ->
        let sibling = if i land 1 = 0 then i + 1 else i - 1 in
        let acc =
          if sibling < Array.length level then
            (level.(sibling), (if i land 1 = 0 then `Right else `Left)) :: acc
          else acc
        in
        walk (i / 2) rest acc
    in
    Some { index; path = walk index t.levels [] }
  end

(* Verification recomputes the tree's level widths from [size], so the
   proof's shape — how many siblings, on which sides, and where the odd
   promoted nodes fall — is fully determined by (size, index). A proof
   with a stripped, reordered or side-swapped path, or a relabeled
   index, fails structurally before any hash comparison; the claimed
   index is therefore binding, not advisory. *)
let verify ~root:expected ~size ~leaf proof =
  if size <= 0 || proof.index < 0 || proof.index >= size then false
  else begin
    let rec climb i width path h =
      if width <= 1 then (match path with [] -> Some h | _ :: _ -> None)
      else begin
        let has_sibling = if i land 1 = 0 then i + 1 < width else true in
        let parent_width = (width + 1) / 2 in
        if not has_sibling then climb (i / 2) parent_width path h
        else
          match path with
          | [] -> None
          | (sibling, side) :: rest ->
            let expected_side = if i land 1 = 0 then `Right else `Left in
            if side <> expected_side then None
            else begin
              let h =
                if i land 1 = 0 then node_hash h sibling else node_hash sibling h
              in
              climb (i / 2) parent_width rest h
            end
      end
    in
    match climb proof.index size proof.path (leaf_hash leaf) with
    | Some h -> Hmac.equal_constant_time h expected
    | None -> false
  end
