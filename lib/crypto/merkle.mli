(** Merkle hash trees over SHA-256.

    Extension substrate: the Bayou follow-up the paper cites proposes
    logging and auditing server writes; {!Store.Audit} uses these trees so
    an auditor can verify a server's write log incrementally. *)

type tree

val of_leaves : string list -> tree
(** Build a tree over leaf payloads. Leaf and node hashes are
    domain-separated so a leaf cannot be confused with an inner node. *)

val root : tree -> string
(** 32-byte root hash; the root of the empty tree is a fixed constant. *)

val size : tree -> int

type proof = { index : int; path : (string * [ `Left | `Right ]) list }
(** Sibling hashes from leaf to root; the tag says which side the sibling
    joins from. *)

val prove : tree -> int -> proof option
(** Inclusion proof for the leaf at [index]. *)

val verify : root:string -> size:int -> leaf:string -> proof -> bool
(** Check that [leaf] is at [proof.index] under the root of a tree with
    [size] leaves. The expected proof shape (sibling count, sides, odd
    promotions) is recomputed from [size] and [proof.index], so a
    mutated index or a stripped/reordered path is rejected structurally
    — the index is part of what the proof commits to. *)
