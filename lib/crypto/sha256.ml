let digest_size = 32
let block_size = 64
let mask32 = 0xffffffff

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  w : int array; (* 64-entry message schedule, reused across blocks *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  mutable finalized : bool;
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    w = Array.make 64 0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    finalized = false;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Compress one 64-byte block taken from [src] at [off] into [t.h].
   Bounds are established once by the callers (off + 64 <= length src),
   so the inner loops use unchecked accessors — this function accounts
   for nearly all hashing time and every sign/verify hashes first. *)
let compress t src off =
  let w = t.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get src j) lsl 24)
      lor (Char.code (Bytes.unsafe_get src (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get src (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get src (j + 3)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask32)
  done;
  let h = t.h in
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let temp1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask32
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let update_sub t s ~pos ~len =
  if t.finalized then invalid_arg "Sha256.update_sub: finalized context";
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.update_sub: bad range";
  t.total <- t.total + len;
  let pos = ref pos and len = ref len in
  (* Fill a partial buffered block first. *)
  if t.buf_len > 0 then begin
    let take = min !len (block_size - t.buf_len) in
    Bytes.blit_string s !pos t.buf t.buf_len take;
    t.buf_len <- t.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if t.buf_len = block_size then begin
      compress t t.buf 0;
      t.buf_len <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while !len >= block_size do
    compress t (Bytes.unsafe_of_string s) !pos;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit_string s !pos t.buf 0 !len;
    t.buf_len <- !len
  end

let update t s = update_sub t s ~pos:0 ~len:(String.length s)

let finalize t =
  if t.finalized then invalid_arg "Sha256.finalize: finalized context";
  t.finalized <- true;
  let bit_len = t.total * 8 in
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let pad_len =
    let rem = (t.total + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (pad_len + i)
      (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  (* Absorb the tail directly (bypassing the finalized flag). *)
  let absorb s =
    let s = Bytes.unsafe_to_string s in
    let pos = ref 0 and len = ref (String.length s) in
    if t.buf_len > 0 then begin
      let take = min !len (block_size - t.buf_len) in
      Bytes.blit_string s !pos t.buf t.buf_len take;
      t.buf_len <- t.buf_len + take;
      pos := !pos + take;
      len := !len - take;
      if t.buf_len = block_size then begin
        compress t t.buf 0;
        t.buf_len <- 0
      end
    end;
    while !len >= block_size do
      compress t (Bytes.unsafe_of_string s) !pos;
      pos := !pos + block_size;
      len := !len - block_size
    done;
    assert (!len = 0)
  in
  absorb tail;
  assert (t.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = t.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let t = init () in
  update t s;
  finalize t

let hex_digest s = Hexs.encode (digest s)
