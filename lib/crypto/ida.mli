(** Rabin-style information dispersal over GF(2^8).

    Splits a value into [n] fragments of which any [k] reconstruct it;
    each fragment is roughly 1/k of the original size (plus a small
    header), so dispersing to n servers costs n/k of the value instead
    of the factor-n cost of full replication. Unlike {!Shamir}, this is
    an erasure code, not a secret-sharing scheme: fewer than k fragments
    still leak partial information, so confidential values should be
    encrypted before dispersal (which is what {!Store.Dispersal} does). *)

type fragment = { index : int; total_length : int; data : string }
(** [index] in [1, 255]; [total_length] is the original value's size. *)

val split : k:int -> n:int -> string -> fragment list
(** @raise Invalid_argument unless 1 <= k <= n <= 255. *)

val reconstruct : k:int -> fragment list -> string option
(** Rebuild from at least [k] fragments with distinct indices (extras
    ignored). [None] on too few fragments or inconsistent lengths.
    Corrupted-but-well-formed fragments yield garbage — pair with
    signatures or AEAD. *)

val fragment_to_string : fragment -> string
val fragment_of_string : string -> fragment option

val split_stripe : k:int -> n:int -> string -> string array
(** Headerless stripe coding for the streaming path: encode one stripe
    of the value into its n fragment pieces (array slot [i] is the piece
    for fragment index [i+1]). A stripe of [len] bytes yields
    [ceil(len/k)] bytes per piece, so callers that keep stripe sizes a
    multiple of [k] get fragment offsets as a pure function of value
    offsets. Encoding a long value stripe-by-stripe and concatenating
    the pieces per index is equivalent to one-shot coding but never
    holds more than a stripe at a time.
    @raise Invalid_argument unless 1 <= k <= n <= 255. *)

val reconstruct_stripe :
  k:int -> len:int -> (int * string) list -> string option
(** Inverse of {!split_stripe} for one stripe: rebuild [len] original
    bytes from at least [k] [(index, piece)] pairs with distinct indices
    (extras ignored). [None] on too few pieces or piece lengths that
    don't match [ceil(len/k)]. Like {!reconstruct}, corrupted pieces
    yield garbage — callers must check fragment digests. *)
