(** Arbitrary-precision natural numbers.

    Pure OCaml, little-endian limbs of 26 bits stored in [int array]s so
    that limb products and carry chains fit comfortably in a 63-bit native
    int. Sized for the RSA arithmetic this repository needs (up to a few
    thousand bits); not a general-purpose bignum replacement.

    All values are non-negative. Operations that would go negative raise
    [Invalid_argument]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [Some v] when the value fits in a native [int]. *)

val of_bytes_be : string -> t
(** Big-endian unsigned interpretation (leading zero bytes allowed). *)

val to_bytes_be : ?len:int -> t -> string
(** Minimal big-endian encoding, left-padded with zeros to [len] if given.
    @raise Invalid_argument if the value does not fit in [len] bytes. *)

val of_hex : string -> t
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val bit : t -> int -> bool
val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val add_int : t -> int -> t
val sub_int : t -> int -> t
val mul_int : t -> int -> t
(** Small-operand variants; the [int] must be non-negative (and for
    [mul_int], at most 30 bits). *)

val mod_int : t -> int -> int
(** Remainder by a positive [int] of at most 30 bits. *)

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    @raise Division_by_zero on zero divisor. *)

val rem : t -> t -> t

val modexp : base:t -> exp:t -> modulus:t -> t
(** [base^exp mod modulus]. Uses windowed Montgomery exponentiation over a
    cached per-modulus context when [modulus] is odd, plain
    divide-and-reduce otherwise.
    @raise Division_by_zero on zero modulus. *)

type mont
(** Precomputed Montgomery context for one odd modulus: the limb-inverse,
    the conversion constant R^2 mod m, and reusable scratch buffers.
    Building one costs a long division; exponentiating with one does not. *)

val mont_of_modulus : t -> mont
(** Context for an odd modulus, served from a small global cache so hot
    moduli (RSA keys) are only ever precomputed once.
    @raise Invalid_argument on an even or zero modulus. *)

val mont_modulus : mont -> t
(** The modulus a context was built for. *)

val mont_modexp_ctx : mont -> base:t -> exp:t -> t
(** [base^exp mod (mont_modulus ctx)] by fixed 4-bit windowed
    square-and-multiply with precomputed odd powers of [base]. *)

val gcd : t -> t -> t

val mod_inverse : t -> modulus:t -> t option
(** Multiplicative inverse when [gcd a modulus = 1]; [None] otherwise. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal, for debugging. *)
