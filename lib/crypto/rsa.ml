type public = { n : Bignum.t; e : Bignum.t }

(* CRT precomputation: dp = d mod (p-1), dq = d mod (q-1),
   qinv = q^-1 mod p, plus ready-made Montgomery contexts for p and q.
   Signing then costs two half-width exponentiations instead of one
   full-width one. *)
type crt = {
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
  mp : Bignum.mont;
  mq : Bignum.mont;
}

type keypair = {
  public : public;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  crt : crt option;
}

let e_value = Bignum.of_int 65537

(* DER DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 notes). *)
let sha256_digest_info = Hexs.decode "3031300d060960864801650304020105000420"

let modulus_bytes pub = (Bignum.num_bits pub.n + 7) / 8

(* EMSA-PKCS1-v1_5: 0x00 01 FF..FF 00 || DigestInfo || H(msg). *)
let encode_message ~em_len msg =
  let t = sha256_digest_info ^ Sha256.digest msg in
  let t_len = String.length t in
  if em_len < t_len + 11 then invalid_arg "Rsa: modulus too small for SHA-256";
  let ps = String.make (em_len - t_len - 3) '\xff' in
  "\x00\x01" ^ ps ^ "\x00" ^ t

let precompute_crt ~d ~p ~q =
  match Bignum.mod_inverse q ~modulus:p with
  | None -> None
  | Some qinv ->
    Some
      {
        dp = Bignum.rem d (Bignum.sub_int p 1);
        dq = Bignum.rem d (Bignum.sub_int q 1);
        qinv;
        mp = Bignum.mont_of_modulus p;
        mq = Bignum.mont_of_modulus q;
      }

let generate ?(bits = 512) rng =
  if bits < 512 then invalid_arg "Rsa.generate: need at least 512 bits";
  let half = bits / 2 in
  let rec keys () =
    let p = Prime.generate rng ~bits:half in
    let q = Prime.generate rng ~bits:(bits - half) in
    if Bignum.equal p q then keys ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.(mul (sub_int p 1) (sub_int q 1)) in
      match Bignum.mod_inverse e_value ~modulus:phi with
      | None -> keys ()
      | Some d ->
        { public = { n; e = e_value }; d; p; q; crt = precompute_crt ~d ~p ~q }
    end
  in
  keys ()

let sign key msg =
  let k = modulus_bytes key.public in
  let em = Bignum.of_bytes_be (encode_message ~em_len:k msg) in
  let s =
    match key.crt with
    | None -> Bignum.modexp ~base:em ~exp:key.d ~modulus:key.public.n
    | Some c ->
      (* Garner recombination: s = m2 + q * (qinv * (m1 - m2) mod p). *)
      let m1 = Bignum.mont_modexp_ctx c.mp ~base:em ~exp:c.dp in
      let m2 = Bignum.mont_modexp_ctx c.mq ~base:em ~exp:c.dq in
      let m2p = Bignum.rem m2 key.p in
      let diff =
        if Bignum.compare m1 m2p >= 0 then Bignum.sub m1 m2p
        else Bignum.sub (Bignum.add m1 key.p) m2p
      in
      let h = Bignum.rem (Bignum.mul c.qinv diff) key.p in
      Bignum.add m2 (Bignum.mul h key.q)
  in
  Bignum.to_bytes_be ~len:k s

let verify pub ~msg ~signature =
  let k = modulus_bytes pub in
  String.length signature = k
  &&
  let s = Bignum.of_bytes_be signature in
  Bignum.compare s pub.n < 0
  &&
  let em =
    (* modexp caches the Montgomery context per modulus, so repeated
       verifications under one public key skip the precomputation. *)
    Bignum.modexp ~base:s ~exp:pub.e ~modulus:pub.n
  in
  let recovered = Bignum.to_bytes_be ~len:k em in
  Hmac.equal_constant_time recovered (encode_message ~em_len:k msg)

let public_to_string pub = Bignum.to_hex pub.n ^ ":" ^ Bignum.to_hex pub.e

let public_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    try
      let n = Bignum.of_hex (String.sub s 0 i) in
      let e = Bignum.of_hex (String.sub s (i + 1) (String.length s - i - 1)) in
      if Bignum.is_zero n || Bignum.is_zero e then None else Some { n; e }
    with Invalid_argument _ -> None)

let fingerprint pub = String.sub (Sha256.hex_digest (public_to_string pub)) 0 16
