type fragment = { index : int; total_length : int; data : string }

(* The value is processed in blocks of k bytes (zero padded). The k bytes
   of a block are the coefficients of a degree-(k-1) polynomial;
   fragment i stores that polynomial's evaluation at x = i, one byte per
   block. Reconstruction interpolates the coefficients from any k
   distinct evaluations. *)

let split ~k ~n value =
  if k < 1 || k > n || n > 255 then invalid_arg "Ida.split: need 1 <= k <= n <= 255";
  let total_length = String.length value in
  let blocks = (total_length + k - 1) / k in
  let blocks = max blocks 1 in
  let outputs = Array.init n (fun _ -> Bytes.create blocks) in
  let coeffs = Array.make k 0 in
  for block = 0 to blocks - 1 do
    for j = 0 to k - 1 do
      let pos = (block * k) + j in
      coeffs.(j) <- (if pos < total_length then Char.code value.[pos] else 0)
    done;
    for i = 0 to n - 1 do
      Bytes.set outputs.(i) block (Char.chr (Gf_poly.eval coeffs (i + 1)))
    done
  done;
  List.init n (fun i ->
      { index = i + 1; total_length; data = Bytes.unsafe_to_string outputs.(i) })

let reconstruct ~k fragments =
  let distinct =
    List.sort_uniq (fun a b -> Int.compare a.index b.index) fragments
    |> List.filteri (fun i _ -> i < k)
  in
  match distinct with
  | first :: _ when List.length distinct >= k ->
    let blocks = String.length first.data in
    let total_length = first.total_length in
    if
      List.exists
        (fun f ->
          String.length f.data <> blocks
          || f.total_length <> total_length
          || f.index < 1 || f.index > 255)
        distinct
      || total_length > blocks * k
      || (total_length = 0 && blocks > 1)
    then None
    else begin
      let out = Bytes.make (blocks * k) '\000' in
      for block = 0 to blocks - 1 do
        let points =
          List.map (fun f -> (f.index, Char.code f.data.[block])) distinct
        in
        let coeffs = Gf_poly.interpolate points in
        for j = 0 to min (k - 1) (Array.length coeffs - 1) do
          Bytes.set out ((block * k) + j) (Char.chr coeffs.(j))
        done
      done;
      Some (Bytes.sub_string out 0 total_length)
    end
  | _ -> None

(* Stripe-wise (headerless) coding for the streaming path: the caller
   frames stripes itself, so fragments carry no per-fragment header and
   a multi-MB value can be encoded stripe by stripe without ever holding
   more than one stripe of coefficients. A stripe of [len] value bytes
   yields ceil(len/k) bytes per fragment — exactly [len/k] when the
   caller keeps stripe sizes a multiple of k, which makes fragment
   offsets a pure function of value offsets. *)

let split_stripe ~k ~n chunk =
  if k < 1 || k > n || n > 255 then
    invalid_arg "Ida.split_stripe: need 1 <= k <= n <= 255";
  let len = String.length chunk in
  let blocks = (len + k - 1) / k in
  let outputs = Array.init n (fun _ -> Bytes.create blocks) in
  let coeffs = Array.make k 0 in
  for block = 0 to blocks - 1 do
    for j = 0 to k - 1 do
      let pos = (block * k) + j in
      coeffs.(j) <- (if pos < len then Char.code chunk.[pos] else 0)
    done;
    for i = 0 to n - 1 do
      Bytes.set outputs.(i) block (Char.chr (Gf_poly.eval coeffs (i + 1)))
    done
  done;
  Array.map Bytes.unsafe_to_string outputs

let reconstruct_stripe ~k ~len pieces =
  if k < 1 || len < 0 then None
  else begin
    let blocks = (len + k - 1) / k in
    let distinct =
      List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b) pieces
      |> List.filteri (fun i _ -> i < k)
    in
    if
      List.length distinct < k
      || List.exists
           (fun (i, d) -> i < 1 || i > 255 || String.length d <> blocks)
           distinct
    then None
    else begin
      let out = Bytes.make (blocks * k) '\000' in
      for block = 0 to blocks - 1 do
        let points =
          List.map (fun (i, d) -> (i, Char.code d.[block])) distinct
        in
        let coeffs = Gf_poly.interpolate points in
        for j = 0 to min (k - 1) (Array.length coeffs - 1) do
          Bytes.set out ((block * k) + j) (Char.chr coeffs.(j))
        done
      done;
      Some (Bytes.sub_string out 0 len)
    end
  end

(* 1 index byte, 4-byte big-endian original length, then the data. *)
let fragment_to_string f =
  let b = Bytes.create 5 in
  Bytes.set b 0 (Char.chr f.index);
  Bytes.set b 1 (Char.chr ((f.total_length lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((f.total_length lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((f.total_length lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (f.total_length land 0xff));
  Bytes.unsafe_to_string b ^ f.data

let fragment_of_string s =
  if String.length s < 5 then None
  else begin
    let index = Char.code s.[0] in
    let byte i = Char.code s.[i] in
    let total_length =
      (byte 1 lsl 24) lor (byte 2 lsl 16) lor (byte 3 lsl 8) lor byte 4
    in
    if index < 1 then None
    else Some { index; total_length; data = String.sub s 5 (String.length s - 5) }
  end
