(* Shared key-universe convention for the networked demo binaries.

   The paper assumes every principal's public key is well known and
   leaves key management out of scope. These tools realize that
   assumption by deriving each named client's keypair deterministically
   from its name, so every server and client computes the same keyring
   from the same --clients list. A production deployment would replace
   this module with real key distribution. *)

let keypair name =
  Crypto.Rsa.generate (Crypto.Prng.create ~seed:("securestore-demo-key:" ^ name))

(* Pairwise client↔server MAC secrets, same well-known-key assumption as
   the signing keys. [server] is a *global* node id: in a sharded
   deployment shard s's replica r is node s*n + r, so one derivation
   covers single- and multi-shard universes alike. *)
let mac_secret ~client ~server =
  Crypto.Sha256.digest
    (Printf.sprintf "securestore-demo-mac:%s:%d" client server)

let keyring ?(mac_servers = 0) names =
  let keyring = Store.Keyring.create () in
  List.iter
    (fun name ->
      Store.Keyring.register keyring name (keypair name).Crypto.Rsa.public;
      for server = 0 to mac_servers - 1 do
        Store.Keyring.register_mac keyring ~client:name ~server
          (mac_secret ~client:name ~server)
      done)
    names;
  keyring

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i ->
    let host = String.sub s 0 i in
    let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
    (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port -> Some (host, port)
    | None -> None)

let parse_endpoints s =
  let parts = split_commas s in
  let parsed = List.filter_map parse_endpoint parts in
  if List.length parsed <> List.length parts then None else Some parsed
