(** Recorded operation histories.

    A history is the ordered list of {!Store.Trace} events one run
    emitted. The recorder is thread-safe (live-transport clients emit
    from many threads) and serializes to JSON so CI can upload the
    history of a failing schedule as an artifact and a developer can
    replay the oracle over it. *)

type t

val create : unit -> t

val record : t -> Store.Trace.event -> unit
(** Append one event (normally installed as the {!Store.Trace} sink). *)

val recording : t -> (unit -> 'a) -> 'a
(** Install [t] as the global trace sink (resetting the trace counters),
    run the thunk, and uninstall — even on exceptions. Recording is
    process-global, so [recording] refuses to nest. *)

val events : t -> Store.Trace.event list
(** In emission ([seq]) order. *)

val length : t -> int

val digest : t -> string
(** Hex SHA-256 of the canonical serialization — equal iff two runs
    produced identical histories (the determinism witness). *)

val to_json : t -> string
(** One JSON object: [{"events": [...]}], stamps rendered as objects,
    context vectors as arrays of [uid, stamp] pairs. *)

val save_json : t -> path:string -> unit
