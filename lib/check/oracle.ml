module T = Store.Trace

let properties =
  [
    ( "ctx-monotonic",
      "a session's context snapshot always dominates its previous snapshot" );
    ( "ctx-continuity",
      "a connect that recovered a stored context dominates the context the \
       client last disconnected with" );
    ( "read-freshness",
      "a read never returns a stamp below the reader's context floor for the \
       item at invocation" );
    ( "read-your-writes",
      "within a session, a read returns at least the client's own latest \
       completed write of the item" );
    ( "monotonic-reads",
      "successive reads of one item in one session never return a smaller \
       stamp" );
    ( "read-linkage",
      "every returned value matches an actual write invocation: same uid, \
       stamp, value digest and writer" );
    ( "no-fork",
      "one stamp never names two values, and one writer never signs two \
       values under one multi-writer (time, writer) pair" );
  ]

type violation = {
  property : string;
  explanation : string;
  first : T.event;
  second : T.event option;
}

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s@.  at %a" v.property v.explanation T.pp_event
    v.first;
  match v.second with
  | None -> ()
  | Some e -> Format.fprintf fmt "@.  vs %a" T.pp_event e

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* Context snapshots arrive as binding lists; rebuild the map to reuse
   {!Store.Context.dominates}. *)
let ctx_of = Store.Context.of_bindings

let floor_of ctx uid =
  match List.find_opt (fun (u, _) -> Store.Uid.equal u uid) ctx with
  | Some (_, s) -> s
  | None -> Store.Stamp.zero

let ok_value (e : T.event) =
  match (e.phase, e.outcome) with
  | T.Return, Some (T.Ok_value { stamp; digest; writer }) ->
    Some (stamp, digest, writer)
  | _ -> None

let check events =
  let evs =
    List.sort (fun (a : T.event) b -> Int.compare a.seq b.seq) events
  in
  let violations = ref [] in
  let flag property explanation first second =
    violations := { property; explanation; first; second } :: !violations
  in
  (* last event per (client, session) — ctx monotonicity *)
  let last_ev : (string * int, T.event) Hashtbl.t = Hashtbl.create 16 in
  (* last successful disconnect per client — cross-session continuity *)
  let last_disc : (string, T.event) Hashtbl.t = Hashtbl.create 16 in
  (* invoke events by op id — pairs a return with its invocation *)
  let invokes : (int, T.event) Hashtbl.t = Hashtbl.create 64 in
  (* last completed write / last read per (client, session, uid) *)
  let last_write : (string * int * string, T.event) Hashtbl.t =
    Hashtbl.create 64
  in
  let last_read : (string * int * string, T.event) Hashtbl.t =
    Hashtbl.create 64
  in
  (* every write invocation by (uid, stamp) — linkage and forks *)
  let writes : (string * Store.Stamp.t, string * string * T.event) Hashtbl.t =
    Hashtbl.create 64
  in
  (* multi-writer (uid, writer, time) -> (digest, event) — writer forks *)
  let mw : (string * string * int, string * T.event) Hashtbl.t =
    Hashtbl.create 64
  in
  let check_ctx_monotonic (e : T.event) =
    let key = (e.client, e.session) in
    (match Hashtbl.find_opt last_ev key with
    | Some prev ->
      if not (Store.Context.dominates (ctx_of e.ctx) (ctx_of prev.ctx)) then
        flag "ctx-monotonic"
          (Printf.sprintf
             "%s session %d: context at event %d no longer dominates its \
              context at event %d — the client forgot an observed write"
             e.client e.session e.seq prev.seq)
          e (Some prev)
    | None -> ());
    Hashtbl.replace last_ev key e
  in
  let check_write_invoke (e : T.event) uid stamp digest =
    let ukey = Store.Uid.to_string uid in
    (match Hashtbl.find_opt writes (ukey, stamp) with
    | Some (d, _, prev) when not (String.equal d digest) ->
      flag "no-fork"
        (Format.asprintf
           "%s signed two different values under one stamp %a of %a (digests \
            %s vs %s)"
           e.client Store.Stamp.pp stamp Store.Uid.pp uid digest d)
        e (Some prev)
    | Some _ -> ()
    | None -> Hashtbl.add writes (ukey, stamp) (digest, e.client, e));
    match stamp with
    | Store.Stamp.Multi { time; writer; _ } -> (
      match Hashtbl.find_opt mw (ukey, writer, time) with
      | Some (d, prev) when not (String.equal d digest) ->
        flag "no-fork"
          (Format.asprintf
             "writer %s forked %a at time %d: two values under one (time, \
              writer) pair"
             writer Store.Uid.pp uid time)
          e (Some prev)
      | Some _ -> ()
      | None -> Hashtbl.add mw (ukey, writer, time) (digest, e))
    | Store.Stamp.Scalar _ -> ()
  in
  let check_read_return (e : T.event) uid =
    match ok_value e with
    | None -> ()
    | Some (stamp, digest, writer) ->
      let ukey = Store.Uid.to_string uid in
      (* read-freshness: compare against the floor recorded at invoke *)
      (match Hashtbl.find_opt invokes e.op with
      | Some inv ->
        let floor = floor_of inv.ctx uid in
        if Store.Stamp.compare stamp floor < 0 then
          flag "read-freshness"
            (Format.asprintf
               "%s read %a at stamp %a although its context already proved \
                %a — a stale value slipped past the freshness check"
               e.client Store.Uid.pp uid Store.Stamp.pp stamp Store.Stamp.pp
               floor)
            e (Some inv)
      | None -> ());
      (* read-your-writes *)
      (match Hashtbl.find_opt last_write (e.client, e.session, ukey) with
      | Some wev -> (
        match wev.kind with
        | T.Write { stamp = ws; _ } ->
          if Store.Stamp.compare stamp ws < 0 then
            flag "read-your-writes"
              (Format.asprintf
                 "%s read %a at stamp %a after completing its own write at \
                  %a in the same session"
                 e.client Store.Uid.pp uid Store.Stamp.pp stamp Store.Stamp.pp
                 ws)
              e (Some wev)
        | _ -> ())
      | None -> ());
      (* monotonic-reads *)
      (match Hashtbl.find_opt last_read (e.client, e.session, ukey) with
      | Some rev -> (
        match ok_value rev with
        | Some (prev_stamp, _, _) ->
          if Store.Stamp.compare stamp prev_stamp < 0 then
            flag "monotonic-reads"
              (Format.asprintf
                 "%s's reads of %a went backwards: %a after %a within one \
                  session"
                 e.client Store.Uid.pp uid Store.Stamp.pp stamp Store.Stamp.pp
                 prev_stamp)
              e (Some rev)
        | None -> ())
      | None -> ());
      Hashtbl.replace last_read (e.client, e.session, ukey) e;
      (* read-linkage *)
      (match Hashtbl.find_opt writes (ukey, stamp) with
      | None ->
        flag "read-linkage"
          (Format.asprintf
             "%s read a value of %a at stamp %a that no client ever wrote \
              (digest %s)"
             e.client Store.Uid.pp uid Store.Stamp.pp stamp digest)
          e None
      | Some (d, _, wev) when not (String.equal d digest) ->
        flag "read-linkage"
          (Format.asprintf
             "read of %a returned digest %s but the write under stamp %a \
              carried digest %s — a server altered the value"
             Store.Uid.pp uid digest Store.Stamp.pp stamp d)
          e (Some wev)
      | Some (_, w, wev) when not (String.equal w writer) ->
        flag "read-linkage"
          (Format.asprintf
             "read of %a attributes stamp %a to writer %s but %s wrote it"
             Store.Uid.pp uid Store.Stamp.pp stamp writer w)
          e (Some wev)
      | Some _ -> ())
  in
  List.iter
    (fun (e : T.event) ->
      check_ctx_monotonic e;
      (match (e.phase, e.kind) with
      | T.Invoke, T.Write { uid; stamp; digest } ->
        check_write_invoke e uid stamp digest
      | T.Invoke, _ -> ()
      | T.Return, T.Read { uid } -> check_read_return e uid
      | T.Return, T.Write { uid; stamp; _ } ->
        if e.outcome = Some T.Ok_unit then
          Hashtbl.replace last_write
            (e.client, e.session, Store.Uid.to_string uid)
            e
        else ignore stamp
      | T.Return, T.Connect -> (
        match e.outcome with
        | Some (T.Connected T.Stored) -> (
          match Hashtbl.find_opt last_disc e.client with
          | Some disc ->
            if not (Store.Context.dominates (ctx_of e.ctx) (ctx_of disc.ctx))
            then
              flag "ctx-continuity"
                (Printf.sprintf
                   "%s reconnected (session %d) with a stored context that \
                    lost entries it disconnected with at event %d — the \
                    context quorum intersection failed"
                   e.client e.session disc.seq)
              e (Some disc)
          | None -> ())
        | _ -> ())
      | T.Return, T.Disconnect ->
        if e.outcome = Some T.Ok_unit then Hashtbl.replace last_disc e.client e
      | T.Return, T.Reconstruct -> ());
      if e.phase = T.Invoke then Hashtbl.replace invokes e.op e)
    evs;
  List.rev !violations

let first_violation events =
  match check events with [] -> None | v :: _ -> Some v
