(** The consistency oracle: checks a recorded history against the
    paper's client-enforced guarantees.

    Properties (names are the [property] field of violations):

    - ["ctx-monotonic"] — a client's context vector never loses
      information: every event's snapshot dominates the previous
      snapshot of the same session (section 5.1; contexts only grow by
      {!Store.Context.observe}/[merge]).
    - ["ctx-continuity"] — a connect that recovered a *stored* context
      dominates the context the same client last disconnected with:
      the ⌈(n+b+1)/2⌉ quorum intersection (≥ b+1, hence one honest
      witness) makes losing a stored context impossible with ≤ b
      faults (Fig. 1).
    - ["read-freshness"] — a read never returns a stamp below the
      reader's context floor for that item at invocation: the
      single-writer regularity the paper gets from the client-side
      freshness check (Fig. 2).
    - ["read-your-writes"] — within a session, a read returns at least
      the client's own latest completed write of that item.
    - ["monotonic-reads"] — successive reads of one item in one session
      never go backwards (MRC).
    - ["read-linkage"] — every value a read returns was actually
      written: some write invocation carries the same (uid, stamp,
      value digest) and the same writer the read attributes it to. No
      server forgery, corruption, or replay under a fresh stamp can
      survive the client's signature + digest checks.
    - ["no-fork"] — one stamp never names two values, and no two writes
      by one writer share a multi-writer [(time, writer)] pair with
      different digests (the section 5.3 total order on
      [(time, uid, digest)] stamps; a fork here is proof the *writer*
      is faulty, which honest-writer histories must never show).

    The oracle sees only {!Store.Trace} events — what the client API
    admits to — so it checks exactly the guarantees an application
    could rely on. *)

type violation = {
  property : string;
  explanation : string;  (** human-readable, self-contained *)
  first : Store.Trace.event;
  second : Store.Trace.event option;
      (** the earlier event of the violating pair, when there is one *)
}

val check : Store.Trace.event list -> violation list
(** All violations, ordered by the [seq] of the event that completed
    them (so the head is the first moment the history went wrong).
    Events may be passed in any order; the oracle sorts by [seq]. *)

val first_violation : Store.Trace.event list -> violation option

val properties : (string * string) list
(** [(name, one-line definition)] for every property checked — used by
    reports and docs. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
