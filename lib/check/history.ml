type t = {
  lock : Mutex.t;
  mutable rev_events : Store.Trace.event list;  (* newest first *)
  mutable count : int;
}

let create () = { lock = Mutex.create (); rev_events = []; count = 0 }

let record t ev =
  Mutex.lock t.lock;
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let events t =
  Mutex.lock t.lock;
  let evs = List.rev t.rev_events in
  Mutex.unlock t.lock;
  evs

let length t =
  Mutex.lock t.lock;
  let n = t.count in
  Mutex.unlock t.lock;
  n

let in_use = Mutex.create ()
let active = ref false

let recording t fn =
  Mutex.lock in_use;
  if !active then begin
    Mutex.unlock in_use;
    invalid_arg "History.recording: already recording (recorder is global)"
  end;
  active := true;
  Mutex.unlock in_use;
  Store.Trace.reset ();
  Store.Trace.set_sink (Some (record t));
  Fun.protect
    ~finally:(fun () ->
      Store.Trace.set_sink None;
      Mutex.lock in_use;
      active := false;
      Mutex.unlock in_use)
    fn

(* ---------------- JSON ------------------------------------------------- *)

let str buf s =
  Buffer.add_char buf '"';
  Obs.Jsonx.escape_into buf s;
  Buffer.add_char buf '"'

let stamp_json buf (s : Store.Stamp.t) =
  match s with
  | Store.Stamp.Scalar v -> Buffer.add_string buf (Printf.sprintf "{\"t\": %d}" v)
  | Store.Stamp.Multi { time; writer; digest } ->
    Buffer.add_string buf (Printf.sprintf "{\"t\": %d, \"w\": " time);
    str buf writer;
    Buffer.add_string buf ", \"d\": ";
    str buf (Crypto.Hexs.encode digest);
    Buffer.add_char buf '}'

let ctx_json buf ctx =
  Buffer.add_char buf '[';
  List.iteri
    (fun i (uid, stamp) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf '[';
      str buf (Store.Uid.to_string uid);
      Buffer.add_string buf ", ";
      stamp_json buf stamp;
      Buffer.add_char buf ']')
    ctx;
  Buffer.add_char buf ']'

let kind_json buf (k : Store.Trace.opkind) =
  match k with
  | Store.Trace.Connect -> Buffer.add_string buf "{\"op\": \"connect\"}"
  | Store.Trace.Disconnect -> Buffer.add_string buf "{\"op\": \"disconnect\"}"
  | Store.Trace.Reconstruct -> Buffer.add_string buf "{\"op\": \"reconstruct\"}"
  | Store.Trace.Write { uid; stamp; digest } ->
    Buffer.add_string buf "{\"op\": \"write\", \"uid\": ";
    str buf (Store.Uid.to_string uid);
    Buffer.add_string buf ", \"stamp\": ";
    stamp_json buf stamp;
    Buffer.add_string buf ", \"digest\": ";
    str buf digest;
    Buffer.add_char buf '}'
  | Store.Trace.Read { uid } ->
    Buffer.add_string buf "{\"op\": \"read\", \"uid\": ";
    str buf (Store.Uid.to_string uid);
    Buffer.add_char buf '}'

let outcome_json buf (o : Store.Trace.outcome) =
  match o with
  | Store.Trace.Connected r ->
    Buffer.add_string buf
      (match r with
      | Store.Trace.Stored -> "{\"result\": \"connected\", \"ctx\": \"stored\"}"
      | Store.Trace.Fresh -> "{\"result\": \"connected\", \"ctx\": \"fresh\"}"
      | Store.Trace.Rebuilt -> "{\"result\": \"connected\", \"ctx\": \"rebuilt\"}")
  | Store.Trace.Ok_unit -> Buffer.add_string buf "{\"result\": \"ok\"}"
  | Store.Trace.Ok_value { stamp; digest; writer } ->
    Buffer.add_string buf "{\"result\": \"value\", \"stamp\": ";
    stamp_json buf stamp;
    Buffer.add_string buf ", \"digest\": ";
    str buf digest;
    Buffer.add_string buf ", \"writer\": ";
    str buf writer;
    Buffer.add_char buf '}'
  | Store.Trace.Failed e ->
    Buffer.add_string buf "{\"result\": \"error\", \"error\": ";
    str buf e;
    Buffer.add_char buf '}'

let event_json buf (e : Store.Trace.event) =
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\": %d, \"opid\": %d, \"time\": %.6f, \"client\": "
       e.seq e.op e.time);
  str buf e.client;
  Buffer.add_string buf
    (Printf.sprintf ", \"session\": %d, \"mode\": \"%s\", \"consistency\": \"%s\", \"epoch\": %d, \"phase\": \"%s\", \"kind\": "
       e.session
       (if e.multi_writer then "mw" else "sw")
       (if e.causal then "cc" else "mrc")
       e.epoch
       (match e.phase with Store.Trace.Invoke -> "invoke" | Store.Trace.Return -> "return"));
  kind_json buf e.kind;
  (match e.outcome with
  | None -> ()
  | Some o ->
    Buffer.add_string buf ", \"outcome\": ";
    outcome_json buf o);
  Buffer.add_string buf ", \"ctx\": ";
  ctx_json buf e.ctx;
  if e.trace <> "" then begin
    Buffer.add_string buf ", \"trace\": ";
    str buf e.trace
  end;
  Buffer.add_char buf '}'

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"events\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      event_json buf e)
    (events t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let digest t = Crypto.Sha256.hex_digest (to_json t)

let save_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t))
