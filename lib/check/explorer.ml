module Client = Store.Client
module Engine = Sim.Engine
module Srng = Sim.Srng

type fault_category =
  | Loss
  | Jitter
  | Crash
  | Partition
  | Byzantine
  | Reconfig
  | Frag_loss

let category_name = function
  | Loss -> "loss"
  | Jitter -> "jitter"
  | Crash -> "crash"
  | Partition -> "partition"
  | Byzantine -> "byzantine"
  | Reconfig -> "reconfig"
  | Frag_loss -> "frag-loss"

type reconfig =
  | Add_server of int
  | Remove_server of int
  | Replace_server of { remove : int; add : int }

type schedule = {
  seed : int;
  n : int;
  b : int;
  clients : int;
  mode : Client.mode;
  consistency : Client.consistency;
  read_spread : bool;
  items : int;
  ops_per_client : int;
  horizon : float;
  drop_probability : float;
  latency_hi : float;
  gossip_period : float;
  crashes : (int * float * float) list;
  partitions : (int list * float * float) list;
  byzantine : (int * Store.Faults.behavior) list;
  signing : Client.signing_mode;
  canary : bool;
  scripted : bool;
  reconfigs : (float * reconfig) list;
      (* time-ordered, admin-signed membership transitions; empty =
         static world (no epoch machinery at all) *)
  capacity : int;  (* server processes; ids n.. are join standbys *)
  dispersal : bool;
      (* big-value workload: clients write values over a small dispersal
         threshold, so the coded k-of-n data path runs under this
         schedule's faults, with a periodic fragment-repair round *)
  frag_losses : (int * float) list;
      (* (server, time): the server forgets every fragment it holds —
         the "holder lost its disk" fault the repair loop must undo *)
}

(* The latency floor below which [Jitter] counts as disabled. *)
let base_latency_hi = 0.002
let client_pool = [| "alice"; "bob"; "carol" |]

let schedule_of_seed seed =
  let rng = Srng.create seed in
  let n = Srng.pick rng [ 4; 5; 7; 10 ] in
  let max_b = min 2 ((n - 1) / 3) in
  let b = 1 + Srng.int_below rng max_b in
  let clients = 1 + Srng.int_below rng (Array.length client_pool) in
  let mode =
    if Srng.bool_with_probability rng 0.35 then Client.Multi_writer
    else Client.Single_writer
  in
  let consistency =
    if Srng.bool_with_probability rng 0.5 then Client.CC else Client.MRC
  in
  let read_spread = Srng.bool_with_probability rng 0.3 in
  let items = 1 + Srng.int_below rng 3 in
  let ops_per_client = 6 + Srng.int_below rng 7 in
  let horizon = 10.0 +. (float_of_int ops_per_client *. 2.0) in
  let drop_probability = Srng.pick rng [ 0.0; 0.0; 0.01; 0.05 ] in
  let latency_hi = Srng.pick rng [ base_latency_hi; 0.01; 0.05 ] in
  let gossip_period = Srng.pick rng [ 0.5; 2.0 ] in
  let window () =
    let from_t = Srng.uniform rng ~lo:1.0 ~hi:(horizon *. 0.6) in
    let until_t = from_t +. Srng.uniform rng ~lo:2.0 ~hi:8.0 in
    (from_t, until_t)
  in
  let crashes =
    List.init (Srng.int_below rng 3) (fun _ ->
        let s = Srng.int_below rng n in
        let from_t, until_t = window () in
        (s, from_t, until_t))
  in
  let partitions =
    if Srng.bool_with_probability rng 0.4 then
      let s = Srng.int_below rng n in
      let from_t, until_t = window () in
      [ ([ s ], from_t, until_t) ]
    else []
  in
  let byzantine =
    (* Stay inside the threat model: at most [b] lying servers. *)
    let behaviors =
      Store.Faults.
        [ Stale; Corrupt_value; Corrupt_meta; Equivocate; Silent_reads;
          Drop_gossip; Crash; Downgrade ]
      @ (if mode = Client.Multi_writer then [ Store.Faults.Eager_report ] else [])
    in
    let order = Array.init n Fun.id in
    Srng.shuffle rng order;
    List.init (Srng.int_below rng (b + 1)) (fun i ->
        (order.(i), Srng.pick rng behaviors))
  in
  (* Drawn last so adding signing modes leaves earlier draws (topology,
     faults) of a given seed unchanged. Baseline twice: the per-write-sig
     path stays the most exercised. *)
  let signing =
    Srng.pick rng
      [
        Client.Per_write_sig; Client.Per_write_sig; Client.Merkle_batch 4;
        Client.Mac_fast;
      ]
  in
  (* Dispersal draws come from a separate stream (seed xor a constant),
     like the reconfig draws: every draw above is byte-for-byte the
     seed's familiar schedule, so existing determinism digests stay
     comparable. *)
  let drng = Srng.create (seed lxor 0xd15b) in
  let dispersal = Srng.bool_with_probability drng 0.4 in
  let frag_losses =
    if not dispersal then []
    else
      List.init (Srng.int_below drng 3) (fun _ ->
          ( Srng.int_below drng n,
            Srng.uniform drng ~lo:2.0 ~hi:(horizon *. 0.8) ))
  in
  {
    seed;
    n;
    b;
    clients;
    mode;
    consistency;
    read_spread;
    items;
    ops_per_client;
    horizon;
    drop_probability;
    latency_hi;
    gossip_period;
    crashes;
    partitions;
    byzantine;
    signing;
    canary = false;
    scripted = false;
    reconfigs = [];
    capacity = n;
    dispersal;
    frag_losses;
  }

(* A seed's schedule plus 1-2 membership transitions. The reconfig draws
   come from a *separate* stream (seed xor a constant), so every other
   draw of [schedule_of_seed] — topology, faults, signing — is byte-for-
   byte the seed's familiar schedule and existing determinism digests
   stay comparable. Transitions keep (n, b) valid at every step: adds
   bring in fresh standbys, removes only happen above the 3b+1 floor,
   replaces keep n constant. *)
let reconfig_schedule_of_seed seed =
  let s = schedule_of_seed seed in
  let rng = Srng.create (seed lxor 0x5eed) in
  let count = 1 + Srng.int_below rng 2 in
  let members = ref (List.init s.n Fun.id) in
  let next_standby = ref s.n in
  let events =
    List.init count (fun i ->
        let at =
          s.horizon
          *. ((0.2 +. (0.5 *. float_of_int i /. float_of_int count))
             +. (0.15 *. float_of_int (Srng.int_below rng 100) /. 100.))
        in
        let pick_member () =
          List.nth !members (Srng.int_below rng (List.length !members))
        in
        let can_remove = List.length !members - 1 >= (3 * s.b) + 1 in
        let ev =
          match Srng.int_below rng 3 with
          | 0 ->
            let add = !next_standby in
            incr next_standby;
            members := !members @ [ add ];
            Add_server add
          | 1 when can_remove ->
            let r = pick_member () in
            members := List.filter (fun x -> x <> r) !members;
            Remove_server r
          | _ ->
            let r = pick_member () in
            let add = !next_standby in
            incr next_standby;
            members := add :: List.filter (fun x -> x <> r) !members;
            Replace_server { remove = r; add }
        in
        (at, ev))
  in
  { s with reconfigs = events; capacity = !next_standby }

let apply_reconfig ev servers =
  match ev with
  | Add_server s -> List.sort_uniq compare (s :: servers)
  | Remove_server s -> List.filter (fun x -> x <> s) servers
  | Replace_server { remove; add } ->
    List.sort_uniq compare (add :: List.filter (fun x -> x <> remove) servers)

let canary_schedule ~seed =
  {
    seed;
    n = 4;
    b = 1;
    clients = 2;
    mode = Client.Single_writer;
    consistency = Client.MRC;
    read_spread = false;
    items = 1;
    ops_per_client = 4;
    horizon = 13.0;
    drop_probability = 0.0;
    latency_hi = 0.02;
    gossip_period = 1.0;
    (* server 0 misses the second write and recovers stale; server 1
       then goes down so the read's b+1 poll set only hears server 0 *)
    crashes = [ (0, 0.5, 9.0); (1, 9.5, 1.0e9) ];
    (* decoys the shrinker must prove irrelevant *)
    partitions = [ ([ 2 ], 5.0, 6.0) ];
    byzantine = [ (3, Store.Faults.Corrupt_value) ];
    signing = Client.Per_write_sig;
    canary = true;
    scripted = true;
    reconfigs = [];
    capacity = 4;
    dispersal = false;
    frag_losses = [];
  }

let describe s =
  let windows l =
    String.concat ","
      (List.map (fun (sv, f, u) -> Printf.sprintf "%d@[%.1f,%.1f]" sv f u) l)
  in
  let parts =
    String.concat ","
      (List.map
         (fun (g, f, u) ->
           Printf.sprintf "{%s}@[%.1f,%.1f]"
             (String.concat ";" (List.map string_of_int g))
             f u)
         s.partitions)
  in
  let byz =
    String.concat ","
      (List.map
         (fun (sv, beh) ->
           Printf.sprintf "%d:%s" sv (Store.Faults.to_string beh))
         s.byzantine)
  in
  let reconf =
    String.concat ","
      (List.map
         (fun (at, ev) ->
           match ev with
           | Add_server sv -> Printf.sprintf "+%d@%.1f" sv at
           | Remove_server sv -> Printf.sprintf "-%d@%.1f" sv at
           | Replace_server { remove; add } ->
             Printf.sprintf "%d>%d@%.1f" remove add at)
         s.reconfigs)
  in
  let fragl =
    String.concat ","
      (List.map
         (fun (sv, at) -> Printf.sprintf "%d@%.1f" sv at)
         s.frag_losses)
  in
  Printf.sprintf
    "seed=%d n=%d b=%d clients=%d %s/%s/%s%s%s items=%d ops=%d drop=%.2f \
     lat<=%.3fs gossip=%.1fs crash=[%s] part=[%s] byz=[%s] reconf=[%s] \
     fragloss=[%s]%s"
    s.seed s.n s.b s.clients
    (match s.mode with Client.Single_writer -> "sw" | Client.Multi_writer -> "mw")
    (match s.consistency with Client.MRC -> "mrc" | Client.CC -> "cc")
    (match s.signing with
    | Client.Per_write_sig -> "sig"
    | Client.Merkle_batch k -> Printf.sprintf "batch%d" k
    | Client.Mac_fast -> "mac")
    (if s.read_spread then "/spread" else "")
    (if s.dispersal then "/disp" else "")
    s.items s.ops_per_client s.drop_probability s.latency_hi s.gossip_period
    (windows s.crashes) parts byz reconf fragl
    (if s.canary then " CANARY" else "")

let active_categories s =
  List.filter_map Fun.id
    [
      (if s.drop_probability > 0.0 then Some Loss else None);
      (if s.latency_hi > base_latency_hi then Some Jitter else None);
      (if s.crashes <> [] then Some Crash else None);
      (if s.partitions <> [] then Some Partition else None);
      (if s.byzantine <> [] then Some Byzantine else None);
      (if s.reconfigs <> [] then Some Reconfig else None);
      (if s.frag_losses <> [] then Some Frag_loss else None);
    ]

let disable cat s =
  match cat with
  | Loss -> { s with drop_probability = 0.0 }
  | Jitter -> { s with latency_hi = base_latency_hi }
  | Crash -> { s with crashes = [] }
  | Partition -> { s with partitions = [] }
  | Byzantine -> { s with byzantine = [] }
  | Reconfig ->
    (* No membership events; the epoch machinery disappears entirely
       (capacity stays — idle standbys are inert). *)
    { s with reconfigs = [] }
  | Frag_loss ->
    (* Keep the dispersed workload, drop the disk-loss events — the
       shrinker isolates whether losing fragments (vs merely coding
       them) is what broke the schedule. *)
    { s with frag_losses = [] }

type outcome = {
  schedule : schedule;
  history : History.t;
  events : int;
  ops_ok : int;
  ops_failed : int;
  violations : Oracle.violation list;
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  history_digest : string;
}

(* ---------------- Workloads ------------------------------------------- *)

let client_config sched i base =
  {
    base with
    Client.consistency = sched.consistency;
    mode = sched.mode;
    timeout = 0.3;
    read_retries = 1;
    retry_delay = 0.2;
    write_retries = 1;
    read_spread = sched.read_spread;
    seed = sched.seed + i;
    canary_skip_freshness = sched.canary && i = 0;
    signing = sched.signing;
    (* Small so random runs exercise the escalation path, not just the
       read-triggered flush. *)
    escalate_every = 3;
    (* Low threshold so the padded workload values actually take the
       coded path (production default is 64 KiB). *)
    dispersal_threshold = (if sched.dispersal then 256 else 64 * 1024);
    epoch_admin =
      (if sched.reconfigs = [] then None
       else Some (Workload.Worlds.key_of "admin").Crypto.Rsa.public);
  }

let connect_client sched (w : Workload.Worlds.t) i name =
  let config = client_config sched i (Client.default_config ~n:sched.n ~b:sched.b) in
  Client.connect ~config ~uid:name ~key:(Workload.Worlds.key_of name)
    ~keyring:w.Workload.Worlds.keyring ~group:"g" ()

let sleep_until t =
  let now = Sim.Runtime.now () in
  if t > now then Sim.Runtime.sleep (t -. now)

(* Random mix: each client runs [ops_per_client] operations in two
   sessions (the mid-run reconnect exercises context storage and the
   oracle's continuity check). In single-writer mode only client 0
   writes. A failed MRC write leaves the context at the old time, so
   the next write of that item would reuse the stamp — the paper's
   writer must retry the same update, which our internal write retry
   already did, so the workload simply stops writing that item. *)
let random_fibers sched (w : Workload.Worlds.t) engine ~ops_ok ~ops_failed =
  for i = 0 to sched.clients - 1 do
    let name = client_pool.(i) in
    Engine.spawn engine
      ~at:(0.05 *. float_of_int i)
      ~client:(-(i + 1))
      (fun () ->
        let rng = Srng.create ((sched.seed * 131) + i) in
        let poisoned : (string, unit) Hashtbl.t = Hashtbl.create 4 in
        let connect () =
          match connect_client sched w i name with
          | Ok c ->
            incr ops_ok;
            Some c
          | Error _ ->
            incr ops_failed;
            None
        in
        let do_op c op =
          let item = "item" ^ string_of_int (Srng.int_below rng sched.items) in
          let writer = sched.mode = Client.Multi_writer || i = 0 in
          if
            writer
            && (not (Hashtbl.mem poisoned item))
            && Srng.bool_with_probability rng 0.5
          then (
            (* With dispersal on, every other write is padded over the
               threshold, so replicated and coded writes interleave on
               the same items (no extra rng draws: op parity decides). *)
            let value =
              let base = Printf.sprintf "%s-%d-%s" name op item in
              if sched.dispersal && op mod 2 = 0 then
                base ^ String.make 512 '.'
              else base
            in
            match Client.write c ~item value with
            | Ok () -> incr ops_ok
            | Error _ ->
              incr ops_failed;
              if sched.consistency = Client.MRC then
                Hashtbl.replace poisoned item ())
          else
            match Client.read c ~item with
            | Ok _ -> incr ops_ok
            | Error _ -> incr ops_failed
        in
        let disconnect c =
          match Client.disconnect c with
          | Ok () -> incr ops_ok
          | Error _ -> incr ops_failed
        in
        match connect () with
        | None -> ()
        | Some first ->
          let client = ref first in
          let half = max 1 (sched.ops_per_client / 2) in
          (try
             for op = 1 to sched.ops_per_client do
               Sim.Runtime.sleep (Srng.exponential rng ~mean:0.8);
               do_op !client op;
               if op = half then begin
                 disconnect !client;
                 Sim.Runtime.sleep 0.5;
                 match connect () with
                 | Some c -> client := c
                 | None -> raise Exit
               end
             done;
             disconnect !client
           with Exit -> ()))
  done

(* The canary choreography (see {!canary_schedule}): alice writes v1,
   server 0 crashes and misses v2, recovers stale; server 1 goes down;
   alice's t=11 read polls {0, 1} and only hears stale server 0. The
   honest client rejects v1 (below its context floor) and escalates to
   the fresh copy; the canary accepts it — the oracle must notice. *)
let canary_fibers sched (w : Workload.Worlds.t) engine ~ops_ok ~ops_failed =
  let count = function
    | Ok _ -> incr ops_ok
    | Error _ -> incr ops_failed
  in
  Engine.spawn engine ~at:0.0 ~client:(-1) (fun () ->
      match connect_client sched w 0 "alice" with
      | Error _ -> incr ops_failed
      | Ok alice ->
        incr ops_ok;
        count (Client.write alice ~item:"x" "v1");
        sleep_until 2.0;
        count (Client.write alice ~item:"x" "v2");
        sleep_until 11.0;
        count (Client.read alice ~item:"x");
        count (Client.disconnect alice));
  Engine.spawn engine ~at:0.2 ~client:(-2) (fun () ->
      match connect_client sched w 1 "bob" with
      | Error _ -> incr ops_failed
      | Ok bob ->
        incr ops_ok;
        sleep_until 4.0;
        count (Client.read bob ~item:"x");
        sleep_until 6.5;
        count (Client.disconnect bob))

(* ---------------- Running one schedule --------------------------------- *)

let run sched =
  let history = History.create () in
  let ops_ok = ref 0 and ops_failed = ref 0 in
  let sent = ref 0 and bytes = ref 0 and dropped = ref 0 in
  History.recording history (fun () ->
      let names =
        Array.to_list (Array.sub client_pool 0 sched.clients)
      in
      let admin =
        if sched.reconfigs = [] then None
        else Some (Workload.Worlds.key_of "admin")
      in
      let w =
        Workload.Worlds.make ~n:sched.n ~b:sched.b ~capacity:sched.capacity
          ?epoch_admin:(Option.map (fun k -> k.Crypto.Rsa.public) admin)
          ~clients:names ()
      in
      let latency =
        Sim.Latency.make ~drop_probability:sched.drop_probability
          (Sim.Latency.Uniform { lo = 0.0005; hi = sched.latency_hi })
      in
      let engine = Engine.create ~seed:sched.seed ~latency () in
      Workload.Worlds.register_engine w engine;
      List.iter (fun (i, beh) -> Workload.Worlds.wrap w i beh) sched.byzantine;
      ignore
        (Store.Gossip.install engine ~servers:w.Workload.Worlds.servers
           ~period:sched.gossip_period
           ~rng:(Srng.create (sched.seed + 7919))
           ());
      if sched.dispersal then begin
        (* Fragment anti-entropy on the gossip cadence, plus the
           disk-loss events it must undo. *)
        ignore
          (Engine.every engine ~period:sched.gossip_period ~client:(-98)
             (fun () ->
               ignore
                 (Store.Gossip.repair_once ~servers:w.Workload.Worlds.servers ()
                   : int)));
        List.iter
          (fun (s, at) ->
            Engine.spawn engine ~at ~client:(-97) (fun () ->
                ignore
                  (Store.Server.drop_all_fragments
                     w.Workload.Worlds.servers.(s)
                    : int)))
          sched.frag_losses
      end;
      List.iter
        (fun (s, from_t, until_t) ->
          Engine.spawn engine ~at:from_t (fun () -> Engine.set_down engine s true);
          Engine.spawn engine ~at:until_t (fun () ->
              Engine.set_down engine s false))
        sched.crashes;
      if sched.partitions <> [] then begin
        let isolated : (int, unit) Hashtbl.t = Hashtbl.create 4 in
        Engine.set_reachable engine (fun src dst ->
            Bool.equal (Hashtbl.mem isolated src) (Hashtbl.mem isolated dst));
        List.iter
          (fun (group, from_t, until_t) ->
            Engine.spawn engine ~at:from_t (fun () ->
                List.iter (fun s -> Hashtbl.replace isolated s ()) group);
            Engine.spawn engine ~at:until_t (fun () ->
                List.iter (fun s -> Hashtbl.remove isolated s) group))
          sched.partitions
      end;
      (match admin with
      | None -> ()
      | Some akey ->
        (* Every process (standbys included) starts from the same signed
           genesis; later epochs reach laggards via gossip piggyback. *)
        let genesis =
          match
            Store.Config_epoch.genesis ~servers:(List.init sched.n Fun.id)
              ~b:sched.b ()
          with
          | Ok e -> Store.Config_epoch.sign e akey
          | Error m -> failwith ("Explorer.run: genesis: " ^ m)
        in
        Array.iter
          (fun s -> Store.Server.set_epoch s genesis)
          w.Workload.Worlds.servers;
        (* The admin's view of the chain advances at each scheduled time
           regardless of delivery — announcements can be lost or arrive
           at crashed servers, and the system must still converge. *)
        let current = ref genesis in
        List.iter
          (fun (at, ev) ->
            Engine.spawn engine ~at ~client:(-99) (fun () ->
                let old_members = Store.Config_epoch.servers !current in
                let servers = apply_reconfig ev old_members in
                match
                  Store.Config_epoch.next !current ~servers ~b:sched.b ()
                with
                | Error _ -> ()
                | Ok e ->
                  let e = Store.Config_epoch.sign e akey in
                  current := e;
                  let msg =
                    Store.Payload.encode_envelope
                      {
                        Store.Payload.token = None;
                        epoch = 0;
                        request = Store.Payload.Epoch_announce e;
                      }
                  in
                  List.iter
                    (fun s -> Sim.Runtime.send s msg)
                    (List.sort_uniq compare (old_members @ servers))))
          sched.reconfigs);
      if sched.scripted then canary_fibers sched w engine ~ops_ok ~ops_failed
      else random_fibers sched w engine ~ops_ok ~ops_failed;
      Engine.run ~until:sched.horizon engine;
      let c = Engine.counters engine in
      sent := c.Engine.messages_sent;
      bytes := c.Engine.bytes_sent;
      dropped := c.Engine.messages_dropped);
  let events = History.events history in
  {
    schedule = sched;
    history;
    events = List.length events;
    ops_ok = !ops_ok;
    ops_failed = !ops_failed;
    violations = Oracle.check events;
    messages_sent = !sent;
    bytes_sent = !bytes;
    messages_dropped = !dropped;
    history_digest = History.digest history;
  }

(* ---------------- Shrinking ------------------------------------------- *)

let shrink out =
  if out.violations = [] then (out, [])
  else begin
    let best = ref out in
    List.iter
      (fun cat ->
        if List.mem cat (active_categories !best.schedule) then begin
          let trial = run (disable cat !best.schedule) in
          if trial.violations <> [] then best := trial
        end)
      [ Byzantine; Partition; Loss; Jitter; Crash; Reconfig ];
    (!best, active_categories !best.schedule)
  end

(* ---------------- Reports --------------------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let violation_report_json out =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"check-violation-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" out.schedule.seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"schedule\": %s,\n" (json_string (describe out.schedule)));
  Buffer.add_string buf
    (Printf.sprintf "  \"history_digest\": %s,\n"
       (json_string out.history_digest));
  Buffer.add_string buf "  \"violations\": [\n";
  List.iteri
    (fun i (v : Oracle.violation) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"property\": %s, \"explanation\": %s, \"first_seq\": %d%s}"
           (json_string v.property)
           (json_string v.explanation)
           v.first.Store.Trace.seq
           (match v.second with
           | None -> ""
           | Some e -> Printf.sprintf ", \"second_seq\": %d" e.Store.Trace.seq)))
    out.violations;
  Buffer.add_string buf "\n  ],\n  \"history\": ";
  Buffer.add_string buf (History.to_json out.history);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type summary = {
  runs : int;
  total_events : int;
  total_ok : int;
  total_failed : int;
  violated : outcome list;
}

let explore ~seeds =
  List.fold_left
    (fun acc seed ->
      let out = run (schedule_of_seed seed) in
      {
        runs = acc.runs + 1;
        total_events = acc.total_events + out.events;
        total_ok = acc.total_ok + out.ops_ok;
        total_failed = acc.total_failed + out.ops_failed;
        violated =
          (if out.violations <> [] then out :: acc.violated else acc.violated);
      })
    { runs = 0; total_events = 0; total_ok = 0; total_failed = 0; violated = [] }
    seeds
