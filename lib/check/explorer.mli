(** Seeded schedule exploration: run many fault-injected simulator
    schedules, record every client history, and hand each one to
    {!Oracle}.

    A {!schedule} is a pure value derived from a seed — everything the
    run does (topology, workload mix, latency, loss, crash windows,
    partitions, Byzantine wrappers) comes from it, so a violation
    reproduces from its printed seed alone. Fault injection never
    exceeds the paper's threat model: at most [b] Byzantine servers
    (crashes and partitions are benign and may exceed [b]; they only
    cost liveness, which the oracle does not score). *)

type fault_category =
  | Loss
  | Jitter
  | Crash
  | Partition
  | Byzantine
  | Reconfig
  | Frag_loss
      (** a server forgets every coded fragment it holds mid-run — a
          committed dispersed write survives it as long as at most [b]
          holders are lost between repair rounds *)

val category_name : fault_category -> string

type reconfig =
  | Add_server of int  (** bring a standby into the membership *)
  | Remove_server of int  (** drain a member out (only above the 3b+1 floor) *)
  | Replace_server of { remove : int; add : int }  (** rolling swap, n constant *)

type schedule = {
  seed : int;
  n : int;
  b : int;
  clients : int;  (** 1–3, drawn from a fixed name pool *)
  mode : Store.Client.mode;
  consistency : Store.Client.consistency;
  read_spread : bool;
  items : int;
  ops_per_client : int;
  horizon : float;  (** virtual seconds to run the engine *)
  drop_probability : float;
  latency_hi : float;  (** uniform one-way delay upper bound (s) *)
  gossip_period : float;
  crashes : (int * float * float) list;  (** server, down-from, up-at *)
  partitions : (int list * float * float) list;
      (** isolated group, window; members keep talking to each other *)
  byzantine : (int * Store.Faults.behavior) list;  (** at most [b] *)
  signing : Store.Client.signing_mode;
      (** write-evidence mode for every client in the run; random
          schedules draw per-write-sig (weighted), Merkle batching, or
          the MAC fast path so the oracle checks all three *)
  canary : bool;
      (** client 0 runs with [canary_skip_freshness] — the deliberately
          broken client the oracle must flag *)
  scripted : bool;
      (** run the fixed canary choreography instead of the random mix *)
  reconfigs : (float * reconfig) list;
      (** time-ordered admin-signed membership transitions; empty means a
          static world with no epoch machinery at all *)
  capacity : int;
      (** server processes created for the run; ids [n ..] are standbys
          that [Add_server]/[Replace_server] can bring in *)
  dispersal : bool;
      (** big-value workload: every other write is padded over a small
          dispersal threshold, so the coded k-of-n data path runs under
          this schedule's faults with a periodic fragment-repair round *)
  frag_losses : (int * float) list;
      (** (server, time) whole-disk fragment losses (drawn only when
          [dispersal] is on, from the same separate stream) *)
}

val schedule_of_seed : int -> schedule
(** The random-mix schedule for a seed (never canary, never scripted,
    no reconfigurations). *)

val reconfig_schedule_of_seed : int -> schedule
(** [schedule_of_seed seed] plus 1–2 membership transitions drawn from a
    separate random stream, so every non-reconfig draw matches the plain
    schedule for the same seed. Transitions keep the membership valid
    ([>= 3b+1]) at every step. *)

val canary_schedule : seed:int -> schedule
(** The scripted stale-read choreography: one writer-reader whose
    freshness check is disabled, a crash window that leaves server 0
    with only the first write, plus decoy faults (a Byzantine
    [Corrupt_value] server, a partition window, latency jitter) that
    {!shrink} must eliminate, leaving only [Crash]. With
    [canary = false] the same choreography runs an honest client — the
    control that must produce no violation. *)

val describe : schedule -> string
(** One line, self-contained enough to eyeball the fault plan. *)

val active_categories : schedule -> fault_category list
val disable : fault_category -> schedule -> schedule

type outcome = {
  schedule : schedule;
  history : History.t;
  events : int;
  ops_ok : int;
  ops_failed : int;  (** failed client operations (liveness, not safety) *)
  violations : Oracle.violation list;
  messages_sent : int;
  bytes_sent : int;
  messages_dropped : int;
  history_digest : string;  (** {!History.digest} — determinism witness *)
}

val run : schedule -> outcome
(** Deterministic: the same schedule yields the same [history_digest],
    engine counters and violations. *)

val shrink : outcome -> outcome * fault_category list
(** Greedy fault minimization: for each active category, re-run the
    schedule with that category disabled and keep it disabled when the
    violation persists. Returns the minimal violating outcome and the
    fault categories it still needs. Identity on violation-free
    outcomes. *)

val violation_report_json : outcome -> string
(** Counterexample artifact: schedule, violations (property,
    explanation, event pair) and the full history — everything needed
    to replay the oracle offline. *)

type summary = {
  runs : int;
  total_events : int;
  total_ok : int;
  total_failed : int;
  violated : outcome list;
}

val explore : seeds:int list -> summary
(** Run [schedule_of_seed] for every seed; violating outcomes are
    collected (histories of clean runs are dropped as they go). *)
