(* Counters over geometrically spaced buckets. A mutex (not atomics)
   guards each histogram: observations are a handful of loads and
   stores, so the lock is uncontended in practice and keeps merge and
   snapshot trivially consistent. *)

let decades = 10 (* buckets per decade *)
let bucket_count = 100 (* 100 ns .. ~794 s *)

let bounds =
  Array.init bucket_count (fun i ->
      100.0 *. (10.0 ** (float_of_int i /. float_of_int decades)))

(* Binary search for the first bound >= v: deterministic against the
   precomputed bounds (no float-log round-tripping), which is what lets
   the percentile oracle test demand exact bucket agreement. *)
let bucket_of v =
  if v <= bounds.(0) then 0
  else if v > bounds.(bucket_count - 1) then bucket_count
  else begin
    let lo = ref 0 and hi = ref (bucket_count - 1) in
    (* invariant: bounds.(!lo) < v <= bounds.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

type t = {
  buckets : int array; (* bucket_count + 1: last is overflow *)
  mutable n : int;
  mutable total : float;
  mutable peak : float;
  lock : Mutex.t;
}

let create () =
  {
    buckets = Array.make (bucket_count + 1) 0;
    n = 0;
    total = 0.0;
    peak = 0.0;
    lock = Mutex.create ();
  }

let observe t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of v in
  Mutex.lock t.lock;
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v > t.peak then t.peak <- v;
  Mutex.unlock t.lock

let count t =
  Mutex.lock t.lock;
  let n = t.n in
  Mutex.unlock t.lock;
  n

let sum t =
  Mutex.lock t.lock;
  let s = t.total in
  Mutex.unlock t.lock;
  s

let max_value t =
  Mutex.lock t.lock;
  let m = t.peak in
  Mutex.unlock t.lock;
  m

let counts t =
  Mutex.lock t.lock;
  let c = Array.copy t.buckets in
  Mutex.unlock t.lock;
  c

let cumulative t =
  let c = counts t in
  for i = 1 to bucket_count do
    c.(i) <- c.(i) + c.(i - 1)
  done;
  c

let percentile t p =
  Mutex.lock t.lock;
  let n = t.n in
  let c = Array.copy t.buckets in
  let peak = t.peak in
  Mutex.unlock t.lock;
  if n = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      max 1 (min n r)
    in
    let rec find i cum =
      let cum = cum + c.(i) in
      if cum >= rank then i else find (i + 1) cum
    in
    let i = find 0 0 in
    if i >= bucket_count then peak else bounds.(i)
  end

let merge a b =
  let t = create () in
  let add src =
    Mutex.lock src.lock;
    for i = 0 to bucket_count do
      t.buckets.(i) <- t.buckets.(i) + src.buckets.(i)
    done;
    t.n <- t.n + src.n;
    t.total <- t.total +. src.total;
    if src.peak > t.peak then t.peak <- src.peak;
    Mutex.unlock src.lock
  in
  add a;
  add b;
  t

let reset t =
  Mutex.lock t.lock;
  Array.fill t.buckets 0 (bucket_count + 1) 0;
  t.n <- 0;
  t.total <- 0.0;
  t.peak <- 0.0;
  Mutex.unlock t.lock
