type phase = { pname : string; pstart_ns : float; pdur_ns : float }

(* Rpc pairs are kept structured and only rendered when a span is
   dumped: annotating a quorum round then costs a cons, not a string
   build, on the transport hot path. *)
type attr = Text of string | Rpc of (string * int) list

let attr_text = function
  | Text s -> s
  | Rpc pairs ->
    let b = Buffer.create 48 in
    Buffer.add_string b "rpc";
    List.iter
      (fun (ep, id) ->
        Buffer.add_char b ' ';
        Buffer.add_string b ep;
        Buffer.add_char b '#';
        Buffer.add_string b (string_of_int id))
      pairs;
    Buffer.contents b

type closed = {
  id : int;
  op : string;
  thread : int;
  start : float;
  dur_ns : float;
  phases : phase list;
  attrs : attr list;
}

(* A span being built on some thread. Phases and attrs accumulate
   reversed; [path] is the stack of open phase names. *)
type live = {
  lid : int;
  lop : string;
  lthread : int;
  lstart : float;
  mutable lphases : phase list;
  mutable lattrs : attr list;
  mutable path : string list;
}

let on = ref false
let set_enabled v = on := v
let enabled () = !on

(* Per-OS-thread active span. The table is only touched when tracing is
   enabled, and each thread only ever writes its own binding; the lock
   covers the table structure itself. *)
let tls : (int, live) Hashtbl.t = Hashtbl.create 16
let tls_lock = Mutex.create ()

(* Guarded by [tls_lock]: span ids are only minted while installing the
   thread's binding, so the counter rides the same critical section. *)
let id_counter = ref 0

let self_id () = Thread.id (Thread.self ())

let current () =
  let tid = self_id () in
  Mutex.lock tls_lock;
  let l = Hashtbl.find_opt tls tid in
  Mutex.unlock tls_lock;
  l

let current_id () =
  if not !on then None
  else match current () with Some l -> Some l.lid | None -> None

let add_attr a =
  match current () with
  | Some l -> l.lattrs <- a :: l.lattrs
  | None -> ()

let annotate s = if !on then add_attr (Text s)
let annotate_rpc pairs = if !on then add_attr (Rpc pairs)

(* --- phase-duration registry ------------------------------------------- *)

let registry : (string * string, Histo.t) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let histo_locked key =
  match Hashtbl.find_opt registry key with
  | Some h -> h
  | None ->
    let h = Histo.create () in
    Hashtbl.add registry key h;
    h

let phase_stats () =
  Mutex.lock registry_lock;
  let all =
    Hashtbl.fold (fun (op, phase) h acc -> (op, phase, h) :: acc) registry []
  in
  Mutex.unlock registry_lock;
  List.sort
    (fun (o1, p1, _) (o2, p2, _) ->
      match String.compare o1 o2 with 0 -> String.compare p1 p2 | c -> c)
    all

let phase_histo ~op ~phase =
  Mutex.lock registry_lock;
  let h = Hashtbl.find_opt registry (op, phase) in
  Mutex.unlock registry_lock;
  h

let phase_family ?(name = "securestore_phase_duration_seconds") () =
  Expo.family ~name
    ~help:"Per-operation phase durations from tracing spans."
    (Expo.Histogram
       (List.map
          (fun (op, ph, h) -> ([ ("op", op); ("phase", ph) ], h))
          (phase_stats ())))

let reset_stats () =
  Mutex.lock registry_lock;
  Hashtbl.reset registry;
  Mutex.unlock registry_lock

(* --- journal ------------------------------------------------------------ *)

(* Ring buffer of completed spans: slot [total mod capacity] is written
   next, so the buffer always holds the newest [capacity] spans. *)
let journal_lock = Mutex.create ()
let journal = ref (Array.make 256 None)
let journal_total = ref 0

let set_journal_capacity cap =
  let cap = max 1 cap in
  Mutex.lock journal_lock;
  journal := Array.make cap None;
  journal_total := 0;
  Mutex.unlock journal_lock

let reset_journal () =
  Mutex.lock journal_lock;
  Array.fill !journal 0 (Array.length !journal) None;
  journal_total := 0;
  Mutex.unlock journal_lock

let journal_add c =
  Mutex.lock journal_lock;
  let arr = !journal in
  arr.(!journal_total mod Array.length arr) <- Some c;
  incr journal_total;
  Mutex.unlock journal_lock

let recent ?limit () =
  Mutex.lock journal_lock;
  let arr = Array.copy !journal in
  let total = !journal_total in
  Mutex.unlock journal_lock;
  let cap = Array.length arr in
  let stored = min total cap in
  let wanted = match limit with Some l -> min l stored | None -> stored in
  (* Newest first: walk backwards from the last written slot. *)
  List.filter_map
    (fun i -> arr.((total - 1 - i + (cap * 2)) mod cap))
    (List.init wanted Fun.id)

(* --- JSON dump ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json buf c =
  Printf.bprintf buf
    "{\"id\":%d,\"op\":\"%s\",\"thread\":%d,\"start\":%.6f,\"dur_ns\":%.0f,"
    c.id (json_escape c.op) c.thread c.start c.dur_ns;
  Buffer.add_string buf "\"attrs\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\"" (json_escape (attr_text a)))
    c.attrs;
  Buffer.add_string buf "],\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":\"%s\",\"start_ns\":%.0f,\"dur_ns\":%.0f}"
        (json_escape p.pname) p.pstart_ns p.pdur_ns)
    c.phases;
  Buffer.add_string buf "]}"

let spans_json ?limit () =
  let spans = recent ?limit () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"spans\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      span_json buf c)
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- span construction -------------------------------------------------- *)

let now () = Unix.gettimeofday ()

let close_span l =
  let stop = now () in
  let dur_ns = (stop -. l.lstart) *. 1e9 in
  let phases = List.rev l.lphases in
  let c =
    {
      id = l.lid;
      op = l.lop;
      thread = l.lthread;
      start = l.lstart;
      dur_ns;
      phases;
      attrs = List.rev l.lattrs;
    }
  in
  (* One registry lock for the whole span (total + every phase) rather
     than a lock round-trip per phase. *)
  Mutex.lock registry_lock;
  let total_h = histo_locked (l.lop, "total") in
  let phase_hs =
    List.map (fun p -> (histo_locked (l.lop, p.pname), p.pdur_ns)) phases
  in
  Mutex.unlock registry_lock;
  Histo.observe total_h dur_ns;
  List.iter (fun (h, d) -> Histo.observe h d) phase_hs;
  journal_add c

let run_phase l name f =
  let path = name :: l.path in
  (* Unnested phases (the overwhelmingly common case) keep their name
     as-is — no list reversal, no concatenation. *)
  let pname =
    match path with [ only ] -> only | _ -> String.concat "/" (List.rev path)
  in
  l.path <- path;
  let t0 = now () in
  (* Hand-rolled protect: this runs per phase on the hot path, and
     [Fun.protect]'s closure is measurable there. *)
  let finish () =
    let t1 = now () in
    l.lphases <-
      {
        pname;
        pstart_ns = (t0 -. l.lstart) *. 1e9;
        pdur_ns = (t1 -. t0) *. 1e9;
      }
      :: l.lphases;
    l.path <- (match l.path with _ :: rest -> rest | [] -> [])
  in
  match f () with
  | r ->
    finish ();
    r
  | exception e ->
    finish ();
    raise e

let with_phase name f =
  if not !on then f ()
  else match current () with None -> f () | Some l -> run_phase l name f

let with_op op f =
  if not !on then f ()
  else
    match current () with
    | Some l ->
      (* An op inside an op: the inner operation is a phase of the
         outer one (a connect's context read, say). *)
      run_phase l op f
    | None ->
      let tid = self_id () in
      let start = now () in
      Mutex.lock tls_lock;
      incr id_counter;
      let l =
        {
          lid = !id_counter;
          lop = op;
          lthread = tid;
          lstart = start;
          lphases = [];
          lattrs = [];
          path = [];
        }
      in
      Hashtbl.replace tls tid l;
      Mutex.unlock tls_lock;
      let finish () =
        Mutex.lock tls_lock;
        Hashtbl.remove tls tid;
        Mutex.unlock tls_lock;
        close_span l
      in
      (match f () with
      | r ->
        finish ();
        r
      | exception e ->
        finish ();
        raise e)
