type phase = { pname : string; pstart_ns : float; pdur_ns : float }

(* Rpc pairs are kept structured and only rendered when a span is
   dumped: annotating a quorum round then costs a cons, not a string
   build, on the transport hot path. *)
type attr = Text of string | Rpc of (string * int) list

let attr_text = function
  | Text s -> s
  | Rpc pairs ->
    let b = Buffer.create 48 in
    Buffer.add_string b "rpc";
    List.iter
      (fun (ep, id) ->
        Buffer.add_char b ' ';
        Buffer.add_string b ep;
        Buffer.add_char b '#';
        Buffer.add_string b (string_of_int id))
      pairs;
    Buffer.contents b

(* --- trace context ------------------------------------------------------- *)

(* The wire-carried correlation triple: which distributed trace a span
   belongs to (16 raw bytes), which remote span caused it, and the
   sampling decision made at the head. *)
type ctx = { trace : string; span : int; flags : int }

let flag_sampled = 0x01
let flag_forced = 0x02
let trace_bytes = 16

let sample_interval = ref 8
let set_sample_interval n = sample_interval := max 1 n
let sample_interval_now () = !sample_interval

type closed = {
  id : int;
  op : string;
  thread : int;
  start : float;
  dur_ns : float;
  phases : phase list;
  attrs : attr list;
  trace : string;  (* "" when the span is not part of a distributed trace *)
  parent : int;  (* 0 when this span is a trace root (or untraced) *)
  flags : int;
  links : (string * int) list;
}

(* A span being built on some thread. Phases and attrs accumulate
   reversed; [path] is the stack of open phase names. *)
type live = {
  lid : int;
  lop : string;
  lthread : int;
  lstart : float;
  mutable lphases : phase list;
  mutable lattrs : attr list;
  mutable path : string list;
  mutable ltrace : string;
  mutable lparent : int;
  mutable lflags : int;
  mutable llinks : (string * int) list;
}

let on = ref false
let set_enabled v = on := v
let enabled () = !on

(* Per-process node label stamped on every dumped span, so stitched
   traces assembled from several processes keep attribution. *)
let node_name = ref ""
let set_node n = node_name := n
let node () = !node_name

(* Per-OS-thread active span. The table is only touched when tracing is
   enabled, and each thread only ever writes its own binding; the lock
   covers the table structure itself. *)
let tls : (int, live) Hashtbl.t = Hashtbl.create 16
let tls_lock = Mutex.create ()

(* Guarded by [tls_lock]: span ids are only minted while installing the
   thread's binding, so the counter rides the same critical section.
   The pid salt keeps ids from colliding across processes whose spans
   are later stitched into one trace. *)
let id_counter = ref 0
let id_salt = (Unix.getpid () land 0xfffff) lsl 40

let self_id () = Thread.id (Thread.self ())

let current () =
  let tid = self_id () in
  Mutex.lock tls_lock;
  let l = Hashtbl.find_opt tls tid in
  Mutex.unlock tls_lock;
  l

let current_id () =
  if not !on then None
  else match current () with Some l -> Some l.lid | None -> None

let add_attr a =
  match current () with
  | Some l -> l.lattrs <- a :: l.lattrs
  | None -> ()

let annotate s = if !on then add_attr (Text s)
let annotate_rpc pairs = if !on then add_attr (Rpc pairs)

let set_trace ?(parent = 0) ?(flags = 0) trace =
  if !on then
    match current () with
    | Some l when l.ltrace = "" && String.length trace = trace_bytes ->
      l.ltrace <- trace;
      l.lparent <- parent;
      l.lflags <- flags
    | _ -> ()

let force () =
  if !on then
    match current () with
    | Some l when l.ltrace <> "" -> l.lflags <- l.lflags lor flag_forced
    | _ -> ()

let add_link ~trace ~span =
  if !on then
    match current () with
    | Some l -> l.llinks <- (trace, span) :: l.llinks
    | None -> ()

let current_ctx () =
  if not !on then None
  else
    match current () with
    | Some l when l.ltrace <> "" ->
      Some { trace = l.ltrace; span = l.lid; flags = l.lflags }
    | _ -> None

(* --- phase-duration registry ------------------------------------------- *)

let registry : (string * string, Histo.t) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let histo_locked key =
  match Hashtbl.find_opt registry key with
  | Some h -> h
  | None ->
    let h = Histo.create () in
    Hashtbl.add registry key h;
    h

let phase_stats () =
  Mutex.lock registry_lock;
  let all =
    Hashtbl.fold (fun (op, phase) h acc -> (op, phase, h) :: acc) registry []
  in
  Mutex.unlock registry_lock;
  List.sort
    (fun (o1, p1, _) (o2, p2, _) ->
      match String.compare o1 o2 with 0 -> String.compare p1 p2 | c -> c)
    all

let phase_histo ~op ~phase =
  Mutex.lock registry_lock;
  let h = Hashtbl.find_opt registry (op, phase) in
  Mutex.unlock registry_lock;
  h

let phase_family ?(name = "securestore_phase_duration_seconds") () =
  Expo.family ~name
    ~help:"Per-operation phase durations from tracing spans."
    (Expo.Histogram
       (List.map
          (fun (op, ph, h) -> ([ ("op", op); ("phase", ph) ], h))
          (phase_stats ())))

let reset_stats () =
  Mutex.lock registry_lock;
  Hashtbl.reset registry;
  Mutex.unlock registry_lock

(* --- journal ------------------------------------------------------------ *)

(* Ring buffer of completed spans: slot [total mod capacity] is written
   next, so the buffer always holds the newest [capacity] spans. *)
let journal_lock = Mutex.create ()
let journal = ref (Array.make 256 None)
let journal_total = ref 0

let set_journal_capacity cap =
  let cap = max 1 cap in
  Mutex.lock journal_lock;
  journal := Array.make cap None;
  journal_total := 0;
  Mutex.unlock journal_lock

let reset_journal () =
  Mutex.lock journal_lock;
  Array.fill !journal 0 (Array.length !journal) None;
  journal_total := 0;
  Mutex.unlock journal_lock

let journal_add c =
  Mutex.lock journal_lock;
  let arr = !journal in
  arr.(!journal_total mod Array.length arr) <- Some c;
  incr journal_total;
  Mutex.unlock journal_lock

let recent ?limit () =
  Mutex.lock journal_lock;
  let arr = Array.copy !journal in
  let total = !journal_total in
  Mutex.unlock journal_lock;
  let cap = Array.length arr in
  let stored = min total cap in
  let wanted = match limit with Some l -> min l stored | None -> stored in
  (* Newest first: walk backwards from the last written slot. *)
  List.filter_map
    (fun i -> arr.((total - 1 - i + (cap * 2)) mod cap))
    (List.init wanted Fun.id)

(* --- flight recorder ----------------------------------------------------- *)

(* Completed trace-tagged spans accumulate per trace id in a bounded
   pending table (FIFO eviction); when a trace's local root closes the
   whole trace is promoted — sampled traces into a ring that keeps the
   newest, forced traces into a pinned list that survives sampling
   pressure. Everything is size-bounded so the recorder can stay on in
   production. *)

let flight_lock = Mutex.create ()
let flight_pending : (string, closed list ref) Hashtbl.t = Hashtbl.create 64
let flight_order : string Queue.t = Queue.create ()
let flight_pending_cap = ref 128
let flight_ring = ref (Array.make 32 None)
let flight_ring_total = ref 0
let flight_pinned : (string * closed list) list ref = ref []
let flight_pinned_cap = ref 16
let sampled_promotions = ref 0
let forced_promotions = ref 0

let set_flight_capacity ?pending ?ring ?pinned () =
  Mutex.lock flight_lock;
  (match pending with Some p -> flight_pending_cap := max 1 p | None -> ());
  (match ring with
  | Some r ->
    flight_ring := Array.make (max 1 r) None;
    flight_ring_total := 0
  | None -> ());
  (match pinned with Some p -> flight_pinned_cap := max 1 p | None -> ());
  Mutex.unlock flight_lock

let reset_flight () =
  Mutex.lock flight_lock;
  Hashtbl.reset flight_pending;
  Queue.clear flight_order;
  Array.fill !flight_ring 0 (Array.length !flight_ring) None;
  flight_ring_total := 0;
  flight_pinned := [];
  sampled_promotions := 0;
  forced_promotions := 0;
  Mutex.unlock flight_lock

let take_n n l = List.filteri (fun i _ -> i < n) l

let promote_locked ?(force = false) trace =
  match Hashtbl.find_opt flight_pending trace with
  | None -> ()
  | Some r ->
    Hashtbl.remove flight_pending trace;
    let spans = List.rev !r in
    let forced =
      force || List.exists (fun c -> c.flags land flag_forced <> 0) spans
    in
    if forced then begin
      incr forced_promotions;
      flight_pinned :=
        take_n !flight_pinned_cap ((trace, spans) :: !flight_pinned)
    end
    else begin
      incr sampled_promotions;
      let arr = !flight_ring in
      arr.(!flight_ring_total mod Array.length arr) <- Some (trace, spans);
      incr flight_ring_total
    end

let flight_add c =
  Mutex.lock flight_lock;
  (match Hashtbl.find_opt flight_pending c.trace with
  | Some r -> r := c :: !r
  | None ->
    (* FIFO eviction: pop queue entries (some may already be promoted)
       until the table is under its cap, promoting the evictee so a
       long-lived trace is not silently lost. *)
    while
      Hashtbl.length flight_pending >= !flight_pending_cap
      && not (Queue.is_empty flight_order)
    do
      promote_locked (Queue.pop flight_order)
    done;
    Hashtbl.replace flight_pending c.trace (ref [ c ]);
    Queue.push c.trace flight_order);
  if c.parent = 0 then promote_locked c.trace;
  Mutex.unlock flight_lock

let flight_lookup ~trace =
  Mutex.lock flight_lock;
  let pending =
    match Hashtbl.find_opt flight_pending trace with
    | Some r -> List.rev !r
    | None -> []
  in
  let ring =
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some (t, spans) when t = trace -> acc @ spans
        | _ -> acc)
      [] !flight_ring
  in
  let pinned =
    List.concat_map
      (fun (t, spans) -> if t = trace then spans else [])
      !flight_pinned
  in
  Mutex.unlock flight_lock;
  pending @ ring @ pinned

let pin ~trace =
  Mutex.lock flight_lock;
  let found =
    if Hashtbl.mem flight_pending trace then begin
      promote_locked ~force:true trace;
      true
    end
    else if List.mem_assoc trace !flight_pinned then true
    else begin
      let arr = !flight_ring in
      let hit = ref false in
      Array.iteri
        (fun i slot ->
          match slot with
          | Some (t, spans) when t = trace && not !hit ->
            hit := true;
            arr.(i) <- None;
            incr forced_promotions;
            flight_pinned :=
              take_n !flight_pinned_cap ((trace, spans) :: !flight_pinned)
          | _ -> ())
        arr;
      !hit
    end
  in
  Mutex.unlock flight_lock;
  found

let flight_stats () =
  Mutex.lock flight_lock;
  let occupancy =
    Hashtbl.length flight_pending
    + Array.fold_left
        (fun acc s -> match s with Some _ -> acc + 1 | None -> acc)
        0 !flight_ring
    + List.length !flight_pinned
  in
  let r = (!sampled_promotions, !forced_promotions, occupancy) in
  Mutex.unlock flight_lock;
  r

let trace_families () =
  let sampled, forced, occupancy = flight_stats () in
  [
    Expo.counter ~name:"securestore_traces_sampled_total"
      ~help:"Distributed traces promoted into the sampled flight ring."
      (float_of_int sampled);
    Expo.counter ~name:"securestore_traces_forced_total"
      ~help:
        "Distributed traces force-retained (retry, escalation, or \
         checker-flagged)."
      (float_of_int forced);
    Expo.gauge ~name:"securestore_flight_recorder_occupancy"
      ~help:"Traces currently held by the flight recorder (pending + ring + pinned)."
      (float_of_int occupancy);
  ]

(* --- JSON dump ---------------------------------------------------------- *)

let json_escape = Jsonx.escape

let span_json buf c =
  Printf.bprintf buf
    "{\"id\":%d,\"op\":\"%s\",\"thread\":%d,\"start\":%.6f,\"dur_ns\":%.0f,"
    c.id (Jsonx.escape c.op) c.thread c.start c.dur_ns;
  if c.trace <> "" then begin
    Printf.bprintf buf "\"trace\":\"%s\",\"parent\":%d,\"flags\":%d,"
      (Jsonx.to_hex c.trace) c.parent c.flags;
    if c.links <> [] then begin
      Buffer.add_string buf "\"links\":[";
      List.iteri
        (fun i (t, s) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "{\"trace\":\"%s\",\"span\":%d}" (Jsonx.to_hex t)
            s)
        c.links;
      Buffer.add_string buf "],"
    end
  end;
  if !node_name <> "" then
    Printf.bprintf buf "\"node\":\"%s\"," (Jsonx.escape !node_name);
  Buffer.add_string buf "\"attrs\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\"" (Jsonx.escape (attr_text a)))
    c.attrs;
  Buffer.add_string buf "],\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":\"%s\",\"start_ns\":%.0f,\"dur_ns\":%.0f}"
        (Jsonx.escape p.pname) p.pstart_ns p.pdur_ns)
    c.phases;
  Buffer.add_string buf "]}"

let spans_json ?limit () =
  let spans = recent ?limit () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"spans\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      span_json buf c)
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- cross-node trace assembly ------------------------------------------ *)

let trace_spans ~trace =
  (* Flight recorder first, then whatever the journal still holds;
     dedup by span id, oldest first so a renderer can stream the tree. *)
  let flight = flight_lookup ~trace in
  let journaled = List.filter (fun c -> c.trace = trace) (recent ()) in
  let seen = Hashtbl.create 32 in
  let all =
    List.filter
      (fun c ->
        if Hashtbl.mem seen c.id then false
        else begin
          Hashtbl.add seen c.id ();
          true
        end)
      (flight @ journaled)
  in
  List.sort (fun a b -> compare a.start b.start) all

let trace_json ~id () =
  let buf = Buffer.create 2048 in
  (match Jsonx.of_hex id with
  | Some trace when String.length trace = trace_bytes ->
    let spans = trace_spans ~trace in
    Printf.bprintf buf "{\"trace\":\"%s\",\"node\":\"%s\",\"spans\":["
      (Jsonx.to_hex trace) (Jsonx.escape !node_name);
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        span_json buf c)
      spans;
    Buffer.add_string buf "]}"
  | _ -> Printf.bprintf buf "{\"error\":\"bad trace id\",\"id\":\"%s\"}"
           (Jsonx.escape id));
  Buffer.contents buf

(* --- span construction -------------------------------------------------- *)

let now () = Unix.gettimeofday ()

let close_span l =
  let stop = now () in
  let dur_ns = (stop -. l.lstart) *. 1e9 in
  let phases = List.rev l.lphases in
  let c =
    {
      id = l.lid;
      op = l.lop;
      thread = l.lthread;
      start = l.lstart;
      dur_ns;
      phases;
      attrs = List.rev l.lattrs;
      trace = l.ltrace;
      parent = l.lparent;
      flags = l.lflags;
      links = List.rev l.llinks;
    }
  in
  (* One registry lock for the whole span (total + every phase) rather
     than a lock round-trip per phase. *)
  Mutex.lock registry_lock;
  let total_h = histo_locked (l.lop, "total") in
  let phase_hs =
    List.map (fun p -> (histo_locked (l.lop, p.pname), p.pdur_ns)) phases
  in
  Mutex.unlock registry_lock;
  Histo.observe total_h dur_ns;
  List.iter (fun (h, d) -> Histo.observe h d) phase_hs;
  journal_add c;
  if c.trace <> "" && c.flags land (flag_sampled lor flag_forced) <> 0 then
    flight_add c

let run_phase l name f =
  let path = name :: l.path in
  (* Unnested phases (the overwhelmingly common case) keep their name
     as-is — no list reversal, no concatenation. *)
  let pname =
    match path with [ only ] -> only | _ -> String.concat "/" (List.rev path)
  in
  l.path <- path;
  let t0 = now () in
  (* Hand-rolled protect: this runs per phase on the hot path, and
     [Fun.protect]'s closure is measurable there. *)
  let finish () =
    let t1 = now () in
    l.lphases <-
      {
        pname;
        pstart_ns = (t0 -. l.lstart) *. 1e9;
        pdur_ns = (t1 -. t0) *. 1e9;
      }
      :: l.lphases;
    l.path <- (match l.path with _ :: rest -> rest | [] -> [])
  in
  match f () with
  | r ->
    finish ();
    r
  | exception e ->
    finish ();
    raise e

let with_phase name f =
  if not !on then f ()
  else match current () with None -> f () | Some l -> run_phase l name f

let with_op ?ctx op f =
  if not !on then f ()
  else
    match current () with
    | Some l ->
      (* An op inside an op: the inner operation is a phase of the
         outer one (a connect's context read, say). *)
      run_phase l op f
    | None ->
      let tid = self_id () in
      let start = now () in
      Mutex.lock tls_lock;
      incr id_counter;
      let trace, parent, flags =
        match ctx with
        | Some (c : ctx) when String.length c.trace = trace_bytes ->
          (c.trace, c.span, c.flags)
        | _ -> ("", 0, 0)
      in
      let l =
        {
          lid = id_salt lor !id_counter;
          lop = op;
          lthread = tid;
          lstart = start;
          lphases = [];
          lattrs = [];
          path = [];
          ltrace = trace;
          lparent = parent;
          lflags = flags;
          llinks = [];
        }
      in
      Hashtbl.replace tls tid l;
      Mutex.unlock tls_lock;
      let finish () =
        Mutex.lock tls_lock;
        Hashtbl.remove tls tid;
        Mutex.unlock tls_lock;
        close_span l
      in
      (match f () with
      | r ->
        finish ();
        r
      | exception e ->
        finish ();
        raise e)
