(** Shared JSON string escaping (and the hex codec for trace ids).

    Every hand-built JSON artifact in the tree — span dumps, stitched
    traces, check histories, bench results that embed free text — must
    escape strings through this module so the same value renders
    byte-identically everywhere. The escaping follows RFC 8259: quote,
    backslash and control characters are escaped ([\n], [\r], [\t] get
    their short forms, other controls [\u00xx]); everything else passes
    through untouched. *)

val escape : string -> string
(** The escaped body of a JSON string literal (no surrounding quotes). *)

val escape_into : Buffer.t -> string -> unit
(** Like {!escape}, appending into a buffer. *)

val to_hex : string -> string
(** Lowercase hex of raw bytes — how 128-bit trace ids print. *)

val of_hex : string -> string option
(** Inverse of {!to_hex}; [None] on odd length or a non-hex digit. *)

(** {1 Reading our own artifacts back}

    A small strict JSON reader — the oracle the escaper round-trips
    against in tests, and what [store_cli trace] parses stitched trace
    dumps with. Not a general-purpose parser: [\uXXXX] escapes above
    [ÿ] decode to ['?'] (our emitters never produce them), and
    nesting beyond 64 levels is rejected. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> value option
(** [None] on any syntax error, trailing garbage included. *)

val member : string -> value -> value option
(** Field lookup; [None] when absent or not an object. *)

val str_of : value -> string option
val num_of : value -> float option
val arr_of : value -> value list option
