(** Hierarchical tracing spans.

    Every instrumented operation opens a {e span} ({!with_op}) and marks
    the interesting stretches inside it as {e phases} ({!with_phase}):
    quorum poll, value fetch, signature verify, backoff wait, and so on.
    Phases nest — an inner phase's name is recorded as
    ["outer/inner"] — and an op opened while another op is active on the
    same thread becomes a phase of the outer op, so layered code (a
    connect that performs a context read) composes without coordination.

    Two things happen when a span closes:

    - its total duration and every phase duration are recorded into a
      global registry of {!Histo} histograms keyed by [(op, phase)]
      (phase ["total"] is the whole span), the source of the per-phase
      percentiles the bench and the [/metrics] endpoint report;
    - the completed span (with phases and attributes) is appended to a
      bounded ring-buffer journal that always keeps the newest spans,
      dumpable as JSON via [/spans] for post-mortem of a slow or failed
      operation.

    Tracing is globally disabled by default. When disabled, {!with_op}
    and {!with_phase} run their argument with nothing but a flag check —
    no clock reads, no allocation, no locking — so instrumented hot
    paths pay nothing (the <3% tracing-on budget is measured by bench
    e17). Span state is per-OS-thread; the simulation engine's
    single-thread cooperative scheduling would interleave clients, so
    enable tracing only around live-transport (or single-client
    in-process) work. *)

type phase = {
  pname : string;  (** "/"-joined nesting path *)
  pstart_ns : float;  (** offset from span start, ns *)
  pdur_ns : float;
}

(** A span attribute: free text, or transport correlation pairs of
    (endpoint, correlation id) kept structured so the hot path pays a
    cons — the ["rpc ep#id ..."] string is built by {!attr_text} only
    when a span is dumped. *)
type attr = Text of string | Rpc of (string * int) list

val attr_text : attr -> string

type closed = {
  id : int;  (** unique, increasing: newest span has the largest id *)
  op : string;
  thread : int;  (** OS thread id the span ran on *)
  start : float;  (** epoch seconds *)
  dur_ns : float;
  phases : phase list;  (** in completion order *)
  attrs : attr list;  (** in emission order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_op : string -> (unit -> 'a) -> 'a
(** Run the function under a span named after the operation. Nested
    calls record as phases of the outermost op. The span closes (and is
    journaled) even if the function raises. *)

val with_phase : string -> (unit -> 'a) -> 'a
(** Time a stretch of the current span. Outside any {!with_op} (or with
    tracing disabled) it just runs the function. *)

val annotate : string -> unit
(** Attach a free-form attribute to the current span. No-op outside a
    span. *)

val annotate_rpc : (string * int) list -> unit
(** Attach (endpoint, correlation id) pairs to the current span without
    rendering them (see {!attr}). No-op outside a span. *)

val current_id : unit -> int option
(** Id of this thread's active span, for correlating external records. *)

(** {1 Phase-duration registry} *)

val phase_stats : unit -> (string * string * Histo.t) list
(** Every [(op, phase, histogram)] recorded so far, sorted by op then
    phase. The histograms are live references: they keep accumulating. *)

val phase_histo : op:string -> phase:string -> Histo.t option

val phase_family : ?name:string -> unit -> Expo.family
(** The whole registry as one exposition family of histograms labeled
    [{op="...",phase="..."}]. Default name
    [securestore_phase_duration_seconds]. *)

val reset_stats : unit -> unit

(** {1 Span journal} *)

val set_journal_capacity : int -> unit
(** Resize (and clear) the ring buffer. Default 256 spans. *)

val recent : ?limit:int -> unit -> closed list
(** Most recent completed spans, newest first. *)

val spans_json : ?limit:int -> unit -> string
(** [{"spans": [...]}] — newest first; each span carries its op, thread,
    start, duration, attributes and phase timings (offsets in ns). *)

val reset_journal : unit -> unit
