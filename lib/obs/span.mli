(** Hierarchical tracing spans with distributed trace correlation.

    Every instrumented operation opens a {e span} ({!with_op}) and marks
    the interesting stretches inside it as {e phases} ({!with_phase}):
    quorum poll, value fetch, signature verify, backoff wait, and so on.
    Phases nest — an inner phase's name is recorded as
    ["outer/inner"] — and an op opened while another op is active on the
    same thread becomes a phase of the outer op, so layered code (a
    connect that performs a context read) composes without coordination.

    Spans may additionally belong to a {e distributed trace}: a 128-bit
    trace id minted at the client, carried across the wire as a compact
    context ({!ctx}) and adopted by server-side spans, which record the
    remote caller's span id as their parent. A bounded {e flight
    recorder} retains completed traces — a sampled ring of recent ones
    plus a pinned list of forced ones (ops that retried, escalated, or
    were flagged by the consistency checker) — and {!trace_json}
    assembles everything this process knows about one trace id for the
    [/trace?id=...] endpoint.

    Two things happen when a span closes:

    - its total duration and every phase duration are recorded into a
      global registry of {!Histo} histograms keyed by [(op, phase)]
      (phase ["total"] is the whole span), the source of the per-phase
      percentiles the bench and the [/metrics] endpoint report;
    - the completed span (with phases and attributes) is appended to a
      bounded ring-buffer journal that always keeps the newest spans,
      dumpable as JSON via [/spans] for post-mortem of a slow or failed
      operation. Trace-tagged sampled/forced spans also feed the flight
      recorder.

    Tracing is globally disabled by default. When disabled, {!with_op}
    and {!with_phase} run their argument with nothing but a flag check —
    no clock reads, no allocation, no locking — so instrumented hot
    paths pay nothing (the <3% tracing-on budget is measured by bench
    e17/e22). Span state is per-OS-thread; the simulation engine's
    single-thread cooperative scheduling would interleave clients, so
    enable tracing only around live-transport (or single-client
    in-process) work. *)

type phase = {
  pname : string;  (** "/"-joined nesting path *)
  pstart_ns : float;  (** offset from span start, ns *)
  pdur_ns : float;
}

(** A span attribute: free text, or transport correlation pairs of
    (endpoint, correlation id) kept structured so the hot path pays a
    cons — the ["rpc ep#id ..."] string is built by {!attr_text} only
    when a span is dumped. *)
type attr = Text of string | Rpc of (string * int) list

val attr_text : attr -> string

(** {1 Distributed trace context} *)

type ctx = {
  trace : string;  (** exactly {!trace_bytes} raw bytes *)
  span : int;  (** the sending span's id — the receiver's parent *)
  flags : int;  (** {!flag_sampled} / {!flag_forced} bits *)
}

val flag_sampled : int
val flag_forced : int

val trace_bytes : int
(** Raw length of a trace id: 16 bytes (128 bits). *)

val set_sample_interval : int -> unit
(** Head-sample one trace in [n] into the flight ring (default 8).
    Clients consult this when minting; forced traces ignore it. *)

val sample_interval_now : unit -> int

type closed = {
  id : int;  (** unique, increasing: newest span has the largest id.
                 Salted with the pid so ids from different processes
                 stitched into one trace cannot collide. *)
  op : string;
  thread : int;  (** OS thread id the span ran on *)
  start : float;  (** epoch seconds *)
  dur_ns : float;
  phases : phase list;  (** in completion order *)
  attrs : attr list;  (** in emission order *)
  trace : string;  (** raw trace id, [""] when untraced *)
  parent : int;  (** remote parent span id, [0] at the trace root *)
  flags : int;
  links : (string * int) list;  (** related (trace, span) pairs *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_node : string -> unit
(** Per-process node label stamped on dumped spans (e.g. ["s2"] or
    ["shard1/r0"]), so cross-process trace assembly keeps attribution.
    Default [""] (omitted from JSON). *)

val node : unit -> string

val with_op : ?ctx:ctx -> string -> (unit -> 'a) -> 'a
(** Run the function under a span named after the operation. Nested
    calls record as phases of the outermost op. When [ctx] is given and
    a fresh root span opens, the span joins that distributed trace with
    the context's span id as its parent. The span closes (and is
    journaled) even if the function raises. *)

val with_phase : string -> (unit -> 'a) -> 'a
(** Time a stretch of the current span. Outside any {!with_op} (or with
    tracing disabled) it just runs the function. *)

val annotate : string -> unit
(** Attach a free-form attribute to the current span. No-op outside a
    span. *)

val annotate_rpc : (string * int) list -> unit
(** Attach (endpoint, correlation id) pairs to the current span without
    rendering them (see {!attr}). No-op outside a span. *)

val current_id : unit -> int option
(** Id of this thread's active span, for correlating external records. *)

val set_trace : ?parent:int -> ?flags:int -> string -> unit
(** Adopt a trace id (raw {!trace_bytes} bytes) on the current live
    span. First writer wins: a span that already belongs to a trace
    keeps it, so an op nested under a traced root cannot re-root it.
    No-op outside a span or with a malformed id. *)

val force : unit -> unit
(** Set {!flag_forced} on the current span's trace — called when an op
    retries or escalates, so its whole trace is pinned by the flight
    recorder instead of riding sampling luck. Subsequent wire contexts
    carry the bit downstream. *)

val add_link : trace:string -> span:int -> unit
(** Record a link to a related span in another trace (an epoch-repair
    detour, say). No-op outside a span. *)

val current_ctx : unit -> ctx option
(** The wire context for this thread's active span: its trace id, its
    own span id (the receiver's parent) and its flags. [None] when
    disabled, outside a span, or when the span is untraced. *)

(** {1 Phase-duration registry} *)

val phase_stats : unit -> (string * string * Histo.t) list
(** Every [(op, phase, histogram)] recorded so far, sorted by op then
    phase. The histograms are live references: they keep accumulating. *)

val phase_histo : op:string -> phase:string -> Histo.t option

val phase_family : ?name:string -> unit -> Expo.family
(** The whole registry as one exposition family of histograms labeled
    [{op="...",phase="..."}]. Default name
    [securestore_phase_duration_seconds]. *)

val reset_stats : unit -> unit

(** {1 Span journal} *)

val set_journal_capacity : int -> unit
(** Resize (and clear) the ring buffer. Default 256 spans. *)

val recent : ?limit:int -> unit -> closed list
(** Most recent completed spans, newest first. *)

val spans_json : ?limit:int -> unit -> string
(** [{"spans": [...]}] — newest first; each span carries its op, thread,
    start, duration, attributes, phase timings (offsets in ns) and — for
    trace members — trace id, parent, flags and links. All embedded
    strings go through {!Jsonx.escape}. *)

val reset_journal : unit -> unit

val json_escape : string -> string
(** Alias of {!Jsonx.escape} (the shared escaper). *)

(** {1 Flight recorder} *)

val set_flight_capacity :
  ?pending:int -> ?ring:int -> ?pinned:int -> unit -> unit
(** Bound the recorder: in-progress traces awaiting their root
    (default 128, FIFO eviction promotes the evictee), the sampled ring
    (default 32, newest win) and the forced/pinned list (default 16).
    Resizing the ring clears it. *)

val reset_flight : unit -> unit
(** Clear all recorder state and its counters (tests). *)

val flight_lookup : trace:string -> closed list
(** Every span the recorder holds for a raw trace id (pending, ring and
    pinned), in completion order. *)

val pin : trace:string -> bool
(** Force-retain a trace (raw id) wherever it currently lives — a
    pending trace is promoted as forced, a ring entry moves to the
    pinned list. Returns [false] when the recorder no longer holds it.
    This is the {!Check}-flagged path: a violation report names a trace
    and the driver pins it before dumping. *)

val flight_stats : unit -> int * int * int
(** [(sampled_promotions, forced_promotions, occupancy)] — the two
    counters behind [securestore_traces_{sampled,forced}_total] and the
    current number of traces held. *)

val trace_families : unit -> Expo.family list
(** The trace-sampling exposition: [securestore_traces_sampled_total],
    [securestore_traces_forced_total] and
    [securestore_flight_recorder_occupancy]. *)

(** {1 Cross-node trace assembly} *)

val trace_spans : trace:string -> closed list
(** Everything this process knows about a raw trace id — flight
    recorder plus journal, deduplicated by span id, oldest first. *)

val trace_json : id:string -> unit -> string
(** [{"trace": "<hex>", "node": "...", "spans": [...]}] for a
    lowercase-hex 128-bit trace id, or [{"error": ...}] on a malformed
    id. The [/trace?id=...] endpoint serves exactly this; a cross-node
    fetcher merges several nodes' documents by span id. *)
