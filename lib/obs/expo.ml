type labels = (string * string) list

type metric =
  | Counter of (labels * float) list
  | Gauge of (labels * float) list
  | Histogram of (labels * Histo.t) list

type family = { name : string; help : string; metric : metric }

let counter ~name ~help ?(labels = []) v =
  { name; help; metric = Counter [ (labels, v) ] }

let gauge ~name ~help ?(labels = []) v =
  { name; help; metric = Gauge [ (labels, v) ] }

let family ~name ~help metric = { name; help; metric }

let content_type = "text/plain; version=0.0.4; charset=utf-8"

(* Label values may carry error strings; quotes, backslashes and
   newlines must not break the line-oriented format. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_labels buf = function
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let add_value buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.9g" v)

let add_sample buf name labels v =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  add_value buf v;
  Buffer.add_char buf '\n'

let add_histogram buf name labels h =
  let cum = Histo.cumulative h in
  Array.iteri
    (fun i bound ->
      add_sample buf (name ^ "_bucket")
        (labels @ [ ("le", Printf.sprintf "%.9g" (bound /. 1e9)) ])
        (float_of_int cum.(i)))
    Histo.bounds;
  add_sample buf (name ^ "_bucket")
    (labels @ [ ("le", "+Inf") ])
    (float_of_int cum.(Histo.bucket_count));
  add_sample buf (name ^ "_sum") labels (Histo.sum h /. 1e9);
  add_sample buf (name ^ "_count") labels (float_of_int (Histo.count h))

let render families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string buf "# HELP ";
      Buffer.add_string buf f.name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (escape_help f.help);
      Buffer.add_string buf "\n# TYPE ";
      Buffer.add_string buf f.name;
      (match f.metric with
      | Counter samples ->
        Buffer.add_string buf " counter\n";
        List.iter (fun (labels, v) -> add_sample buf f.name labels v) samples
      | Gauge samples ->
        Buffer.add_string buf " gauge\n";
        List.iter (fun (labels, v) -> add_sample buf f.name labels v) samples
      | Histogram histos ->
        Buffer.add_string buf " histogram\n";
        List.iter (fun (labels, h) -> add_histogram buf f.name labels h) histos))
    families;
  Buffer.contents buf
