(** Prometheus-style text exposition (format version 0.0.4).

    Pure rendering: callers assemble {!family} values from whatever
    counters, gauges and {!Histo} instances they own, and {!render}
    produces the text a scraper expects — one [# HELP]/[# TYPE] pair per
    family, samples with escaped labels, histograms as cumulative
    [_bucket] series (with [le="+Inf"]) plus [_sum] and [_count].

    Histogram bucket bounds and sums are converted from the histograms'
    nanoseconds to seconds, the Prometheus convention for durations. *)

type labels = (string * string) list

type metric =
  | Counter of (labels * float) list
  | Gauge of (labels * float) list
  | Histogram of (labels * Histo.t) list

type family = { name : string; help : string; metric : metric }

val counter : name:string -> help:string -> ?labels:labels -> float -> family
(** Single-sample counter family. *)

val gauge : name:string -> help:string -> ?labels:labels -> float -> family

val family : name:string -> help:string -> metric -> family

val content_type : string
(** The value to serve in the HTTP [Content-Type] header. *)

val render : family list -> string
