(* The one JSON string escaper. Span dumps, trace assemblies and the
   check history all embed free-form strings (op names, attribute text,
   client ids) in hand-built JSON; they must escape identically or the
   same attribute renders differently across artifacts. *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf s;
  Buffer.contents buf

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Printf.bprintf buf "%02x" (Char.code c)) s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nib c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let buf = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (nib s.[2 * i], nib s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set buf i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.unsafe_to_string buf) else None

(* --- a small strict JSON reader ---------------------------------------

   The inverse of the emitters above, for consumers of our own artifacts
   (store_cli rendering a stitched trace, tests round-tripping the
   escaper). Strict where it matters — escapes, nesting, number syntax —
   and with a recursion-depth cap so hostile input cannot blow the
   stack. Unicode escapes outside the Latin-1 range decode to '?': our
   emitters only ever produce \u00xx for control characters. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise Bad
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then raise Bad in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let hex4 () =
    let nib c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> raise Bad
    in
    let a = nib (next ()) in
    let b = nib (next ()) in
    let c = nib (next ()) in
    let d = nib (next ()) in
    (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let code = hex4 () in
          Buffer.add_char buf (if code < 256 then Char.chr code else '?')
        | _ -> raise Bad);
        go ()
      | c when Char.code c < 0x20 -> raise Bad
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise Bad
  in
  let rec value depth =
    if depth > 64 then raise Bad;
    skip_ws ();
    match next () with
    | '"' -> Str (string_body ())
    | 't' -> literal "rue" (Bool true)
    | 'f' -> literal "alse" (Bool false)
    | 'n' -> literal "ull" Null
    | '{' ->
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else Obj (members depth [])
    | '[' ->
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else Arr (elements depth [])
    | c ->
      decr pos;
      if c = '-' || (c >= '0' && c <= '9') then number () else raise Bad
  and members depth acc =
    skip_ws ();
    expect '"';
    let k = string_body () in
    skip_ws ();
    expect ':';
    let v = value (depth + 1) in
    skip_ws ();
    match next () with
    | ',' -> members depth ((k, v) :: acc)
    | '}' -> List.rev ((k, v) :: acc)
    | _ -> raise Bad
  and elements depth acc =
    let v = value (depth + 1) in
    skip_ws ();
    match next () with
    | ',' -> elements depth (v :: acc)
    | ']' -> List.rev (v :: acc)
    | _ -> raise Bad
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then raise Bad;
    v
  with
  | v -> Some v
  | exception Bad -> None

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str_of = function Str s -> Some s | _ -> None
let num_of = function Num f -> Some f | _ -> None
let arr_of = function Arr vs -> Some vs | _ -> None
