(** Fixed-bucket log-scale latency histograms.

    The observability layer's primitive: a small array of counters over
    geometrically spaced duration buckets (10 per decade from 100 ns to
    ~13 min), plus running count/sum/max. Observations are O(log buckets)
    and touch no heap; histograms merge by adding counters, so per-thread
    or per-endpoint instances can be combined for exposition.

    Bucket semantics follow Prometheus: bucket [i] counts observations
    [v <= bounds.(i)] (cumulative rendering happens at exposition time);
    everything above the last finite bound lands in the overflow bucket.
    All durations are in nanoseconds. *)

type t

val bucket_count : int
(** Number of finite buckets (the overflow bucket is extra). *)

val bounds : float array
(** Upper bounds of the finite buckets, ascending, in nanoseconds.
    [Array.length bounds = bucket_count]. *)

val bucket_of : float -> int
(** Index of the bucket an observation falls into: the first [i] with
    [v <= bounds.(i)], or [bucket_count] for the overflow bucket. *)

val create : unit -> t

val observe : t -> float -> unit
(** Record one duration (ns). Negative values clamp to zero. *)

val count : t -> int
val sum : t -> float
val max_value : t -> float
(** Largest observation seen ([0.] when empty) — gives the overflow
    bucket a meaningful percentile answer. *)

val counts : t -> int array
(** Snapshot of per-bucket (non-cumulative) counts, length
    [bucket_count + 1]; the last entry is the overflow bucket. *)

val cumulative : t -> int array
(** Snapshot of cumulative counts, length [bucket_count + 1];
    [cumulative.(bucket_count) = count]. *)

val percentile : t -> float -> float
(** Nearest-rank percentile resolved to the upper bound of the bucket
    containing the rank ([max_value] for the overflow bucket, [0.] when
    empty). Exact statement: for any sample multiset, [percentile h p]
    equals [bounds.(bucket_of v)] where [v] is the nearest-rank
    percentile of the sorted samples — the property the oracle test
    checks. *)

val merge : t -> t -> t
(** A fresh histogram whose counters are the sums of both inputs. *)

val reset : t -> unit
