(* Merkle-batch signing: collect up to [limit] unsigned writes, sign one
   Merkle root over their bodies, and hand each write back carrying
   [Batch] evidence (root, signed root, inclusion proof). One RSA sign
   certifies the whole batch; each verifier pays one (cached) RSA verify
   per batch plus a Merkle path per write. *)

type t = {
  key : Crypto.Rsa.keypair;
  limit : int;
  mutable pending : Payload.write list; (* newest first *)
}

let create ~key ~limit =
  if limit < 1 then invalid_arg "Signbatch.create: limit must be positive";
  { key; limit; pending = [] }

let limit t = t.limit
let pending t = List.length t.pending

let add t w =
  t.pending <- w :: t.pending;
  if List.length t.pending >= t.limit then `Full else `Buffered

let flush t =
  match List.rev t.pending with
  | [] -> []
  | writes ->
    t.pending <- [];
    let bodies = List.map Payload.write_body writes in
    let tree = Crypto.Merkle.of_leaves bodies in
    let root = Crypto.Merkle.root tree in
    let size = Crypto.Merkle.size tree in
    let root_sig =
      Obs.Span.with_phase "batch_sign" (fun () ->
          Signing.sign_batch_root ~key:t.key ~root ~size)
    in
    List.mapi
      (fun i w ->
        match Crypto.Merkle.prove tree i with
        | Some proof ->
          { w with Payload.evidence = Payload.Batch { root; size; proof; root_sig } }
        | None -> assert false (* i < size by construction *))
      writes
