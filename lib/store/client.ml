type consistency = MRC | CC
type mode = Single_writer | Multi_writer

(* How writes get their evidence. [Per_write_sig] is the paper's
   baseline: one RSA signature per write. [Merkle_batch k] amortizes the
   signature over up to k writes (one root signature + per-write
   inclusion proofs). [Mac_fast] replaces the signature with a
   per-server HMAC vector and escalates to batch evidence lazily —
   before reads, at disconnect, or every [escalate_every] writes. *)
type signing_mode = Per_write_sig | Merkle_batch of int | Mac_fast

type config = {
  n : int;
  b : int;
  servers : Sim.Runtime.node_id list;
  consistency : consistency;
  mode : mode;
  timeout : float;
  paper_cost_model : bool;
  read_spread : bool;
  read_retries : int;
  retry_delay : float;
  retry_backoff_max : float;
  write_retries : int;
  op_deadline : float;
  verify_vouched : bool;
  inline_read : bool;
  timestamp_jitter : int;
  evidence : Fault_evidence.t option;
  token : string option;
  seed : int;
  canary_skip_freshness : bool;
  signing : signing_mode;
  escalate_every : int;
  epoch_admin : Crypto.Rsa.public option;
  dispersal_threshold : int;
  dispersal_k : int option;
  dispersal_chunk : int;
}

let default_config ~n ~b =
  (match Quorums.validate ~n ~b with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Client.default_config: " ^ msg));
  {
    n;
    b;
    servers = List.init n Fun.id;
    consistency = MRC;
    mode = Single_writer;
    timeout = Sim.Runtime.default_timeout;
    paper_cost_model = false;
    read_spread = false;
    read_retries = 2;
    retry_delay = 0.05;
    retry_backoff_max = 0.05;
    write_retries = 0;
    op_deadline = infinity;
    verify_vouched = false;
    inline_read = false;
    timestamp_jitter = 1;
    evidence = None;
    token = None;
    seed = 0;
    canary_skip_freshness = false;
    signing = Per_write_sig;
    escalate_every = 8;
    epoch_admin = None;
    dispersal_threshold = 64 * 1024;
    dispersal_k = None;
    dispersal_chunk = 1 lsl 20;
  }

type error =
  | No_quorum of { wanted : int; got : int }
  | Not_found of Uid.t
  | Stale of { uid : Uid.t; wanted : Stamp.t }
  | Writer_faulty of Uid.t
  | Write_rejected
  | Disconnected
  | Not_enough_fragments of { uid : Uid.t; needed : int; got : int }

type opstats = {
  mutable messages : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_rounds : int;
  mutable read_failures : int;
}

type t = {
  uid : string;
  key : Crypto.Rsa.keypair;
  keyring : Keyring.t;
  group : string;
  cfg : config;
  rng : Sim.Srng.t;
  trace_rng : Sim.Srng.t;
      (* dedicated stream for trace-id minting, so tracing never
         perturbs the operation rng and replays keep their schedules *)
  session : int;
  mutable cur_trace : string;  (* current op's raw 16-byte trace id *)
  mutable cur_trace_hex : string;  (* same id, lowercase hex; "" = none *)
  mutable ctx : Context.t;
  mutable ctx_seq : int;
  mutable last_time : int;
  mutable connected : bool;
  mutable unescalated : Payload.write list;
      (* Mac_fast writes acked by a quorum but not yet escalated to
         third-party-verifiable evidence; newest first *)
  mutable epoch : Config_epoch.t option;
      (* the config epoch this session operates under; [None] = static
         deployment (the cfg's n/b/servers are final) *)
  opstats : opstats;
}

let uid t = t.uid
let stats t = t.opstats
let group t = t.group
let context t = t.ctx
let config t = t.cfg
let epoch t = t.epoch

(* The membership the session currently derives its quorum math from:
   the adopted epoch when there is one, the static config otherwise.
   Re-derivation is per-call, so adopting a new epoch mid-operation
   redirects the very next round without dropping the operation. *)
let epoch_version t =
  match t.epoch with Some e -> e.Config_epoch.version | None -> 0

let active_n t = match t.epoch with Some e -> Config_epoch.n e | None -> t.cfg.n

let active_servers t =
  match t.epoch with Some e -> e.Config_epoch.servers | None -> t.cfg.servers

(* Adopt a server-offered epoch if it is strictly newer and carries the
   administrator's signature. With no pinned admin key the session is a
   static deployment and epochs are ignored entirely: adopting an
   unverifiable epoch would let a single Byzantine server replace the
   whole server set (and fault bound) mid-session with one forged
   [Stale_epoch]. Clients accept any newer signed epoch without the
   hash-chain check — a session may lag arbitrarily many transitions,
   and the signature is the authority. *)
let try_adopt_epoch t (e : Config_epoch.t) =
  match t.cfg.epoch_admin with
  | None -> ()
  | Some pub ->
    if
      e.Config_epoch.version > epoch_version t
      && Config_epoch.verify e pub
      && Result.is_ok (Config_epoch.validate e)
    then begin
      t.epoch <- Some e;
      Metrics.set_epoch_version e.Config_epoch.version;
      Metrics.incr_epoch_transition ();
      (* an epoch detour mid-operation is exactly the kind of rare hop a
         stitched trace should always retain *)
      Obs.Span.force ()
    end

let pp_error fmt = function
  | No_quorum { wanted; got } ->
    Format.fprintf fmt "no quorum: wanted %d responses, got %d" wanted got
  | Not_found uid -> Format.fprintf fmt "%a not found" Uid.pp uid
  | Stale { uid; wanted } ->
    Format.fprintf fmt "stale: no server proved %a at or beyond %a" Uid.pp uid
      Stamp.pp wanted
  | Writer_faulty uid -> Format.fprintf fmt "writer of %a deemed faulty" Uid.pp uid
  | Write_rejected -> Format.pp_print_string fmt "write rejected"
  | Disconnected -> Format.pp_print_string fmt "session disconnected"
  | Not_enough_fragments { uid; needed; got } ->
    Format.fprintf fmt
      "%a: only %d authentic fragments reachable, need %d to reconstruct"
      Uid.pp uid got needed

let error_to_string e = Format.asprintf "%a" pp_error e

(* ---------------- RPC plumbing ---------------------------------------- *)

let effective_b t =
  match t.cfg.evidence with
  | Some e -> Fault_evidence.effective_b e
  | None -> ( match t.epoch with Some e -> e.Config_epoch.b | None -> t.cfg.b)

let report_proof t ~server event =
  match t.cfg.evidence with
  | Some e -> Fault_evidence.report_proof e ~server event
  | None -> ()

(* What a served-but-unverifiable write proves about the server: MAC
   evidence means it leaked a held fast-path write (an honest server
   never serves those); anything else is an ordinary bad signature. *)
let classify_bad_write (w : Payload.write) =
  match w.evidence with
  | Payload.Mac _ -> Fault_evidence.Evidence_downgrade
  | Payload.Sig _ | Payload.Batch _ -> Fault_evidence.Invalid_signature

(* Protocol message accounting (paper section 6 counts both directions). *)
let rpc t ~quorum dsts request =
  let payload =
    Payload.encode_envelope
      { Payload.token = t.cfg.token; epoch = epoch_version t; request }
  in
  let replies =
    Sim.Runtime.call_many ~timeout:t.cfg.timeout ~quorum dsts payload
  in
  Metrics.add_messages (List.length dsts + List.length replies);
  Metrics.add_bytes
    ((List.length dsts * String.length payload)
    + List.fold_left
        (fun acc (r : Sim.Runtime.reply) -> acc + String.length r.payload)
        0 replies);
  t.opstats.messages <- t.opstats.messages + List.length dsts + List.length replies;
  (match t.cfg.evidence with
  | Some e ->
    let responded = Hashtbl.create (List.length replies) in
    List.iter
      (fun (r : Sim.Runtime.reply) -> Hashtbl.replace responded r.from ())
      replies;
    List.iter
      (fun dst ->
        if Hashtbl.mem responded dst then Fault_evidence.clear_suspicion e ~server:dst
        else Fault_evidence.report_suspicion e ~server:dst)
      dsts
  | None -> ());
  let decoded =
    List.filter_map
      (fun (r : Sim.Runtime.reply) ->
        Option.map (fun resp -> (r.from, resp)) (Payload.decode_response r.payload))
      replies
  in
  (* A [Stale_epoch] both rejects the round and repairs the session: the
     piggybacked config is verified and adopted here, and the reply is
     dropped from the result — quorum counting sees a non-response, so
     the operation's retry loop re-runs the round under the new epoch's
     quorum math instead of failing the in-flight op. *)
  List.filter
    (fun (_, resp) ->
      match resp with
      | Payload.Stale_epoch e ->
        try_adopt_epoch t e;
        false
      | _ -> true)
    decoded

let send_oneway t dsts request =
  let payload =
    Payload.encode_envelope
      { Payload.token = t.cfg.token; epoch = epoch_version t; request }
  in
  List.iter (fun dst -> Sim.Runtime.send dst payload) dsts;
  Metrics.add_messages (List.length dsts);
  Metrics.add_bytes (List.length dsts * String.length payload);
  t.opstats.messages <- t.opstats.messages + List.length dsts

(* One scatter round: per-destination distinct requests (each server gets
   its own fragment chunk), one quorum wait. Same accounting and
   [Stale_epoch] repair as {!rpc}. *)
let rpc_scatter t ~quorum parts =
  let parts =
    List.map
      (fun (dst, request) ->
        ( dst,
          Payload.encode_envelope
            { Payload.token = t.cfg.token; epoch = epoch_version t; request } ))
      parts
  in
  let replies = Sim.Runtime.call_scatter ~timeout:t.cfg.timeout ~quorum parts in
  Metrics.add_messages (List.length parts + List.length replies);
  Metrics.add_bytes
    (List.fold_left (fun acc (_, p) -> acc + String.length p) 0 parts
    + List.fold_left
        (fun acc (r : Sim.Runtime.reply) -> acc + String.length r.payload)
        0 replies);
  t.opstats.messages <-
    t.opstats.messages + List.length parts + List.length replies;
  List.filter_map
    (fun (r : Sim.Runtime.reply) ->
      Option.map (fun resp -> (r.from, resp)) (Payload.decode_response r.payload))
    replies
  |> List.filter (fun (_, resp) ->
         match resp with
         | Payload.Stale_epoch e ->
           try_adopt_epoch t e;
           false
         | _ -> true)

(* First [k] preferred servers; when spreading, a random k-subset.
   With an evidence store, proven-faulty servers are excluded and the
   least-suspected come first. *)
let server_universe t =
  match t.cfg.evidence with
  | Some e -> Fault_evidence.preferred_servers e
  | None -> active_servers t

let server_set t k =
  let universe = server_universe t in
  let k = min k (List.length universe) in
  if not t.cfg.read_spread then List.filteri (fun i _ -> i < k) universe
  else begin
    let arr = Array.of_list universe in
    Sim.Srng.shuffle t.rng arr;
    Array.to_list (Array.sub arr 0 k)
  end

(* Constant-time membership: the chosen set is rebuilt on every retry
   round, so scanning it per-universe-element was O(n^2) on the read/write
   retry path. *)
let remaining_servers t chosen =
  let chosen_tbl = Hashtbl.create (List.length chosen) in
  List.iter (fun s -> Hashtbl.replace chosen_tbl s ()) chosen;
  List.filter (fun s -> not (Hashtbl.mem chosen_tbl s)) (server_universe t)

(* A logical timestamp: strictly increasing per client, loosely tracking
   the runtime clock (the paper's "current clock value"). *)
let next_time t =
  let now_us = int_of_float (Sim.Runtime.now () *. 1e6) in
  let jitter =
    if t.cfg.timestamp_jitter <= 1 then 1
    else 1 + Sim.Srng.int_below t.rng t.cfg.timestamp_jitter
  in
  let time = max (t.last_time + jitter) now_us in
  t.last_time <- time;
  time

let ensure_connected t k = if t.connected then k () else Error Disconnected

(* ---------------- History tap (consistency oracle) -------------------- *)

(* One ref read when no recorder is installed; with one, each emission
   snapshots the context so the oracle can replay what the client knew
   at every operation boundary. *)
let trace t ~op ~phase ?outcome kind =
  if Trace.enabled () then
    Trace.record ~op ~time:(Sim.Runtime.now ()) ~client:t.uid
      ~session:t.session
      ~multi_writer:(t.cfg.mode = Multi_writer)
      ~causal:(t.cfg.consistency = CC)
      ~epoch:(epoch_version t) ~trace:t.cur_trace_hex ~phase ?outcome ~kind
      ~ctx:(Context.bindings t.ctx) ()

let trace_op () = if Trace.enabled () then Trace.new_op () else 0

(* ---------------- Distributed trace context --------------------------- *)

(* Mint one 128-bit trace id per top-level operation, but only when
   someone is listening (spans on or the oracle recording) — otherwise
   the disabled path stays allocation-free. [Obs.Span.set_trace] is
   first-writer-wins, so when an enclosing span already carries a trace
   (a benchmark transaction spanning several ops, say) the op joins it
   instead of minting; [current_ctx] returns that trace and the history
   tap records the same id the wire carries. Head sampling retains
   1-in-N traces; an active oracle recording forces retention of every
   trace so a violation report always resolves in the flight recorder. *)
let begin_trace t =
  if Obs.Span.enabled () || Trace.enabled () then begin
    match Obs.Span.current_ctx () with
    | Some (c : Obs.Span.ctx) ->
      t.cur_trace <- c.trace;
      t.cur_trace_hex <- Obs.Jsonx.to_hex c.trace
    | None ->
      let b = Bytes.create Obs.Span.trace_bytes in
      Bytes.set_int64_be b 0 (Sim.Srng.int64 t.trace_rng);
      Bytes.set_int64_be b 8 (Sim.Srng.int64 t.trace_rng);
      let id = Bytes.to_string b in
      let flags =
        (if Sim.Srng.int_below t.trace_rng (Obs.Span.sample_interval_now ()) = 0
         then Obs.Span.flag_sampled
         else 0)
        lor if Trace.enabled () then Obs.Span.flag_forced else 0
      in
      t.cur_trace <- id;
      t.cur_trace_hex <- Obs.Jsonx.to_hex id;
      Obs.Span.set_trace ~flags id
  end

let outcome_of_result ok = function
  | Ok v -> ok v
  | Error e -> Trace.Failed (error_to_string e)

(* Deadline-aware backoff between try-later rounds. [attempt] counts
   completed rounds; the delay doubles from [retry_delay] up to
   [retry_backoff_max] with full jitter in [d/2, d]. Returns [false]
   when the sleep would overrun the operation deadline — the caller
   gives up immediately rather than sleeping past it. With the default
   config ([retry_backoff_max = retry_delay], infinite deadline) this is
   exactly the old fixed-delay sleep and draws nothing from the rng, so
   existing deterministic runs replay unchanged. *)
let backoff_sleep t ~start ~attempt =
  let base = t.cfg.retry_delay in
  let cap = t.cfg.retry_backoff_max in
  let d =
    if cap <= base then base
    else begin
      let d = min cap (base *. (2. ** float_of_int attempt)) in
      let u = float_of_int (Sim.Srng.int_below t.rng 1024) /. 1024. in
      (d /. 2.) +. (d /. 2. *. u)
    end
  in
  if Sim.Runtime.now () +. d > start +. t.cfg.op_deadline then false
  else begin
    Metrics.incr_retry ();
    Obs.Span.force ();
    Obs.Span.with_phase "backoff" (fun () -> Sim.Runtime.sleep d);
    true
  end

(* ---------------- Context operations (Fig. 1) ------------------------- *)

let best_valid_context t replies =
  let records =
    List.filter_map
      (fun (from, resp) ->
        match resp with
        | Payload.Ctx_reply (Some record) -> Some (from, record)
        | Payload.Ctx_reply None | _ -> None)
      replies
  in
  let sorted =
    List.sort
      (fun ((_, a) : int * Payload.ctx_record) (_, b) -> compare b.seq a.seq)
      records
  in
  (* Verify in freshness order; the first valid record is the answer, so
     the best case costs exactly one verification (section 6). *)
  Obs.Span.with_phase "verify" @@ fun () ->
  List.find_map
    (fun (from, record) ->
      if Signing.verify_context t.keyring ~client:t.uid ~group:t.group record
      then Some record
      else begin
        report_proof t ~server:from Fault_evidence.Forged_context;
        None
      end)
    sorted

let ctx_read t =
  Obs.Span.with_op "ctx_read" @@ fun () ->
  let q = Quorums.context_quorum ~n:(active_n t) ~b:(effective_b t) in
  let request = Payload.Ctx_read { client = t.uid; group = t.group } in
  let initial = server_set t q in
  let replies =
    Obs.Span.with_phase "ctx_poll" (fun () -> rpc t ~quorum:q initial request)
  in
  let replies =
    if List.length replies >= q then replies
    else begin
      Metrics.incr_escalation ();
        Obs.Span.force ();
      replies
      @ Obs.Span.with_phase "escalate" (fun () ->
            rpc t ~quorum:(q - List.length replies) (remaining_servers t initial)
              request)
    end
  in
  if List.length replies < q then
    Error (No_quorum { wanted = q; got = List.length replies })
  else Ok (best_valid_context t replies)

let ctx_store t =
  Obs.Span.with_op "ctx_store" @@ fun () ->
  let q = Quorums.context_quorum ~n:(active_n t) ~b:(effective_b t) in
  t.ctx_seq <- t.ctx_seq + 1;
  let record =
    Obs.Span.with_phase "sign" (fun () ->
        Signing.sign_context ~key:t.key ~client:t.uid ~group:t.group
          ~seq:t.ctx_seq t.ctx)
  in
  let request =
    Payload.Ctx_write { client = t.uid; group = t.group; record }
  in
  let acks replies =
    List.length (List.filter (fun (_, r) -> r = Payload.Ack) replies)
  in
  let initial = server_set t q in
  let replies =
    Obs.Span.with_phase "ctx_write" (fun () -> rpc t ~quorum:q initial request)
  in
  let got = acks replies in
  let got =
    if got >= q then got
    else begin
      Metrics.incr_escalation ();
        Obs.Span.force ();
      got
      + acks
          (Obs.Span.with_phase "escalate" (fun () ->
               rpc t ~quorum:(q - got) (remaining_servers t initial) request))
    end
  in
  if got < q then Error (No_quorum { wanted = q; got }) else Ok ()

(* ---------------- Dissemination and evidence escalation ---------------- *)

let write_fanout t =
  match t.cfg.mode with
  | Single_writer -> Quorums.write_set ~b:(effective_b t)
  | Multi_writer -> Quorums.mw_write_set ~b:(effective_b t)

(* Push one evidence-carrying write to a write quorum. One round =
   preferred fanout plus escalation to the remaining servers. Retrying
   re-sends the *same* write — servers treat a duplicate stamp
   idempotently, so a retry after a lost ack cannot double-apply. *)
let disseminate t (w : Payload.write) =
  let fanout = write_fanout t in
  if t.cfg.paper_cost_model then begin
    send_oneway t (server_set t fanout)
      (Payload.Write_req { write = w; await_ack = false });
    Ok ()
  end
  else begin
    let request = Payload.Write_req { write = w; await_ack = true } in
    let acks replies =
      List.length (List.filter (fun (_, r) -> r = Payload.Ack) replies)
    in
    let one_round () =
      let initial = server_set t fanout in
      let got =
        acks
          (Obs.Span.with_phase "write_quorum" (fun () ->
               rpc t ~quorum:fanout initial request))
      in
      if got >= fanout then got
      else begin
        Metrics.incr_escalation ();
        Obs.Span.force ();
        got
        + acks
            (Obs.Span.with_phase "escalate" (fun () ->
                 rpc t ~quorum:(fanout - got) (remaining_servers t initial)
                   request))
      end
    in
    let start = Sim.Runtime.now () in
    let rec go ~retries ~tried =
      let got = one_round () in
      if got >= fanout then Ok ()
      else if retries > 0 && backoff_sleep t ~start ~attempt:tried then
        go ~retries:(retries - 1) ~tried:(tried + 1)
      else if got = 0 then Error Write_rejected
      else Error (No_quorum { wanted = fanout; got })
    in
    go ~retries:t.cfg.write_retries ~tried:0
  end

(* Escalate every pending Mac_fast write to third-party-verifiable Batch
   evidence: sign one Merkle root over the pending bodies, then offer
   every server the evidence swap. A server that never saw the MAC write
   (missed the write quorum, or trimmed its hold slot) answers [Denied]
   and gets the full signed write instead — escalation doubles as
   anti-entropy for the fast path. Best-effort by design: the writes
   already reached a write quorum under MAC evidence, so an upgrade
   failure at some server delays gossip of that write, never safety. *)
let flush_escalations t =
  match t.unescalated with
  | [] -> ()
  | pending ->
    t.unescalated <- [];
    let writes = List.rev pending in
    Obs.Span.with_op "escalate_evidence" @@ fun () ->
    let batch = Signbatch.create ~key:t.key ~limit:(List.length writes) in
    List.iter
      (fun w -> ignore (Signbatch.add batch w : [ `Buffered | `Full ]))
      writes;
    let upgraded = Signbatch.flush batch in
    List.iter
      (fun (w : Payload.write) ->
        let request =
          Payload.Evidence_upgrade
            {
              uid = w.uid;
              stamp = w.stamp;
              writer = w.writer;
              evidence = w.evidence;
            }
        in
        let dsts = server_universe t in
        let replies =
          Obs.Span.with_phase "upgrade" (fun () ->
              rpc t ~quorum:(List.length dsts) dsts request)
        in
        List.iter
          (fun (from, resp) ->
            match resp with
            | Payload.Denied _ ->
              ignore
                (rpc t ~quorum:1 [ from ]
                   (Payload.Write_req { write = w; await_ack = true }))
            | _ -> ())
          replies)
      upgraded

(* ---------------- Reads ------------------------------------------------ *)

(* Single-writer read round (Fig. 2): poll [read_set] servers for
   meta-data, then fetch and verify from the freshest claimant downward. *)
let single_read_round t ~uid ~floor ~set_size =
  let dsts = server_set t set_size in
  let metas =
    Obs.Span.with_phase "meta_poll" (fun () ->
        rpc t ~quorum:set_size dsts (Payload.Meta_query { uid }))
  in
  let candidates =
    List.filter_map
      (fun (from, resp) ->
        match resp with
        | Payload.Meta_reply { stamp = Some s; _ } when Stamp.compare s floor >= 0 ->
          Some (from, s)
        | _ -> None)
      metas
  in
  let ordered =
    List.sort (fun (_, a) (_, b) -> Stamp.compare b a) candidates
  in
  let fetch (from, claimed) =
    match
      Obs.Span.with_phase "value_fetch" (fun () ->
          rpc t ~quorum:1 [ from ] (Payload.Value_read { uid; stamp = claimed }))
    with
    | (_, Payload.Value_reply (Some w)) :: _ ->
      if
        Uid.equal w.Payload.uid uid
        && Stamp.compare w.Payload.stamp floor >= 0
        && Obs.Span.with_phase "verify" (fun () ->
               Signing.verify_write t.keyring w)
      then Some w
      else begin
        (* An honest server never stores an unverifiable write and never
           serves a value older than the stamp it just claimed. *)
        if not (Signing.check_write_quiet t.keyring w) then
          report_proof t ~server:from (classify_bad_write w)
        else if Stamp.compare w.Payload.stamp claimed < 0 then
          report_proof t ~server:from Fault_evidence.Stamp_regression;
        None
      end
    | _ -> None
  in
  List.find_map fetch ordered

(* One-round read: every polled server ships its whole current write;
   take the freshest one that verifies and is at least as new as the
   context floor. *)
let inline_read_round t ~uid ~floor ~set_size =
  let dsts = server_set t set_size in
  let replies =
    Obs.Span.with_phase "inline_poll" (fun () ->
        rpc t ~quorum:set_size dsts (Payload.Read_inline { uid }))
  in
  let candidates =
    List.filter_map
      (fun (from, resp) ->
        match resp with
        | Payload.Value_reply (Some w)
          when Uid.equal w.Payload.uid uid
               && Stamp.compare w.Payload.stamp floor >= 0 ->
          Some (from, w)
        | _ -> None)
      replies
  in
  let ordered =
    List.sort
      (fun ((_, a) : int * Payload.write) (_, b) -> Stamp.compare b.stamp a.stamp)
      candidates
  in
  Obs.Span.with_phase "verify" @@ fun () ->
  List.find_map
    (fun (from, w) ->
      if Signing.verify_write t.keyring w then Some w
      else begin
        report_proof t ~server:from (classify_bad_write w);
        None
      end)
    ordered

(* Multi-writer read round (section 5.3): ask for write logs, accept a
   value only when b+1 distinct servers vouch for its timestamp. *)
let multi_read_round t ~uid ~floor ~set_size =
  let vouch_needed = Quorums.mw_vouch ~b:(effective_b t) in
  let dsts = server_set t set_size in
  let replies =
    Obs.Span.with_phase "log_poll" (fun () ->
        rpc t ~quorum:set_size dsts (Payload.Log_query { uid }))
  in
  let table : (Stamp.t, (int list * Payload.write) ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let faulty_votes = ref [] in
  List.iter
    (fun (from, resp) ->
      match resp with
      | Payload.Log_reply { writes; writer_faulty } ->
        if writer_faulty then faulty_votes := from :: !faulty_votes;
        List.iter
          (fun (w : Payload.write) ->
            if Uid.equal w.uid uid then begin
              Metrics.incr_digest ();
              if Stamp.matches_value w.stamp w.value then
                match Hashtbl.find_opt table w.stamp with
                | Some cell ->
                  let froms, kept = !cell in
                  if not (List.mem from froms) then cell := (from :: froms, kept)
                | None -> Hashtbl.add table w.stamp (ref ([ from ], w))
            end)
          writes
      | _ -> ())
    replies;
  if List.length (List.sort_uniq compare !faulty_votes) >= vouch_needed then
    `Writer_faulty
  else begin
    let best = ref None in
    Hashtbl.iter
      (fun stamp cell ->
        let froms, w = !cell in
        if
          List.length froms >= vouch_needed
          && Stamp.compare stamp floor >= 0
          && ((not t.cfg.verify_vouched)
             || Obs.Span.with_phase "verify" (fun () ->
                    Signing.verify_write t.keyring w))
        then
          match !best with
          | Some (s, _) when Stamp.compare s stamp >= 0 -> ()
          | _ -> best := Some (stamp, w))
      table;
    match !best with Some (_, w) -> `Found w | None -> `Missing
  end

let apply_read_to_context t (w : Payload.write) =
  (match (t.cfg.consistency, w.wctx) with
  | CC, Some wctx -> t.ctx <- Context.merge t.ctx wctx
  | CC, None | MRC, _ -> ());
  t.ctx <- Context.observe t.ctx w.uid w.stamp

(* ---------------- Dispersed reads -------------------------------------- *)

(* Pull [k] digest-authentic fragments with ranged [Frag_get]s, [k]
   streams in flight at a time. Server [i] holds fragment [i+1]. A
   holder that stalls, misreports the fragment length, or fails the
   whole-fragment digest check is struck and a fresh holder takes over
   its index; the round budget bounds the loop against a Byzantine
   trickle that feeds one authentic byte per round. *)
let gather_fragments t ~uid ~stamp (meta : Payload.dispersal_meta) =
  let fl = Dispersal.frag_length meta in
  let chunk = max 1 t.cfg.dispersal_chunk in
  let holders =
    Array.of_list
      (List.filter
         (fun id -> id >= 0 && id + 1 <= meta.Payload.m)
         (active_servers t))
  in
  let h = Array.length holders in
  let digests = Array.of_list meta.Payload.digests in
  let bufs = Array.map (fun _ -> Buffer.create 1024) holders in
  let state = Array.make h `Fresh in
  let count want =
    Array.fold_left (fun a s -> if s = want then a + 1 else a) 0 state
  in
  let budget = ref (((((fl + chunk - 1) / chunk) + 2) * (h + 1)) + 4) in
  let rec go () =
    let finished = count `Done in
    if finished >= meta.Payload.k then
      Ok
        (List.filter_map
           (fun i ->
             if state.(i) = `Done then
               Some (holders.(i) + 1, Buffer.contents bufs.(i))
             else None)
           (List.init h Fun.id))
    else begin
      let want = meta.Payload.k - finished in
      let active = ref (count `Active) in
      Array.iteri
        (fun i s ->
          if s = `Fresh && !active < want then begin
            state.(i) <- `Active;
            incr active
          end)
        state;
      if !active = 0 || !budget <= 0 then
        Error (Not_enough_fragments { uid; needed = meta.Payload.k; got = finished })
      else begin
        decr budget;
        let parts =
          List.filter_map
            (fun i ->
              if state.(i) <> `Active then None
              else
                let off = Buffer.length bufs.(i) in
                Some
                  ( holders.(i),
                    Payload.Frag_get
                      {
                        uid;
                        stamp;
                        index = holders.(i) + 1;
                        off;
                        len = min chunk (max 0 (fl - off));
                      } ))
            (List.init h Fun.id)
        in
        let replies =
          Obs.Span.with_phase "frag_gather" (fun () ->
              rpc_scatter t ~quorum:(List.length parts) parts)
        in
        Array.iteri
          (fun i s ->
            if s = `Active then begin
              let reply =
                List.find_map
                  (fun (from, resp) ->
                    if from = holders.(i) then Some resp else None)
                  replies
              in
              match reply with
              | Some (Payload.Frag_reply (Some c))
                when c.Payload.total = fl && String.length c.Payload.data > 0
                ->
                Buffer.add_string bufs.(i) c.Payload.data;
                if Buffer.length bufs.(i) > fl then state.(i) <- `Dead
                else if Buffer.length bufs.(i) = fl then begin
                  Metrics.incr_digest ();
                  if
                    String.equal
                      (Crypto.Sha256.digest (Buffer.contents bufs.(i)))
                      digests.(holders.(i))
                  then state.(i) <- `Done
                  else state.(i) <- `Dead
                end
              | _ -> state.(i) <- `Dead
            end)
          state;
        go ()
      end
    end
  in
  if fl = 0 then Ok [] else go ()

(* Turn a metadata write into the caller-visible value: replicated
   writes carry it inline; dispersed writes gather and decode. The
   metadata's signature covers the descriptor, so its digests speak with
   the writer's authority — fragments need no signatures of their own. *)
let resolve_value t (w : Payload.write) =
  match w.Payload.frags with
  | None -> Ok w.Payload.value
  | Some meta ->
    if
      not
        (Dispersal.meta_ok meta
        && String.equal (Dispersal.meta_root meta) w.Payload.value)
    then
      Error
        (Not_enough_fragments
           { uid = w.Payload.uid; needed = meta.Payload.k; got = 0 })
    else begin
      match gather_fragments t ~uid:w.Payload.uid ~stamp:w.Payload.stamp meta with
      | Error _ as e -> e
      | Ok pieces -> (
        match
          Obs.Span.with_phase "decode" (fun () ->
              Dispersal.decode_fragments meta pieces)
        with
        | Some value ->
          Metrics.incr_dispersed_read ();
          Ok value
        | None ->
          Error
            (Not_enough_fragments
               {
                 uid = w.Payload.uid;
                 needed = meta.Payload.k;
                 got = List.length pieces;
               }))
    end

let read_write_resolved t ~item =
  ensure_connected t @@ fun () ->
  (* Read-your-writes under Mac_fast: a MAC-held write is invisible to
     readers (including this one) until escalated, so flush before the
     context floor can demand a stamp no server will serve. *)
  if t.unescalated <> [] then flush_escalations t;
  Obs.Span.with_op "read" @@ fun () ->
  begin_trace t;
  t.opstats.reads <- t.opstats.reads + 1;
  let uid = Uid.make ~group:t.group ~item in
  let opid = trace_op () in
  trace t ~op:opid ~phase:Trace.Invoke (Trace.Read { uid });
  (* The canary deliberately skips the context-freshness floor — the
     broken client the consistency oracle must catch (never enable it
     outside oracle tests). *)
  let floor =
    if t.cfg.canary_skip_freshness then Stamp.zero else Context.find t.ctx uid
  in
  let base_set =
    match t.cfg.mode with
    | Single_writer -> Quorums.read_set ~b:(effective_b t)
    | Multi_writer -> Quorums.mw_read_quorum ~b:(effective_b t)
  in
  let round set_size =
    t.opstats.read_rounds <- t.opstats.read_rounds + 1;
    match t.cfg.mode with
    | Single_writer -> (
      let result =
        if t.cfg.inline_read then inline_read_round t ~uid ~floor ~set_size
        else single_read_round t ~uid ~floor ~set_size
      in
      match result with
      | Some w -> `Found w
      | None ->
        (* The inline fast path degrades to the standard protocol before
           giving up on this round's server set. *)
        if t.cfg.inline_read then begin
          match single_read_round t ~uid ~floor ~set_size with
          | Some w -> `Found w
          | None -> `Missing
        end
        else `Missing)
    | Multi_writer -> multi_read_round t ~uid ~floor ~set_size
  in
  (* Fig. 2's escape hatch: contact additional servers, then try later
     (with capped backoff, while the operation deadline allows). *)
  let start = Sim.Runtime.now () in
  let rec attempt ~retries ~tried ~set_size =
    match round set_size with
    | `Found w ->
      apply_read_to_context t w;
      Ok w
    | `Writer_faulty ->
      t.opstats.read_failures <- t.opstats.read_failures + 1;
      Error (Writer_faulty uid)
    | `Missing ->
      if set_size < active_n t then begin
        Metrics.incr_escalation ();
        Obs.Span.force ();
        attempt ~retries ~tried ~set_size:(active_n t)
      end
      else if retries > 0 && backoff_sleep t ~start ~attempt:tried then
        attempt ~retries:(retries - 1) ~tried:(tried + 1) ~set_size:(active_n t)
      else begin
        t.opstats.read_failures <- t.opstats.read_failures + 1;
        if Stamp.equal floor Stamp.zero then Error (Not_found uid)
        else Error (Stale { uid; wanted = floor })
      end
  in
  let result = attempt ~retries:t.cfg.read_retries ~tried:0 ~set_size:base_set in
  (* Dispersed items: the quorum handed back metadata; the value still
     has to be gathered and decoded. The trace outcome digests the
     reconstructed bytes, so the consistency oracle checks what callers
     actually saw, coded path included. *)
  let result =
    match result with
    | Error _ as e -> e
    | Ok w -> (
      match resolve_value t w with
      | Ok value -> Ok (w, value)
      | Error e ->
        t.opstats.read_failures <- t.opstats.read_failures + 1;
        Error e)
  in
  trace t ~op:opid ~phase:Trace.Return
    ~outcome:
      (outcome_of_result
         (fun ((w : Payload.write), value) ->
           Trace.Ok_value
             {
               stamp = w.stamp;
               digest = Crypto.Sha256.hex_digest value;
               writer = w.writer;
             })
         result)
    (Trace.Read { uid });
  result

let read_write t ~item = Result.map fst (read_write_resolved t ~item)
let read t ~item = Result.map snd (read_write_resolved t ~item)

(* ---------------- Writes ----------------------------------------------- *)

let make_stamp t ~value =
  match t.cfg.mode with
  | Single_writer -> Stamp.scalar (next_time t)
  | Multi_writer ->
    Metrics.incr_digest ();
    Stamp.multi ~time:(next_time t) ~writer:t.uid ~value

(* ---------------- Dispersed writes ------------------------------------- *)

let dispersal_k t =
  match t.cfg.dispersal_k with Some k -> k | None -> effective_b t + 1

(* Dispersal applies when the value clears the size threshold and the
   current membership can host it: server ids name fragment indices
   (server [i] holds fragment [i+1]), so every id must fit a descriptor,
   and write liveness needs [k + b] complete streams among the members. *)
let should_disperse t value =
  t.cfg.dispersal_threshold > 0
  && String.length value >= t.cfg.dispersal_threshold
  &&
  let servers = active_servers t in
  let k = dispersal_k t in
  servers <> []
  && List.for_all (fun id -> id >= 0 && id < 255) servers
  && k >= 1
  && k + effective_b t <= List.length servers

(* Scatter the fragments as chunked [Frag_put] streams — one scatter
   round per chunk offset, every surviving stream advancing in step, so
   no more than one chunk per destination is ever in flight. A server
   that misses a round is dropped (its stream is broken anyway); the
   write proceeds while at least [k + b] streams survive, which
   guarantees [k] fragments land on honest servers. *)
let scatter_fragments t ~uid ~stamp (meta : Payload.dispersal_meta) fragments =
  let fl = Dispersal.frag_length meta in
  let chunk = max 1 t.cfg.dispersal_chunk in
  let rounds = max 1 ((fl + chunk - 1) / chunk) in
  let need = meta.Payload.k + effective_b t in
  let active =
    ref
      (List.filter
         (fun id -> id >= 0 && id + 1 <= meta.Payload.m)
         (active_servers t))
  in
  let rec go r =
    if List.length !active < need then
      Error (No_quorum { wanted = need; got = List.length !active })
    else if r >= rounds then Ok ()
    else begin
      let off = r * chunk in
      let len = max 0 (min chunk (fl - off)) in
      let parts =
        List.map
          (fun id ->
            ( id,
              Payload.Frag_put
                {
                  uid;
                  stamp;
                  writer = t.uid;
                  index = id + 1;
                  seq = r;
                  last = r = rounds - 1;
                  data = String.sub fragments.(id) off len;
                } ))
          !active
      in
      let replies =
        Obs.Span.with_phase "frag_scatter" (fun () ->
            rpc_scatter t ~quorum:(List.length parts) parts)
      in
      active :=
        List.filter
          (fun id ->
            List.exists
              (fun (from, resp) -> from = id && resp = Payload.Ack)
              replies)
          !active;
      go (r + 1)
    end
  in
  go 0

(* The two-protocol bulk write: scatter the coded fragments first, then
   run the unchanged metadata quorum protocol over a small write whose
   value is the descriptor's digest root. Orphaned fragments (crash
   between the phases, or a lost metadata quorum) are invisible and
   bounded on the servers — the metadata quorum is the sole commit
   point, so atomicity under crash needs no cleanup protocol. Dispersed
   writes always carry a per-write signature: the descriptor rides
   inside the signed body, which the MAC and Merkle-batch fast paths do
   not thread through. *)
let write_dispersed t ~item value =
  Obs.Span.with_op "write" @@ fun () ->
  begin_trace t;
  t.opstats.writes <- t.opstats.writes + 1;
  let uid = Uid.make ~group:t.group ~item in
  let servers = active_servers t in
  let m = 1 + List.fold_left max 0 servers in
  let meta, fragments =
    Obs.Span.with_phase "encode" (fun () ->
        Dispersal.plan ~k:(dispersal_k t) ~n:m value)
  in
  let root = Dispersal.meta_root meta in
  let stamp = make_stamp t ~value:root in
  let opid = trace_op () in
  let wkind () =
    (* the trace digests the caller's value, not the coding artifact:
       consistency properties are stated over what was written *)
    Trace.Write { uid; stamp; digest = Crypto.Sha256.hex_digest value }
  in
  if Trace.enabled () then trace t ~op:opid ~phase:Trace.Invoke (wkind ());
  let wctx =
    match t.cfg.consistency with
    | CC ->
      t.ctx <- Context.set t.ctx uid stamp;
      Some t.ctx
    | MRC -> None
  in
  let result =
    match scatter_fragments t ~uid ~stamp meta fragments with
    | Error _ as e -> e
    | Ok () ->
      let w =
        Obs.Span.with_phase "sign" (fun () ->
            Signing.sign_write ~key:t.key ~writer:t.uid ~uid ~stamp ?wctx
              ~frags:meta root)
      in
      disseminate t w
  in
  (match (result, t.cfg.consistency) with
  | Ok (), MRC -> t.ctx <- Context.observe t.ctx uid stamp
  | Ok (), CC -> ()
  | Error _, _ -> ());
  if Result.is_ok result then Metrics.incr_dispersed_write ();
  if Trace.enabled () then
    trace t ~op:opid ~phase:Trace.Return
      ~outcome:(outcome_of_result (fun () -> Trace.Ok_unit) result)
      (wkind ());
  result

let write_replicated t ~item value =
  Obs.Span.with_op "write" @@ fun () ->
  begin_trace t;
  t.opstats.writes <- t.opstats.writes + 1;
  let uid = Uid.make ~group:t.group ~item in
  let stamp = make_stamp t ~value in
  let opid = trace_op () in
  let wkind () =
    Trace.Write { uid; stamp; digest = Crypto.Sha256.hex_digest value }
  in
  if Trace.enabled () then trace t ~op:opid ~phase:Trace.Invoke (wkind ());
  let wctx =
    match t.cfg.consistency with
    | CC ->
      (* Fig. 2: bump the item's entry in the context first, then sign
         the whole context with the value. *)
      t.ctx <- Context.set t.ctx uid stamp;
      Some t.ctx
    | MRC -> None
  in
  let sign_evidence () =
    match t.cfg.signing with
    | Merkle_batch _ ->
      (* A synchronous single write under batching degenerates to a
         batch of one: same Batch evidence shape every verifier expects,
         no extra latency. Throughput callers use {!write_batch} to
         actually amortize the signature. *)
      let batch = Signbatch.create ~key:t.key ~limit:1 in
      ignore
        (Signbatch.add batch
           {
             Payload.uid;
             stamp;
             wctx;
             value;
             writer = t.uid;
             evidence = Payload.Sig "";
             frags = None;
           }
          : [ `Buffered | `Full ]);
      (match Signbatch.flush batch with [ w ] -> w | _ -> assert false)
    | Per_write_sig | Mac_fast ->
      Obs.Span.with_phase "sign" (fun () ->
          Signing.sign_write ~key:t.key ~writer:t.uid ~uid ~stamp ?wctx value)
  in
  let w =
    match t.cfg.signing with
    | Mac_fast -> (
      match
        Obs.Span.with_phase "mac" (fun () ->
            Signing.mac_write t.keyring ~writer:t.uid ~uid ~stamp ?wctx
              ~servers:(active_servers t) value)
      with
      | Some w -> w
      | None ->
        (* Missing pairwise keys: fall back to the signature rather than
           send a write some addressed server could never verify. *)
        sign_evidence ())
    | Per_write_sig | Merkle_batch _ -> sign_evidence ()
  in
  let result = disseminate t w in
  (match (result, t.cfg.consistency) with
  | Ok (), MRC -> t.ctx <- Context.observe t.ctx uid stamp
  | Ok (), CC -> () (* already in the context *)
  | Error _, _ -> ());
  (match (result, w.evidence) with
  | Ok (), Payload.Mac _ ->
    t.unescalated <- w :: t.unescalated;
    if List.length t.unescalated >= max 1 t.cfg.escalate_every then
      flush_escalations t
  | _ -> ());
  if Trace.enabled () then
    trace t ~op:opid ~phase:Trace.Return
      ~outcome:(outcome_of_result (fun () -> Trace.Ok_unit) result)
      (wkind ());
  result

let write t ~item value =
  ensure_connected t @@ fun () ->
  if should_disperse t value then write_dispersed t ~item value
  else write_replicated t ~item value

(* Throughput path: write many items amortizing the signature cost.
   Under [Merkle_batch k] the items are chunked into batches of k; each
   chunk is stamped and (for CC) context-threaded in one pass, signed
   with a single RSA operation over the chunk's Merkle root, then
   disseminated write by write — so traced operations never overlap and
   dissemination order still satisfies each write's causal context.
   Under the other modes this is just [write] in a loop. *)
let write_chunk t chunk =
  let _, prepared =
    List.fold_left
      (fun (ctx, acc) (item, value) ->
        let uid = Uid.make ~group:t.group ~item in
        let stamp = make_stamp t ~value in
        let ctx, wctx =
          match t.cfg.consistency with
          | CC ->
            let ctx = Context.set ctx uid stamp in
            (ctx, Some ctx)
          | MRC -> (ctx, None)
        in
        (ctx, (uid, stamp, wctx, value, ctx) :: acc))
      (t.ctx, []) chunk
  in
  let prepared = List.rev prepared in
  let batch = Signbatch.create ~key:t.key ~limit:(List.length prepared) in
  List.iter
    (fun (uid, stamp, wctx, value, _) ->
      ignore
        (Signbatch.add batch
           {
             Payload.uid;
             stamp;
             wctx;
             value;
             writer = t.uid;
             evidence = Payload.Sig "";
             frags = None;
           }
          : [ `Buffered | `Full ]))
    prepared;
  let signed = Signbatch.flush batch in
  List.map2
    (fun (uid, stamp, _, value, post_ctx) w ->
      Obs.Span.with_op "write" @@ fun () ->
      begin_trace t;
      t.opstats.writes <- t.opstats.writes + 1;
      if t.cfg.consistency = CC then t.ctx <- post_ctx;
      let opid = trace_op () in
      let wkind () =
        Trace.Write { uid; stamp; digest = Crypto.Sha256.hex_digest value }
      in
      if Trace.enabled () then trace t ~op:opid ~phase:Trace.Invoke (wkind ());
      let result = disseminate t w in
      (match (result, t.cfg.consistency) with
      | Ok (), MRC -> t.ctx <- Context.observe t.ctx uid stamp
      | Ok (), CC -> ()
      | Error _, _ -> ());
      if Trace.enabled () then
        trace t ~op:opid ~phase:Trace.Return
          ~outcome:(outcome_of_result (fun () -> Trace.Ok_unit) result)
          (wkind ());
      result)
    prepared signed

let write_batch t items =
  if not t.connected then List.map (fun _ -> Error Disconnected) items
  else
    match (items, t.cfg.signing) with
    | [], _ -> []
    | _, (Per_write_sig | Mac_fast) ->
      List.map (fun (item, value) -> write t ~item value) items
    | _, Merkle_batch k ->
      let k = max 1 k in
      let rec chunks acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | x :: rest ->
          if n = k then chunks (List.rev cur :: acc) [ x ] 1 rest
          else chunks acc (x :: cur) (n + 1) rest
      in
      List.concat_map (write_chunk t) (chunks [] [] 0 items)

let flush t =
  ensure_connected t @@ fun () ->
  flush_escalations t;
  Ok ()

(* ---------------- Context reconstruction ------------------------------ *)

(* Read every item's signed current write from every server; keep, per
   item, the freshest stamp whose signature checks out. *)
let reconstruct_context t =
  Obs.Span.with_op "reconstruct" @@ fun () ->
  let request = Payload.Group_query { group = t.group } in
  let replies =
    Obs.Span.with_phase "group_query" (fun () ->
        rpc t ~quorum:(active_n t) (active_servers t) request)
  in
  let per_item : (string, Payload.write list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, resp) ->
      match resp with
      | Payload.Group_reply writes ->
        List.iter
          (fun (w : Payload.write) ->
            let key = Uid.to_string w.uid in
            match Hashtbl.find_opt per_item key with
            | Some cell -> cell := w :: !cell
            | None -> Hashtbl.add per_item key (ref [ w ]))
          writes
      | _ -> ())
    replies;
  let ctx = ref Context.empty in
  Obs.Span.with_phase "verify" (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          let ordered =
            List.sort
              (fun (a : Payload.write) b -> Stamp.compare b.stamp a.stamp)
              !cell
          in
          match
            List.find_opt (fun w -> Signing.verify_write t.keyring w) ordered
          with
          | Some w -> ctx := Context.observe !ctx w.Payload.uid w.Payload.stamp
          | None -> ())
        per_item);
  t.ctx <- Context.merge t.ctx !ctx

let reconstruct t =
  ensure_connected t @@ fun () ->
  if t.unescalated <> [] then flush_escalations t;
  Obs.Span.with_op "reconstruct" @@ fun () ->
  begin_trace t;
  let opid = trace_op () in
  trace t ~op:opid ~phase:Trace.Invoke Trace.Reconstruct;
  reconstruct_context t;
  trace t ~op:opid ~phase:Trace.Return ~outcome:Trace.Ok_unit Trace.Reconstruct;
  Ok ()

(* ---------------- Session lifecycle ----------------------------------- *)

let connect ?(recover = `Fresh) ~config:cfg ~uid ~key ~keyring ~group () =
  (match Quorums.validate ~n:cfg.n ~b:cfg.b with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Client.connect: " ^ msg));
  if List.length cfg.servers <> cfg.n then
    invalid_arg "Client.connect: servers list must have length n";
  let t =
    {
      uid;
      key;
      keyring;
      group;
      cfg;
      rng = Sim.Srng.create (cfg.seed + Hashtbl.hash (uid, group));
      trace_rng = Sim.Srng.create (cfg.seed + Hashtbl.hash ("trace", uid, group));
      session = Trace.new_session ();
      cur_trace = "";
      cur_trace_hex = "";
      ctx = Context.empty;
      ctx_seq = 0;
      last_time = 0;
      connected = true;
      unescalated = [];
      epoch = None;
      opstats =
        { messages = 0; reads = 0; writes = 0; read_rounds = 0; read_failures = 0 };
    }
  in
  Obs.Span.with_op "connect" @@ fun () ->
  begin_trace t;
  (* Epoch discovery, for dynamic-membership deployments (an admin key
     is pinned): ask the configured bootstrap servers which config epoch
     is live and adopt the newest validly signed answer. One valid reply
     suffices — the signature, not a quorum, is the authority — but
     waiting for all n would stall every connect behind a single crashed
     bootstrap server for the full timeout, so wait for n - b (always
     reachable with at most b faulty). A newer epoch missed here
     self-corrects on the first [Stale_epoch]. *)
  if cfg.epoch_admin <> None then
    Obs.Span.with_phase "epoch_discovery" (fun () ->
        let quorum = max 1 (List.length cfg.servers - cfg.b) in
        List.iter
          (fun (_, resp) ->
            match resp with
            | Payload.Epoch_reply (Some e) -> try_adopt_epoch t e
            | _ -> ())
          (rpc t ~quorum cfg.servers Payload.Epoch_get));
  let opid = trace_op () in
  trace t ~op:opid ~phase:Trace.Invoke Trace.Connect;
  let finish recovery =
    trace t ~op:opid ~phase:Trace.Return
      ~outcome:(Trace.Connected recovery) Trace.Connect;
    Ok t
  in
  match ctx_read t with
  | Error e ->
    trace t ~op:opid ~phase:Trace.Return
      ~outcome:(Trace.Failed (error_to_string e))
      Trace.Connect;
    Error e
  | Ok (Some record) ->
    t.ctx <- record.ctx;
    t.ctx_seq <- record.seq;
    (* Timestamps must keep increasing across sessions. *)
    List.iter
      (fun (_, stamp) -> t.last_time <- max t.last_time (Stamp.time stamp))
      (Context.bindings t.ctx);
    finish Trace.Stored
  | Ok None -> (
    match recover with
    | `Fresh -> finish Trace.Fresh
    | `Reconstruct ->
      reconstruct_context t;
      List.iter
        (fun (_, stamp) -> t.last_time <- max t.last_time (Stamp.time stamp))
        (Context.bindings t.ctx);
      finish Trace.Rebuilt)

let disconnect t =
  ensure_connected t @@ fun () ->
  (* Escalate before storing the context: the stored floor may name
     MAC-held stamps, and a future session must be able to read them. *)
  if t.unescalated <> [] then flush_escalations t;
  Obs.Span.with_op "disconnect" @@ fun () ->
  begin_trace t;
  let opid = trace_op () in
  trace t ~op:opid ~phase:Trace.Invoke Trace.Disconnect;
  let result =
    match ctx_store t with
    | Ok () ->
      t.connected <- false;
      Ok ()
    | Error e -> Error e
  in
  trace t ~op:opid ~phase:Trace.Return
    ~outcome:(outcome_of_result (fun () -> Trace.Ok_unit) result)
    Trace.Disconnect;
  result
