type t = {
  table : Shardmap.t;
  uid : string;
  key : Crypto.Rsa.keypair;
  keyring : Keyring.t;
  config_of : int -> Client.config;
  sessions : (string, Client.t) Hashtbl.t;
}

let shard_servers ~n shard = List.init n (fun r -> (shard * n) + r)

let create ?admin ~table ~uid ~key ~keyring ~config_of () =
  (match admin with
  | Some pub when not (Shardmap.verify table pub) ->
    invalid_arg "Router.create: shard table signature invalid"
  | _ -> ());
  { table; uid; key; keyring; config_of; sessions = Hashtbl.create 16 }

let shard_of t uid = Shardmap.shard_of_uid t.table uid
let table t = t.table

let session t ~group =
  match Hashtbl.find_opt t.sessions group with
  | Some c -> Ok c
  | None -> (
    let shard = Shardmap.shard_of_group t.table group in
    let config = t.config_of shard in
    match
      Client.connect ~config ~uid:t.uid ~key:t.key ~keyring:t.keyring ~group ()
    with
    | Ok c ->
      Hashtbl.replace t.sessions group c;
      Ok c
    | Error _ as e -> e)

(* Wrap one routed op: resolve the owning session, run, and account the
   outcome to the shard so a hot or sick shard shows up on /metrics. *)
let routed t ~uid ~write op =
  let group = Uid.group uid in
  let shard = Shardmap.shard_of_group t.table group in
  let t0 = Sim.Runtime.now () in
  let result =
    match session t ~group with Ok c -> op c | Error _ as e -> e
  in
  let ns = (Sim.Runtime.now () -. t0) *. 1e9 in
  let ok = match result with Ok _ -> true | Error _ -> false in
  Metrics.note_shard_client_op ~shard ~write ~ok (if ns > 0.0 then ns else 0.0);
  result

let write t ~uid value =
  routed t ~uid ~write:true (fun c -> Client.write c ~item:(Uid.item uid) value)

let read t ~uid =
  routed t ~uid ~write:false (fun c -> Client.read c ~item:(Uid.item uid))

(* Fold an action over every open session, reporting the first error but
   visiting all of them (a failed shard must not strand another shard's
   pending escalations or context write-back). *)
let each t f =
  Hashtbl.fold
    (fun _group c acc ->
      match f c with Ok () -> acc | Error _ as e when acc = Ok () -> e | _ -> acc)
    t.sessions (Ok ())

let flush_all t = each t Client.flush

let disconnect t =
  let r = each t Client.disconnect in
  Hashtbl.reset t.sessions;
  r

let sessions t = Hashtbl.fold (fun g c acc -> (g, c) :: acc) t.sessions []
