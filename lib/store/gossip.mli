(** Anti-entropy dissemination between servers.

    Non-faulty servers forward whole signed write messages (section 5.2),
    so a faulty server can neither forge nor alter updates in transit —
    receivers re-verify every signature. Push fan-out of b+1 guarantees
    each round reaches at least one non-faulty peer; epidemic spread does
    the rest. *)

val install :
  Sim.Engine.t ->
  servers:Server.t array ->
  ?fanout:int ->
  period:float ->
  rng:Sim.Srng.t ->
  unit ->
  Sim.Engine.periodic list
(** Schedule one periodic gossip fiber per server: every [period] seconds
    it drains the server's buffer of newly accepted writes and pushes
    them to [fanout] random distinct peers (default b+1). Returns the
    periodic handles so experiments can cancel gossip. *)

val exchange_once : servers:Server.t array -> rng:Sim.Srng.t -> ?fanout:int -> unit -> int
(** Synchronous variant for {!Sim.Direct}-based tests: runs one gossip
    round for every server by direct handler invocation; returns the
    number of pushed writes. *)

val repair_once : servers:Server.t array -> unit -> int
(** One fragment anti-entropy round by direct handler invocation: every
    server runs {!Server.repair_fragments} against its peers, so a
    holder that lost a fragment of a committed dispersed write gets it
    back (and counts it in [securestore_frag_repairs_total]). Returns
    the number of fragments restored. *)

val flood : servers:Server.t array -> unit
(** Repeat direct full exchanges until no server has anything new — total
    dissemination (useful to model "writes are infrequent, reads hit
    fully disseminated data"). *)
