(* Node-wide signature-verification cache. Verification is deterministic,
   so a digest over (public key, message, signature) fully determines the
   verdict; the LRU bound keeps an adversary from growing it without
   limit. Counters: [Metrics.incr_verify]/[incr_server_verify] keep the
   paper's section 6 accounting (logical verifications), while
   hit/miss counters expose how many RSA exponentiations actually ran. *)

let default_sigcache_capacity = 4096
let sigcache = ref (Sigcache.create ~capacity:default_sigcache_capacity)

(* The TCP transport verifies outside the server-state lock, so cache
   lookups race across connection threads; the LRU's intrusive list is
   not safe to mutate concurrently. The RSA math itself runs unlocked. *)
let sigcache_lock = Mutex.create ()

let with_sigcache fn =
  Mutex.lock sigcache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sigcache_lock) fn

let reset_sigcache ?(capacity = default_sigcache_capacity) () =
  with_sigcache (fun () -> sigcache := Sigcache.create ~capacity)

let sigcache_stats () =
  with_sigcache (fun () -> (Sigcache.hits !sigcache, Sigcache.misses !sigcache))

(* Live view of the cache instance itself (entries/capacity and its own
   lifetime hit/miss counters, which unlike the Metrics counters survive
   [Metrics.reset]) as exposition families for a /metrics scrape. *)
let sigcache_families () =
  let hits, misses, entries, capacity =
    with_sigcache (fun () ->
        ( Sigcache.hits !sigcache,
          Sigcache.misses !sigcache,
          Sigcache.size !sigcache,
          Sigcache.capacity !sigcache ))
  in
  [
    Obs.Expo.counter ~name:"securestore_sigcache_lifetime_hits_total"
      ~help:"Cache-instance lifetime hits (survives metric resets)."
      (float_of_int hits);
    Obs.Expo.counter ~name:"securestore_sigcache_lifetime_misses_total"
      ~help:"Cache-instance lifetime misses (survives metric resets)."
      (float_of_int misses);
    Obs.Expo.gauge ~name:"securestore_sigcache_entries"
      ~help:"Cached verification verdicts currently held."
      (float_of_int entries);
    Obs.Expo.gauge ~name:"securestore_sigcache_capacity"
      ~help:"LRU capacity of the verification cache."
      (float_of_int capacity);
  ]

let cache_key pub ~msg ~signature =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.update ctx (Crypto.Rsa.public_to_string pub);
  Crypto.Sha256.update ctx "\x00";
  (* The signature is modulus-width for its key, so key/sig/msg splits
     are unambiguous. *)
  Crypto.Sha256.update ctx signature;
  Crypto.Sha256.update ctx "\x00";
  Crypto.Sha256.update ctx msg;
  Crypto.Sha256.finalize ctx

(* [count] distinguishes accounted verifications from quiet diagnostic
   re-checks, which must not skew any counter (including hit/miss). *)
let cached_verify ?(count = true) pub ~msg ~signature =
  let key = cache_key pub ~msg ~signature in
  match with_sigcache (fun () -> Sigcache.find !sigcache key) with
  | Some verdict ->
    if count then Metrics.incr_sigcache_hit ();
    verdict
  | None ->
    if count then Metrics.incr_sigcache_miss ();
    (* Only misses get a phase: this is where the RSA exponentiation
       actually runs, so traced ops show "verify/rsa_verify" exactly as
       often as the cache failed them. *)
    let verdict =
      Obs.Span.with_phase "rsa_verify" (fun () ->
          Crypto.Rsa.verify pub ~msg ~signature)
    in
    with_sigcache (fun () -> Sigcache.add !sigcache key verdict);
    verdict

let sign_write ~key ~writer ~uid ~stamp ?wctx ?frags value =
  let unsigned =
    { Payload.uid; stamp; wctx; value; writer; evidence = Payload.Sig ""; frags }
  in
  Metrics.incr_sign ();
  {
    unsigned with
    evidence = Payload.Sig (Crypto.Rsa.sign key (Payload.write_body unsigned));
  }

let sign_batch_root ~key ~root ~size =
  Metrics.incr_sign ();
  Crypto.Rsa.sign key (Payload.batch_body ~root ~size)

(* Build the MAC-evidence form of a write: one HMAC tag per server in
   [servers]. [None] when any pairwise key is missing — the caller falls
   back to a signature rather than sending a write some addressed server
   could never verify. *)
let mac_write keyring ~writer ~uid ~stamp ?wctx ?frags ~servers value =
  let unsigned =
    { Payload.uid; stamp; wctx; value; writer; evidence = Payload.Mac []; frags }
  in
  let body = Payload.write_body unsigned in
  let tags =
    List.filter_map
      (fun server ->
        match Keyring.mac_key keyring ~client:writer ~server with
        | None -> None
        | Some key ->
          Metrics.incr_mac ();
          Some (server, Crypto.Hmac.sha256 ~key (Payload.mac_body ~server body)))
      servers
  in
  if List.length tags = List.length servers then
    Some { unsigned with evidence = Payload.Mac tags }
  else None

(* Third-party verification: signature or batch evidence only. MAC
   evidence is deliberately unverifiable here — a client or gossip peer
   holding no pairwise key must treat such a write as unauthenticated,
   which is what keeps MAC-fast writes inside their write quorum until
   escalation. *)
let check_write ?(count = true) keyring (w : Payload.write) =
  match Keyring.find keyring w.writer with
  | None -> false
  | Some pub -> (
    match w.evidence with
    | Payload.Sig signature ->
      cached_verify ~count pub ~msg:(Payload.write_body w) ~signature
      && Stamp.matches_value w.stamp w.value
    | Payload.Batch { root; size; proof; root_sig } ->
      size > 0
      && proof.Crypto.Merkle.index >= 0
      && proof.Crypto.Merkle.index < size
      && cached_verify ~count pub
           ~msg:(Payload.batch_body ~root ~size)
           ~signature:root_sig
      && begin
           if count then Metrics.incr_digest ();
           Crypto.Merkle.verify ~root ~size ~leaf:(Payload.write_body w) proof
         end
      && Stamp.matches_value w.stamp w.value
    | Payload.Mac _ -> false)

let verify_write keyring w =
  Metrics.incr_verify ();
  check_write keyring w

let check_write_quiet keyring w = check_write ~count:false keyring w

let server_verify_write keyring w =
  Metrics.incr_server_verify ();
  check_write keyring w

(* The addressed server's check of a MAC-fast write: find our tag, check
   it under our pairwise key with the claimed writer. Counted as a
   server verification (it plays the same protocol role), plus a MAC
   computation instead of an RSA one — the entire point. *)
let server_verify_mac keyring ~server (w : Payload.write) =
  Metrics.incr_server_verify ();
  match w.evidence with
  | Payload.Mac tags -> (
    match List.assoc_opt server tags with
    | None -> false
    | Some tag -> (
      match Keyring.mac_key keyring ~client:w.writer ~server with
      | None -> false
      | Some key ->
        Metrics.incr_mac ();
        Crypto.Hmac.verify ~key
          ~msg:(Payload.mac_body ~server (Payload.write_body w))
          ~tag
        && Stamp.matches_value w.stamp w.value))
  | Payload.Sig _ | Payload.Batch _ -> false

(* Cache warming: run the RSA math now (counting cache traffic, so
   [Metrics.rsa_verifies] stays honest about where exponentiations ran)
   without counting a logical verification — the later in-lock check
   does that and hits the cache. *)
let warm_write keyring (w : Payload.write) =
  match w.evidence with
  | Payload.Mac _ -> () (* HMAC is cheap; checked under the lock *)
  | Payload.Sig _ | Payload.Batch _ -> ignore (check_write keyring w : bool)

(* Warm just the root-signature check of batch evidence — what an
   [Evidence_upgrade] will verify under the lock. The Merkle path hashes
   are cheap and rerun there. *)
let warm_batch keyring ~writer evidence =
  match evidence with
  | Payload.Batch { root; size; root_sig; _ } -> (
    match Keyring.find keyring writer with
    | Some pub ->
      ignore
        (cached_verify pub ~msg:(Payload.batch_body ~root ~size)
           ~signature:root_sig
          : bool)
    | None -> ())
  | Payload.Sig _ | Payload.Mac _ -> ()

let sign_context ~key ~client ~group ~seq ctx =
  Metrics.incr_sign ();
  let body = Payload.ctx_body ~client ~group ~seq ctx in
  { Payload.seq; ctx; signature = Crypto.Rsa.sign key body }

let check_context ?count keyring ~client ~group (r : Payload.ctx_record) =
  match Keyring.find keyring client with
  | None -> false
  | Some pub ->
    let body = Payload.ctx_body ~client ~group ~seq:r.seq r.ctx in
    cached_verify ?count pub ~msg:body ~signature:r.signature

let verify_context keyring ~client ~group r =
  Metrics.incr_verify ();
  check_context keyring ~client ~group r

let server_verify_context keyring ~client ~group r =
  Metrics.incr_server_verify ();
  check_context keyring ~client ~group r

let warm_context keyring ~client ~group r =
  ignore (check_context keyring ~client ~group r : bool)
