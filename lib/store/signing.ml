(* Node-wide signature-verification cache. Verification is deterministic,
   so a digest over (public key, message, signature) fully determines the
   verdict; the LRU bound keeps an adversary from growing it without
   limit. Counters: [Metrics.incr_verify]/[incr_server_verify] keep the
   paper's section 6 accounting (logical verifications), while
   hit/miss counters expose how many RSA exponentiations actually ran. *)

let default_sigcache_capacity = 4096
let sigcache = ref (Sigcache.create ~capacity:default_sigcache_capacity)

(* The TCP transport verifies outside the server-state lock, so cache
   lookups race across connection threads; the LRU's intrusive list is
   not safe to mutate concurrently. The RSA math itself runs unlocked. *)
let sigcache_lock = Mutex.create ()

let with_sigcache fn =
  Mutex.lock sigcache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sigcache_lock) fn

let reset_sigcache ?(capacity = default_sigcache_capacity) () =
  with_sigcache (fun () -> sigcache := Sigcache.create ~capacity)

let sigcache_stats () =
  with_sigcache (fun () -> (Sigcache.hits !sigcache, Sigcache.misses !sigcache))

let cache_key pub ~msg ~signature =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.update ctx (Crypto.Rsa.public_to_string pub);
  Crypto.Sha256.update ctx "\x00";
  (* The signature is modulus-width for its key, so key/sig/msg splits
     are unambiguous. *)
  Crypto.Sha256.update ctx signature;
  Crypto.Sha256.update ctx "\x00";
  Crypto.Sha256.update ctx msg;
  Crypto.Sha256.finalize ctx

(* [count] distinguishes accounted verifications from quiet diagnostic
   re-checks, which must not skew any counter (including hit/miss). *)
let cached_verify ?(count = true) pub ~msg ~signature =
  let key = cache_key pub ~msg ~signature in
  match with_sigcache (fun () -> Sigcache.find !sigcache key) with
  | Some verdict ->
    if count then Metrics.incr_sigcache_hit ();
    verdict
  | None ->
    if count then Metrics.incr_sigcache_miss ();
    (* Only misses get a phase: this is where the RSA exponentiation
       actually runs, so traced ops show "verify/rsa_verify" exactly as
       often as the cache failed them. *)
    let verdict =
      Obs.Span.with_phase "rsa_verify" (fun () ->
          Crypto.Rsa.verify pub ~msg ~signature)
    in
    with_sigcache (fun () -> Sigcache.add !sigcache key verdict);
    verdict

let sign_write ~key ~writer ~uid ~stamp ?wctx value =
  let unsigned =
    { Payload.uid; stamp; wctx; value; writer; signature = "" }
  in
  Metrics.incr_sign ();
  { unsigned with signature = Crypto.Rsa.sign key (Payload.write_body unsigned) }

let check_write ?count keyring (w : Payload.write) =
  match Keyring.find keyring w.writer with
  | None -> false
  | Some pub ->
    cached_verify ?count pub ~msg:(Payload.write_body w) ~signature:w.signature
    && Stamp.matches_value w.stamp w.value

let verify_write keyring w =
  Metrics.incr_verify ();
  check_write keyring w

let check_write_quiet keyring w = check_write ~count:false keyring w

let server_verify_write keyring w =
  Metrics.incr_server_verify ();
  check_write keyring w

(* Cache warming: run the RSA math now (counting cache traffic, so
   [Metrics.rsa_verifies] stays honest about where exponentiations ran)
   without counting a logical verification — the later in-lock check
   does that and hits the cache. *)
let warm_write keyring w = ignore (check_write keyring w : bool)

let sign_context ~key ~client ~group ~seq ctx =
  Metrics.incr_sign ();
  let body = Payload.ctx_body ~client ~group ~seq ctx in
  { Payload.seq; ctx; signature = Crypto.Rsa.sign key body }

let check_context ?count keyring ~client ~group (r : Payload.ctx_record) =
  match Keyring.find keyring client with
  | None -> false
  | Some pub ->
    let body = Payload.ctx_body ~client ~group ~seq:r.seq r.ctx in
    cached_verify ?count pub ~msg:body ~signature:r.signature

let verify_context keyring ~client ~group r =
  Metrics.incr_verify ();
  check_context keyring ~client ~group r

let server_verify_context keyring ~client ~group r =
  Metrics.incr_server_verify ();
  check_context keyring ~client ~group r

let warm_context keyring ~client ~group r =
  ignore (check_context keyring ~client ~group r : bool)
