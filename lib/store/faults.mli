(** Byzantine server behaviours, as wrappers around an honest server.

    Each behaviour decorates {!Server.handler}, so a "malicious" server
    can only diverge in what it *says*, exactly like the paper's threat
    model: it may stay silent, replay stale state, corrupt values or
    meta-data, inflate timestamps, or collude by vouching for
    unannounced writes. Wrapping (rather than reimplementing) guarantees
    fault injection can never accidentally drift from the honest
    semantics. *)

type behavior =
  | Honest
  | Crash  (** never responds, accepts nothing *)
  | Silent_reads  (** accepts writes but never answers queries *)
  | Stale  (** ignores all new writes and gossip: serves frozen state *)
  | Corrupt_value  (** flips bits in returned values *)
  | Corrupt_meta  (** inflates timestamps in meta replies (lures readers) *)
  | Equivocate
      (** claims a huge timestamp in meta replies but serves the real
          (older) value on fetch — the bait-and-switch a signature check
          alone does not catch without the stamp-freshness check *)
  | Eager_report
      (** multi-writer: reports held (pending) writes before their causal
          predecessors arrived, the attack b+1 vouching masks *)
  | Drop_gossip  (** accepts client writes but ignores gossip pushes *)
  | Downgrade
      (** evidence downgrade: serves MAC-held writes as if announced
          (their MAC vectors are genuine but not third-party
          verifiable) and strips elements from batch inclusion proofs —
          the attacks the evidence checks in {!Signing.verify_write}
          must catch *)

val to_string : behavior -> string
val all : behavior list

val handle_typed :
  behavior ->
  Server.t ->
  now:float ->
  from:Sim.Runtime.node_id ->
  Payload.envelope ->
  Payload.response option
(** The decorated typed handler — what {!wrap} uses after decoding, and
    what live hosts ({!Tcpnet.Server_host}) dispatch to so Byzantine
    behaviours run behind real sockets exactly as they do in the
    simulator. *)

val wrap :
  behavior ->
  Server.t ->
  now:float ->
  from:Sim.Runtime.node_id ->
  string ->
  string option
(** The decorated wire handler to register with the engine. *)

val forge_write :
  keyring:Keyring.t -> uid:Uid.t -> value:string -> writer:string -> Payload.write
(** A write with a garbage signature, for testing that servers and
    clients reject forgeries. *)
