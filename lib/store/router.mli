(** Client-side shard router: one logical client per shard.

    A router owns a {!Shardmap} and lazily opens one {!Client} session
    per group, against the quorum group of the shard that owns the
    group. Because a context is already scoped to a single group
    (section 4 of the paper), and a group lives wholly on one shard,
    nothing a session carries — contexts, signing state, escalation
    queues, fault evidence — ever crosses a shard boundary, so routing
    needs no cross-shard coordination of any kind: shard s's quorum math
    is independent of shard s'.

    The router is deliberately transport-agnostic (it speaks
    {!Sim.Runtime} effects like {!Client} does): the same router runs
    under the simulator, the Direct harness, and live TCP. Like
    {!Client}, a router is not thread-safe — use one per thread. *)

type t

val shard_servers : n:int -> int -> Sim.Runtime.node_id list
(** Global node ids of shard [s]'s replica set: [s*n + r] for [r] in
    [0..n-1]. The whole deployment shares one flat id space so a MAC or
    signature bound to a server id names exactly one replica of one
    shard. *)

val create :
  ?admin:Crypto.Rsa.public ->
  table:Shardmap.t ->
  uid:string ->
  key:Crypto.Rsa.keypair ->
  keyring:Keyring.t ->
  config_of:(int -> Client.config) ->
  unit ->
  t
(** [config_of shard] supplies the per-shard client config — typically
    [default_config] with [servers = shard_servers ~n shard]. When
    [admin] is given, the table's signature must verify against it.
    @raise Invalid_argument on a missing/invalid table signature. *)

val shard_of : t -> Uid.t -> int
val table : t -> Shardmap.t

val session : t -> group:string -> (Client.t, Client.error) result
(** The (lazily connected) session for [group], on its owning shard. *)

val write : t -> uid:Uid.t -> string -> (unit, Client.error) result
val read : t -> uid:Uid.t -> (string, Client.error) result

val flush_all : t -> (unit, Client.error) result
(** Flush pending Mac_fast escalations on every open session. *)

val disconnect : t -> (unit, Client.error) result
(** Disconnect every open session (contexts written back per group);
    the first error is reported, but all sessions are attempted. *)

val sessions : t -> (string * Client.t) list
(** Open sessions as [(group, session)] — diagnostics and tests. *)
