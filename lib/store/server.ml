type config = {
  n : int;
  b : int;
  malicious_client_guard : bool;
  log_depth : int;
  mac_hold_depth : int;
  auth : Access_control.service option;
  epoch_admin : Crypto.Rsa.public option;
      (* the cluster administrator's public key; when set, announced
         config epochs must verify against it *)
}

let default_config ~n ~b =
  {
    n;
    b;
    malicious_client_guard = false;
    log_depth = 4;
    mac_hold_depth = 32;
    auth = None;
    epoch_admin = None;
  }

type item_state = {
  mutable current : Payload.write option;
  mutable log : Payload.write list; (* newest first, excludes current *)
  mutable pending : Payload.write list; (* guard: held, unannounced *)
  mutable maced : Payload.write list;
      (* MAC-fast writes: verified with our pairwise key but carrying no
         third-party-verifiable evidence, so never announced, served, or
         gossiped until the client escalates them to signed evidence
         (Evidence_upgrade). Bounded by [mac_hold_depth], oldest dropped. *)
  mutable forked : bool;
  mutable holders : (Stamp.t * int list) list;
      (* which servers are known (via gossip summaries) to hold which
         stamp of this item; drives section 5.3's log erasure *)
  mutable erased_below : Stamp.t;
      (* erasure watermark: writes older than this are known to be
         superseded at 2b+1 servers and are never re-admitted *)
}

(* Bulk bytes of dispersed writes, keyed (item uid, stamp, fragment
   index). A fragment arrives as a chunked [Frag_put] stream into a
   staging buffer and is sealed on the last chunk; it becomes servable
   only once [fverified]: its digest matches the coding descriptor of a
   stored metadata write. Sealed-but-unverified fragments are orphans —
   invisible, bounded FIFO, promoted when the metadata arrives. That is
   the two-phase write's crash story: fragments scattered without a
   metadata quorum simply never become visible, so the metadata quorum
   remains the sole commit point. *)
type frag_entry = {
  fdata : string;
  fdigest : string;  (* SHA-256 of fdata *)
  mutable fverified : bool;
}

type frag_staging = {
  sbuf : Buffer.t;
  mutable snext : int;  (* next expected chunk seq *)
  swriter : string;
}

type frag_key = string * Stamp.t * int

type t = {
  id : int;
  config : config;
  keyring : Keyring.t;
  items : (string, item_state) Hashtbl.t; (* key: Uid.to_string *)
  frags : (frag_key, frag_entry) Hashtbl.t;
  staging : (frag_key, frag_staging) Hashtbl.t;
  mutable orphans : frag_key list; (* newest first; eviction drops the tail *)
  contexts : (string * string, Payload.ctx_record) Hashtbl.t;
  faulty_writers : (string, unit) Hashtbl.t;
  mutable gossip_buffer : Payload.write list;
  mutable audit : Payload.write list; (* announced writes, newest first *)
  mutable epoch : Config_epoch.t option;
      (* the membership generation this server serves; None = static
         deployment, every epoch check off *)
  mutable draining : bool;
      (* departing: refuse new client writes, keep serving reads and
         evidence upgrades so held writes can still escalate and gossip
         out before handoff *)
}

let create ?config ~id ~keyring ~n ~b () =
  let config = match config with Some c -> c | None -> default_config ~n ~b in
  {
    id;
    config;
    keyring;
    items = Hashtbl.create 64;
    frags = Hashtbl.create 16;
    staging = Hashtbl.create 8;
    orphans = [];
    contexts = Hashtbl.create 16;
    faulty_writers = Hashtbl.create 4;
    gossip_buffer = [];
    audit = [];
    epoch = None;
    draining = false;
  }

let id t = t.id
let config t = t.config
let epoch t = t.epoch
let epoch_version t = match t.epoch with Some e -> e.Config_epoch.version | None -> 0
let draining t = t.draining
let begin_drain t = t.draining <- true

let item_state t uid =
  let key = Uid.to_string uid in
  match Hashtbl.find_opt t.items key with
  | Some st -> st
  | None ->
    let st =
      {
        current = None;
        log = [];
        pending = [];
        maced = [];
        forked = false;
        holders = [];
        erased_below = Stamp.zero;
      }
    in
    Hashtbl.replace t.items key st;
    st

let same_stamp_kind a b =
  match (a, b) with
  | Stamp.Scalar _, Stamp.Scalar _ | Stamp.Multi _, Stamp.Multi _ -> true
  | Stamp.Scalar _, Stamp.Multi _ | Stamp.Multi _, Stamp.Scalar _ -> false

let is_writer_faulty t writer = Hashtbl.mem t.faulty_writers writer

(* The stamp this server can vouch for on [uid]: the announced current
   write only — held (pending) writes are invisible (section 5.3). *)
let announced_stamp st = Option.map (fun (w : Payload.write) -> w.stamp) st.current

(* Does this server already store writes satisfying every causal
   dependency in [ctx] (other than the item being written itself)? *)
let deps_satisfied t ~(self : Uid.t) ctx =
  List.for_all
    (fun (uid, stamp) ->
      Uid.equal uid self
      ||
      match Hashtbl.find_opt t.items (Uid.to_string uid) with
      | None -> Stamp.equal stamp Stamp.zero
      | Some st -> (
        match announced_stamp st with
        | None -> Stamp.equal stamp Stamp.zero
        | Some have -> Stamp.compare have stamp >= 0))
    (Context.bindings ctx)

let detect_fork t st (w : Payload.write) =
  let conflicts other = Stamp.is_fork w.stamp other.Payload.stamp in
  let in_log = List.exists conflicts st.log in
  let in_pending = List.exists conflicts st.pending in
  let in_maced = List.exists conflicts st.maced in
  let in_current = match st.current with Some c -> conflicts c | None -> false in
  if in_log || in_pending || in_maced || in_current then begin
    st.forked <- true;
    Hashtbl.replace t.faulty_writers w.writer ();
    true
  end
  else false

let already_stored st (w : Payload.write) =
  let same other = Stamp.equal other.Payload.stamp w.stamp in
  (match st.current with Some c -> same c | None -> false)
  || List.exists same st.log
  || List.exists same st.pending

let in_maced st (w : Payload.write) =
  List.exists
    (fun other -> Stamp.equal other.Payload.stamp w.stamp)
    st.maced

(* The copy we hold under [w.stamp] carries the same writer and body:
   [w] is a client retry after a lost ack, not a fork attempt, and must
   be acknowledged — rejecting it turns a successful write into a
   reported failure whenever the first ack is dropped by the network. *)
let duplicate_of st (w : Payload.write) =
  let matches (other : Payload.write) =
    Stamp.equal other.stamp w.stamp
    && String.equal other.writer w.writer
    && String.equal (Payload.write_body other) (Payload.write_body w)
  in
  List.exists matches
    ((match st.current with Some c -> [ c ] | None -> [])
    @ st.log @ st.pending @ st.maced)

let drop_maced st stamp =
  st.maced <-
    List.filter
      (fun (m : Payload.write) -> not (Stamp.equal m.stamp stamp))
      st.maced

let trim depth l = List.filteri (fun i _ -> i < depth) l

(* --- coded fragments ---------------------------------------------------- *)

(* Staging slots bound concurrent in-flight fragment streams; the
   orphan FIFO bounds sealed fragments waiting for their metadata; the
   size cap bounds one fragment; the reply cap keeps a single Frag_get
   answer well under the frame limit. *)
let max_staging = 64
let orphan_cap = 512
let max_frag_bytes = 1 lsl 28 (* 256 MiB *)
let frag_reply_cap = 4 * 1024 * 1024

(* The coding descriptor this server stored for [stamp] of the item, if
   any — what decides whether an arriving fragment is verifiable now or
   an orphan. *)
let dispersal_meta_for t key stamp =
  match Hashtbl.find_opt t.items key with
  | None -> None
  | Some st ->
    let pick (w : Payload.write) =
      if Stamp.equal w.stamp stamp then w.frags else None
    in
    (match Option.bind st.current pick with
    | Some _ as r -> r
    | None -> List.find_map pick st.log)

let evict_orphans t =
  if List.length t.orphans > orphan_cap then begin
    let keep = List.filteri (fun i _ -> i < orphan_cap) t.orphans in
    let dead = List.filteri (fun i _ -> i >= orphan_cap) t.orphans in
    List.iter
      (fun fkey ->
        match Hashtbl.find_opt t.frags fkey with
        | Some e when not e.fverified -> Hashtbl.remove t.frags fkey
        | _ -> ())
      dead;
    t.orphans <- keep
  end

(* Seal a completed fragment stream: store it verified if the metadata
   already announced a matching digest, as an orphan if the metadata has
   not arrived, and refuse it outright on a digest mismatch — a
   Byzantine writer cannot park garbage under a committed stamp. *)
let seal_fragment t ((key, stamp, index) : frag_key) data =
  let fkey = (key, stamp, index) in
  let digest = Crypto.Sha256.digest data in
  Metrics.incr_digest ();
  match dispersal_meta_for t key stamp with
  | Some meta ->
    if
      index <= List.length meta.Payload.digests
      && String.equal (List.nth meta.Payload.digests (index - 1)) digest
    then begin
      Hashtbl.replace t.frags fkey { fdata = data; fdigest = digest; fverified = true };
      Metrics.incr_frag_put ();
      Payload.Ack
    end
    else Payload.Denied "fragment digest mismatch"
  | None ->
    Hashtbl.replace t.frags fkey { fdata = data; fdigest = digest; fverified = false };
    t.orphans <- fkey :: t.orphans;
    evict_orphans t;
    Metrics.incr_frag_put ();
    Payload.Ack

(* Metadata arrived: orphaned fragments whose digests it certifies
   become servable; impostors under the same stamp are dropped. *)
let promote_frags t (w : Payload.write) =
  match w.frags with
  | None -> ()
  | Some meta ->
    let key = Uid.to_string w.uid in
    List.iteri
      (fun i expected ->
        let fkey = (key, w.stamp, i + 1) in
        match Hashtbl.find_opt t.frags fkey with
        | Some e when not e.fverified ->
          if String.equal e.fdigest expected then e.fverified <- true
          else Hashtbl.remove t.frags fkey
        | _ -> ())
      meta.Payload.digests;
    t.orphans <-
      List.filter
        (fun fkey ->
          match Hashtbl.find_opt t.frags fkey with
          | Some e -> not e.fverified
          | None -> false)
        t.orphans

(* Drop fragments whose stamp can no longer be read: below the erasure
   watermark, or superseded without surviving in the log. Orphans ahead
   of the current stamp stay — their metadata may still be coming. *)
let gc_frags t key (st : item_state) =
  let stale stamp =
    Stamp.compare stamp st.erased_below < 0
    || (match st.current with
        | Some (c : Payload.write) ->
          Stamp.compare stamp c.stamp < 0
          && not
               (List.exists
                  (fun (w : Payload.write) -> Stamp.equal w.stamp stamp)
                  st.log)
        | None -> false)
  in
  let dead =
    Hashtbl.fold
      (fun ((k, stamp, _) as fkey) _ acc ->
        if String.equal k key && stale stamp then fkey :: acc else acc)
      t.frags []
  in
  if dead <> [] then begin
    List.iter (Hashtbl.remove t.frags) dead;
    t.orphans <- List.filter (Hashtbl.mem t.frags) t.orphans
  end

let note_install t (w : Payload.write) st =
  promote_frags t w;
  if Hashtbl.length t.frags > 0 then gc_frags t (Uid.to_string w.uid) st

(* Install an accepted (announced) write. Returns true if state changed. *)
let install t st (w : Payload.write) =
  (* If we held the same stamp as a MAC-fast write, the announced form
     (escalated by the client, or gossiped from a peer that saw the
     signed version) supersedes it. *)
  drop_maced st w.stamp;
  match st.current with
  | None ->
    st.current <- Some w;
    t.audit <- w :: t.audit;
    true
  | Some c when Stamp.newer w.stamp ~than:c.stamp ->
    st.current <- Some w;
    st.log <- trim t.config.log_depth (c :: st.log);
    t.audit <- w :: t.audit;
    true
  | Some c when Stamp.equal w.stamp c.stamp -> false
  | Some _ ->
    (* Older than current: keep it in the log so a value being
       overwritten stays available during dissemination. Only report a
       change if the write survives trimming — otherwise re-gossiping it
       would echo long-dead writes between servers forever. *)
    let log =
      trim t.config.log_depth
        (List.sort
           (fun (a : Payload.write) b -> Stamp.compare b.stamp a.stamp)
           (w :: st.log))
    in
    let survived =
      List.exists (fun (x : Payload.write) -> Stamp.equal x.stamp w.stamp) log
    in
    st.log <- log;
    if survived then t.audit <- w :: t.audit;
    survived

(* Try to accept [w]; returns `Accepted | `Held | `Rejected. Does not
   drain pending queues (the caller does, to a fixpoint). *)
let try_accept t (w : Payload.write) =
  let st = item_state t w.uid in
  if Stamp.compare w.stamp st.erased_below < 0 then `Rejected
  else if already_stored st w then
    if duplicate_of st w then `Duplicate else `Rejected
  else if is_writer_faulty t w.writer then `Rejected
  else if detect_fork t st w then `Rejected
  else if
    (match st.current with
    | Some c -> not (same_stamp_kind c.Payload.stamp w.stamp)
    | None -> false)
  then `Rejected
  else if
    (* A dispersed write's value must BE the digest Merkle root: the
       evidence then binds every fragment byte, and a descriptor the
       root does not certify can never be installed. *)
    match w.frags with
    | None -> false
    | Some meta ->
      not (Dispersal.meta_ok meta && String.equal w.value (Dispersal.meta_root meta))
  then `Rejected
  else if not (Signing.server_verify_write t.keyring w) then `Rejected
  else if
    t.config.malicious_client_guard
    &&
    match w.wctx with
    | Some ctx -> not (deps_satisfied t ~self:w.uid ctx)
    | None -> false
  then begin
    st.pending <- w :: st.pending;
    `Held
  end
  else if install t st w then begin
    t.gossip_buffer <- w :: t.gossip_buffer;
    note_install t w st;
    `Accepted
  end
  else `Rejected

(* After an acceptance, held writes may have become reportable. *)
let drain_pending t =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Hashtbl.iter
      (fun _ st ->
        let still_pending = ref [] in
        let pending = st.pending in
        st.pending <- [];
        List.iter
          (fun (w : Payload.write) ->
            let ok =
              match w.wctx with
              | Some ctx -> deps_satisfied t ~self:w.uid ctx
              | None -> true
            in
            if ok then begin
              if install t st w then begin
                t.gossip_buffer <- w :: t.gossip_buffer;
                note_install t w st;
                progressed := true
              end
            end
            else still_pending := w :: !still_pending)
          pending;
        st.pending <- List.rev_append !still_pending st.pending)
      t.items
  done

let accept_write t w =
  let result = try_accept t w in
  (match result with
  | `Accepted -> drain_pending t
  | `Held | `Rejected | `Duplicate -> ());
  result

(* Accept a MAC-fast write into the held [maced] slot: verified under
   our pairwise key, but invisible to reads, gossip and fork vouching
   until the client upgrades its evidence. Mirrors [try_accept]'s guards
   so a Byzantine client cannot use the fast path to smuggle forks or
   resurrect erased stamps. *)
let accept_mac_write t (w : Payload.write) =
  let st = item_state t w.uid in
  if Stamp.compare w.stamp st.erased_below < 0 then `Rejected
  else if already_stored st w || in_maced st w then
    if duplicate_of st w then `Duplicate else `Rejected
  else if is_writer_faulty t w.writer then `Rejected
  else if detect_fork t st w then `Rejected
  else if
    (match w.frags with
    | None -> false
    | Some meta ->
      not (Dispersal.meta_ok meta && String.equal w.value (Dispersal.meta_root meta)))
  then `Rejected
  else if not (Signing.server_verify_mac t.keyring ~server:t.id w) then
    `Rejected
  else begin
    st.maced <- trim t.config.mac_hold_depth (w :: st.maced);
    `Held
  end

(* Section 5.3 log erasure: once 2b+1 distinct servers are known to hold
   a stamp at least as new as a logged value's successor, the old value
   has served its purpose and can be dropped from the log. The threshold
   guarantees b+1 honest holders, i.e. a full vouching set. *)
let erasure_threshold t = (2 * t.config.b) + 1

let record_holder t uid ~holder ~stamp =
  let st = item_state t uid in
  let entry =
    match List.assoc_opt stamp st.holders with
    | Some holders -> holders
    | None -> []
  in
  if not (List.mem holder entry) then begin
    let updated = holder :: entry in
    st.holders <- (stamp, updated) :: List.remove_assoc stamp st.holders;
    (* Keep only stamps still relevant (at least as new as the oldest
       logged write) to bound the table. *)
    if List.length updated >= erasure_threshold t then begin
      st.log <-
        List.filter
          (fun (w : Payload.write) -> Stamp.compare w.stamp stamp >= 0)
          st.log;
      if Stamp.compare stamp st.erased_below > 0 then st.erased_below <- stamp;
      (* Holder entries below the watermark are no longer interesting. *)
      st.holders <-
        List.filter (fun (s, _) -> Stamp.compare s st.erased_below >= 0) st.holders;
      (* Fragments of erased stamps go with their metadata. *)
      if Hashtbl.length t.frags > 0 then gc_frags t (Uid.to_string uid) st
    end
  end

let gossip_summary t =
  Hashtbl.fold
    (fun _ st acc ->
      match st.current with
      | Some (w : Payload.write) -> (w.uid, w.stamp) :: acc
      | None -> acc)
    t.items []

let holder_count t uid stamp =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> 0
  | Some st -> (
    match List.assoc_opt stamp st.holders with
    | Some holders -> List.length holders
    | None -> 0)

let authorize t ~now ~token ?expect_client ~group ~op () =
  match t.config.auth with
  | None -> Access_control.Authorized
  | Some svc -> Access_control.check svc ~now ~token ?expect_client ~group ~op ()

let log_writes t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> []
  | Some st -> (
    match st.current with
    | None -> []
    | Some c -> c :: trim t.config.log_depth st.log)

(* --- dynamic membership ------------------------------------------------- *)

let set_epoch t e = t.epoch <- Some e

(* Re-enqueue every announced write so the next gossip rounds carry this
   server's whole state to the epoch's newcomers — the join bootstrap
   rides the ordinary anti-entropy path, no separate transfer protocol.
   The bytes are accounted as bootstrap transfer. *)
let reannounce_for_bootstrap t =
  let writes =
    Hashtbl.fold
      (fun _ st acc -> match st.current with Some w -> w :: acc | None -> acc)
      t.items []
  in
  List.iter
    (fun (w : Payload.write) ->
      Metrics.add_bootstrap_bytes (String.length (Payload.write_body w)))
    writes;
  t.gossip_buffer <- writes @ t.gossip_buffer

(* Adopt [e] if it is trustworthy and strictly newer. Epochs arrive on
   unauthenticated channels (gossip pushes carry no token and the
   membership requests are epoch-exempt), so without a configured admin
   key every transition is refused — trusting an unverifiable epoch
   would let anyone who can reach the port push a config that excludes
   this server and flip it into draining, a denial of service that the
   snapshot would then persist across restarts. A configured server
   insists on direct hash-chain succession when the version is
   current + 1 — the admin applies transitions one at a time, and a
   forked chain breaks exactly here. A server that has fallen behind
   (crashed through announcements) accepts a version jump on the admin
   signature alone; the chain remains auditable by whoever saw the
   intermediate epochs. *)
let try_adopt_epoch t (e : Config_epoch.t) =
  match t.config.epoch_admin with
  | None -> Error "no admin key"
  | Some pub -> (
    match Config_epoch.validate e with
    | Error msg -> Error msg
    | Ok () ->
      if not (Config_epoch.verify e pub) then Error "epoch not signed by admin"
      else begin
        match t.epoch with
        | Some cur when e.Config_epoch.version <= cur.Config_epoch.version ->
          Error "epoch not newer"
        | Some cur
          when e.Config_epoch.version = cur.Config_epoch.version + 1
               && not (Config_epoch.follows ~prev:cur e) ->
          Error "epoch does not chain to predecessor"
        | cur ->
          t.epoch <- Some e;
          Metrics.incr_epoch_transition ();
          Metrics.set_epoch_version e.Config_epoch.version;
          let joined =
            match cur with
            | None -> []
            | Some prev ->
              List.filter
                (fun s -> not (Config_epoch.member prev s))
                e.Config_epoch.servers
          in
          if Config_epoch.member e t.id then begin
            if t.draining then begin
              (* Removed in an earlier epoch, re-added here: return to
                 service. Re-announce unconditionally — writes may have
                 been missed while draining, and the drain-era state
                 must reach the current members either way. *)
              t.draining <- false;
              reannounce_for_bootstrap t
            end
            else if joined <> [] then reannounce_for_bootstrap t
          end
          else
            (* We are not in the new membership: drain. Reads and
               evidence upgrades continue; new writes are refused. *)
            t.draining <- true;
          Ok ()
      end)

(* Server-to-server and membership traffic is never epoch-gated:
   gossip must flow between epochs (it is how joiners bootstrap and
   how laggards learn the new config), and discovery/announcement are
   the repair channel itself. *)
let epoch_exempt = function
  | Payload.Gossip_push _ | Payload.Epoch_get | Payload.Epoch_announce _ ->
    true
  | Payload.Frag_get _ ->
    (* Fragment reads are the repair/anti-entropy channel: a peer
       reconstructing its fragment must not be refused for lagging an
       epoch, exactly like gossip. *)
    true
  | Payload.Ctx_read _ | Payload.Ctx_write _ | Payload.Meta_query _
  | Payload.Value_read _ | Payload.Write_req _ | Payload.Log_query _
  | Payload.Group_query _ | Payload.Read_inline _ | Payload.Evidence_upgrade _
  | Payload.Frag_put _ ->
    false

let handle t ~now ~from (env : Payload.envelope) : Payload.response option =
  let auth ?expect_client ~group ~op k =
    match authorize t ~now ~token:env.token ?expect_client ~group ~op () with
    | Access_control.Authorized -> k ()
    | Access_control.Denied reason -> Some (Payload.Denied reason)
  in
  match t.epoch with
  | Some cur
    when env.epoch < cur.Config_epoch.version && not (epoch_exempt env.request)
    ->
    (* The client is operating under a superseded membership: reject,
       but piggyback the newer config so one round-trip both refuses
       the stale op and repairs the sender. *)
    Metrics.incr_epoch_rejection ();
    Some (Payload.Stale_epoch cur)
  | _ ->
  match env.request with
  | Payload.Ctx_read { client; group } ->
    auth ~group ~op:`Read (fun () ->
        Some (Payload.Ctx_reply (Hashtbl.find_opt t.contexts (client, group))))
  | Payload.Ctx_write { client; group; record } ->
    auth ~expect_client:client ~group ~op:`Write (fun () ->
        if t.draining then
          (* Contexts are not gossiped on the write path, so a record
             stored on a departing server would be lost at handoff; the
             client lands it on the current epoch's members instead. *)
          Some (Payload.Denied "draining")
        else if not (Signing.server_verify_context t.keyring ~client ~group record)
        then Some (Payload.Denied "bad context signature")
        else begin
          let fresher =
            match Hashtbl.find_opt t.contexts (client, group) with
            | None -> true
            | Some existing -> record.seq > existing.seq
          in
          if fresher then Hashtbl.replace t.contexts (client, group) record;
          Some Payload.Ack
        end)
  | Payload.Meta_query { uid } ->
    auth ~group:(Uid.group uid) ~op:`Read (fun () ->
        let st = Hashtbl.find_opt t.items (Uid.to_string uid) in
        let stamp = Option.bind st announced_stamp in
        let writer_faulty = match st with Some s -> s.forked | None -> false in
        Some (Payload.Meta_reply { stamp; writer_faulty }))
  | Payload.Read_inline { uid } ->
    auth ~group:(Uid.group uid) ~op:`Read (fun () ->
        let st = Hashtbl.find_opt t.items (Uid.to_string uid) in
        Some (Payload.Value_reply (Option.bind st (fun st -> st.current))))
  | Payload.Value_read { uid; stamp } ->
    auth ~group:(Uid.group uid) ~op:`Read (fun () ->
        let found =
          List.find_opt
            (fun (w : Payload.write) -> Stamp.equal w.stamp stamp)
            (log_writes t uid)
        in
        Some (Payload.Value_reply found))
  | Payload.Write_req { write; await_ack } ->
    auth ~expect_client:write.writer ~group:(Uid.group write.uid) ~op:`Write
      (fun () ->
        if t.draining then
          (* Departing server: no new writes. The client treats this
             like any other refusal and lands the write on the current
             epoch's members instead. *)
          if await_ack then Some (Payload.Denied "draining") else None
        else
        let result =
          match write.evidence with
          | Payload.Mac _ -> accept_mac_write t write
          | Payload.Sig _ | Payload.Batch _ -> accept_write t write
        in
        if await_ack then
          Some
            (match result with
            | `Accepted | `Held | `Duplicate -> Payload.Ack
            | `Rejected -> Payload.Denied "write rejected")
        else None)
  | Payload.Evidence_upgrade { uid; stamp; writer; evidence } ->
    auth ~expect_client:writer ~group:(Uid.group uid) ~op:`Write (fun () ->
        let st = item_state t uid in
        match
          List.find_opt
            (fun (m : Payload.write) -> Stamp.equal m.stamp stamp)
            st.maced
        with
        | Some held ->
          if not (String.equal held.writer writer) then
            Some (Payload.Denied "writer mismatch")
          else begin
            let upgraded = { held with Payload.evidence } in
            match accept_write t upgraded with
            | `Accepted | `Held | `Duplicate ->
              drop_maced st stamp;
              Some Payload.Ack
            | `Rejected ->
              (* Bad evidence: keep the MAC-held write so a corrected
                 retry can still upgrade it. *)
              Some (Payload.Denied "upgrade rejected")
          end
        | None ->
          (* Not held. If the stamp is already announced (gossip beat
             the upgrade, or the hold was trimmed after the signed form
             arrived) the upgrade is an idempotent success; otherwise
             the client must fall back to a full write. *)
          let announced =
            (match st.current with
            | Some c -> Stamp.equal c.Payload.stamp stamp
            | None -> false)
            || List.exists
                 (fun (w : Payload.write) -> Stamp.equal w.stamp stamp)
                 st.log
          in
          if announced then Some Payload.Ack
          else Some (Payload.Denied "unknown write"))
  | Payload.Log_query { uid } ->
    auth ~group:(Uid.group uid) ~op:`Read (fun () ->
        let writes = log_writes t uid in
        let writer_faulty =
          match Hashtbl.find_opt t.items (Uid.to_string uid) with
          | Some st -> st.forked
          | None -> false
        in
        Some (Payload.Log_reply { writes; writer_faulty }))
  | Payload.Group_query { group } ->
    auth ~group ~op:`Read (fun () ->
        let writes = ref [] in
        Hashtbl.iter
          (fun _ st ->
            match st.current with
            | Some w when String.equal (Uid.group w.Payload.uid) group ->
              writes := w :: !writes
            | Some _ | None -> ())
          t.items;
        Some (Payload.Group_reply !writes))
  | Payload.Gossip_push { writes; have; epoch } ->
    (* Server-to-server: no token; the client signatures on each write
       are the authority. A forged write simply fails verification.
       A piggybacked epoch is membership anti-entropy: adopt it under
       the same rules as an announcement (signature + chain). *)
    (match epoch with
    | Some e -> ignore (try_adopt_epoch t e)
    | None -> ());
    List.iter
      (fun (w : Payload.write) ->
        (match accept_write t w with
        | `Accepted | `Held | `Duplicate ->
          (* We hold it now, and so does the sender. *)
          record_holder t w.uid ~holder:t.id ~stamp:w.stamp;
          record_holder t w.uid ~holder:from ~stamp:w.stamp
        | `Rejected ->
          if from >= 0 then record_holder t w.uid ~holder:from ~stamp:w.stamp))
      writes;
    List.iter
      (fun (uid, stamp) ->
        if from >= 0 then record_holder t uid ~holder:from ~stamp)
      have;
    Some Payload.Ack
  | Payload.Frag_put { uid; stamp; writer; index; seq; last; data } ->
    auth ~expect_client:writer ~group:(Uid.group uid) ~op:`Write (fun () ->
        if t.draining then Some (Payload.Denied "draining")
        else if is_writer_faulty t writer then
          Some (Payload.Denied "writer faulty")
        else if index < 1 || index > 255 then
          Some (Payload.Denied "bad fragment index")
        else begin
          let key = Uid.to_string uid in
          let fkey = (key, stamp, index) in
          let st = item_state t uid in
          if Stamp.compare stamp st.erased_below < 0 then
            Some (Payload.Denied "stamp erased")
          else if Hashtbl.mem t.frags fkey then
            (* Already sealed under this stamp: a retry after a lost
               ack. First-seal-wins; a diverging retry is caught by the
               digest check against the (stamp-bound) metadata. *)
            Some Payload.Ack
          else begin
            (* seq 0 always starts a fresh stream: a writer retrying
               after a broken round must not trip over its own stale
               staging entry. *)
            if seq = 0 then Hashtbl.remove t.staging fkey;
            match Hashtbl.find_opt t.staging fkey with
            | Some s ->
              if seq <> s.snext || not (String.equal s.swriter writer) then begin
                Hashtbl.remove t.staging fkey;
                Some (Payload.Denied "fragment chunk sequence broken")
              end
              else if Buffer.length s.sbuf + String.length data > max_frag_bytes
              then begin
                Hashtbl.remove t.staging fkey;
                Some (Payload.Denied "fragment too large")
              end
              else begin
                Buffer.add_string s.sbuf data;
                s.snext <- seq + 1;
                if last then begin
                  let whole = Buffer.contents s.sbuf in
                  Hashtbl.remove t.staging fkey;
                  Some (seal_fragment t fkey whole)
                end
                else Some Payload.Ack
              end
            | None ->
              if seq <> 0 then
                Some (Payload.Denied "fragment chunk sequence broken")
              else if last then
                (* single-chunk fragment: no staging needed *)
                Some (seal_fragment t fkey data)
              else if String.length data > max_frag_bytes then
                Some (Payload.Denied "fragment too large")
              else if Hashtbl.length t.staging >= max_staging then
                Some (Payload.Denied "fragment staging full")
              else begin
                let s =
                  {
                    sbuf = Buffer.create (String.length data * 4);
                    snext = 1;
                    swriter = writer;
                  }
                in
                Buffer.add_string s.sbuf data;
                Hashtbl.add t.staging fkey s;
                Some Payload.Ack
              end
          end
        end)
  | Payload.Frag_get { uid; stamp; index; off; len } ->
    auth ~group:(Uid.group uid) ~op:`Read (fun () ->
        let fkey = (Uid.to_string uid, stamp, index) in
        match Hashtbl.find_opt t.frags fkey with
        | Some e when e.fverified ->
          let total = String.length e.fdata in
          let off = min (max 0 off) total in
          let len = max 0 (min (min len frag_reply_cap) (total - off)) in
          Metrics.incr_frag_get ();
          Some
            (Payload.Frag_reply
               (Some { Payload.total; data = String.sub e.fdata off len }))
        | Some _ | None -> Some (Payload.Frag_reply None))
  | Payload.Epoch_get -> Some (Payload.Epoch_reply t.epoch)
  | Payload.Epoch_announce e -> (
    match try_adopt_epoch t e with
    | Ok () -> Some Payload.Ack
    | Error "epoch not newer" ->
      (* Idempotent re-announcement (or a laggard admin): not an error
         worth a retry, but tell the sender where we actually are. *)
      Some
        (match t.epoch with
        | Some cur -> Payload.Stale_epoch cur
        | None -> Payload.Denied "no epoch")
    | Error reason -> Some (Payload.Denied reason))

(* Warm the signature cache for everything [handle] will verify, so the
   expensive RSA math can run outside whatever lock serializes [handle].
   Purely advisory: [handle] re-checks every signature (through the
   cache), so a caller skipping this loses speed, never safety. *)
let preverify t (env : Payload.envelope) =
  match env.request with
  | Payload.Write_req { write; _ } -> Signing.warm_write t.keyring write
  | Payload.Gossip_push { writes; _ } ->
    List.iter (Signing.warm_write t.keyring) writes
  | Payload.Ctx_write { client; group; record } ->
    Signing.warm_context t.keyring ~client ~group record
  | Payload.Evidence_upgrade { writer; evidence; _ } ->
    Signing.warm_batch t.keyring ~writer evidence
  | Payload.Ctx_read _ | Payload.Meta_query _ | Payload.Value_read _
  | Payload.Log_query _ | Payload.Read_inline _ | Payload.Group_query _
  | Payload.Epoch_get | Payload.Epoch_announce _
  (* fragment traffic carries no signatures: the metadata's digests are
     the authority *)
  | Payload.Frag_put _ | Payload.Frag_get _ -> ()

let handler t ~now ~from payload =
  match Payload.decode_envelope payload with
  | None -> None
  | Some env -> Option.map Payload.encode_response (handle t ~now ~from env)

let take_gossip_buffer t =
  let writes = List.rev t.gossip_buffer in
  t.gossip_buffer <- [];
  writes

let gossip_pending t = List.length t.gossip_buffer

let current_write t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> None
  | Some st -> st.current

let pending_count t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> 0
  | Some st -> List.length st.pending

let pending_writes t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> []
  | Some st -> st.pending

let maced_count t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> 0
  | Some st -> List.length st.maced

let maced_writes t uid =
  match Hashtbl.find_opt t.items (Uid.to_string uid) with
  | None -> []
  | Some st -> st.maced

let item_count t = Hashtbl.length t.items
let audit_log t = List.rev t.audit

(* --- fragment introspection and repair ---------------------------------- *)

let fragment t uid ~stamp ~index =
  match Hashtbl.find_opt t.frags (Uid.to_string uid, stamp, index) with
  | Some e when e.fverified -> Some e.fdata
  | _ -> None

let fragment_count t =
  Hashtbl.fold (fun _ e acc -> if e.fverified then acc + 1 else acc) t.frags 0

let orphan_fragment_count t =
  Hashtbl.fold (fun _ e acc -> if e.fverified then acc else acc + 1) t.frags 0

let drop_fragment t uid ~stamp ~index =
  Hashtbl.remove t.frags (Uid.to_string uid, stamp, index)

let drop_all_fragments t =
  let dropped = Hashtbl.length t.frags in
  Hashtbl.reset t.frags;
  Hashtbl.reset t.staging;
  t.orphans <- [];
  dropped

let storage_bytes t =
  let wlen (w : Payload.write) = String.length w.Payload.value in
  let item_bytes =
    Hashtbl.fold
      (fun _ st acc ->
        acc
        + (match st.current with Some w -> wlen w | None -> 0)
        + List.fold_left (fun a w -> a + wlen w) 0 st.log
        + List.fold_left (fun a w -> a + wlen w) 0 st.pending
        + List.fold_left (fun a w -> a + wlen w) 0 st.maced)
      t.items 0
  in
  Hashtbl.fold (fun _ e acc -> acc + String.length e.fdata) t.frags item_bytes

(* Current dispersed writes whose own-index fragment this server should
   hold but does not — what the repair loop works through. *)
let missing_fragments t =
  Hashtbl.fold
    (fun key st acc ->
      match st.current with
      | Some ({ Payload.frags = Some meta; _ } as w) when t.id + 1 <= meta.Payload.m
        -> (
        match Hashtbl.find_opt t.frags (key, w.stamp, t.id + 1) with
        | Some e when e.fverified -> acc
        | _ -> w :: acc)
      | _ -> acc)
    t.items []

(* Rebuild our fragment of [w] from peers: pull whole fragments (1 MiB
   ranges) from the other holders through [fetch], keep the ones whose
   digests the metadata certifies, decode, re-code our own index, store
   it verified. [fetch ~peer request] is the transport — sim tests pass
   peers' [handle] directly; the live host wires it through the pool. *)
let repair_fragment t ~fetch (w : Payload.write) =
  match w.Payload.frags with
  | None -> false
  | Some meta ->
    let my_index = t.id + 1 in
    let fl = Dispersal.frag_length meta in
    let digest_of index = List.nth meta.Payload.digests (index - 1) in
    let fetch_fragment index =
      let chunk = 1 lsl 20 in
      let buf = Buffer.create (min fl chunk) in
      let rec go off =
        match
          fetch ~peer:(index - 1)
            (Payload.Frag_get
               { uid = w.uid; stamp = w.stamp; index; off; len = chunk })
        with
        | Some (Payload.Frag_reply (Some { Payload.total; data })) ->
          if total <> fl then None
          else begin
            Buffer.add_string buf data;
            let off = off + String.length data in
            if off >= fl then Some (Buffer.contents buf)
            else if String.length data = 0 then None
            else go off
          end
        | _ -> None
      in
      match go 0 with
      | Some data
        when String.equal (Crypto.Sha256.digest data) (digest_of index) ->
        Some (index, data)
      | _ -> None
    in
    let rec collect acc = function
      | [] -> acc
      | _ when List.length acc >= meta.Payload.k -> acc
      | index :: rest -> (
        match fetch_fragment index with
        | Some piece -> collect (piece :: acc) rest
        | None -> collect acc rest)
    in
    let candidates =
      List.filter (fun i -> i <> my_index)
        (List.init meta.Payload.m (fun i -> i + 1))
    in
    (match Dispersal.decode_fragments meta (collect [] candidates) with
    | None -> false
    | Some value ->
      let mine = Dispersal.refragment meta ~index:my_index value in
      if String.equal (Crypto.Sha256.digest mine) (digest_of my_index) then begin
        Hashtbl.replace t.frags
          (Uid.to_string w.uid, w.stamp, my_index)
          { fdata = mine; fdigest = digest_of my_index; fverified = true };
        Metrics.incr_frag_repair ();
        true
      end
      else false)

let repair_fragments t ~fetch =
  List.fold_left
    (fun acc w -> if repair_fragment t ~fetch w then acc + 1 else acc)
    0 (missing_fragments t)

(* --- persistence -------------------------------------------------------- *)

(* Version 2: writes carry structured evidence (the v1 flat signature
   string became the evidence codec) and items persist their MAC-held
   writes, so a restart does not silently drop fast-path writes awaiting
   escalation. Version 3 appends the config epoch (a restarted server
   must rejoin the membership generation it left in, not genesis) and
   wraps the whole body in a trailing SHA-256, so truncation or
   corruption is detected before any field is decoded. Version 4 writes
   the dispersal-aware write image and appends the fragment store —
   including orphans, so a crash between a client's fragment scatter and
   its metadata quorum still commits once the metadata arrives after
   restart. Versions 2/3 restore through {!Payload.decode_write_v3}. *)
let snapshot_version = 4

let integrity_len = 32

let encode_write = Payload.encode_write

let snapshot_body t =
  let open Wire.Codec in
  encode
    (fun enc () ->
      Enc.string enc "securestore-snapshot";
      Enc.varint enc snapshot_version;
      Enc.varint enc t.id;
      let items = Hashtbl.fold (fun key st acc -> (key, st) :: acc) t.items [] in
      Enc.list enc
        (fun enc (key, st) ->
          Enc.string enc key;
          Enc.option enc encode_write st.current;
          Enc.list enc encode_write st.log;
          Enc.list enc encode_write st.pending;
          Enc.list enc encode_write st.maced;
          Enc.bool enc st.forked;
          Stamp.encode enc st.erased_below)
        items;
      let contexts =
        Hashtbl.fold (fun key record acc -> (key, record) :: acc) t.contexts []
      in
      Enc.list enc
        (fun enc ((client, group), (r : Payload.ctx_record)) ->
          Enc.string enc client;
          Enc.string enc group;
          Enc.varint enc r.seq;
          Context.encode enc r.ctx;
          Enc.string enc r.signature)
        contexts;
      Enc.list enc Enc.string
        (Hashtbl.fold (fun writer () acc -> writer :: acc) t.faulty_writers []);
      (* pending gossip and audit trail (both newest-first in memory) *)
      Enc.list enc encode_write t.gossip_buffer;
      Enc.list enc encode_write t.audit;
      Enc.option enc Config_epoch.encode t.epoch;
      Enc.bool enc t.draining;
      (* v4: the fragment store (digests are recomputed on restore) *)
      let frags = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.frags [] in
      Enc.list enc
        (fun enc (((key, stamp, index) : frag_key), e) ->
          Enc.string enc key;
          Stamp.encode enc stamp;
          Enc.varint enc index;
          Enc.string enc e.fdata;
          Enc.bool enc e.fverified)
        frags)
    ()

let snapshot t =
  let body = snapshot_body t in
  body ^ Crypto.Sha256.digest body

let restore_result ?config ~id ~keyring ~n ~b blob =
  let open Wire.Codec in
  (* v3 blobs end in a SHA-256 of everything before it; check it before
     decoding a single field, so a truncated or bit-flipped file yields
     a clear refusal, never a decoder exception. (A pre-v3 blob has no
     trailer; it is given one legacy decode attempt below.) *)
  let len = String.length blob in
  let integrity_ok =
    len > integrity_len
    && String.equal
         (Crypto.Sha256.digest (String.sub blob 0 (len - integrity_len)))
         (String.sub blob (len - integrity_len) integrity_len)
  in
  let body = if integrity_ok then String.sub blob 0 (len - integrity_len) else blob in
  match
    decode
      (fun dec ->
        if Dec.string dec <> "securestore-snapshot" then
          raise (Wire.Codec.Error "bad magic");
        let version = Dec.varint dec in
        if version < 2 || version > snapshot_version then
          raise (Wire.Codec.Error "unsupported snapshot version");
        if version >= 3 && not integrity_ok then
          raise
            (Wire.Codec.Error "integrity check failed (truncated or corrupt)");
        (* pre-v4 blobs carry the pre-dispersal write image *)
        let decode_write =
          if version >= 4 then Payload.decode_write else Payload.decode_write_v3
        in
        let saved_id = Dec.varint dec in
        if saved_id <> id then raise (Wire.Codec.Error "server id mismatch");
        let t = create ?config ~id ~keyring ~n ~b () in
        let items =
          Dec.list dec (fun dec ->
              let key = Dec.string dec in
              let current = Dec.option dec decode_write in
              let log = Dec.list dec decode_write in
              let pending = Dec.list dec decode_write in
              let maced = Dec.list dec decode_write in
              let forked = Dec.bool dec in
              let erased_below = Stamp.decode dec in
              ( key,
                {
                  current;
                  log;
                  pending;
                  maced;
                  forked;
                  holders = [];
                  erased_below;
                } ))
        in
        List.iter (fun (key, st) -> Hashtbl.replace t.items key st) items;
        let contexts =
          Dec.list dec (fun dec ->
              let client = Dec.string dec in
              let group = Dec.string dec in
              let seq = Dec.varint dec in
              let ctx = Context.decode dec in
              let signature = Dec.string dec in
              ((client, group), { Payload.seq; ctx; signature }))
        in
        List.iter (fun (key, r) -> Hashtbl.replace t.contexts key r) contexts;
        List.iter
          (fun writer -> Hashtbl.replace t.faulty_writers writer ())
          (Dec.list dec Dec.string);
        t.gossip_buffer <- Dec.list dec decode_write;
        t.audit <- Dec.list dec decode_write;
        if version >= 3 then begin
          t.epoch <- Dec.option dec Config_epoch.decode;
          t.draining <- Dec.bool dec;
          (match t.epoch with
          | Some e -> Metrics.set_epoch_version e.Config_epoch.version
          | None -> ())
        end;
        if version >= 4 then
          List.iter
            (fun (fkey, e) ->
              Hashtbl.replace t.frags fkey e;
              if not e.fverified then t.orphans <- fkey :: t.orphans)
            (Dec.list dec (fun dec ->
                 let key = Dec.string dec in
                 let stamp = Stamp.decode dec in
                 let index = Dec.varint dec in
                 let fdata = Dec.string dec in
                 let fverified = Dec.bool dec in
                 ( (key, stamp, index),
                   {
                     fdata;
                     fdigest = Crypto.Sha256.digest fdata;
                     fverified;
                   } )));
        t)
      body
  with
  | t -> Ok t
  | exception Wire.Codec.Error msg -> Error ("corrupt snapshot: " ^ msg)
  | exception e ->
    (* Any other decoder failure (short reads on a truncated pre-v3
       blob, bad lengths) is still a refusal, not a crash. *)
    Error ("corrupt snapshot: " ^ Printexc.to_string e)

let restore ?config ~id ~keyring ~n ~b blob =
  match restore_result ?config ~id ~keyring ~n ~b blob with
  | Ok t -> Some t
  | Error _ -> None

let save_file t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (snapshot t));
  Sys.rename tmp path

let load_result ?config ~id ~keyring ~n ~b ~path () =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let blob =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    restore_result ?config ~id ~keyring ~n ~b blob

let load_file ?config ~id ~keyring ~n ~b ~path () =
  Result.to_option (load_result ?config ~id ~keyring ~n ~b ~path ())
