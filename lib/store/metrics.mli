(** Protocol-level cost counters.

    These implement the paper's section 6 accounting: messages exchanged
    between client and servers, signatures produced, signatures verified,
    digests computed. Counters are global and reset per measured
    operation; experiment drivers snapshot deltas. *)

type snapshot = {
  messages : int;  (** protocol messages, both directions *)
  bytes : int;  (** payload bytes across those messages *)
  signs : int;
  verifies : int;
  digests : int;
  server_verifies : int;  (** verifications done at servers *)
  macs : int;  (** MAC computations (PBFT-style authenticators) *)
  sigcache_hits : int;  (** verifications answered from the sig cache *)
  sigcache_misses : int;  (** verifications that ran the RSA math *)
  tcp_connects : int;  (** transport sockets dialed *)
  tcp_reuses : int;  (** RPC submissions that reused a pooled connection *)
  tcp_reconnects : int;  (** dials to an endpoint that had connected before *)
  rpcs : int;  (** quorum RPC rounds issued through the pooled transport *)
  retries : int;  (** client retry-later rounds (Fig. 2's "try again") *)
  escalations : int;
      (** client server-set expansions after a partial round (section 5's
          "contact more servers") *)
}

val reset : unit -> unit
(** Clear the per-operation counters (the {!snapshot} fields), the RPC
    latency histogram, and the per-phase span histograms
    ({!Obs.Span.reset_stats}) — everything experiment-scoped, so
    back-to-back bench phases in one process start from clean
    percentiles. Operator gauges — {!endpoint_health},
    {!inflight_high_water}, the per-endpoint latency registry — are
    deliberately left alone so a measurement reset cannot blank the
    health view a live operator is watching; use {!reset_gauges} for
    those. *)

val reset_gauges : unit -> unit
(** Clear the operator gauges: the endpoint-health registry, the
    per-endpoint latency histograms and the in-flight high-water mark.
    For tests that need a pristine slate. *)

val read : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot

val add_messages : int -> unit
val add_bytes : int -> unit
val incr_sign : unit -> unit
val incr_verify : unit -> unit
val incr_digest : unit -> unit
val incr_server_verify : unit -> unit
val incr_mac : unit -> unit
val incr_sigcache_hit : unit -> unit
val incr_sigcache_miss : unit -> unit
val incr_tcp_connect : unit -> unit
val incr_tcp_reuse : unit -> unit
val incr_tcp_reconnect : unit -> unit
val incr_rpc : unit -> unit
val incr_retry : unit -> unit
val incr_escalation : unit -> unit

(** {1 Per-shard registries}

    Two per-shard views, both experiment-scoped (cleared by {!reset}):
    what servers hosting a shard saw (requests dispatched into that
    shard's state) and what a router's ops against it looked like. Both
    surface on [/metrics] labeled by shard id, so a hot shard under a
    skewed workload is visible at a glance. *)

type shard_client = {
  mutable shard_reads : int;
  mutable shard_writes : int;
  mutable shard_failures : int;  (** ops that returned an error *)
  shard_op_latency : Obs.Histo.t;  (** end-to-end router op latency *)
}

type shard_server = {
  mutable shard_requests : int;
  shard_request_latency : Obs.Histo.t;
}

val note_shard_client_op : shard:int -> write:bool -> ok:bool -> float -> unit
(** Record one routed client op (latency in nanoseconds). *)

val note_shard_request : shard:int -> float -> unit
(** Record one server-side request dispatched into [shard]'s state. *)

val shard_client_stats : unit -> (int * shard_client) list
val shard_request_stats : unit -> (int * shard_server) list
(** Sorted by shard id; cells are live references. *)

(** {1 Per-endpoint transport health}

    The transport pool reports each endpoint's health here (a registry
    of gauges, outside {!snapshot}): consecutive failures, the last
    error seen, and how long the endpoint is being avoided — what
    operators need to tell "slow" from "suspected down". *)

type endpoint_health = {
  endpoint : string;  (** "host:port" *)
  connections : int;  (** live pooled connections *)
  consecutive_failures : int;
      (** RPC failures (drops, timeouts, failed dials) since the last
          success *)
  last_error : string option;
  down_until : float;
      (** absolute time until which the endpoint is avoided (dial
          backoff or suspicion window); [0.] when healthy *)
}

val note_endpoint_health : endpoint_health -> unit
(** Record the endpoint's current health (keyed by [endpoint];
    overwrites the previous report). *)

val forget_endpoint_health : string -> unit
(** Drop an endpoint's health row entirely. Called when membership churn
    retires an endpoint for good ({!Tcpnet.Pool.evict}); without it,
    rows for servers no longer in any active config accumulate
    forever. *)

val endpoint_health : unit -> endpoint_health list
(** Every reported endpoint, sorted by endpoint string. Cleared by
    {!reset_gauges}, not {!reset}. *)

val pp_endpoint_health : now:float -> Format.formatter -> endpoint_health -> unit
(** [now] turns the absolute [down_until] into a remaining duration. *)

val note_inflight : int -> unit
(** Report the current number of in-flight requests; the high-water mark
    is retained (a gauge, not part of {!snapshot}). *)

val inflight_high_water : unit -> int

(** {1 Reconfiguration}

    Epoch state is operator-facing like the transport gauges: it
    survives {!reset} and clears only under {!reset_gauges}. *)

val set_epoch_version : int -> unit
(** Report an adopted config epoch version; the maximum is retained. *)

val incr_epoch_transition : unit -> unit
val incr_epoch_rejection : unit -> unit

val add_bootstrap_bytes : int -> unit
(** Count write-body bytes re-announced into gossip for a joining
    server's bootstrap transfer. *)

val epoch_version : unit -> int
val epoch_transitions : unit -> int
val epoch_rejections : unit -> int
val bootstrap_bytes : unit -> int

(** {1 Dispersal}

    Fragment traffic and repair tallies, operator-facing like the epoch
    counters: they survive {!reset} (the repair test scrapes [/metrics]
    across experiment resets) and clear under {!reset_gauges}. *)

val incr_frag_put : unit -> unit
(** A fragment stream was sealed (final chunk stored) at a server. *)

val incr_frag_get : unit -> unit
(** A fragment range read was served. *)

val incr_frag_repair : unit -> unit
(** A missing fragment was reconstructed from peers and re-stored. *)

val incr_dispersed_write : unit -> unit
(** A client write took the coded-dispersal path. *)

val incr_dispersed_read : unit -> unit
(** A client read reconstructed its value from coded fragments. *)

val frag_puts : unit -> int
val frag_gets : unit -> int
val frag_repairs : unit -> int
val dispersed_writes : unit -> int
val dispersed_reads : unit -> int

val record_rpc_ns : float -> unit
(** Record one RPC round duration (nanoseconds) in the global log-scale
    latency histogram (fixed bucket counters; replaced the old
    4096-sample reservoir). *)

val rpc_latency_histo : unit -> Obs.Histo.t
(** The global RPC-latency histogram itself (live reference). *)

val endpoint_rpc_histo : string -> Obs.Histo.t
(** The per-endpoint ("host:port") RPC-latency histogram, created on
    first use. The pool records into it while tracing is enabled. *)

val endpoint_rpc_histos : unit -> (string * Obs.Histo.t) list
(** Every per-endpoint histogram, sorted by endpoint. *)

type rpc_stats = {
  rpc_count : int;  (** samples ever recorded *)
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

val rpc_latency_stats : unit -> rpc_stats
(** Nearest-rank percentiles resolved to histogram bucket bounds. *)

val families : unit -> Obs.Expo.family list
(** Everything this module tracks as Prometheus exposition families
    ([securestore_*]): counters, operator gauges (including per-endpoint
    health) and RPC latency histograms. Span phase histograms are
    {!Obs.Span.phase_family}'s job. *)

val rsa_verifies : snapshot -> int
(** RSA exponentiations actually performed for verification — the cache
    misses. [verifies] and [server_verifies] keep counting the paper's
    section 6 cost-model verifications regardless of caching. *)

val pp : Format.formatter -> snapshot -> unit
