(** Protocol-level cost counters.

    These implement the paper's section 6 accounting: messages exchanged
    between client and servers, signatures produced, signatures verified,
    digests computed. Counters are global and reset per measured
    operation; experiment drivers snapshot deltas. *)

type snapshot = {
  messages : int;  (** protocol messages, both directions *)
  bytes : int;  (** payload bytes across those messages *)
  signs : int;
  verifies : int;
  digests : int;
  server_verifies : int;  (** verifications done at servers *)
  macs : int;  (** MAC computations (PBFT-style authenticators) *)
  sigcache_hits : int;  (** verifications answered from the sig cache *)
  sigcache_misses : int;  (** verifications that ran the RSA math *)
}

val reset : unit -> unit
val read : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot

val add_messages : int -> unit
val add_bytes : int -> unit
val incr_sign : unit -> unit
val incr_verify : unit -> unit
val incr_digest : unit -> unit
val incr_server_verify : unit -> unit
val incr_mac : unit -> unit
val incr_sigcache_hit : unit -> unit
val incr_sigcache_miss : unit -> unit

val rsa_verifies : snapshot -> int
(** RSA exponentiations actually performed for verification — the cache
    misses. [verifies] and [server_verifies] keep counting the paper's
    section 6 cost-model verifications regardless of caching. *)

val pp : Format.formatter -> snapshot -> unit
