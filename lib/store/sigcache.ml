(* Bounded LRU over digest keys. An entry records the verdict of one RSA
   signature verification; because verification is deterministic, replaying
   the verdict is indistinguishable from re-running the RSA math. The key
   must bind public key, message and signature together (Signing hashes all
   three), so a forged signature can only ever cache its own [false]. *)

type node = {
  key : string;
  verdict : bool;
  mutable prev : node option; (* toward most-recently used *)
  mutable next : node option; (* toward least-recently used *)
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option; (* most-recently used *)
  mutable tail : node option; (* least-recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Sigcache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.verdict

let add t key verdict =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    (* Deterministic verification cannot change its mind; just refresh. *)
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then begin
      match t.tail with
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key
      | None -> ()
    end;
    let node = { key; verdict; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.misses <- 0
