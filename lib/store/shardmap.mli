(** Shard table: deterministic ownership of the uid space.

    The paper scopes every context to a "related group of items", so the
    natural unit of horizontal partitioning is the uid's group: all items
    of one group live on one shard, each shard is an independent n-server
    quorum group, and no context ever spans shards. The table maps a
    group name to a shard via consistent hashing — each shard projects
    [vnodes] points onto a ring derived from a seed, and a group belongs
    to the shard owning the first point at or after the group's own ring
    position. The construction is a pure function of
    [(version, seed, shards, vnodes)], so every client and test that
    agrees on those four values agrees on ownership without any exchange.

    Tables are versioned and signable: an administrator signs the
    canonical digest, and routers refuse tables whose signature does not
    verify, so a Byzantine party cannot steer a client's keys onto a
    shard it controls by handing out a doctored table. *)

type t = private {
  version : int;  (** Monotonic table epoch; reconfiguration bumps it. *)
  seed : string;  (** Ring derivation seed. *)
  shards : int;  (** Number of shard groups, [>= 1]. *)
  vnodes : int;  (** Ring points per shard, [>= 1]. *)
  points : (int * int) array;
      (** Sorted [(ring point, shard)] pairs — derived, not free. *)
  signature : string option;
}

val make : ?version:int -> ?vnodes:int -> seed:string -> shards:int -> unit -> t
(** Build a table. [vnodes] defaults to 64, [version] to 1.
    @raise Invalid_argument when [shards < 1] or [vnodes < 1]. *)

val shard_of_group : t -> string -> int
(** The shard owning every item of [group]. Total and deterministic. *)

val shard_of_uid : t -> Uid.t -> int

val digest : t -> string
(** Canonical digest over [(version, seed, shards, vnodes)] — the derived
    ring is not part of the preimage, since it is a function of these. *)

val sign : t -> Crypto.Rsa.keypair -> t
val verify : t -> Crypto.Rsa.public -> bool
(** [verify] is [false] for unsigned tables: a router configured with an
    admin key treats "no signature" the same as a bad one. *)

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
val to_string : t -> string
val of_string : string -> t option

val spread : t -> groups:string list -> int array
(** Groups owned per shard over a sample — distribution diagnostics. *)
