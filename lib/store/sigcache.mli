(** Bounded LRU cache of signature-verification verdicts.

    A write gossiped to n servers and re-read by many clients is otherwise
    RSA-verified on every arrival; verification is deterministic, so the
    verdict for a given (public key, message, signature) triple can be
    replayed from a digest-keyed cache. [Signing] owns the node-wide
    instance; this module is the mechanism. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : t -> string -> bool option
(** Verdict for a digest key if cached; refreshes its recency and counts a
    hit, or counts a miss on [None]. *)

val add : t -> string -> bool -> unit
(** Insert a verdict, evicting the least-recently-used entry at capacity.
    Re-adding an existing key refreshes recency (the verdict of a
    deterministic verification cannot change). *)

val clear : t -> unit
(** Drop all entries and reset the hit/miss counters. *)

val capacity : t -> int
val size : t -> int
val hits : t -> int
val misses : t -> int
