(** Client-side fault evidence and dynamic quorum sizing.

    The paper cites dynamic Byzantine quorum systems (Alvisi, Malkhi,
    Pierce, Reiter, Wright) as a way to shrink quorums when fewer than
    [b] servers are actually faulty. This module implements the client
    half: it accumulates *proofs* of misbehaviour — replies that could
    not have come from an honest server, like a stored write with an
    invalid signature or a value older than the stamp the same server
    just claimed — and lowers the effective fault bound accordingly.

    Safety: with [p] proven-faulty servers excluded, at most [b - p]
    faults remain among the rest, so read sets of [b - p + 1] and
    context quorums of ⌈(n + (b-p) + 1)/2⌉ retain their intersection
    guarantees even against quorums taken at the old, larger sizes
    (⌈(n+b'+1)/2⌉ + ⌈(n+b+1)/2⌉ − n ≥ b' + 1 whenever b' ≤ b).

    Suspicion (timeouts, missing replies) is tracked separately and only
    demotes a server in the preference order — it is never proof. *)

type t

type event =
  | Invalid_signature  (** served a write that fails verification *)
  | Stamp_regression  (** served a value older than its own meta claim *)
  | Forged_context  (** served a context record failing verification *)
  | Evidence_downgrade
      (** served a write carrying MAC-vector evidence — which is not
          third-party verifiable, and which an honest server holds
          unannounced until the client escalates it; serving one is
          proof of misbehaviour *)

val create : servers:int list -> b:int -> t
(** [servers] is the node-id universe (the client's server list). *)

val servers : t -> int list

val report_proof : t -> server:int -> event -> unit
(** Mark a server proven faulty (idempotent). Proofs never expire. *)

val report_suspicion : t -> server:int -> unit
val clear_suspicion : t -> server:int -> unit

val is_proven : t -> int -> bool
val proven : t -> int list
val proof_of : t -> int -> event option

val effective_b : t -> int
(** [max 0 (b - #proven)]. *)

val preferred_servers : t -> int list
(** The universe minus the proven-faulty, least-suspected first (ties in
    the original order). Clients build read sets from the front. *)

val pp : Format.formatter -> t -> unit
