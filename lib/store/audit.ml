type commitment = { server : int; size : int; root : string }

let leaves server = List.map Payload.write_body (Server.audit_log server)

let tree server = Crypto.Merkle.of_leaves (leaves server)

let commit server =
  let t = tree server in
  { server = Server.id server; size = Crypto.Merkle.size t; root = Crypto.Merkle.root t }

let prove_write server w =
  let log = Server.audit_log server in
  let target = Payload.write_body w in
  let rec find i = function
    | [] -> None
    | entry :: rest ->
      if String.equal (Payload.write_body entry) target then Some i
      else find (i + 1) rest
  in
  match find 0 log with
  | None -> None
  | Some index ->
    let t = tree server in
    Option.map (fun proof -> (proof, commit server)) (Crypto.Merkle.prove t index)

let check_proof commitment w proof =
  Crypto.Merkle.verify ~root:commitment.root ~size:commitment.size
    ~leaf:(Payload.write_body w) proof

let roots_agree servers =
  let canonical server =
    List.sort String.compare
      (List.map Payload.write_body (Server.audit_log server))
  in
  match Array.to_list servers with
  | [] -> true
  | first :: rest ->
    let reference = canonical first in
    List.for_all (fun s -> canonical s = reference) rest
