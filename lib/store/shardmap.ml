type t = {
  version : int;
  seed : string;
  shards : int;
  vnodes : int;
  points : (int * int) array;
  signature : string option;
}

(* Ring positions are the first 62 bits of a SHA-256 over a
   domain-separated preimage. 62 bits keeps them non-negative native
   ints; collisions between distinct vnodes are astronomically unlikely
   and harmless anyway (ties break by shard id through the sort). *)
let ring_point preimage =
  let d = Crypto.Sha256.digest preimage in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let vnode_point ~seed ~shard ~vnode =
  ring_point (Printf.sprintf "shardmap-vnode!%s!%d!%d" seed shard vnode)

let group_point ~seed group =
  ring_point (Printf.sprintf "shardmap-group!%s!%s" seed group)

let derive_points ~seed ~shards ~vnodes =
  let points = Array.make (shards * vnodes) (0, 0) in
  for s = 0 to shards - 1 do
    for v = 0 to vnodes - 1 do
      points.((s * vnodes) + v) <- (vnode_point ~seed ~shard:s ~vnode:v, s)
    done
  done;
  Array.sort compare points;
  points

let make ?(version = 1) ?(vnodes = 64) ~seed ~shards () =
  if shards < 1 then invalid_arg "Shardmap.make: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Shardmap.make: vnodes must be >= 1";
  {
    version;
    seed;
    shards;
    vnodes;
    points = derive_points ~seed ~shards ~vnodes;
    signature = None;
  }

(* Successor on the ring: the first point with position >= the group's,
   wrapping to the smallest point past the top. *)
let shard_of_group t group =
  if t.shards = 1 then 0
  else begin
    let p = group_point ~seed:t.seed group in
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < p then lo := mid + 1 else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
  end

let shard_of_uid t uid = shard_of_group t (Uid.group uid)

let digest t =
  Crypto.Sha256.digest
    (Printf.sprintf "shardmap-v1!%d!%d!%d!%s" t.version t.shards t.vnodes
       t.seed)

let sign t key = { t with signature = Some (Crypto.Rsa.sign key (digest t)) }

let verify t pub =
  match t.signature with
  | None -> false
  | Some signature -> Crypto.Rsa.verify pub ~msg:(digest t) ~signature

let encode e t =
  let open Wire.Codec.Enc in
  varint e t.version;
  string e t.seed;
  varint e t.shards;
  varint e t.vnodes;
  option e string t.signature

let decode d =
  let open Wire.Codec.Dec in
  let version = varint d in
  let seed = string d in
  let shards = varint d in
  let vnodes = varint d in
  let signature = option d string in
  if shards < 1 || vnodes < 1 then
    raise (Wire.Codec.Error "Shardmap.decode: bad shard table");
  { version; seed; shards; vnodes; points = derive_points ~seed ~shards ~vnodes;
    signature }

let to_string t = Wire.Codec.encode encode t
let of_string s = Wire.Codec.decode_opt decode s

let spread t ~groups =
  let counts = Array.make t.shards 0 in
  List.iter
    (fun g ->
      let s = shard_of_group t g in
      counts.(s) <- counts.(s) + 1)
    groups;
  counts
