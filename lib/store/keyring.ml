type t = {
  keys : (string, Crypto.Rsa.public) Hashtbl.t;
  (* Pairwise client<->server HMAC keys for the MAC-vector write fast
     path. Key distribution itself is out of scope (as for the public
     keys); both the client and the addressed server register the same
     secret. *)
  macs : (string * int, string) Hashtbl.t;
}

let create () = { keys = Hashtbl.create 16; macs = Hashtbl.create 16 }

let register t uid key =
  match Hashtbl.find_opt t.keys uid with
  | Some existing when Crypto.Rsa.public_to_string existing <> Crypto.Rsa.public_to_string key ->
    invalid_arg ("Keyring.register: uid already bound: " ^ uid)
  | _ -> Hashtbl.replace t.keys uid key

let find t uid = Hashtbl.find_opt t.keys uid
let known t uid = Hashtbl.mem t.keys uid
let size t = Hashtbl.length t.keys

let register_mac t ~client ~server secret =
  match Hashtbl.find_opt t.macs (client, server) with
  | Some existing when existing <> secret ->
    invalid_arg
      (Printf.sprintf "Keyring.register_mac: pair already bound: %s<->%d" client
         server)
  | _ -> Hashtbl.replace t.macs (client, server) secret

let mac_key t ~client ~server = Hashtbl.find_opt t.macs (client, server)

let macs_complete t ~client ~n =
  let rec go s = s >= n || (Hashtbl.mem t.macs (client, s) && go (s + 1)) in
  go 0
