(** Merkle-batch signature aggregation.

    The write-path fast path's signing side: buffer up to [limit]
    unsigned writes, then {!flush} signs a single {!Crypto.Merkle} root
    over their {!Payload.write_body} bytes and returns the same writes
    carrying {!Payload.Batch} evidence — root, root signature, and a
    per-write inclusion proof. Sign cost amortizes [limit]-fold while
    every write stays individually third-party verifiable (one cached
    RSA verify plus a Merkle path per write on the receiving side). *)

type t

val create : key:Crypto.Rsa.keypair -> limit:int -> t
(** @raise Invalid_argument when [limit < 1]. *)

val add : t -> Payload.write -> [ `Buffered | `Full ]
(** Buffer an unsigned write (its evidence field is ignored and replaced
    at {!flush}). [`Full] signals the buffer reached [limit] — flush now. *)

val pending : t -> int
val limit : t -> int

val flush : t -> Payload.write list
(** Sign the buffered writes as one Merkle batch and return them (in
    {!add} order) with [Batch] evidence attached; empties the buffer.
    Costs exactly one RSA signature regardless of batch size. *)
