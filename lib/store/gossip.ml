let choose_peers rng ~self ~count ~n =
  let others = Array.of_list (List.filter (fun i -> i <> self) (List.init n Fun.id)) in
  Sim.Srng.shuffle rng others;
  Array.to_list (Array.sub others 0 (min count (Array.length others)))

let install engine ~servers ?fanout ~period ~rng () =
  let n = Array.length servers in
  Array.to_list
    (Array.map
       (fun server ->
         let sid = Server.id server in
         let fanout =
           match fanout with Some f -> f | None -> (Server.config server).b + 1
         in
         let rng = Sim.Srng.split rng in
         Sim.Engine.every engine ~period ~client:sid (fun () ->
             (* In an epoch-enabled world, pushes fire even with an
                empty write buffer: the epoch itself is anti-entropy
                state, and a server that crashed through an
                announcement catches up from any peer's next push. *)
             match (Server.take_gossip_buffer server, Server.epoch server) with
             | [], None -> ()
             | writes, epoch ->
               let payload =
                 Payload.encode_envelope
                   {
                     Payload.token = None; epoch = 0;
                     request =
                       Payload.Gossip_push
                         { writes; have = Server.gossip_summary server; epoch };
                   }
               in
               List.iter
                 (fun peer -> Sim.Runtime.send peer payload)
                 (choose_peers rng ~self:sid ~count:fanout ~n)))
       servers)

let exchange_once ~servers ~rng ?fanout () =
  let n = Array.length servers in
  let pushed = ref 0 in
  Array.iter
    (fun server ->
      let sid = Server.id server in
      let fanout =
        match fanout with Some f -> f | None -> (Server.config server).Server.b + 1
      in
      match Server.take_gossip_buffer server with
      | [] -> ()
      | writes ->
        pushed := !pushed + List.length writes;
        let env =
          {
            Payload.token = None; epoch = 0;
            request =
              Payload.Gossip_push
                { writes; have = Server.gossip_summary server;
                  epoch = Server.epoch server };
          }
        in
        List.iter
          (fun peer ->
            ignore (Server.handle servers.(peer) ~now:0.0 ~from:sid env))
          (choose_peers rng ~self:sid ~count:fanout ~n))
    servers;
  !pushed

(* Direct-invocation fragment anti-entropy (the sim/test counterpart of
   the live host's repair pass): every server rebuilds its missing
   fragments by pulling from peers' handlers. *)
let repair_once ~servers () =
  let n = Array.length servers in
  Array.fold_left
    (fun acc server ->
      let sid = Server.id server in
      let fetch ~peer request =
        if peer < 0 || peer >= n || peer = sid then None
        else
          Server.handle servers.(peer) ~now:0.0 ~from:sid
            { Payload.token = None; epoch = 0; request }
      in
      acc + Server.repair_fragments server ~fetch)
    0 servers

let flood ~servers =
  let n = Array.length servers in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iter
      (fun server ->
        let sid = Server.id server in
        match Server.take_gossip_buffer server with
        | [] -> ()
        | writes ->
          progressed := true;
          let env =
            {
              Payload.token = None; epoch = 0;
              request =
                Payload.Gossip_push
                { writes; have = Server.gossip_summary server;
                  epoch = Server.epoch server };
            }
          in
          for peer = 0 to n - 1 do
            if peer <> sid then
              ignore (Server.handle servers.(peer) ~now:0.0 ~from:sid env)
          done)
      servers
  done
