type event =
  | Invalid_signature
  | Stamp_regression
  | Forged_context
  | Evidence_downgrade

let event_to_string = function
  | Invalid_signature -> "invalid-signature"
  | Stamp_regression -> "stamp-regression"
  | Forged_context -> "forged-context"
  | Evidence_downgrade -> "evidence-downgrade"

type t = {
  universe : int list;
  b : int;
  proofs : (int, event) Hashtbl.t;
  suspicion : (int, int) Hashtbl.t; (* demerit counter per server *)
}

let create ~servers ~b =
  if servers = [] || b < 0 then invalid_arg "Fault_evidence.create";
  { universe = servers; b; proofs = Hashtbl.create 4; suspicion = Hashtbl.create 8 }

let servers t = t.universe

let in_range t server = List.mem server t.universe

let suspicion_of t server =
  match Hashtbl.find_opt t.suspicion server with Some v -> v | None -> 0

let report_proof t ~server event =
  if in_range t server && not (Hashtbl.mem t.proofs server) then
    Hashtbl.replace t.proofs server event

let report_suspicion t ~server =
  if in_range t server then
    Hashtbl.replace t.suspicion server (suspicion_of t server + 1)

let clear_suspicion t ~server =
  if in_range t server then Hashtbl.remove t.suspicion server

let is_proven t server = Hashtbl.mem t.proofs server
let proof_of t server = Hashtbl.find_opt t.proofs server

let proven t =
  Hashtbl.fold (fun server _ acc -> server :: acc) t.proofs []
  |> List.sort Int.compare

let effective_b t = max 0 (t.b - Hashtbl.length t.proofs)

let preferred_servers t =
  t.universe
  |> List.filter (fun s -> not (is_proven t s))
  |> List.stable_sort (fun a b -> Int.compare (suspicion_of t a) (suspicion_of t b))

let pp fmt t =
  Format.fprintf fmt "evidence: b_eff=%d proven=[%s]" (effective_b t)
    (String.concat "; "
       (List.map
          (fun s ->
            Printf.sprintf "%d:%s" s
              (match proof_of t s with
              | Some e -> event_to_string e
              | None -> "?"))
          (proven t)))
