(** Signature production and verification with cost accounting.

    Every sign/verify passes through here so the section 6 computational
    cost claims (E2/E3) can be measured rather than asserted.

    Verifications are answered from a node-wide bounded LRU cache keyed by
    a digest of (public key, message, signature): a write disseminated to
    n servers and re-read by many clients costs one RSA exponentiation per
    node, not one per arrival. The [verifies]/[server_verifies] metrics
    keep counting paper-model verifications; [sigcache_hits]/
    [sigcache_misses] record how many hit the cache vs ran the RSA math.

    Batch evidence goes through the same cache keyed by the signed root:
    verifying k writes of one batch costs one RSA exponentiation (the
    first root check; the other k-1 hit the cache) plus k Merkle paths. *)

val reset_sigcache : ?capacity:int -> unit -> unit
(** Replace the verification cache with an empty one (default capacity
    4096). Use [~capacity:1] to effectively disable caching. *)

val sigcache_stats : unit -> int * int
(** Lifetime [(hits, misses)] of the current cache instance. *)

val sigcache_families : unit -> Obs.Expo.family list
(** The live cache as exposition families: instance-lifetime hit/miss
    counters (these survive {!Metrics.reset}, unlike the snapshot
    counters) and entries/capacity gauges. *)

val sign_write :
  key:Crypto.Rsa.keypair ->
  writer:string ->
  uid:Uid.t ->
  stamp:Stamp.t ->
  ?wctx:Context.t ->
  ?frags:Payload.dispersal_meta ->
  string ->
  Payload.write
(** Per-write signature evidence — the paper's baseline write. [frags]
    marks a dispersed write: the signature then covers the coding
    descriptor (fragment digests included) via the domain-separated
    {!Payload.write_body}. *)

val sign_batch_root : key:Crypto.Rsa.keypair -> root:string -> size:int -> string
(** Sign {!Payload.batch_body} — one signature certifying a whole
    Merkle batch of write bodies (used by {!Signbatch}). *)

val mac_write :
  Keyring.t ->
  writer:string ->
  uid:Uid.t ->
  stamp:Stamp.t ->
  ?wctx:Context.t ->
  ?frags:Payload.dispersal_meta ->
  servers:int list ->
  string ->
  Payload.write option
(** Build the MAC-vector evidence form: one HMAC tag per server in
    [servers] under the pairwise keys. [None] when any key is missing
    (caller should fall back to a signature). *)

val verify_write : Keyring.t -> Payload.write -> bool
(** Client-side verification (counts toward [verifies]). [Sig] and
    [Batch] evidence only; MAC evidence always fails — it is not
    third-party verifiable, and an honest server never serves it. *)

val server_verify_write : Keyring.t -> Payload.write -> bool
(** Same check, counted as a server-side verification. *)

val server_verify_mac : Keyring.t -> server:int -> Payload.write -> bool
(** The addressed server's check of a MAC-fast write: our tag from the
    vector, under our pairwise key with the claimed writer, over
    {!Payload.mac_body} (which binds our server id). *)

val check_write_quiet : Keyring.t -> Payload.write -> bool
(** Verification without cost accounting — used when classifying an
    already-failed reply for fault evidence, so diagnostics do not skew
    the section 6 counters. *)

val sign_context :
  key:Crypto.Rsa.keypair ->
  client:string ->
  group:string ->
  seq:int ->
  Context.t ->
  Payload.ctx_record

val verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool

val server_verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool

val warm_write : Keyring.t -> Payload.write -> unit
(** Run the verification now so a subsequent [server_verify_write] is a
    cache hit. Counts cache traffic (the RSA really runs here) but not a
    logical verification — used by the TCP host to verify outside the
    server-state lock. No-op for MAC evidence (HMACs are cheap enough to
    check under the lock). *)

val warm_batch : Keyring.t -> writer:string -> Payload.evidence -> unit
(** Warm the root-signature check of batch evidence — the expensive part
    of an {!Payload.Evidence_upgrade}. *)

val warm_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> unit
(** Context analogue of {!warm_write}. *)
