(** Signature production and verification with cost accounting.

    Every sign/verify passes through here so the section 6 computational
    cost claims (E2/E3) can be measured rather than asserted.

    Verifications are answered from a node-wide bounded LRU cache keyed by
    a digest of (public key, message, signature): a write disseminated to
    n servers and re-read by many clients costs one RSA exponentiation per
    node, not one per arrival. The [verifies]/[server_verifies] metrics
    keep counting paper-model verifications; [sigcache_hits]/
    [sigcache_misses] record how many hit the cache vs ran the RSA math. *)

val reset_sigcache : ?capacity:int -> unit -> unit
(** Replace the verification cache with an empty one (default capacity
    4096). Use [~capacity:1] to effectively disable caching. *)

val sigcache_stats : unit -> int * int
(** Lifetime [(hits, misses)] of the current cache instance. *)

val sign_write :
  key:Crypto.Rsa.keypair ->
  writer:string ->
  uid:Uid.t ->
  stamp:Stamp.t ->
  ?wctx:Context.t ->
  string ->
  Payload.write

val verify_write : Keyring.t -> Payload.write -> bool
(** Client-side verification (counts toward [verifies]). *)

val server_verify_write : Keyring.t -> Payload.write -> bool
(** Same check, counted as a server-side verification. *)

val check_write_quiet : Keyring.t -> Payload.write -> bool
(** Verification without cost accounting — used when classifying an
    already-failed reply for fault evidence, so diagnostics do not skew
    the section 6 counters. *)

val sign_context :
  key:Crypto.Rsa.keypair ->
  client:string ->
  group:string ->
  seq:int ->
  Context.t ->
  Payload.ctx_record

val verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool

val server_verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool

val warm_write : Keyring.t -> Payload.write -> unit
(** Run the verification now so a subsequent [server_verify_write] is a
    cache hit. Counts cache traffic (the RSA really runs here) but not a
    logical verification — used by the TCP host to verify outside the
    server-state lock. *)

val warm_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> unit
(** Context analogue of {!warm_write}. *)
