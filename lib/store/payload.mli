(** Wire messages between clients and servers.

    A {!write} is the unit of replication, and its {!evidence} is what
    makes it self-certifying. Three evidence forms exist, trading sign
    cost against verifiability scope:

    - {!Sig}: a per-write signature over {!write_body} — the paper's
      baseline (section 5.2): anyone holding the writer's public key can
      check it, so the write may travel anywhere (gossip, audit).
    - {!Batch}: one signature over the Merkle root of up to k write
      bodies, plus this write's inclusion proof — same third-party
      verifiability, amortized k-fold sign cost (the PoWerStore
      observation that per-write public-key operations are avoidable).
    - {!Mac}: a vector of per-server HMAC tags — verifiable only by the
      addressed servers, so such a write must never cross the
      gossip/anti-entropy boundary; it is held unannounced until the
      client escalates it to signed (Batch) evidence with
      {!Evidence_upgrade}. *)

type batch_evidence = {
  root : string;  (** 32-byte Merkle root over the batch's write bodies *)
  size : int;  (** number of leaves under [root] *)
  proof : Crypto.Merkle.proof;  (** this write's inclusion proof *)
  root_sig : string;  (** writer's signature over {!batch_body} *)
}

type evidence =
  | Sig of string
  | Batch of batch_evidence
  | Mac of (int * string) list
      (** [(server id, HMAC-SHA256 over {!mac_body})] per addressed server *)

type dispersal_meta = {
  k : int;  (** fragments needed to reconstruct *)
  m : int;  (** fragments minted (= n at write time) *)
  total_length : int;  (** original value length in bytes *)
  stripe : int;  (** value bytes coded per stripe; a multiple of [k] *)
  digests : string list;  (** 32-byte SHA-256 per fragment, index order *)
}
(** A dispersed write's coding descriptor. The write's [value] field
    holds the Merkle root over [digests] ({!Dispersal.meta_root}), so
    the stamp and the evidence bind every fragment byte while the
    metadata write itself stays small enough for the full n-replica
    quorum protocol. *)

type write = {
  uid : Uid.t;
  stamp : Stamp.t;
  wctx : Context.t option;  (** CC writes carry the writer's context *)
  value : string;
  writer : string;  (** client uid *)
  evidence : evidence;
  frags : dispersal_meta option;
      (** [Some] marks a dispersed write: [value] is the fragment-digest
          Merkle root and the bulk bytes live as coded fragments on the
          servers ({!Frag_put}) *)
}

val write_body : write -> string
(** The canonical bytes the writer authenticates (everything but the
    evidence): uid, stamp, context, value, writer. Identical across all
    three evidence forms, so escalating a write from MAC to batch
    evidence re-certifies exactly the same bytes. Replicated writes
    ([frags = None]) keep the historical byte format; dispersed writes
    use a domain-separated prefix that also covers the coding
    descriptor. *)

val batch_body : root:string -> size:int -> string
(** Canonical signed bytes for a Merkle batch root: domain-separated
    from {!write_body} and binding the leaf count, so the proof shape a
    verifier derives from [size] is covered by the signature. *)

val mac_body : server:int -> string -> string
(** [mac_body ~server body] — the bytes a per-server MAC tag
    authenticates: the write body plus the destination server id, so a
    tag replayed at a different server fails even before key lookup. *)

type ctx_record = { seq : int; ctx : Context.t; signature : string }
(** A stored context: [seq] is the client's session counter, so "latest"
    is well defined even before checking vector dominance. *)

val ctx_body : client:string -> group:string -> seq:int -> Context.t -> string
(** Canonical signed bytes for a context write. *)

type request =
  | Ctx_read of { client : string; group : string }
  | Ctx_write of { client : string; group : string; record : ctx_record }
  | Meta_query of { uid : Uid.t }
  | Value_read of { uid : Uid.t; stamp : Stamp.t }
  | Write_req of { write : write; await_ack : bool }
  | Log_query of { uid : Uid.t }
  | Read_inline of { uid : Uid.t }
      (** one-round read: the server returns its whole current write
          (value included), trading bandwidth for a round trip —
          section 6's "read cost equals write cost" best case *)
  | Group_query of { group : string }
      (** all current writes in a group — context reconstruction *)
  | Gossip_push of {
      writes : write list;
      have : (Uid.t * Stamp.t) list;
      epoch : Config_epoch.t option;
    }
      (** [have] is the sender's current stamp per item — the replication
          evidence behind section 5.3's log erasure rule ("old values
          could be erased once a server learns that a new value is
          available at at least 2b+1 servers"). [epoch] is the pusher's
          config epoch, so anti-entropy also converges membership: a
          server that missed an epoch announcement catches up from any
          gossip peer. *)
  | Evidence_upgrade of {
      uid : Uid.t;
      stamp : Stamp.t;
      writer : string;
      evidence : evidence;
    }
      (** lazy signature escalation: replace the held MAC-fast write
          [uid, stamp] with third-party-verifiable [evidence] (normally
          [Batch]), allowing it to be announced and gossiped. [writer]
          lets hosts warm the root-signature check outside their state
          lock. *)
  | Epoch_get
      (** which config epoch is this server on? ([Epoch_reply]) —
          client-side epoch discovery *)
  | Epoch_announce of Config_epoch.t
      (** administrative: install this (signed) epoch. Servers accept a
          direct successor of their current epoch, or any strictly newer
          validly-signed epoch when they have fallen behind. *)
  | Frag_put of {
      uid : Uid.t;
      stamp : Stamp.t;
      writer : string;
      index : int;  (** fragment index in [1, m] *)
      seq : int;  (** chunk number, 0-based, strictly sequential *)
      last : bool;  (** final chunk: the server seals and stores *)
      data : string;
    }
      (** one chunk of a fragment stream. Large fragments arrive as
          several sequential [Frag_put]s so no single frame approaches
          [Frame.max_frame]; a gap in [seq] aborts the staging buffer.
          The fragment becomes readable only once the matching metadata
          write arrives and its digest checks out — until then it is an
          invisible orphan. *)
  | Frag_get of { uid : Uid.t; stamp : Stamp.t; index : int; off : int; len : int }
      (** read bytes [off, off+len) of a stored fragment
          ([Frag_reply]) — the chunked read path and gossip repair both
          use this *)

type envelope = {
  token : string option;
  epoch : int;
      (** the sender's config-epoch version; [0] = static/legacy
          deployment (servers without an installed epoch ignore it) *)
  request : request;
}

type frag_chunk = { total : int; data : string }
(** One chunk of a fragment: the requested byte range plus the
    fragment's full length, so readers can size follow-up requests. *)

type response =
  | Ctx_reply of ctx_record option
  | Meta_reply of { stamp : Stamp.t option; writer_faulty : bool }
  | Value_reply of write option
  | Ack
  | Log_reply of { writes : write list; writer_faulty : bool }
  | Group_reply of write list
  | Denied of string
  | Epoch_reply of Config_epoch.t option
  | Stale_epoch of Config_epoch.t
      (** "your epoch is superseded" — carries the server's newer config,
          so one round both rejects the stale op and repairs the client *)
  | Frag_reply of frag_chunk option
      (** answer to [Frag_get]; [None] when the server holds no such
          fragment *)

val encode_write : Wire.Codec.Enc.t -> write -> unit
val decode_write : Wire.Codec.Dec.t -> write
(** Exposed for {!Server}'s snapshot codec; raises {!Wire.Codec.Error}
    on malformed input like every decoder here. *)

val decode_write_v3 : Wire.Codec.Dec.t -> write
(** Decoder for the pre-dispersal wire image (snapshot versions <= 3):
    no [frags] field; restored writes get [frags = None]. *)

val encode_evidence : Wire.Codec.Enc.t -> evidence -> unit
val decode_evidence : Wire.Codec.Dec.t -> evidence

val encode_envelope : envelope -> string
val decode_envelope : string -> envelope option
val encode_response : response -> string
val decode_response : string -> response option

val pp_response : Format.formatter -> response -> unit
