(** A secure store server: a passive, signed-data repository.

    Servers never originate data and never order writes; they store
    whatever validly-signed write messages reach them (directly or by
    gossip) and answer queries. All the paper's defenses live here:

    - every stored write and context carries a client signature the
      server verified on arrival, so replies can be checked end-to-end;
    - with {!config.malicious_client_guard} on (section 5.3), a write is
      *held* — stored but not reported — until the causally preceding
      writes named in its context have arrived, defeating the
      spurious-context denial-of-service;
    - a bounded per-item log keeps recently overwritten values available
      while their successors disseminate;
    - multi-writer forks (one timestamp, two values) are detected and the
      writer is quarantined. *)

type config = {
  n : int;
  b : int;
  malicious_client_guard : bool;
  log_depth : int;  (** overwritten values retained per item *)
  mac_hold_depth : int;
      (** MAC-fast writes held per item awaiting evidence escalation;
          oldest dropped beyond this *)
  auth : Access_control.service option;
  epoch_admin : Crypto.Rsa.public option;
      (** the cluster administrator's public key; announced config
          epochs ({!Payload.Epoch_announce}, gossip piggybacks) must
          verify against it. [None] = static deployment: every epoch
          transition is refused ([Error "no admin key"]) — epochs
          arrive on unauthenticated channels, so an unverifiable one
          could drain this server off the membership. Bootstrap
          installs ({!set_epoch}) are unaffected. *)
}

val default_config : n:int -> b:int -> config
(** guard off, log depth 4, MAC hold depth 32, no auth. *)

type t

val create : ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int -> unit -> t
val id : t -> int
val config : t -> config

(** {1 Config epochs (dynamic membership)}

    A server without an installed epoch ([epoch t = None]) behaves
    exactly as before epochs existed: it never stamps gossip, never
    rejects anything as stale. Once an epoch is installed (via
    {!set_epoch}, {!Payload.Epoch_announce}, or gossip piggyback),
    requests from envelopes with a lower epoch version are answered
    {!Payload.Stale_epoch} — except gossip and the epoch requests
    themselves, which must flow regardless so lagging parties can catch
    up. *)

val epoch : t -> Config_epoch.t option
val epoch_version : t -> int
(** 0 when no epoch is installed. *)

val set_epoch : t -> Config_epoch.t -> unit
(** Install unconditionally (bootstrap / genesis); no validation. Use
    {!try_adopt_epoch} for announced transitions. *)

val try_adopt_epoch : t -> Config_epoch.t -> (unit, string) result
(** The announced-transition rule: {!config.epoch_admin} must be
    configured (otherwise every transition is [Error "no admin key"]),
    and the epoch must be structurally valid, admin-signed, and
    strictly newer than the current one; a direct successor
    (version + 1) must also hash-chain to the current epoch
    ({!Config_epoch.follows}), while a bigger jump is accepted on the
    signature alone (laggard catch-up). On adoption: if servers joined
    and this server remains a member, its full write-set is
    re-announced into gossip for their bootstrap; if this server is no
    longer a member, it starts draining; if it was draining and the
    new epoch re-admits it, the drain is cleared and its state
    re-announced. *)

val draining : t -> bool
val begin_drain : t -> unit
(** A draining server denies new client writes — both data
    ({!Payload.Write_req}) and context records ({!Payload.Ctx_write}),
    each with [Denied "draining"], since neither would survive handoff —
    but keeps serving reads, gossip, and {!Payload.Evidence_upgrade} —
    held MAC-fast writes must still escalate out before handoff. *)

val handle : t -> now:float -> from:Sim.Runtime.node_id -> Payload.envelope -> Payload.response option
(** Core request dispatch (typed). *)

val handler : t -> now:float -> from:Sim.Runtime.node_id -> string -> string option
(** Wire-level dispatch: decodes the envelope, encodes the response.
    Malformed requests get no reply. Register this with the engine. *)

val preverify : t -> Payload.envelope -> unit
(** Warm the signature-verification cache for every signed part of the
    request. Hosts that serialize {!handle} behind a lock call this
    first, outside the lock, so RSA verification never runs under it;
    {!handle} still re-checks (as cache hits), so this is advisory. *)

val take_gossip_buffer : t -> Payload.write list
(** Writes accepted since the last call — what the next gossip round
    pushes; clears the buffer. *)

val gossip_pending : t -> int
(** Writes waiting in the gossip buffer (queue depth — what the next
    round will drain). Observability only; does not touch the buffer. *)

val current_write : t -> Uid.t -> Payload.write option
(** Introspection for tests: the announced current write of an item. *)

val pending_count : t -> Uid.t -> int
(** Held (unannounced) writes for an item. *)

val pending_writes : t -> Uid.t -> Payload.write list
(** The held writes themselves (used by the eager-report fault injector,
    which leaks them before their causal predecessors arrive). *)

val maced_count : t -> Uid.t -> int
(** MAC-fast writes held for an item, awaiting {!Payload.Evidence_upgrade}. *)

val maced_writes : t -> Uid.t -> Payload.write list
(** The MAC-held writes themselves. An honest server never serves these;
    the downgrade fault injector leaks them to model a Byzantine one. *)

val item_count : t -> int
val is_writer_faulty : t -> string -> bool
val log_writes : t -> Uid.t -> Payload.write list
(** Announced writes: current first, then the retained log. *)

val audit_log : t -> Payload.write list
(** Every write this server ever announced, oldest first (for {!Audit}). *)

val gossip_summary : t -> (Uid.t * Stamp.t) list
(** Current stamp of every stored item — attached to gossip pushes as
    replication evidence for log erasure (section 5.3). *)

val holder_count : t -> Uid.t -> Stamp.t -> int
(** How many distinct servers this one believes hold [stamp] of the item
    (introspection for tests). *)

(** {1 Coded fragments}

    Dispersed writes ({!Payload.write}[.frags = Some _]) keep their bulk
    bytes here: fragments arrive as chunked {!Payload.Frag_put} streams,
    become servable only once their digest matches a stored metadata
    write's descriptor (until then they are bounded, invisible orphans),
    and are read back in ranges via {!Payload.Frag_get}. The metadata
    quorum is the sole commit point — fragments scattered without it
    never become visible. *)

val fragment : t -> Uid.t -> stamp:Stamp.t -> index:int -> string option
(** The verified fragment bytes, if held (introspection for tests). *)

val fragment_count : t -> int
(** Verified fragments held. *)

val orphan_fragment_count : t -> int
(** Sealed fragments still awaiting their metadata write. *)

val drop_fragment : t -> Uid.t -> stamp:Stamp.t -> index:int -> unit
(** Forget a fragment — the fault injection for "holder lost its disk";
    the repair loop should restore it. *)

val drop_all_fragments : t -> int
(** Forget every fragment, staged stream and orphan (whole-disk loss —
    the explorer's fragment-loss fault); returns how many sealed
    fragments were dropped. *)

val storage_bytes : t -> int
(** Value bytes stored: every retained write body plus every fragment.
    The dispersal bench compares this across replication modes for the
    storage-amplification claim. *)

val missing_fragments : t -> Payload.write list
(** Current dispersed writes whose own-index (id+1) fragment this server
    should hold but does not — the repair worklist. *)

val repair_fragment :
  t ->
  fetch:(peer:int -> Payload.request -> Payload.response option) ->
  Payload.write ->
  bool
(** Rebuild our fragment of one dispersed write: pull whole fragments
    from peer holders through [fetch], keep those the metadata digests
    certify, decode, re-code our own index and store it verified. *)

val repair_fragments :
  t ->
  fetch:(peer:int -> Payload.request -> Payload.response option) ->
  int
(** Run {!repair_fragment} over {!missing_fragments}; returns how many
    fragments were restored (each counts toward
    [securestore_frag_repairs_total]). Gossip hosts call this on their
    anti-entropy cadence. *)

val snapshot : t -> string
(** Serialize the server's durable state — items (current, log, held
    writes, fork flags, erasure watermarks), stored contexts,
    quarantined writers, pending gossip, the audit log, and (v3) the
    installed config epoch and drain flag — so a repository survives
    restarts, as a long-term store must. The blob ends in a SHA-256 of
    everything before it, so truncation or corruption is detected on
    load. Holder evidence is deliberately not persisted (it is rebuilt
    from gossip). *)

val restore_result :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int -> string ->
  (t, string) result
(** Rebuild a server from {!snapshot} output. A failed integrity check
    (truncated or bit-flipped blob), bad magic, version or id mismatch
    yield [Error] with a clear reason — never a decoder exception.
    Version-2 blobs (pre-epoch, no integrity trailer) still load.
    Restored state is what an honest restarted server would have — every
    write it re-announces still carries its original client signature. *)

val restore :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int -> string ->
  t option
(** {!restore_result} with the reason dropped. *)

val save_file : t -> path:string -> unit
(** {!snapshot} to a file, atomically (write to [path ^ ".tmp"], then
    rename) — a crash mid-save never clobbers the previous snapshot. *)

val load_result :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int ->
  path:string -> unit -> (t, string) result

val load_file :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int ->
  path:string -> unit -> t option
