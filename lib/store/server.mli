(** A secure store server: a passive, signed-data repository.

    Servers never originate data and never order writes; they store
    whatever validly-signed write messages reach them (directly or by
    gossip) and answer queries. All the paper's defenses live here:

    - every stored write and context carries a client signature the
      server verified on arrival, so replies can be checked end-to-end;
    - with {!config.malicious_client_guard} on (section 5.3), a write is
      *held* — stored but not reported — until the causally preceding
      writes named in its context have arrived, defeating the
      spurious-context denial-of-service;
    - a bounded per-item log keeps recently overwritten values available
      while their successors disseminate;
    - multi-writer forks (one timestamp, two values) are detected and the
      writer is quarantined. *)

type config = {
  n : int;
  b : int;
  malicious_client_guard : bool;
  log_depth : int;  (** overwritten values retained per item *)
  mac_hold_depth : int;
      (** MAC-fast writes held per item awaiting evidence escalation;
          oldest dropped beyond this *)
  auth : Access_control.service option;
}

val default_config : n:int -> b:int -> config
(** guard off, log depth 4, MAC hold depth 32, no auth. *)

type t

val create : ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int -> unit -> t
val id : t -> int
val config : t -> config

val handle : t -> now:float -> from:Sim.Runtime.node_id -> Payload.envelope -> Payload.response option
(** Core request dispatch (typed). *)

val handler : t -> now:float -> from:Sim.Runtime.node_id -> string -> string option
(** Wire-level dispatch: decodes the envelope, encodes the response.
    Malformed requests get no reply. Register this with the engine. *)

val preverify : t -> Payload.envelope -> unit
(** Warm the signature-verification cache for every signed part of the
    request. Hosts that serialize {!handle} behind a lock call this
    first, outside the lock, so RSA verification never runs under it;
    {!handle} still re-checks (as cache hits), so this is advisory. *)

val take_gossip_buffer : t -> Payload.write list
(** Writes accepted since the last call — what the next gossip round
    pushes; clears the buffer. *)

val gossip_pending : t -> int
(** Writes waiting in the gossip buffer (queue depth — what the next
    round will drain). Observability only; does not touch the buffer. *)

val current_write : t -> Uid.t -> Payload.write option
(** Introspection for tests: the announced current write of an item. *)

val pending_count : t -> Uid.t -> int
(** Held (unannounced) writes for an item. *)

val pending_writes : t -> Uid.t -> Payload.write list
(** The held writes themselves (used by the eager-report fault injector,
    which leaks them before their causal predecessors arrive). *)

val maced_count : t -> Uid.t -> int
(** MAC-fast writes held for an item, awaiting {!Payload.Evidence_upgrade}. *)

val maced_writes : t -> Uid.t -> Payload.write list
(** The MAC-held writes themselves. An honest server never serves these;
    the downgrade fault injector leaks them to model a Byzantine one. *)

val item_count : t -> int
val is_writer_faulty : t -> string -> bool
val log_writes : t -> Uid.t -> Payload.write list
(** Announced writes: current first, then the retained log. *)

val audit_log : t -> Payload.write list
(** Every write this server ever announced, oldest first (for {!Audit}). *)

val gossip_summary : t -> (Uid.t * Stamp.t) list
(** Current stamp of every stored item — attached to gossip pushes as
    replication evidence for log erasure (section 5.3). *)

val holder_count : t -> Uid.t -> Stamp.t -> int
(** How many distinct servers this one believes hold [stamp] of the item
    (introspection for tests). *)

val snapshot : t -> string
(** Serialize the server's durable state — items (current, log, held
    writes, fork flags, erasure watermarks), stored contexts,
    quarantined writers, pending gossip, and the audit log — so a
    repository survives restarts, as a long-term store must. Holder
    evidence is deliberately not persisted (it is rebuilt from gossip). *)

val restore :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int -> string ->
  t option
(** Rebuild a server from {!snapshot} output; [None] on corrupt input.
    Restored state is what an honest restarted server would have — every
    write it re-announces still carries its original client signature. *)

val save_file : t -> path:string -> unit
(** {!snapshot} to a file, atomically (write-then-rename). *)

val load_file :
  ?config:config -> id:int -> keyring:Keyring.t -> n:int -> b:int ->
  path:string -> unit -> t option
