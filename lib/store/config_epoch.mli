(** Signed, monotonically-versioned cluster configurations (dynamic
    membership).

    One epoch names the server set and fault bound of a membership
    generation. Epochs are signed by the cluster administrator and
    chained to their predecessor by hash, so a Byzantine admin cannot
    fork membership history undetectably: two validly signed epochs
    with the same version but different digests are themselves the
    fork proof. Quorum sizes are never stored — holders re-derive them
    from [(n, b)] via {!Quorums}, so parties that agree on an epoch
    cannot disagree on its math.

    Protocol use: every {!Payload.envelope} carries its sender's epoch
    version; servers answer requests from a superseded epoch with
    {!Payload.Stale_epoch}, piggybacking the newer config so the
    client can verify, adopt and re-derive quorums mid-session. *)

type t = {
  version : int;  (** monotonic, genesis = 1 *)
  servers : Sim.Runtime.node_id list;  (** sorted, distinct *)
  b : int;
  prev_digest : string;
      (** {!digest} of the predecessor epoch; all-zeros at genesis *)
  signature : string option;  (** admin RSA signature over {!digest} *)
}

val genesis_prev : string
(** The 32-byte all-zeros predecessor digest of a genesis epoch. *)

val n : t -> int
val version : t -> int
val servers : t -> Sim.Runtime.node_id list
val b : t -> int
val member : t -> Sim.Runtime.node_id -> bool

val digest : t -> string
(** Domain-separated SHA-256 over every field except the signature. *)

val validate : t -> (unit, string) result
(** Structural checks plus {!Quorums.validate} on the epoch's (n, b). *)

val genesis : servers:Sim.Runtime.node_id list -> b:int -> unit -> (t, string) result
(** Version 1, no predecessor. Servers are sorted and deduplicated. *)

val next :
  t -> servers:Sim.Runtime.node_id list -> b:int -> unit -> (t, string) result
(** The direct successor of an epoch: version + 1, chained by hash. *)

val sign : t -> Crypto.Rsa.keypair -> t
val verify : t -> Crypto.Rsa.public -> bool

val follows : prev:t -> t -> bool
(** [follows ~prev t]: [t] is the direct successor of [prev] — version
    is [prev]'s + 1 and [prev_digest] matches [digest prev]. The only
    transition an already-configured party accepts without re-trusting
    the admin signature alone. *)

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
(** @raise Wire.Codec.Error on malformed or structurally invalid input. *)

val to_string : t -> string
val of_string : string -> t option

val pp : Format.formatter -> t -> unit
