type t = {
  writer : string;
  key : Crypto.Rsa.keypair;
  keyring : Keyring.t;
  group : string;
  aead : Crypto.Aead.key;
  n : int;
  b : int;
  k : int;
  servers : Sim.Runtime.node_id array;
  timeout : float;
  token : string option;
  nonce_rng : Crypto.Prng.t;
  mutable last_time : int;
}

type error =
  | Not_enough_fragments of { needed : int; got : int }
  | Write_unacked of { needed : int; got : int }
  | Decrypt_failed
  | Not_found

let error_to_string = function
  | Not_enough_fragments { needed; got } ->
    Printf.sprintf "only %d authentic fragments, need %d" got needed
  | Write_unacked { needed; got } ->
    Printf.sprintf "only %d servers acknowledged fragments, need %d" got needed
  | Decrypt_failed -> "reassembled ciphertext failed authentication"
  | Not_found -> "no fragments found"

let make ~n ~b ?k ?servers ?(timeout = Sim.Runtime.default_timeout) ?token
    ~writer ~key ~keyring ~group ~secret () =
  let k = match k with Some k -> k | None -> b + 1 in
  if k < b + 1 || k > n - (2 * b) then
    invalid_arg "Dispersal.make: need b+1 <= k <= n-2b";
  let servers =
    match servers with
    | Some s -> Array.of_list s
    | None -> Array.init n Fun.id
  in
  if Array.length servers <> n then invalid_arg "Dispersal.make: servers length";
  {
    writer;
    key;
    keyring;
    group;
    aead = Crypto.Aead.key_of_string secret;
    n;
    b;
    k;
    servers;
    timeout;
    token;
    nonce_rng = Crypto.Prng.create ~seed:("dispersal-nonce/" ^ writer ^ "/" ^ group);
    last_time = 0;
  }

let fragment_item ~item i = Printf.sprintf "%s#%d" item i

let next_time t =
  let now_us = int_of_float (Sim.Runtime.now () *. 1e6) in
  let time = max (t.last_time + 1) now_us in
  t.last_time <- time;
  time

let rpc_one t dst request =
  let payload = Payload.encode_envelope { Payload.token = t.token; epoch = 0; request } in
  let replies = Sim.Runtime.call_many ~timeout:t.timeout ~quorum:1 [ dst ] payload in
  Metrics.add_messages (1 + List.length replies);
  Metrics.add_bytes
    (String.length payload
    + List.fold_left
        (fun acc (r : Sim.Runtime.reply) -> acc + String.length r.payload)
        0 replies);
  match replies with
  | { payload; _ } :: _ -> Payload.decode_response payload
  | [] -> None

let write t ~item value =
  let nonce = Crypto.Aead.random_nonce t.nonce_rng in
  let ciphertext = Crypto.Aead.encrypt t.aead ~nonce ~ad:item value in
  let fragments = Crypto.Ida.split ~k:t.k ~n:t.n ciphertext in
  let time = next_time t in
  let acks = ref 0 in
  List.iteri
    (fun i fragment ->
      let uid = Uid.make ~group:t.group ~item:(fragment_item ~item (i + 1)) in
      let body = Crypto.Ida.fragment_to_string fragment in
      let w =
        Signing.sign_write ~key:t.key ~writer:t.writer ~uid
          ~stamp:(Stamp.scalar time) body
      in
      match rpc_one t t.servers.(i) (Payload.Write_req { write = w; await_ack = true }) with
      | Some Payload.Ack -> incr acks
      | Some _ | None -> ())
    fragments;
  let needed = t.k + t.b in
  if !acks >= needed then Ok () else Error (Write_unacked { needed; got = !acks })

(* Collect authentic fragments grouped by version stamp; reconstruct the
   newest version that has k of them. *)
let read t ~item =
  let by_stamp : (Stamp.t, Crypto.Ida.fragment list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let seen_any = ref false in
  let check_done stamp =
    match Hashtbl.find_opt by_stamp stamp with
    | Some frags when List.length !frags >= t.k -> true
    | _ -> false
  in
  let collect i =
    let index = i + 1 in
    let uid = Uid.make ~group:t.group ~item:(fragment_item ~item index) in
    match rpc_one t t.servers.(i) (Payload.Read_inline { uid }) with
    | Some (Payload.Value_reply (Some w))
      when Uid.equal w.Payload.uid uid && Signing.verify_write t.keyring w -> (
      seen_any := true;
      match Crypto.Ida.fragment_of_string w.Payload.value with
      | Some fragment when fragment.Crypto.Ida.index = index ->
        (match Hashtbl.find_opt by_stamp w.Payload.stamp with
        | Some cell -> cell := fragment :: !cell
        | None -> Hashtbl.add by_stamp w.Payload.stamp (ref [ fragment ]));
        Some w.Payload.stamp
      | Some _ | None -> None)
    | _ -> None
  in
  (* Walk the servers, stopping as soon as some version has k authentic
     fragments. *)
  let rec walk i completed =
    if i >= t.n then completed
    else begin
      let completed =
        match collect i with
        | Some stamp when check_done stamp -> (
          match completed with
          | Some best when Stamp.compare best stamp >= 0 -> completed
          | _ -> Some stamp)
        | _ -> completed
      in
      (* Even after completing a version, later servers may hold a newer
         one; keep walking only if we have budget to improve. *)
      walk (i + 1) completed
    end
  in
  match walk 0 None with
  | Some stamp -> (
    let frags = !(Hashtbl.find by_stamp stamp) in
    match Crypto.Ida.reconstruct ~k:t.k frags with
    | Some ciphertext -> (
      match Crypto.Aead.decrypt t.aead ~ad:item ciphertext with
      | Some value -> Ok value
      | None -> Error Decrypt_failed)
    | None -> Error (Not_enough_fragments { needed = t.k; got = List.length frags }))
  | None ->
    if !seen_any then begin
      let best =
        Hashtbl.fold (fun _ frags acc -> max acc (List.length !frags)) by_stamp 0
      in
      Error (Not_enough_fragments { needed = t.k; got = best })
    end
    else Error Not_found

(* --- coded bulk transport (pure helpers) -------------------------------- *)

(* The live dispersal path (metadata through the replica quorum, bulk
   bytes as coded fragments) shares these with the server's repair loop.
   All are pure: they touch no transport and no state. *)

let default_stripe ~k =
  (* Stripes code [stripe/k] bytes per fragment; 64 KiB-ish keeps the
     per-stripe interpolation working set in cache while dividing by any
     k <= 85. *)
  k * ((65536 + k - 1) / k)

let frag_length (meta : Payload.dispersal_meta) =
  let full = meta.total_length / meta.stripe in
  let rem = meta.total_length - (full * meta.stripe) in
  (full * (meta.stripe / meta.k)) + ((rem + meta.k - 1) / meta.k)

let meta_ok (meta : Payload.dispersal_meta) =
  meta.k >= 1 && meta.k <= meta.m && meta.m <= 255 && meta.total_length >= 0
  && meta.stripe > 0
  && meta.stripe mod meta.k = 0
  && List.length meta.digests = meta.m
  && List.for_all (fun d -> String.length d = 32) meta.digests

let meta_root (meta : Payload.dispersal_meta) =
  Metrics.incr_digest ();
  Crypto.Merkle.root (Crypto.Merkle.of_leaves meta.digests)

let plan ~k ~n ?stripe value =
  let stripe = match stripe with Some s -> s | None -> default_stripe ~k in
  if k < 1 || k > n || n > 255 then invalid_arg "Dispersal.plan: need 1 <= k <= n <= 255";
  if stripe <= 0 || stripe mod k <> 0 then
    invalid_arg "Dispersal.plan: stripe must be a positive multiple of k";
  let total = String.length value in
  let bufs = Array.init n (fun _ -> Buffer.create ((total / k) + 64)) in
  let off = ref 0 in
  while !off < total do
    let len = min stripe (total - !off) in
    let pieces = Crypto.Ida.split_stripe ~k ~n (String.sub value !off len) in
    Array.iteri (fun i p -> Buffer.add_string bufs.(i) p) pieces;
    off := !off + stripe
  done;
  let fragments = Array.map Buffer.contents bufs in
  let digests =
    Array.to_list (Array.map Crypto.Sha256.digest fragments)
  in
  ( { Payload.k; m = n; total_length = total; stripe; digests }, fragments )

(* Reconstruct the original value from >= k full fragments, stripe by
   stripe so peak extra memory is one stripe's pieces, not a second copy
   of the value. Callers verify fragment digests against the metadata
   first; this only checks shape. *)
let decode_fragments (meta : Payload.dispersal_meta) pieces =
  if not (meta_ok meta) then None
  else if meta.total_length = 0 then Some ""
  else begin
    let fl = frag_length meta in
    let pieces =
      List.filter
        (fun (i, d) -> i >= 1 && i <= meta.m && String.length d = fl)
        pieces
      |> List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b)
    in
    if List.length pieces < meta.k then None
    else begin
      let pieces = List.filteri (fun i _ -> i < meta.k) pieces in
      let piece_stripe = meta.stripe / meta.k in
      let out = Buffer.create meta.total_length in
      let rec go off =
        if off >= meta.total_length then Some (Buffer.contents out)
        else begin
          let len = min meta.stripe (meta.total_length - off) in
          let plen = (len + meta.k - 1) / meta.k in
          let poff = off / meta.stripe * piece_stripe in
          let sub =
            List.map (fun (i, d) -> (i, String.sub d poff plen)) pieces
          in
          match Crypto.Ida.reconstruct_stripe ~k:meta.k ~len sub with
          | Some s ->
            Buffer.add_string out s;
            go (off + meta.stripe)
          | None -> None
        end
      in
      go 0
    end
  end

(* Re-derive one fragment from a reconstructed value — the repair path:
   a holder that lost its fragment pulls k others, decodes, and re-codes
   just its own index. *)
let refragment (meta : Payload.dispersal_meta) ~index value =
  if index < 1 || index > meta.m then
    invalid_arg "Dispersal.refragment: index out of range";
  let _, fragments = plan ~k:meta.k ~n:meta.m ~stripe:meta.stripe value in
  fragments.(index - 1)
