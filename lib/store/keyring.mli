(** Directory of client public keys and pairwise MAC keys.

    The paper assumes clients and servers own key pairs whose public
    halves are well known; key management itself is out of scope. This
    directory is that assumption made concrete — servers verify writer
    signatures against it, clients verify each other's writes.

    For the MAC-vector write fast path it additionally holds pairwise
    client<->server HMAC secrets: the client MACs a write once per
    addressed server, and only that server can check its tag. MAC'd
    writes are not third-party verifiable, which is exactly why
    {!Server} never announces or gossips them before signature
    escalation. *)

type t

val create : unit -> t
val register : t -> string -> Crypto.Rsa.public -> unit
(** @raise Invalid_argument if the uid is already bound to a different key. *)

val find : t -> string -> Crypto.Rsa.public option
val known : t -> string -> bool
val size : t -> int

val register_mac : t -> client:string -> server:int -> string -> unit
(** Bind the shared HMAC secret for one client/server pair.
    @raise Invalid_argument if the pair is bound to a different secret. *)

val mac_key : t -> client:string -> server:int -> string option

val macs_complete : t -> client:string -> n:int -> bool
(** Does [client] share a MAC key with every server in [0, n)? The
    client-side precondition for choosing the MAC fast path. *)
