(* Signed, monotonically-versioned cluster configurations.

   The paper assumes a static fleet of n = 3b+1 servers; production
   clusters replace, add and drain servers continuously. A config epoch
   generalizes the signed {!Shardmap} table from "which shard owns a
   key" to "which servers exist at all": the server set and fault bound
   of one membership generation, versioned, signed by the cluster
   administrator, and chained to its predecessor by hash so a Byzantine
   admin cannot fork membership history undetectably — two epochs with
   the same version but different digests are the fork proof.

   Quorum sizes are not stored; they are re-derived from (n, b) via
   {!Quorums} by whoever holds the epoch, so client and server can never
   disagree about the math of a config they agree on. *)

open Wire

type t = {
  version : int;  (* monotonic, genesis = 1 *)
  servers : Sim.Runtime.node_id list;  (* sorted, distinct *)
  b : int;
  prev_digest : string;  (* digest of the predecessor; zeros at genesis *)
  signature : string option;  (* admin RSA signature over [digest] *)
}

let digest_len = 32
let genesis_prev = String.make digest_len '\000'

let n t = List.length t.servers
let version t = t.version
let servers t = t.servers
let b t = t.b

let member t id = List.mem id t.servers

(* The preimage covers everything but the signature, with a domain
   separator and explicit lengths so no field boundary is ambiguous. *)
let digest t =
  Crypto.Sha256.digest
    (Printf.sprintf "config-epoch-v1!%d!%d!%d!%s!%s" t.version t.b
       (List.length t.servers)
       (String.concat "," (List.map string_of_int t.servers))
       t.prev_digest)

let validate t =
  let sorted_distinct =
    let rec check = function
      | a :: (b :: _ as rest) -> if a < b then check rest else false
      | _ -> true
    in
    check t.servers
  in
  if t.version < 1 then Error "config epoch: version must be >= 1"
  else if not sorted_distinct then
    Error "config epoch: servers must be sorted and distinct"
  else if String.length t.prev_digest <> digest_len then
    Error "config epoch: bad predecessor digest length"
  else Quorums.validate ~n:(n t) ~b:t.b

let make ~version ~servers ~b ~prev_digest () =
  let t =
    { version; servers = List.sort_uniq compare servers; b; prev_digest;
      signature = None }
  in
  match validate t with Ok () -> Ok t | Error _ as e -> e

let genesis ~servers ~b () = make ~version:1 ~servers ~b ~prev_digest:genesis_prev ()

let next prev ~servers ~b () =
  make ~version:(prev.version + 1) ~servers ~b ~prev_digest:(digest prev) ()

let sign t key =
  { t with signature = Some (Crypto.Rsa.sign key (digest t)) }

let verify t pub =
  match t.signature with
  | None -> false
  | Some signature -> Crypto.Rsa.verify pub ~msg:(digest t) ~signature

(* Direct succession: the only transition an already-configured party
   accepts without further trust. The admin applies membership changes
   one version at a time, so any party holding epoch v can check that
   v+1 really extends *its* v — a forked chain breaks here. *)
let follows ~prev t =
  t.version = prev.version + 1 && String.equal t.prev_digest (digest prev)

let encode enc t =
  Codec.Enc.varint enc t.version;
  Codec.Enc.list enc Codec.Enc.varint t.servers;
  Codec.Enc.varint enc t.b;
  Codec.Enc.fixed enc ~len:digest_len t.prev_digest;
  Codec.Enc.option enc Codec.Enc.string t.signature

let decode dec =
  let version = Codec.Dec.varint dec in
  let servers = Codec.Dec.list dec Codec.Dec.varint in
  let b = Codec.Dec.varint dec in
  let prev_digest = Codec.Dec.fixed dec ~len:digest_len in
  let signature = Codec.Dec.option dec Codec.Dec.string in
  let t = { version; servers; b; prev_digest; signature } in
  match validate t with
  | Ok () -> t
  | Error msg -> raise (Codec.Error msg)

let to_string t = Codec.encode (fun enc () -> encode enc t) ()
let of_string s = Codec.decode_opt decode s

let pp fmt t =
  Format.fprintf fmt "epoch v%d (n=%d b=%d servers=[%s]%s)" t.version (n t)
    t.b
    (String.concat "," (List.map string_of_int t.servers))
    (if t.signature = None then ", unsigned" else "")
