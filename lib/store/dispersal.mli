(** Fragmentation-scattering storage (the technique the paper cites from
    Fray et al. and Rabin as complementary to replication).

    A value is AEAD-encrypted under a key the servers never see, the
    ciphertext is split with {!Crypto.Ida} into [n] fragments of which
    any [k] reconstruct, and fragment [i] is written (signed, stamped)
    to server [i] only. Compared to full replication this stores
    [n/k ≈ n/(b+1)] of the value instead of [b+1] whole copies, while
    still tolerating [b] faulty servers:

    - availability: reads need any [k = b+1] authentic fragments and
      [n >= 3b+1] leaves at least [n - b >= 2b+1 > k] honest holders;
    - integrity: every fragment carries the writer's signature and the
      AEAD tag covers the reassembled ciphertext;
    - confidentiality: a server sees one encrypted fragment.

    Fragments are ordinary signed writes on items named ["item#i"], so
    gossip, logs and auditing all apply to them unchanged. *)

type t

type error =
  | Not_enough_fragments of { needed : int; got : int }
  | Write_unacked of { needed : int; got : int }
  | Decrypt_failed
  | Not_found

val make :
  n:int ->
  b:int ->
  ?k:int ->
  ?servers:Sim.Runtime.node_id list ->
  ?timeout:float ->
  ?token:string ->
  writer:string ->
  key:Crypto.Rsa.keypair ->
  keyring:Keyring.t ->
  group:string ->
  secret:string ->
  unit ->
  t
(** [k] defaults to [b+1]. [secret] keys the AEAD layer.
    @raise Invalid_argument unless [b+1 <= k <= n-2b] (write liveness
    needs [k+b] ackers among [n] with [b] silent). *)

val write : t -> item:string -> string -> (unit, error) result
(** Disperse a value: one signed fragment per server, acknowledged by at
    least [k+b] servers so that [k] honest fragments certainly exist. *)

val read : t -> item:string -> (string, error) result
(** Gather fragments (stopping at [k] authentic ones of the newest
    version), reconstruct and decrypt. *)

val fragment_item : item:string -> int -> string
(** The item name fragment [i] is stored under (exposed for tests). *)

val error_to_string : error -> string

(** {1 Coded bulk transport}

    Pure helpers shared by the live dispersal write/read path
    ({!Client}) and the server repair loop: stripe-coded fragments plus
    the {!Payload.dispersal_meta} descriptor whose digest Merkle root is
    the metadata write's [value]. No transport, no state. *)

val default_stripe : k:int -> int
(** The default stripe size for [k]: ~64 KiB rounded up to a multiple
    of [k]. *)

val plan :
  k:int -> n:int -> ?stripe:int -> string -> Payload.dispersal_meta * string array
(** Code [value] into [n] fragments of which any [k] reconstruct, and
    the descriptor binding them (per-fragment SHA-256 digests).
    [stripe] (default {!default_stripe}) must be a positive multiple of
    [k]; each stripe of value bytes codes independently, so fragment
    byte ranges map to value byte ranges and both sides can stream.
    @raise Invalid_argument on a bad [k]/[n]/[stripe]. *)

val meta_ok : Payload.dispersal_meta -> bool
(** Structural validity: [1 <= k <= m <= 255], digest count and widths,
    stripe a positive multiple of [k]. Servers check this before
    accepting a dispersed write. *)

val meta_root : Payload.dispersal_meta -> string
(** Merkle root over the fragment digests — the bytes a dispersed
    write's [value] field must equal, so stamp and evidence bind every
    fragment. *)

val frag_length : Payload.dispersal_meta -> int
(** Byte length of every fragment implied by the descriptor. *)

val decode_fragments :
  Payload.dispersal_meta -> (int * string) list -> string option
(** Reconstruct the value from >= [k] distinct full fragments
    [(index, bytes)], stripe by stripe. [None] if fewer than [k]
    well-shaped fragments (callers check digests first; this checks
    shape only). *)

val refragment : Payload.dispersal_meta -> index:int -> string -> string
(** Re-derive fragment [index] from a reconstructed value — the repair
    path for a holder that lost its fragment. *)
