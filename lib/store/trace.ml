type phase = Invoke | Return
type recovery = Stored | Fresh | Rebuilt

type opkind =
  | Connect
  | Disconnect
  | Reconstruct
  | Write of { uid : Uid.t; stamp : Stamp.t; digest : string }
  | Read of { uid : Uid.t }

type outcome =
  | Connected of recovery
  | Ok_unit
  | Ok_value of { stamp : Stamp.t; digest : string; writer : string }
  | Failed of string

type event = {
  seq : int;
  op : int;
  time : float;
  client : string;
  session : int;
  multi_writer : bool;
  causal : bool;
  epoch : int;  (* config epoch the client held at emission; 0 = static *)
  phase : phase;
  kind : opkind;
  outcome : outcome option;
  ctx : (Uid.t * Stamp.t) list;
  trace : string;  (* lowercase-hex distributed trace id; "" = untraced *)
}

let sink : (event -> unit) option ref = ref None
let lock = Mutex.create ()
let seq = ref 0
let ops = ref 0
let sessions = ref 0

let enabled () = !sink <> None

let set_sink s =
  Mutex.lock lock;
  sink := s;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  seq := 0;
  ops := 0;
  sessions := 0;
  Mutex.unlock lock

let next counter =
  Mutex.lock lock;
  incr counter;
  let v = !counter in
  Mutex.unlock lock;
  v

let new_session () = next sessions
let new_op () = next ops

let record ~op ~time ~client ~session ~multi_writer ~causal ?(epoch = 0)
    ?(trace = "") ~phase ?outcome ~kind ~ctx () =
  (* The sink is read and the event delivered under the lock: seq order
     is emission order even when live-transport clients race. *)
  Mutex.lock lock;
  (match !sink with
  | None -> ()
  | Some f ->
    incr seq;
    f
      {
        seq = !seq;
        op;
        time;
        client;
        session;
        multi_writer;
        causal;
        epoch;
        phase;
        kind;
        outcome;
        ctx;
        trace;
      });
  Mutex.unlock lock

let pp_kind fmt = function
  | Connect -> Format.pp_print_string fmt "connect"
  | Disconnect -> Format.pp_print_string fmt "disconnect"
  | Reconstruct -> Format.pp_print_string fmt "reconstruct"
  | Write { uid; stamp; digest } ->
    Format.fprintf fmt "write %a %a #%s" Uid.pp uid Stamp.pp stamp
      (String.sub digest 0 (min 8 (String.length digest)))
  | Read { uid } -> Format.fprintf fmt "read %a" Uid.pp uid

let pp_outcome fmt = function
  | Connected Stored -> Format.pp_print_string fmt "connected(stored-ctx)"
  | Connected Fresh -> Format.pp_print_string fmt "connected(fresh)"
  | Connected Rebuilt -> Format.pp_print_string fmt "connected(rebuilt)"
  | Ok_unit -> Format.pp_print_string fmt "ok"
  | Ok_value { stamp; digest; writer } ->
    Format.fprintf fmt "value %a by %s #%s" Stamp.pp stamp writer
      (String.sub digest 0 (min 8 (String.length digest)))
  | Failed e -> Format.fprintf fmt "failed: %s" e

let pp_event fmt e =
  Format.fprintf fmt "[%d] t=%.3f %s/s%d %s %a%a%a ctx{%a}" e.seq e.time
    e.client e.session
    (match e.phase with Invoke -> "invoke" | Return -> "return")
    pp_kind e.kind
    (fun fmt -> function
      | None -> ()
      | Some o -> Format.fprintf fmt " -> %a" pp_outcome o)
    e.outcome
    (fun fmt t ->
      if t <> "" then Format.fprintf fmt " trace=%s" t)
    e.trace
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (uid, stamp) ->
         Format.fprintf fmt "%a=%a" Uid.pp uid Stamp.pp stamp))
    e.ctx
