open Wire

let digest_len = 32

type batch_evidence = {
  root : string; (* 32-byte Merkle root over the batch's write bodies *)
  size : int; (* leaves under the root *)
  proof : Crypto.Merkle.proof; (* this write's inclusion proof *)
  root_sig : string; (* writer's signature over batch_body root size *)
}

type evidence =
  | Sig of string
  | Batch of batch_evidence
  | Mac of (int * string) list

(* A dispersed write's metadata: the coding parameters and the digest of
   every fragment. The write's [value] field holds the Merkle root over
   [digests], so the stamp and the evidence bind all fragment bytes
   without carrying them. *)
type dispersal_meta = {
  k : int; (* fragments needed to reconstruct *)
  m : int; (* fragments minted (= n at write time) *)
  total_length : int; (* original value length in bytes *)
  stripe : int; (* value bytes coded per stripe; a multiple of k *)
  digests : string list; (* 32-byte SHA-256 per fragment, index order *)
}

type write = {
  uid : Uid.t;
  stamp : Stamp.t;
  wctx : Context.t option;
  value : string;
  writer : string;
  evidence : evidence;
  frags : dispersal_meta option;
}

type ctx_record = { seq : int; ctx : Context.t; signature : string }

let encode_dispersal_meta enc m =
  Codec.Enc.varint enc m.k;
  Codec.Enc.varint enc m.m;
  Codec.Enc.varint enc m.total_length;
  Codec.Enc.varint enc m.stripe;
  Codec.Enc.list enc (fun enc d -> Codec.Enc.fixed enc ~len:digest_len d)
    m.digests

let decode_dispersal_meta dec =
  let k = Codec.Dec.varint dec in
  let m = Codec.Dec.varint dec in
  let total_length = Codec.Dec.varint dec in
  let stripe = Codec.Dec.varint dec in
  let digests = Codec.Dec.list dec (fun dec -> Codec.Dec.fixed dec ~len:digest_len) in
  { k; m; total_length; stripe; digests }

(* Replicated writes keep the original "write" body byte-for-byte (their
   signatures and MACs must survive this codec change); dispersed writes
   get a domain-separated body that covers the coding descriptor, so no
   server or third party can reinterpret one as the other. *)
let write_body w =
  Codec.encode
    (fun enc () ->
      (match w.frags with
      | None -> Codec.Enc.string enc "write"
      | Some m ->
        Codec.Enc.string enc "write-dispersed";
        encode_dispersal_meta enc m);
      Uid.encode enc w.uid;
      Stamp.encode enc w.stamp;
      Codec.Enc.option enc Context.encode w.wctx;
      Codec.Enc.string enc w.value;
      Codec.Enc.string enc w.writer)
    ()

(* The batch signature binds root and size together: verification then
   derives the proof shape from the signed size, so no server can relabel
   a leaf's position without breaking the signature or the hash chain. *)
let batch_body ~root ~size =
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc "write-batch";
      Codec.Enc.varint enc size;
      Codec.Enc.fixed enc ~len:digest_len root)
    ()

(* A MAC binds the destination server id: a tag minted for server i is
   not a valid tag at server j even if the pairwise keys ever collided. *)
let mac_body ~server body =
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc "write-mac";
      Codec.Enc.varint enc server;
      Codec.Enc.string enc body)
    ()

let ctx_body ~client ~group ~seq ctx =
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc "context";
      Codec.Enc.string enc client;
      Codec.Enc.string enc group;
      Codec.Enc.varint enc seq;
      Context.encode enc ctx)
    ()

type request =
  | Ctx_read of { client : string; group : string }
  | Ctx_write of { client : string; group : string; record : ctx_record }
  | Meta_query of { uid : Uid.t }
  | Value_read of { uid : Uid.t; stamp : Stamp.t }
  | Write_req of { write : write; await_ack : bool }
  | Log_query of { uid : Uid.t }
  | Read_inline of { uid : Uid.t }
  | Group_query of { group : string }
  | Gossip_push of {
      writes : write list;
      have : (Uid.t * Stamp.t) list;
      epoch : Config_epoch.t option;
          (* the pusher's config epoch, so anti-entropy also converges
             membership: a server that missed an epoch announcement
             (crashed, partitioned) catches up from any gossip peer *)
    }
  | Evidence_upgrade of {
      uid : Uid.t;
      stamp : Stamp.t;
      writer : string;
      evidence : evidence;
    }
  | Epoch_get  (* what epoch is this server on? (discovery) *)
  | Epoch_announce of Config_epoch.t  (* admin: install this epoch *)
  | Frag_put of {
      uid : Uid.t;
      stamp : Stamp.t;
      writer : string;
      index : int;  (* fragment index in [1, m] *)
      seq : int;  (* chunk number, 0-based, strictly sequential *)
      last : bool;  (* final chunk: the server seals and stores *)
      data : string;
    }
      (* one chunk of a fragment stream — large fragments arrive as
         several sequential Frag_puts so no single frame nears
         Frame.max_frame *)
  | Frag_get of { uid : Uid.t; stamp : Stamp.t; index : int; off : int; len : int }
      (* one chunk of a stored fragment: bytes [off, off+len) *)

type envelope = {
  token : string option;
  epoch : int;  (* sender's config-epoch version; 0 = static/legacy *)
  request : request;
}

type frag_chunk = { total : int; data : string }

type response =
  | Ctx_reply of ctx_record option
  | Meta_reply of { stamp : Stamp.t option; writer_faulty : bool }
  | Value_reply of write option
  | Ack
  | Log_reply of { writes : write list; writer_faulty : bool }
  | Group_reply of write list
  | Denied of string
  | Epoch_reply of Config_epoch.t option
  | Stale_epoch of Config_epoch.t
      (* "your epoch is superseded" — carries the server's newer config
         so one round-trip both rejects and repairs the client *)
  | Frag_reply of frag_chunk option
      (* [Some] carries the requested byte range plus the fragment's
         full length; [None] means the server holds no such fragment *)

let encode_proof enc (p : Crypto.Merkle.proof) =
  Codec.Enc.varint enc p.index;
  Codec.Enc.list enc
    (fun enc (h, side) ->
      Codec.Enc.fixed enc ~len:digest_len h;
      Codec.Enc.bool enc (side = `Right))
    p.path

let decode_proof dec : Crypto.Merkle.proof =
  let index = Codec.Dec.varint dec in
  let path =
    Codec.Dec.list dec (fun dec ->
        let h = Codec.Dec.fixed dec ~len:digest_len in
        let right = Codec.Dec.bool dec in
        (h, if right then `Right else `Left))
  in
  { index; path }

let encode_evidence enc = function
  | Sig s ->
    Codec.Enc.u8 enc 0;
    Codec.Enc.string enc s
  | Batch { root; size; proof; root_sig } ->
    Codec.Enc.u8 enc 1;
    Codec.Enc.fixed enc ~len:digest_len root;
    Codec.Enc.varint enc size;
    encode_proof enc proof;
    Codec.Enc.string enc root_sig
  | Mac tags ->
    Codec.Enc.u8 enc 2;
    Codec.Enc.list enc
      (fun enc (sid, tag) ->
        Codec.Enc.varint enc sid;
        Codec.Enc.fixed enc ~len:digest_len tag)
      tags

let decode_evidence dec =
  match Codec.Dec.u8 dec with
  | 0 -> Sig (Codec.Dec.string dec)
  | 1 ->
    let root = Codec.Dec.fixed dec ~len:digest_len in
    let size = Codec.Dec.varint dec in
    let proof = decode_proof dec in
    let root_sig = Codec.Dec.string dec in
    Batch { root; size; proof; root_sig }
  | 2 ->
    Mac
      (Codec.Dec.list dec (fun dec ->
           let sid = Codec.Dec.varint dec in
           let tag = Codec.Dec.fixed dec ~len:digest_len in
           (sid, tag)))
  | _ -> raise (Codec.Error "bad evidence tag")

let encode_write enc w =
  Uid.encode enc w.uid;
  Stamp.encode enc w.stamp;
  Codec.Enc.option enc Context.encode w.wctx;
  Codec.Enc.string enc w.value;
  Codec.Enc.string enc w.writer;
  encode_evidence enc w.evidence;
  Codec.Enc.option enc encode_dispersal_meta w.frags

let decode_write dec =
  let uid = Uid.decode dec in
  let stamp = Stamp.decode dec in
  let wctx = Codec.Dec.option dec Context.decode in
  let value = Codec.Dec.string dec in
  let writer = Codec.Dec.string dec in
  let evidence = decode_evidence dec in
  let frags = Codec.Dec.option dec decode_dispersal_meta in
  { uid; stamp; wctx; value; writer; evidence; frags }

(* Pre-dispersal wire image (snapshot versions <= 3): no [frags] field. *)
let decode_write_v3 dec =
  let uid = Uid.decode dec in
  let stamp = Stamp.decode dec in
  let wctx = Codec.Dec.option dec Context.decode in
  let value = Codec.Dec.string dec in
  let writer = Codec.Dec.string dec in
  let evidence = decode_evidence dec in
  { uid; stamp; wctx; value; writer; evidence; frags = None }

let encode_ctx_record enc r =
  Codec.Enc.varint enc r.seq;
  Context.encode enc r.ctx;
  Codec.Enc.string enc r.signature

let decode_ctx_record dec =
  let seq = Codec.Dec.varint dec in
  let ctx = Context.decode dec in
  let signature = Codec.Dec.string dec in
  { seq; ctx; signature }

let encode_request enc = function
  | Ctx_read { client; group } ->
    Codec.Enc.u8 enc 0;
    Codec.Enc.string enc client;
    Codec.Enc.string enc group
  | Ctx_write { client; group; record } ->
    Codec.Enc.u8 enc 1;
    Codec.Enc.string enc client;
    Codec.Enc.string enc group;
    encode_ctx_record enc record
  | Meta_query { uid } ->
    Codec.Enc.u8 enc 2;
    Uid.encode enc uid
  | Value_read { uid; stamp } ->
    Codec.Enc.u8 enc 3;
    Uid.encode enc uid;
    Stamp.encode enc stamp
  | Write_req { write; await_ack } ->
    Codec.Enc.u8 enc 4;
    encode_write enc write;
    Codec.Enc.bool enc await_ack
  | Log_query { uid } ->
    Codec.Enc.u8 enc 5;
    Uid.encode enc uid
  | Group_query { group } ->
    Codec.Enc.u8 enc 6;
    Codec.Enc.string enc group
  | Gossip_push { writes; have; epoch } ->
    Codec.Enc.u8 enc 7;
    Codec.Enc.list enc encode_write writes;
    Codec.Enc.list enc
      (fun enc (uid, stamp) ->
        Uid.encode enc uid;
        Stamp.encode enc stamp)
      have;
    Codec.Enc.option enc Config_epoch.encode epoch
  | Read_inline { uid } ->
    Codec.Enc.u8 enc 8;
    Uid.encode enc uid
  | Evidence_upgrade { uid; stamp; writer; evidence } ->
    Codec.Enc.u8 enc 9;
    Uid.encode enc uid;
    Stamp.encode enc stamp;
    Codec.Enc.string enc writer;
    encode_evidence enc evidence
  | Epoch_get -> Codec.Enc.u8 enc 10
  | Epoch_announce e ->
    Codec.Enc.u8 enc 11;
    Config_epoch.encode enc e
  | Frag_put { uid; stamp; writer; index; seq; last; data } ->
    Codec.Enc.u8 enc 12;
    Uid.encode enc uid;
    Stamp.encode enc stamp;
    Codec.Enc.string enc writer;
    Codec.Enc.varint enc index;
    Codec.Enc.varint enc seq;
    Codec.Enc.bool enc last;
    Codec.Enc.string enc data
  | Frag_get { uid; stamp; index; off; len } ->
    Codec.Enc.u8 enc 13;
    Uid.encode enc uid;
    Stamp.encode enc stamp;
    Codec.Enc.varint enc index;
    Codec.Enc.varint enc off;
    Codec.Enc.varint enc len

let decode_request dec =
  match Codec.Dec.u8 dec with
  | 0 ->
    let client = Codec.Dec.string dec in
    let group = Codec.Dec.string dec in
    Ctx_read { client; group }
  | 1 ->
    let client = Codec.Dec.string dec in
    let group = Codec.Dec.string dec in
    let record = decode_ctx_record dec in
    Ctx_write { client; group; record }
  | 2 -> Meta_query { uid = Uid.decode dec }
  | 3 ->
    let uid = Uid.decode dec in
    let stamp = Stamp.decode dec in
    Value_read { uid; stamp }
  | 4 ->
    let write = decode_write dec in
    let await_ack = Codec.Dec.bool dec in
    Write_req { write; await_ack }
  | 5 -> Log_query { uid = Uid.decode dec }
  | 6 -> Group_query { group = Codec.Dec.string dec }
  | 7 ->
    let writes = Codec.Dec.list dec decode_write in
    let have =
      Codec.Dec.list dec (fun dec ->
          let uid = Uid.decode dec in
          let stamp = Stamp.decode dec in
          (uid, stamp))
    in
    let epoch = Codec.Dec.option dec Config_epoch.decode in
    Gossip_push { writes; have; epoch }
  | 8 -> Read_inline { uid = Uid.decode dec }
  | 9 ->
    let uid = Uid.decode dec in
    let stamp = Stamp.decode dec in
    let writer = Codec.Dec.string dec in
    let evidence = decode_evidence dec in
    Evidence_upgrade { uid; stamp; writer; evidence }
  | 10 -> Epoch_get
  | 11 -> Epoch_announce (Config_epoch.decode dec)
  | 12 ->
    let uid = Uid.decode dec in
    let stamp = Stamp.decode dec in
    let writer = Codec.Dec.string dec in
    let index = Codec.Dec.varint dec in
    let seq = Codec.Dec.varint dec in
    let last = Codec.Dec.bool dec in
    let data = Codec.Dec.string dec in
    Frag_put { uid; stamp; writer; index; seq; last; data }
  | 13 ->
    let uid = Uid.decode dec in
    let stamp = Stamp.decode dec in
    let index = Codec.Dec.varint dec in
    let off = Codec.Dec.varint dec in
    let len = Codec.Dec.varint dec in
    Frag_get { uid; stamp; index; off; len }
  | _ -> raise (Codec.Error "bad request tag")

let encode_envelope env =
  Codec.encode
    (fun enc () ->
      Codec.Enc.option enc Codec.Enc.string env.token;
      Codec.Enc.varint enc env.epoch;
      encode_request enc env.request)
    ()

let decode_envelope s =
  Codec.decode_opt
    (fun dec ->
      let token = Codec.Dec.option dec Codec.Dec.string in
      let epoch = Codec.Dec.varint dec in
      let request = decode_request dec in
      { token; epoch; request })
    s

let encode_response r =
  Codec.encode
    (fun enc () ->
      match r with
      | Ctx_reply record ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.option enc encode_ctx_record record
      | Meta_reply { stamp; writer_faulty } ->
        Codec.Enc.u8 enc 1;
        Codec.Enc.option enc Stamp.encode stamp;
        Codec.Enc.bool enc writer_faulty
      | Value_reply w ->
        Codec.Enc.u8 enc 2;
        Codec.Enc.option enc encode_write w
      | Ack -> Codec.Enc.u8 enc 3
      | Log_reply { writes; writer_faulty } ->
        Codec.Enc.u8 enc 4;
        Codec.Enc.list enc encode_write writes;
        Codec.Enc.bool enc writer_faulty
      | Group_reply writes ->
        Codec.Enc.u8 enc 5;
        Codec.Enc.list enc encode_write writes
      | Denied reason ->
        Codec.Enc.u8 enc 6;
        Codec.Enc.string enc reason
      | Epoch_reply e ->
        Codec.Enc.u8 enc 7;
        Codec.Enc.option enc Config_epoch.encode e
      | Stale_epoch e ->
        Codec.Enc.u8 enc 8;
        Config_epoch.encode enc e
      | Frag_reply chunk ->
        Codec.Enc.u8 enc 9;
        Codec.Enc.option enc
          (fun enc (total, data) ->
            Codec.Enc.varint enc total;
            Codec.Enc.string enc data)
          (match chunk with
          | None -> None
          | Some { total; data } -> Some (total, data)))
    ()

let decode_response s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 -> Ctx_reply (Codec.Dec.option dec decode_ctx_record)
      | 1 ->
        let stamp = Codec.Dec.option dec Stamp.decode in
        let writer_faulty = Codec.Dec.bool dec in
        Meta_reply { stamp; writer_faulty }
      | 2 -> Value_reply (Codec.Dec.option dec decode_write)
      | 3 -> Ack
      | 4 ->
        let writes = Codec.Dec.list dec decode_write in
        let writer_faulty = Codec.Dec.bool dec in
        Log_reply { writes; writer_faulty }
      | 5 -> Group_reply (Codec.Dec.list dec decode_write)
      | 6 -> Denied (Codec.Dec.string dec)
      | 7 -> Epoch_reply (Codec.Dec.option dec Config_epoch.decode)
      | 8 -> Stale_epoch (Config_epoch.decode dec)
      | 9 ->
        Frag_reply
          (Codec.Dec.option dec (fun dec ->
               let total = Codec.Dec.varint dec in
               let data = Codec.Dec.string dec in
               { total; data }))
      | _ -> raise (Codec.Error "bad response tag"))
    s

let pp_response fmt = function
  | Ctx_reply None -> Format.pp_print_string fmt "Ctx_reply None"
  | Ctx_reply (Some r) -> Format.fprintf fmt "Ctx_reply (seq=%d %a)" r.seq Context.pp r.ctx
  | Meta_reply { stamp = None; _ } -> Format.pp_print_string fmt "Meta_reply None"
  | Meta_reply { stamp = Some s; writer_faulty } ->
    Format.fprintf fmt "Meta_reply %a%s" Stamp.pp s
      (if writer_faulty then " (writer faulty)" else "")
  | Value_reply None -> Format.pp_print_string fmt "Value_reply None"
  | Value_reply (Some w) -> Format.fprintf fmt "Value_reply %a %a" Uid.pp w.uid Stamp.pp w.stamp
  | Ack -> Format.pp_print_string fmt "Ack"
  | Log_reply { writes; _ } -> Format.fprintf fmt "Log_reply (%d writes)" (List.length writes)
  | Group_reply writes -> Format.fprintf fmt "Group_reply (%d writes)" (List.length writes)
  | Denied reason -> Format.fprintf fmt "Denied %s" reason
  | Epoch_reply None -> Format.pp_print_string fmt "Epoch_reply None"
  | Epoch_reply (Some e) -> Format.fprintf fmt "Epoch_reply %a" Config_epoch.pp e
  | Stale_epoch e -> Format.fprintf fmt "Stale_epoch %a" Config_epoch.pp e
  | Frag_reply None -> Format.pp_print_string fmt "Frag_reply None"
  | Frag_reply (Some { total; data }) ->
    Format.fprintf fmt "Frag_reply (%d of %d bytes)" (String.length data) total
