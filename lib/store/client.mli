(** Client sessions: where consistency is enforced.

    The paper's central design decision is that servers are passive and
    *clients* maintain consistency, using the context they carry between
    sessions. This module implements:

    - context acquisition and storage with ⌈(n+b+1)/2⌉ quorums (Fig. 1);
    - context reconstruction from all servers after a crashed session;
    - single-writer reads and writes under MRC or CC (Fig. 2), with
      server-set expansion and retry when the wanted version has not yet
      disseminated;
    - the multi-writer protocol of section 5.3: 3-tuple timestamps,
      2b+1 read quorums with b+1 vouching, fork reporting.

    All network interaction goes through {!Sim.Runtime} effects, so the
    same session code runs under the simulator, the synchronous test
    harness, or a real transport. *)

type consistency = MRC | CC
type mode = Single_writer | Multi_writer

type signing_mode =
  | Per_write_sig  (** one RSA signature per write — the paper's baseline *)
  | Merkle_batch of int
      (** one signature per batch of up to k writes: {!write_batch} signs
          the Merkle root of the chunk's write bodies, each write carries
          root + inclusion proof ({!Payload.Batch}); single {!write}s
          degenerate to batches of one *)
  | Mac_fast
      (** no signature on the write path at all: a per-server HMAC vector
          ({!Payload.Mac}) gets the write accepted into servers' held
          slots, and a background escalation ({!Payload.Evidence_upgrade},
          triggered every [escalate_every] writes, before reads, and at
          disconnect) swaps in Merkle-batch evidence so the write can be
          announced and gossiped. Falls back to a signature when pairwise
          keys are missing. *)

type config = {
  n : int;
  b : int;
  servers : Sim.Runtime.node_id list;  (** length n *)
  consistency : consistency;
  mode : mode;
  timeout : float;
  paper_cost_model : bool;
      (** fire-and-forget data writes, exactly the b+1 (or 2b+1) one-way
          messages of section 6; otherwise writes wait for acks and expand
          on failure *)
  read_spread : bool;
      (** poll a random read set instead of a fixed one (exercises
          dissemination; used by experiment E7) *)
  read_retries : int;  (** try-later rounds before reporting staleness *)
  retry_delay : float;  (** first try-later delay *)
  retry_backoff_max : float;
      (** cap for the try-later delay, which doubles per round with full
          jitter in [d/2, d]; the default equals [retry_delay], i.e. a
          fixed delay and no jitter (and no rng draws), preserving
          deterministic simulator runs. Raise it on live transports so
          retries back off instead of hammering a struggling cluster. *)
  write_retries : int;
      (** full write rounds (fanout + escalation) to retry when acks fall
          short; the same signed write is re-sent, which servers apply
          idempotently. Default 0: a write fails as soon as one round
          (including escalation) does, as before. *)
  op_deadline : float;
      (** absolute budget in seconds for one read or write operation:
          no retry sleep may overrun it (the operation fails instead of
          sleeping past the deadline). Default [infinity]. *)
  verify_vouched : bool;
      (** also signature-check multi-writer reads (defense in depth; off
          per the paper's cost accounting) *)
  inline_read : bool;
      (** one-round reads: ask b+1 servers for their whole current write
          instead of meta-then-fetch; section 6's "read cost can equal
          write cost" best case, at the price of shipping the value from
          every polled server. Falls back to the two-round protocol when
          no polled copy is fresh enough. *)
  timestamp_jitter : int;
      (** advance scalar timestamps by a random amount in [1, jitter] so
          servers cannot count a confidential item's updates
          (section 5.2); 1 = no jitter *)
  evidence : Fault_evidence.t option;
      (** dynamic quorums: accumulate proofs of server misbehaviour,
          exclude proven-faulty servers, and shrink read sets and
          context quorums to the effective fault bound (the Alvisi et
          al. technique the paper cites). Share one evidence store
          across a client's sessions to keep what it has learned. *)
  token : string option;
  seed : int;  (** client-local randomness (read-set spreading) *)
  canary_skip_freshness : bool;
      (** DELIBERATELY BROKEN client variant for the consistency oracle's
          canary: reads ignore the context-freshness floor, so a stale
          server can serve values older than what this client already
          observed. [Check.Oracle] must flag the resulting history — the
          proof the oracle harness cannot pass vacuously. Never enable
          outside oracle tests. *)
  signing : signing_mode;
  escalate_every : int;
      (** Mac_fast: pending fast-path writes that force an escalation
          flush (reads and disconnect flush regardless). Default 8. *)
  epoch_admin : Crypto.Rsa.public option;
      (** Dynamic membership: the cluster administrator's public key.
          When set, {!connect} discovers the live config epoch from the
          configured servers, the session re-derives n/b/servers/quorums
          from the adopted epoch (the static fields above become the
          bootstrap membership only), and any {!Payload.Stale_epoch}
          reply mid-session verifies and adopts the newer config without
          failing the in-flight operation. [None] (default) = static
          deployment; epochs are ignored. *)
  dispersal_threshold : int;
      (** Values at least this many bytes are written dispersed: coded
          fragments scattered k-of-n over the servers, with only the
          descriptor's digest root going through the full n-replica
          metadata protocol. 0 or negative disables dispersal entirely.
          Default 64 KiB. *)
  dispersal_k : int option;
      (** Reconstruction threshold for dispersed values. [None] (default)
          = [b + 1], the smallest k that still tolerates [b] Byzantine
          holders; write liveness needs [k + b <= n]. *)
  dispersal_chunk : int;
      (** Fragment bytes per {!Payload.Frag_put}/{!Payload.Frag_get}
          round — the streaming granularity: at most one chunk per
          connection is in memory or in flight at a time, so a 64 MB
          value never materializes wholesale on the wire path. Default
          1 MiB. *)
}

val default_config : n:int -> b:int -> config
(** Single writer, MRC, reliable writes, servers [0..n-1], per-write
    signatures.
    @raise Invalid_argument when n < 3b+1. *)

type error =
  | No_quorum of { wanted : int; got : int }
  | Not_found of Uid.t  (** no server reports the item at all *)
  | Stale of { uid : Uid.t; wanted : Stamp.t }
      (** no server could prove a value at least as fresh as the context *)
  | Writer_faulty of Uid.t
  | Write_rejected
  | Disconnected
  | Not_enough_fragments of { uid : Uid.t; needed : int; got : int }
      (** a dispersed item's metadata was read fine, but fewer than [k]
          digest-authentic fragments could be gathered (more than [b]
          holders lost, corrupt, or silent) *)

type t

type opstats = {
  mutable messages : int;  (** protocol messages, this client only *)
  mutable reads : int;
  mutable writes : int;
  mutable read_rounds : int;  (** server-set polls across all reads *)
  mutable read_failures : int;  (** stale / not-found / faulty outcomes *)
}

val stats : t -> opstats
(** Live per-session counters (useful when several clients share the
    global {!Metrics}). *)

val uid : t -> string
val group : t -> string
val context : t -> Context.t
val config : t -> config

val epoch : t -> Config_epoch.t option
(** The config epoch this session currently operates under ([None] in a
    static deployment): adopted at {!connect} via discovery and updated
    whenever a server's {!Payload.Stale_epoch} proves a newer one. *)

val connect :
  ?recover:[ `Fresh | `Reconstruct ] ->
  config:config ->
  uid:string ->
  key:Crypto.Rsa.keypair ->
  keyring:Keyring.t ->
  group:string ->
  unit ->
  (t, error) result
(** Acquire the stored context (Fig. 1). When no validly signed context
    is found: [`Fresh] (default) starts empty, [`Reconstruct] rebuilds it
    from all servers' signed writes (section 5.1's recovery path). *)

val disconnect : t -> (unit, error) result
(** Store the updated context with a ⌈(n+b+1)/2⌉ quorum and end the
    session. Further operations return {!Disconnected}. *)

val write : t -> item:string -> string -> (unit, error) result
(** Write a value to [group/item] under the session's consistency level.
    Values of at least [dispersal_threshold] bytes take the dispersed
    path (when the membership supports it): fragments are scattered
    first, then the metadata write commits through the unchanged quorum
    protocol — fragments without committed metadata stay invisible, so
    the two phases are atomic under a crash at any point. *)

val write_batch :
  t -> (string * string) list -> (unit, error) result list
(** Write several [(item, value)] pairs, amortizing signatures under
    [Merkle_batch k] (one RSA sign per chunk of k); results come back in
    argument order. Writes disseminate sequentially, so each CC write's
    context covers its in-batch predecessors. Under the other signing
    modes this is {!write} in a loop. *)

val flush : t -> (unit, error) result
(** Escalate any pending Mac_fast writes to signed (batch) evidence now.
    Reads, {!reconstruct} and {!disconnect} do this implicitly. *)

val read : t -> item:string -> (string, error) result
(** The caller-visible value: for a dispersed item this gathers [k]
    digest-authentic fragments and decodes them (so a successful read
    proves integrity end to end); replicated items return the stored
    bytes as before. *)

val read_write : t -> item:string -> (Payload.write, error) result
(** Like {!read} but returns the whole signed write (stamp, writer,
    context). For a dispersed item this is the *metadata* write — its
    [value] is the descriptor's digest root, not the data; the
    fragments are still gathered and verified (the result is [Error
    Not_enough_fragments] if the value is unrecoverable). *)

val reconstruct : t -> (unit, error) result
(** Force context reconstruction from all servers (the expensive path for
    sessions that ended without a context write-back). *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
