type snapshot = {
  messages : int;
  bytes : int;
  signs : int;
  verifies : int;
  digests : int;
  server_verifies : int;
  macs : int;
  sigcache_hits : int;
  sigcache_misses : int;
  tcp_connects : int;
  tcp_reuses : int;
  tcp_reconnects : int;
  rpcs : int;
  retries : int;
  escalations : int;
}

let messages = ref 0
let bytes = ref 0
let signs = ref 0
let verifies = ref 0
let digests = ref 0
let server_verifies = ref 0
let macs = ref 0
let sigcache_hits = ref 0
let sigcache_misses = ref 0
let tcp_connects = ref 0
let tcp_reuses = ref 0
let tcp_reconnects = ref 0
let rpcs = ref 0
let retries = ref 0
let escalations = ref 0

(* Transport gauges live outside the snapshot: the in-flight high-water
   mark and a bounded reservoir of recent RPC round durations (the last
   [rpc_reservoir_size] samples; percentiles are over that window). *)
let inflight_hwm = ref 0
let rpc_reservoir_size = 4096
let rpc_samples = Array.make rpc_reservoir_size 0.0
let rpc_sample_count = ref 0
let rpc_lock = Mutex.create ()

(* --- per-endpoint transport health (a registry of gauges, like the
   in-flight high-water mark: outside the snapshot) ------------------- *)

type endpoint_health = {
  endpoint : string;  (** "host:port" *)
  connections : int;  (** live pooled connections *)
  consecutive_failures : int;
  last_error : string option;
  down_until : float;  (** absolute time the endpoint is avoided until; 0 = healthy *)
}

let health_tbl : (string, endpoint_health) Hashtbl.t = Hashtbl.create 8
let health_lock = Mutex.create ()

let note_endpoint_health h =
  Mutex.lock health_lock;
  Hashtbl.replace health_tbl h.endpoint h;
  Mutex.unlock health_lock

let endpoint_health () =
  Mutex.lock health_lock;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) health_tbl [] in
  Mutex.unlock health_lock;
  List.sort (fun a b -> compare a.endpoint b.endpoint) all

let pp_endpoint_health ~now fmt h =
  Format.fprintf fmt "%s: %d conn, %d consecutive failures%s%s" h.endpoint
    h.connections h.consecutive_failures
    (if h.down_until > now then
       Format.asprintf ", down for %.2fs" (h.down_until -. now)
     else "")
    (match h.last_error with Some e -> ", last error: " ^ e | None -> "")

let reset () =
  messages := 0;
  bytes := 0;
  signs := 0;
  verifies := 0;
  digests := 0;
  server_verifies := 0;
  macs := 0;
  sigcache_hits := 0;
  sigcache_misses := 0;
  tcp_connects := 0;
  tcp_reuses := 0;
  tcp_reconnects := 0;
  rpcs := 0;
  retries := 0;
  escalations := 0;
  Mutex.lock health_lock;
  Hashtbl.reset health_tbl;
  Mutex.unlock health_lock;
  Mutex.lock rpc_lock;
  inflight_hwm := 0;
  rpc_sample_count := 0;
  Mutex.unlock rpc_lock

let read () =
  {
    messages = !messages;
    bytes = !bytes;
    signs = !signs;
    verifies = !verifies;
    digests = !digests;
    server_verifies = !server_verifies;
    macs = !macs;
    sigcache_hits = !sigcache_hits;
    sigcache_misses = !sigcache_misses;
    tcp_connects = !tcp_connects;
    tcp_reuses = !tcp_reuses;
    tcp_reconnects = !tcp_reconnects;
    rpcs = !rpcs;
    retries = !retries;
    escalations = !escalations;
  }

let diff late early =
  {
    messages = late.messages - early.messages;
    bytes = late.bytes - early.bytes;
    signs = late.signs - early.signs;
    verifies = late.verifies - early.verifies;
    digests = late.digests - early.digests;
    server_verifies = late.server_verifies - early.server_verifies;
    macs = late.macs - early.macs;
    sigcache_hits = late.sigcache_hits - early.sigcache_hits;
    sigcache_misses = late.sigcache_misses - early.sigcache_misses;
    tcp_connects = late.tcp_connects - early.tcp_connects;
    tcp_reuses = late.tcp_reuses - early.tcp_reuses;
    tcp_reconnects = late.tcp_reconnects - early.tcp_reconnects;
    rpcs = late.rpcs - early.rpcs;
    retries = late.retries - early.retries;
    escalations = late.escalations - early.escalations;
  }

let add_messages n = messages := !messages + n
let add_bytes n = bytes := !bytes + n
let incr_sign () = incr signs
let incr_verify () = incr verifies
let incr_digest () = incr digests
let incr_server_verify () = incr server_verifies
let incr_mac () = incr macs
let incr_sigcache_hit () = incr sigcache_hits
let incr_sigcache_miss () = incr sigcache_misses
let incr_tcp_connect () = incr tcp_connects
let incr_tcp_reuse () = incr tcp_reuses
let incr_tcp_reconnect () = incr tcp_reconnects
let incr_rpc () = incr rpcs
let incr_retry () = incr retries
let incr_escalation () = incr escalations

let note_inflight n = if n > !inflight_hwm then inflight_hwm := n
let inflight_high_water () = !inflight_hwm

let record_rpc_ns ns =
  Mutex.lock rpc_lock;
  rpc_samples.(!rpc_sample_count mod rpc_reservoir_size) <- ns;
  incr rpc_sample_count;
  Mutex.unlock rpc_lock

type rpc_stats = {
  rpc_count : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

let rpc_latency_stats () =
  Mutex.lock rpc_lock;
  let n = min !rpc_sample_count rpc_reservoir_size in
  let samples = Array.sub rpc_samples 0 n in
  let count = !rpc_sample_count in
  Mutex.unlock rpc_lock;
  if n = 0 then
    { rpc_count = 0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
  else begin
    Array.sort compare samples;
    (* Nearest-rank percentile over the retained window. *)
    let pct p =
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      samples.(max 0 (min (n - 1) (rank - 1)))
    in
    {
      rpc_count = count;
      p50_ns = pct 50.0;
      p95_ns = pct 95.0;
      p99_ns = pct 99.0;
      max_ns = samples.(n - 1);
    }
  end

(* Paper-model verification counts stay in [verifies]/[server_verifies];
   the RSA exponentiations actually performed are the cache misses. *)
let rsa_verifies s = s.sigcache_misses

let pp fmt s =
  Format.fprintf fmt
    "msgs=%d signs=%d verifies=%d (server %d) digests=%d macs=%d \
     sigcache=%d/%d hit/miss tcp=%d+%d/%d conn/reconn/reuse rpcs=%d \
     retries=%d escalations=%d"
    s.messages s.signs s.verifies s.server_verifies s.digests s.macs
    s.sigcache_hits s.sigcache_misses s.tcp_connects s.tcp_reconnects
    s.tcp_reuses s.rpcs s.retries s.escalations
