type snapshot = {
  messages : int;
  bytes : int;
  signs : int;
  verifies : int;
  digests : int;
  server_verifies : int;
  macs : int;
  sigcache_hits : int;
  sigcache_misses : int;
}

let messages = ref 0
let bytes = ref 0
let signs = ref 0
let verifies = ref 0
let digests = ref 0
let server_verifies = ref 0
let macs = ref 0
let sigcache_hits = ref 0
let sigcache_misses = ref 0

let reset () =
  messages := 0;
  bytes := 0;
  signs := 0;
  verifies := 0;
  digests := 0;
  server_verifies := 0;
  macs := 0;
  sigcache_hits := 0;
  sigcache_misses := 0

let read () =
  {
    messages = !messages;
    bytes = !bytes;
    signs = !signs;
    verifies = !verifies;
    digests = !digests;
    server_verifies = !server_verifies;
    macs = !macs;
    sigcache_hits = !sigcache_hits;
    sigcache_misses = !sigcache_misses;
  }

let diff late early =
  {
    messages = late.messages - early.messages;
    bytes = late.bytes - early.bytes;
    signs = late.signs - early.signs;
    verifies = late.verifies - early.verifies;
    digests = late.digests - early.digests;
    server_verifies = late.server_verifies - early.server_verifies;
    macs = late.macs - early.macs;
    sigcache_hits = late.sigcache_hits - early.sigcache_hits;
    sigcache_misses = late.sigcache_misses - early.sigcache_misses;
  }

let add_messages n = messages := !messages + n
let add_bytes n = bytes := !bytes + n
let incr_sign () = incr signs
let incr_verify () = incr verifies
let incr_digest () = incr digests
let incr_server_verify () = incr server_verifies
let incr_mac () = incr macs
let incr_sigcache_hit () = incr sigcache_hits
let incr_sigcache_miss () = incr sigcache_misses

(* Paper-model verification counts stay in [verifies]/[server_verifies];
   the RSA exponentiations actually performed are the cache misses. *)
let rsa_verifies s = s.sigcache_misses

let pp fmt s =
  Format.fprintf fmt
    "msgs=%d signs=%d verifies=%d (server %d) digests=%d macs=%d \
     sigcache=%d/%d hit/miss"
    s.messages s.signs s.verifies s.server_verifies s.digests s.macs
    s.sigcache_hits s.sigcache_misses
