type snapshot = {
  messages : int;
  bytes : int;
  signs : int;
  verifies : int;
  digests : int;
  server_verifies : int;
  macs : int;
  sigcache_hits : int;
  sigcache_misses : int;
  tcp_connects : int;
  tcp_reuses : int;
  tcp_reconnects : int;
  rpcs : int;
  retries : int;
  escalations : int;
}

let messages = ref 0
let bytes = ref 0
let signs = ref 0
let verifies = ref 0
let digests = ref 0
let server_verifies = ref 0
let macs = ref 0
let sigcache_hits = ref 0
let sigcache_misses = ref 0
let tcp_connects = ref 0
let tcp_reuses = ref 0
let tcp_reconnects = ref 0
let rpcs = ref 0
let retries = ref 0
let escalations = ref 0

(* Transport gauges live outside the snapshot: the in-flight high-water
   mark, a log-scale histogram of RPC round durations (fixed counters,
   mergeable — this replaced the old 4096-sample reservoir), and a
   registry of per-endpoint RPC-latency histograms filled by the pool
   when tracing is enabled. *)
let inflight_hwm = ref 0
let rpc_histo = Obs.Histo.create ()
let ep_histos : (string, Obs.Histo.t) Hashtbl.t = Hashtbl.create 8
let ep_histos_lock = Mutex.create ()

let endpoint_rpc_histo endpoint =
  Mutex.lock ep_histos_lock;
  let h =
    match Hashtbl.find_opt ep_histos endpoint with
    | Some h -> h
    | None ->
      let h = Obs.Histo.create () in
      Hashtbl.add ep_histos endpoint h;
      h
  in
  Mutex.unlock ep_histos_lock;
  h

(* Reconfiguration state, outside the snapshot for the same reason as
   the transport gauges: the current epoch version and the transition /
   rejection / bootstrap-transfer tallies are operator-facing and must
   survive the per-experiment [reset]. *)
let cur_epoch_version = ref 0
let epoch_transitions_c = ref 0
let epoch_rejections_c = ref 0
let bootstrap_bytes_c = ref 0
let set_epoch_version v = if v > !cur_epoch_version then cur_epoch_version := v
let incr_epoch_transition () = incr epoch_transitions_c
let incr_epoch_rejection () = incr epoch_rejections_c
let add_bootstrap_bytes n = bootstrap_bytes_c := !bootstrap_bytes_c + n
let epoch_version () = !cur_epoch_version
let epoch_transitions () = !epoch_transitions_c
let epoch_rejections () = !epoch_rejections_c
let bootstrap_bytes () = !bootstrap_bytes_c

(* Dispersal counters live beside the epoch tallies, outside the
   snapshot: fragment traffic and repairs are operator-facing totals a
   per-experiment [reset] must not blank (the repair test watches
   /metrics across resets). *)
let frag_puts_c = ref 0
let frag_gets_c = ref 0
let frag_repairs_c = ref 0
let dispersed_writes_c = ref 0
let dispersed_reads_c = ref 0
let incr_frag_put () = incr frag_puts_c
let incr_frag_get () = incr frag_gets_c
let incr_frag_repair () = incr frag_repairs_c
let incr_dispersed_write () = incr dispersed_writes_c
let incr_dispersed_read () = incr dispersed_reads_c
let frag_puts () = !frag_puts_c
let frag_gets () = !frag_gets_c
let frag_repairs () = !frag_repairs_c
let dispersed_writes () = !dispersed_writes_c
let dispersed_reads () = !dispersed_reads_c

let endpoint_rpc_histos () =
  Mutex.lock ep_histos_lock;
  let all = Hashtbl.fold (fun ep h acc -> (ep, h) :: acc) ep_histos [] in
  Mutex.unlock ep_histos_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

(* --- per-shard registries ------------------------------------------- *)

(* Two views of a shard: what the servers hosting it saw (requests
   dispatched into that shard's state) and what a router's client ops
   against it looked like. Both are keyed by shard id so a hot or sick
   shard stands out on /metrics and in the stats line. *)

type shard_client = {
  mutable shard_reads : int;
  mutable shard_writes : int;
  mutable shard_failures : int;
  shard_op_latency : Obs.Histo.t;
}

type shard_server = {
  mutable shard_requests : int;
  shard_request_latency : Obs.Histo.t;
}

let shard_client_tbl : (int, shard_client) Hashtbl.t = Hashtbl.create 8
let shard_server_tbl : (int, shard_server) Hashtbl.t = Hashtbl.create 8
let shard_lock = Mutex.create ()

let shard_cell tbl shard fresh =
  Mutex.lock shard_lock;
  let cell =
    match Hashtbl.find_opt tbl shard with
    | Some c -> c
    | None ->
      let c = fresh () in
      Hashtbl.add tbl shard c;
      c
  in
  Mutex.unlock shard_lock;
  cell

let note_shard_client_op ~shard ~write ~ok ns =
  let c =
    shard_cell shard_client_tbl shard (fun () ->
        {
          shard_reads = 0;
          shard_writes = 0;
          shard_failures = 0;
          shard_op_latency = Obs.Histo.create ();
        })
  in
  if write then c.shard_writes <- c.shard_writes + 1
  else c.shard_reads <- c.shard_reads + 1;
  if not ok then c.shard_failures <- c.shard_failures + 1;
  Obs.Histo.observe c.shard_op_latency ns

let note_shard_request ~shard ns =
  let c =
    shard_cell shard_server_tbl shard (fun () ->
        { shard_requests = 0; shard_request_latency = Obs.Histo.create () })
  in
  c.shard_requests <- c.shard_requests + 1;
  Obs.Histo.observe c.shard_request_latency ns

let sorted_shards tbl =
  Mutex.lock shard_lock;
  let all = Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl [] in
  Mutex.unlock shard_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) all

let shard_client_stats () = sorted_shards shard_client_tbl
let shard_request_stats () = sorted_shards shard_server_tbl

let reset_shards () =
  Mutex.lock shard_lock;
  Hashtbl.reset shard_client_tbl;
  Hashtbl.reset shard_server_tbl;
  Mutex.unlock shard_lock

(* --- per-endpoint transport health (a registry of gauges, like the
   in-flight high-water mark: outside the snapshot) ------------------- *)

type endpoint_health = {
  endpoint : string;  (** "host:port" *)
  connections : int;  (** live pooled connections *)
  consecutive_failures : int;
  last_error : string option;
  down_until : float;  (** absolute time the endpoint is avoided until; 0 = healthy *)
}

let health_tbl : (string, endpoint_health) Hashtbl.t = Hashtbl.create 8
let health_lock = Mutex.create ()

let note_endpoint_health h =
  Mutex.lock health_lock;
  Hashtbl.replace health_tbl h.endpoint h;
  Mutex.unlock health_lock

(* Membership churn retires endpoints for good; without this their
   health rows (and suspicion state) would accumulate forever. *)
let forget_endpoint_health endpoint =
  Mutex.lock health_lock;
  Hashtbl.remove health_tbl endpoint;
  Mutex.unlock health_lock

let endpoint_health () =
  Mutex.lock health_lock;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) health_tbl [] in
  Mutex.unlock health_lock;
  List.sort (fun a b -> compare a.endpoint b.endpoint) all

let pp_endpoint_health ~now fmt h =
  Format.fprintf fmt "%s: %d conn, %d consecutive failures%s%s" h.endpoint
    h.connections h.consecutive_failures
    (if h.down_until > now then
       Format.asprintf ", down for %.2fs" (h.down_until -. now)
     else "")
    (match h.last_error with Some e -> ", last error: " ^ e | None -> "")

(* [reset] clears the per-operation counters an experiment snapshots
   around a measured op — and nothing an operator watches live: the
   endpoint-health registry and the in-flight high-water mark survive,
   so a bench or periodic snapshot reset no longer blanks the health
   view mid-observation. Tests that need a truly pristine slate call
   [reset_gauges] too.

   Per-phase span histograms are experiment-scoped like the counters, so
   they clear here too: a bench running several phases in one process
   (e18 runs three signing modes back to back) must not report one
   mode's percentiles polluted by another's samples. *)
let reset () =
  Obs.Span.reset_stats ();
  messages := 0;
  bytes := 0;
  signs := 0;
  verifies := 0;
  digests := 0;
  server_verifies := 0;
  macs := 0;
  sigcache_hits := 0;
  sigcache_misses := 0;
  tcp_connects := 0;
  tcp_reuses := 0;
  tcp_reconnects := 0;
  rpcs := 0;
  retries := 0;
  escalations := 0;
  Obs.Histo.reset rpc_histo;
  reset_shards ()

let reset_gauges () =
  Mutex.lock health_lock;
  Hashtbl.reset health_tbl;
  Mutex.unlock health_lock;
  Mutex.lock ep_histos_lock;
  Hashtbl.reset ep_histos;
  Mutex.unlock ep_histos_lock;
  inflight_hwm := 0;
  cur_epoch_version := 0;
  epoch_transitions_c := 0;
  epoch_rejections_c := 0;
  bootstrap_bytes_c := 0;
  frag_puts_c := 0;
  frag_gets_c := 0;
  frag_repairs_c := 0;
  dispersed_writes_c := 0;
  dispersed_reads_c := 0

let read () =
  {
    messages = !messages;
    bytes = !bytes;
    signs = !signs;
    verifies = !verifies;
    digests = !digests;
    server_verifies = !server_verifies;
    macs = !macs;
    sigcache_hits = !sigcache_hits;
    sigcache_misses = !sigcache_misses;
    tcp_connects = !tcp_connects;
    tcp_reuses = !tcp_reuses;
    tcp_reconnects = !tcp_reconnects;
    rpcs = !rpcs;
    retries = !retries;
    escalations = !escalations;
  }

let diff late early =
  {
    messages = late.messages - early.messages;
    bytes = late.bytes - early.bytes;
    signs = late.signs - early.signs;
    verifies = late.verifies - early.verifies;
    digests = late.digests - early.digests;
    server_verifies = late.server_verifies - early.server_verifies;
    macs = late.macs - early.macs;
    sigcache_hits = late.sigcache_hits - early.sigcache_hits;
    sigcache_misses = late.sigcache_misses - early.sigcache_misses;
    tcp_connects = late.tcp_connects - early.tcp_connects;
    tcp_reuses = late.tcp_reuses - early.tcp_reuses;
    tcp_reconnects = late.tcp_reconnects - early.tcp_reconnects;
    rpcs = late.rpcs - early.rpcs;
    retries = late.retries - early.retries;
    escalations = late.escalations - early.escalations;
  }

let add_messages n = messages := !messages + n
let add_bytes n = bytes := !bytes + n
let incr_sign () = incr signs
let incr_verify () = incr verifies
let incr_digest () = incr digests
let incr_server_verify () = incr server_verifies
let incr_mac () = incr macs
let incr_sigcache_hit () = incr sigcache_hits
let incr_sigcache_miss () = incr sigcache_misses
let incr_tcp_connect () = incr tcp_connects
let incr_tcp_reuse () = incr tcp_reuses
let incr_tcp_reconnect () = incr tcp_reconnects
let incr_rpc () = incr rpcs
let incr_retry () = incr retries
let incr_escalation () = incr escalations

let note_inflight n = if n > !inflight_hwm then inflight_hwm := n
let inflight_high_water () = !inflight_hwm

let record_rpc_ns ns = Obs.Histo.observe rpc_histo ns

let rpc_latency_histo () = rpc_histo

type rpc_stats = {
  rpc_count : int;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

let rpc_latency_stats () =
  {
    rpc_count = Obs.Histo.count rpc_histo;
    p50_ns = Obs.Histo.percentile rpc_histo 50.0;
    p95_ns = Obs.Histo.percentile rpc_histo 95.0;
    p99_ns = Obs.Histo.percentile rpc_histo 99.0;
    max_ns = Obs.Histo.max_value rpc_histo;
  }

(* Paper-model verification counts stay in [verifies]/[server_verifies];
   the RSA exponentiations actually performed are the cache misses. *)
let rsa_verifies s = s.sigcache_misses

(* Everything this module tracks, as exposition families for a /metrics
   scrape: the section 6 counters, the operator gauges (in-flight
   high-water, per-endpoint health), and the RPC latency histograms
   (global and per-endpoint). Span phase histograms are Obs.Span's own
   family; the server binary concatenates both. *)
let families () =
  let s = read () in
  let c name help v =
    Obs.Expo.counter ~name:("securestore_" ^ name) ~help (float_of_int v)
  in
  let counters =
    [
      c "messages_total" "Protocol messages, both directions." s.messages;
      c "bytes_total" "Payload bytes across protocol messages." s.bytes;
      c "signs_total" "Signatures produced." s.signs;
      c "verifies_total" "Client-side signature verifications (cost model)."
        s.verifies;
      c "server_verifies_total"
        "Server-side signature verifications (cost model)." s.server_verifies;
      c "digests_total" "Digest computations." s.digests;
      c "macs_total" "MAC computations (PBFT-style authenticators)." s.macs;
      c "sigcache_hits_total" "Verifications answered from the sig cache."
        s.sigcache_hits;
      c "sigcache_misses_total" "Verifications that ran the RSA math."
        s.sigcache_misses;
      c "tcp_connects_total" "Transport sockets dialed." s.tcp_connects;
      c "tcp_reuses_total" "RPC submissions reusing a pooled connection."
        s.tcp_reuses;
      c "tcp_reconnects_total" "Dials to a previously connected endpoint."
        s.tcp_reconnects;
      c "rpcs_total" "Quorum RPC rounds through the pooled transport." s.rpcs;
      c "retries_total" "Client retry-later rounds." s.retries;
      c "escalations_total" "Client server-set expansions." s.escalations;
      c "epoch_transitions_total" "Config epochs adopted by this process."
        (epoch_transitions ());
      c "epoch_rejections_total"
        "Requests rejected for carrying a superseded config epoch."
        (epoch_rejections ());
      c "bootstrap_bytes_total"
        "Write-body bytes re-announced for joining-server bootstrap."
        (bootstrap_bytes ());
      c "frag_puts_total" "Fragment streams sealed by this process."
        (frag_puts ());
      c "frag_gets_total" "Fragment range reads served." (frag_gets ());
      c "frag_repairs_total"
        "Fragments reconstructed from peers and re-stored locally."
        (frag_repairs ());
      c "dispersed_writes_total"
        "Client writes that took the coded-dispersal path."
        (dispersed_writes ());
      c "dispersed_reads_total"
        "Client reads reconstructed from coded fragments."
        (dispersed_reads ());
    ]
  in
  let now = Unix.gettimeofday () in
  let health = endpoint_health () in
  let ep_gauge name help value =
    Obs.Expo.family ~name:("securestore_" ^ name) ~help
      (Obs.Expo.Gauge
         (List.map
            (fun h -> ([ ("endpoint", h.endpoint) ], value h))
            health))
  in
  let gauges =
    [
      Obs.Expo.gauge ~name:"securestore_inflight_high_water"
        ~help:"Peak concurrent in-flight transport requests."
        (float_of_int (inflight_high_water ()));
      Obs.Expo.gauge ~name:"securestore_epoch_version"
        ~help:"Highest config epoch version adopted by this process."
        (float_of_int (epoch_version ()));
      ep_gauge "endpoint_health"
        "1 when the endpoint is usable, 0 while it is avoided \
         (dial backoff or suspicion window)."
        (fun h -> if h.down_until > now then 0.0 else 1.0);
      ep_gauge "endpoint_connections" "Live pooled connections." (fun h ->
          float_of_int h.connections);
      ep_gauge "endpoint_consecutive_failures"
        "RPC failures since the endpoint's last success." (fun h ->
          float_of_int h.consecutive_failures);
    ]
  in
  let shard_label s = [ ("shard", string_of_int s) ] in
  let shard_servers = shard_request_stats () in
  let shard_clients = shard_client_stats () in
  let shard_families =
    if shard_servers = [] && shard_clients = [] then []
    else
      [
        Obs.Expo.family ~name:"securestore_shard_requests_total"
          ~help:"Requests dispatched into this shard's server state."
          (Obs.Expo.Counter
             (List.map
                (fun (s, c) ->
                  (shard_label s, float_of_int c.shard_requests))
                shard_servers));
        Obs.Expo.family ~name:"securestore_shard_request_duration_seconds"
          ~help:"Server-side request handling latency per shard."
          (Obs.Expo.Histogram
             (List.map
                (fun (s, c) -> (shard_label s, c.shard_request_latency))
                shard_servers));
        Obs.Expo.family ~name:"securestore_shard_client_ops_total"
          ~help:"Router-side operations per shard and op kind."
          (Obs.Expo.Counter
             (List.concat_map
                (fun (s, c) ->
                  [
                    ( ("op", "read") :: shard_label s,
                      float_of_int c.shard_reads );
                    ( ("op", "write") :: shard_label s,
                      float_of_int c.shard_writes );
                  ])
                shard_clients));
        Obs.Expo.family ~name:"securestore_shard_client_failures_total"
          ~help:"Router-side operations per shard that returned an error."
          (Obs.Expo.Counter
             (List.map
                (fun (s, c) ->
                  (shard_label s, float_of_int c.shard_failures))
                shard_clients));
        Obs.Expo.family ~name:"securestore_shard_client_op_duration_seconds"
          ~help:"Router-side end-to-end op latency per shard."
          (Obs.Expo.Histogram
             (List.map
                (fun (s, c) -> (shard_label s, c.shard_op_latency))
                shard_clients));
      ]
  in
  let histograms =
    shard_families
    @ [
      Obs.Expo.family ~name:"securestore_rpc_duration_seconds"
        ~help:"Quorum RPC round duration over the pooled transport."
        (Obs.Expo.Histogram [ ([], rpc_histo) ]);
      Obs.Expo.family ~name:"securestore_endpoint_rpc_duration_seconds"
        ~help:
          "Per-endpoint request-to-reply latency (recorded while tracing \
           is enabled)."
        (Obs.Expo.Histogram
           (List.map
              (fun (ep, h) -> ([ ("endpoint", ep) ], h))
              (endpoint_rpc_histos ())));
    ]
  in
  counters @ gauges @ histograms

let pp fmt s =
  Format.fprintf fmt
    "msgs=%d signs=%d verifies=%d (server %d) digests=%d macs=%d \
     sigcache=%d/%d hit/miss tcp=%d+%d/%d conn/reconn/reuse rpcs=%d \
     retries=%d escalations=%d"
    s.messages s.signs s.verifies s.server_verifies s.digests s.macs
    s.sigcache_hits s.sigcache_misses s.tcp_connects s.tcp_reconnects
    s.tcp_reuses s.rpcs s.retries s.escalations
