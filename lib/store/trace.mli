(** Operation-history recording hook (the consistency oracle's tap).

    {!Client} emits one [Invoke] event when an operation starts and one
    [Return] event when it completes, each carrying a snapshot of the
    client's context vector at that instant. A recorder (e.g.
    [Check.History]) installs itself with {!set_sink}; with no sink
    installed the instrumentation reduces to a single ref read per
    operation, so production paths pay nothing.

    Events deliberately record only what an external observer of the
    client API could see — operation boundaries, arguments, results and
    the context the client admits to — so the oracle checks the paper's
    *client-enforced* guarantees (context monotonicity, single-writer
    regularity relative to the reader's context, multi-writer total
    order on [(time, writer, digest)] stamps, read-your-writes) against
    the same information a real application would have. *)

type phase = Invoke | Return

type recovery = Stored | Fresh | Rebuilt
(** How a connect obtained its context: a validly signed stored record,
    an empty start, or section 5.1's reconstruction from server logs. *)

type opkind =
  | Connect
  | Disconnect
  | Reconstruct
  | Write of { uid : Uid.t; stamp : Stamp.t; digest : string }
      (** [digest] is the hex SHA-256 of the written value. *)
  | Read of { uid : Uid.t }

type outcome =
  | Connected of recovery
  | Ok_unit
  | Ok_value of { stamp : Stamp.t; digest : string; writer : string }
      (** A successful read: the returned write's stamp, hex value
          digest, and claimed writer. *)
  | Failed of string  (** rendered {!Client.error} *)

type event = {
  seq : int;  (** global emission order, assigned by the recorder hook *)
  op : int;  (** pairs an [Invoke] with its [Return] *)
  time : float;  (** {!Sim.Runtime.now} at emission *)
  client : string;
  session : int;  (** distinguishes reconnects of the same client *)
  multi_writer : bool;
  causal : bool;  (** CC session (MRC otherwise) *)
  epoch : int;
      (** config epoch version the client held at emission; 0 = static
          deployment. Lets the oracle attribute a violation to an epoch
          boundary and check guarantees *across* reconfigurations. *)
  phase : phase;
  kind : opkind;
  outcome : outcome option;  (** [None] on [Invoke] *)
  ctx : (Uid.t * Stamp.t) list;  (** context snapshot at emission *)
  trace : string;
      (** lowercase-hex distributed trace id of the op, [""] when the
          client minted none. Violation reports print it ([trace=<id>])
          so an oracle finding resolves to the flight recorder's stitched
          trace of the same operation. *)
}

val enabled : unit -> bool
(** Cheap test the instrumentation guards every emission with. *)

val set_sink : (event -> unit) option -> unit
(** Install (or remove) the recorder. Emission and [seq] assignment
    happen under an internal mutex, so concurrent live-transport clients
    serialize into one well-ordered history. *)

val reset : unit -> unit
(** Restart the [seq], [op] and [session] counters — called by a
    recorder at the start of a run so identical schedules produce
    identical histories. *)

val new_session : unit -> int
val new_op : unit -> int

val record :
  op:int ->
  time:float ->
  client:string ->
  session:int ->
  multi_writer:bool ->
  causal:bool ->
  ?epoch:int ->
  ?trace:string ->
  phase:phase ->
  ?outcome:outcome ->
  kind:opkind ->
  ctx:(Uid.t * Stamp.t) list ->
  unit ->
  unit
(** No-op when no sink is installed. *)

val pp_event : Format.formatter -> event -> unit
