type behavior =
  | Honest
  | Crash
  | Silent_reads
  | Stale
  | Corrupt_value
  | Corrupt_meta
  | Equivocate
  | Eager_report
  | Drop_gossip
  | Downgrade

let to_string = function
  | Honest -> "honest"
  | Crash -> "crash"
  | Silent_reads -> "silent-reads"
  | Stale -> "stale"
  | Corrupt_value -> "corrupt-value"
  | Corrupt_meta -> "corrupt-meta"
  | Equivocate -> "equivocate"
  | Eager_report -> "eager-report"
  | Drop_gossip -> "drop-gossip"
  | Downgrade -> "downgrade"

let all =
  [
    Honest; Crash; Silent_reads; Stale; Corrupt_value; Corrupt_meta;
    Equivocate; Eager_report; Drop_gossip; Downgrade;
  ]

let flip_byte s i =
  if String.length s = 0 then s
  else begin
    let i = i mod String.length s in
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 0x5a) else c) s
  end

let corrupt_value_in (w : Payload.write) = { w with value = flip_byte w.value 0 }

let inflate stamp =
  match stamp with
  | Stamp.Scalar v -> Stamp.Scalar (v + 1_000_000_000)
  | Stamp.Multi m -> Stamp.Multi { m with time = m.time + 1_000_000_000 }

let is_query (env : Payload.envelope) =
  match env.request with
  | Payload.Ctx_read _ | Payload.Meta_query _ | Payload.Value_read _
  | Payload.Log_query _ | Payload.Group_query _ | Payload.Read_inline _
  | Payload.Epoch_get | Payload.Frag_get _ ->
    true
  | Payload.Ctx_write _ | Payload.Write_req _ | Payload.Gossip_push _
  | Payload.Evidence_upgrade _ | Payload.Epoch_announce _ | Payload.Frag_put _
    ->
    false

let is_write_or_gossip (env : Payload.envelope) =
  match env.request with
  | Payload.Write_req _ | Payload.Gossip_push _ | Payload.Ctx_write _
  | Payload.Evidence_upgrade _ | Payload.Frag_put _ ->
    true
  | _ -> false

let best_stamp writes =
  List.fold_left
    (fun acc (w : Payload.write) ->
      match acc with
      | Some s when Stamp.compare s w.stamp >= 0 -> acc
      | _ -> Some w.stamp)
    None writes

(* Eager reporting: answer meta/log queries from pending (held) writes as
   if they were announced — the attack the b+1 vouching rule masks. *)
let with_pending server (env : Payload.envelope) honest_resp =
  match (env.request, honest_resp) with
  | Payload.Meta_query { uid }, Some (Payload.Meta_reply { stamp; writer_faulty }) ->
    let held = Server.pending_writes server uid in
    let stamp =
      match (stamp, best_stamp held) with
      | Some s, Some h -> Some (if Stamp.compare h s > 0 then h else s)
      | None, h -> h
      | s, None -> s
    in
    Some (Payload.Meta_reply { stamp; writer_faulty })
  | Payload.Log_query { uid }, Some (Payload.Log_reply { writes; writer_faulty }) ->
    Some
      (Payload.Log_reply
         { writes = Server.pending_writes server uid @ writes; writer_faulty })
  | Payload.Value_read { uid; stamp }, Some (Payload.Value_reply None) ->
    Some
      (Payload.Value_reply
         (List.find_opt
            (fun (w : Payload.write) -> Stamp.equal w.stamp stamp)
            (Server.pending_writes server uid)))
  | _ -> honest_resp

(* Evidence downgrade, leak half: serve MAC-held writes as if they were
   announced. Their MAC vectors are genuine (the server really received
   them) but carry no third-party-verifiable evidence — exactly what an
   honest server refuses to serve, so a reader treats any such reply as
   proof of misbehaviour. *)
let with_maced server (env : Payload.envelope) honest_resp =
  match (env.request, honest_resp) with
  | Payload.Meta_query { uid }, Some (Payload.Meta_reply { stamp; writer_faulty })
    ->
    let held = Server.maced_writes server uid in
    let stamp =
      match (stamp, best_stamp held) with
      | Some s, Some h -> Some (if Stamp.compare h s > 0 then h else s)
      | None, h -> h
      | s, None -> s
    in
    Some (Payload.Meta_reply { stamp; writer_faulty })
  | Payload.Log_query { uid }, Some (Payload.Log_reply { writes; writer_faulty })
    ->
    Some
      (Payload.Log_reply
         { writes = Server.maced_writes server uid @ writes; writer_faulty })
  | Payload.Value_read { uid; stamp }, Some (Payload.Value_reply None) ->
    Some
      (Payload.Value_reply
         (List.find_opt
            (fun (w : Payload.write) -> Stamp.equal w.stamp stamp)
            (Server.maced_writes server uid)))
  | Payload.Read_inline { uid }, Some (Payload.Value_reply current) ->
    let held = Server.maced_writes server uid in
    let newest =
      List.fold_left
        (fun acc (w : Payload.write) ->
          match acc with
          | Some (c : Payload.write) when Stamp.compare c.stamp w.stamp >= 0 ->
            acc
          | _ -> Some w)
        current held
    in
    Some (Payload.Value_reply newest)
  | _ -> honest_resp

(* Evidence downgrade, tamper half: strip an element from a batch
   write's inclusion proof (the truncated path must fail the size-aware
   verifier structurally) — or, when the proof is already empty (batch
   of one), corrupt the root signature. Sig evidence is left alone
   (Corrupt_value covers that ground) and Mac evidence is already
   damning as served. *)
let strip_batch_proof (w : Payload.write) =
  match w.Payload.evidence with
  | Payload.Batch b ->
    let evidence =
      match b.proof.Crypto.Merkle.path with
      | _ :: rest ->
        Payload.Batch { b with proof = { b.proof with path = rest } }
      | [] -> Payload.Batch { b with root_sig = flip_byte b.root_sig 11 }
    in
    { w with evidence }
  | Payload.Sig _ | Payload.Mac _ -> w

let map_writes f resp =
  match resp with
  | Some (Payload.Value_reply (Some w)) -> Some (Payload.Value_reply (Some (f w)))
  | Some (Payload.Log_reply { writes; writer_faulty }) ->
    Some (Payload.Log_reply { writes = List.map f writes; writer_faulty })
  | Some (Payload.Group_reply writes) ->
    Some (Payload.Group_reply (List.map f writes))
  | _ -> resp

let mutate_response behavior server (env : Payload.envelope) resp =
  match (behavior, resp) with
  | (Honest | Crash | Silent_reads | Stale | Drop_gossip), _ -> resp
  | Corrupt_value, Some (Payload.Value_reply (Some w)) ->
    Some (Payload.Value_reply (Some (corrupt_value_in w)))
  | Corrupt_value, Some (Payload.Log_reply { writes; writer_faulty }) ->
    Some
      (Payload.Log_reply
         { writes = List.map corrupt_value_in writes; writer_faulty })
  | Corrupt_value, Some (Payload.Group_reply writes) ->
    Some (Payload.Group_reply (List.map corrupt_value_in writes))
  | Corrupt_value, Some (Payload.Frag_reply (Some c)) ->
    (* a corrupt fragment must fail the reader's digest check and be
       replaced from another holder *)
    Some
      (Payload.Frag_reply
         (Some { c with Payload.data = flip_byte c.Payload.data 0 }))
  | Corrupt_value, _ -> resp
  | Corrupt_meta, Some (Payload.Meta_reply { stamp = Some s; writer_faulty }) ->
    Some (Payload.Meta_reply { stamp = Some (inflate s); writer_faulty })
  | Corrupt_meta, Some (Payload.Value_reply (Some w)) ->
    Some (Payload.Value_reply (Some { w with stamp = inflate w.stamp }))
  | Corrupt_meta, _ -> resp
  | Equivocate, Some (Payload.Meta_reply { stamp = Some s; writer_faulty }) ->
    Some (Payload.Meta_reply { stamp = Some (inflate s); writer_faulty })
  | Equivocate, _ -> resp (* serves genuine values on fetch *)
  | Eager_report, _ -> with_pending server env resp
  | Downgrade, _ -> map_writes strip_batch_proof (with_maced server env resp)

let handle_typed behavior server ~now ~from env =
  match behavior with
  | Crash -> None
  | Silent_reads when is_query env -> None
  | Stale when is_write_or_gossip env ->
    (* Pretend to cooperate but never change state. *)
    (match env.Payload.request with
    | Payload.Write_req { await_ack = true; _ } -> Some Payload.Ack
    (* acks the fragment stream, stores nothing: silent fragment loss *)
    | Payload.Frag_put _ -> Some Payload.Ack
    | _ -> None)
  | Drop_gossip when
      (match env.Payload.request with Payload.Gossip_push _ -> true | _ -> false) ->
    None
  | Eager_report ->
    (* Answer log queries with held writes included: re-dispatch against
       a guard-free view by reading pending via the server API. *)
    let honest = Server.handle server ~now ~from env in
    mutate_response behavior server env honest
  | _ ->
    let honest = Server.handle server ~now ~from env in
    mutate_response behavior server env honest

let wrap behavior server ~now ~from payload =
  match Payload.decode_envelope payload with
  | None -> None
  | Some env ->
    Option.map Payload.encode_response
      (handle_typed behavior server ~now ~from env)

let forge_write ~keyring:_ ~uid ~value ~writer =
  {
    Payload.uid;
    stamp = Stamp.scalar 999_999_999;
    wctx = None;
    value;
    writer;
    evidence = Payload.Sig (String.make 64 '\x42');
    frags = None;
  }
