type t =
  | Scalar of int
  | Multi of { time : int; writer : string; digest : string }

let zero = Scalar 0
let scalar v = Scalar v

let multi ~time ~writer ~value =
  Multi { time; writer; digest = Crypto.Sha256.digest value }

let time = function Scalar t -> t | Multi { time; _ } -> time

let compare a b =
  match (a, b) with
  | Scalar ta, Scalar tb -> Int.compare ta tb
  | Multi ma, Multi mb -> (
    match Int.compare ma.time mb.time with
    | 0 -> (
      match String.compare ma.writer mb.writer with
      | 0 -> String.compare ma.digest mb.digest
      | c -> c)
    | c -> c)
  | Scalar ta, Multi mb -> if ta = mb.time then -1 else Int.compare ta mb.time
  | Multi ma, Scalar tb -> if ma.time = tb then 1 else Int.compare ma.time tb

let equal a b = compare a b = 0
let newer a ~than = compare a than > 0

let is_fork a b =
  match (a, b) with
  | Multi ma, Multi mb ->
    ma.time = mb.time && ma.writer = mb.writer && ma.digest <> mb.digest
  | _ -> false

let matches_value t value =
  match t with
  | Scalar _ -> true
  | Multi { digest; _ } -> String.equal digest (Crypto.Sha256.digest value)

let pp fmt = function
  | Scalar t -> Format.fprintf fmt "v%d" t
  | Multi { time; writer; digest } ->
    Format.fprintf fmt "v%d@%s#%s" time writer
      (String.sub (Crypto.Hexs.encode digest) 0 8)

let encode enc t =
  let open Wire.Codec.Enc in
  match t with
  | Scalar v ->
    u8 enc 0;
    varint enc v
  | Multi { time; writer; digest } ->
    u8 enc 1;
    varint enc time;
    string enc writer;
    string enc digest

let decode dec =
  let open Wire.Codec.Dec in
  match u8 dec with
  | 0 -> Scalar (varint dec)
  | 1 ->
    let time = varint dec in
    let writer = string dec in
    let digest = string dec in
    Multi { time; writer; digest }
  | _ -> raise (Wire.Codec.Error "bad stamp tag")
