type t = { group : string; item : string }

let valid_part s = String.length s > 0 && not (String.contains s '/')

let make ~group ~item =
  if not (valid_part group && valid_part item) then
    invalid_arg "Uid.make: parts must be non-empty and '/'-free";
  { group; item }

let group t = t.group
let item t = t.item
let to_string t = t.group ^ "/" ^ t.item

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
    let group = String.sub s 0 i in
    let item = String.sub s (i + 1) (String.length s - i - 1) in
    if valid_part group && valid_part item then Some { group; item } else None

let equal a b = a.group = b.group && a.item = b.item

let compare a b =
  match String.compare a.group b.group with
  | 0 -> String.compare a.item b.item
  | c -> c

let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode enc t =
  Wire.Codec.Enc.string enc t.group;
  Wire.Codec.Enc.string enc t.item

let decode dec =
  let group = Wire.Codec.Dec.string dec in
  let item = Wire.Codec.Dec.string dec in
  if valid_part group && valid_part item then { group; item }
  else raise (Wire.Codec.Error "bad uid")
