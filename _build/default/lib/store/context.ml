module M = Map.Make (struct
  type t = Uid.t

  let compare = Uid.compare
end)

type t = Stamp.t M.t

let empty = M.empty
let is_empty = M.is_empty
let find t uid = match M.find_opt uid t with Some s -> s | None -> Stamp.zero
let mem t uid = M.mem uid t
let set t uid stamp = M.add uid stamp t

let observe t uid stamp =
  if Stamp.newer stamp ~than:(find t uid) then M.add uid stamp t else t

let merge a b = M.fold (fun uid stamp acc -> observe acc uid stamp) b a

let dominates a b =
  M.for_all (fun uid stamp -> Stamp.compare (find a uid) stamp >= 0) b

let bindings = M.bindings
let cardinal = M.cardinal
let of_bindings l = List.fold_left (fun acc (uid, s) -> M.add uid s acc) M.empty l
let equal = M.equal Stamp.equal

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (uid, stamp) -> Format.fprintf fmt "%a=%a" Uid.pp uid Stamp.pp stamp))
    (bindings t)

let encode enc t =
  Wire.Codec.Enc.list enc
    (fun enc (uid, stamp) ->
      Uid.encode enc uid;
      Stamp.encode enc stamp)
    (bindings t)

let decode dec =
  let entries =
    Wire.Codec.Dec.list dec (fun dec ->
        let uid = Uid.decode dec in
        let stamp = Stamp.decode dec in
        (uid, stamp))
  in
  of_bindings entries
