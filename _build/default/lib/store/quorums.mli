(** Quorum-size arithmetic from the paper (sections 5 and 6).

    [n] servers, at most [b] faulty (crash or Byzantine). *)

val context_quorum : n:int -> b:int -> int
(** ⌈(n+b+1)/2⌉ — context read/write set (Fig. 1). Two such quorums share
    at least [b+1] servers, hence at least one non-faulty witness of the
    last context write. *)

val write_set : b:int -> int
(** [b+1] — servers a single-writer data write must reach so at least
    one non-faulty server stores it (section 5.2). *)

val read_set : b:int -> int
(** [b+1] — servers polled by a single-writer read in the best case. *)

val mw_write_set : b:int -> int
(** [2b+1] — the multi-writer (malicious-client) write fan-out
    (section 6, "figures change from b+1 to 2b+1"). *)

val mw_read_quorum : b:int -> int
(** [2b+1] — servers a multi-writer read must hear from. *)

val mw_vouch : b:int -> int
(** [b+1] — servers that must report the same value before a
    multi-writer read accepts it (section 5.3). *)

val masking_quorum : n:int -> b:int -> int
(** ⌈(n+2b+1)/2⌉ — the Byzantine masking quorum size the paper compares
    against (Malkhi-Reiter; Phalanx/Fleet). *)

val majority_quorum : n:int -> int
(** ⌈(n+1)/2⌉ — crash-only baseline. *)

val context_overlap : n:int -> b:int -> int
(** Guaranteed intersection of two context quorums; equals
    [2*context_quorum - n >= b+1]. *)

val validate : n:int -> b:int -> (unit, string) result
(** Liveness needs every quorum to be reachable with [b] servers silent:
    [n >= 3b+1] covers the context quorum and the multi-writer read
    quorum alike. *)

val max_b : n:int -> int
(** Largest tolerable [b] for [n] servers: ⌊(n-1)/3⌋. *)
