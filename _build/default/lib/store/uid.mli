(** Data item identifiers.

    Every item belongs to exactly one related group (paper section 4:
    consistency is maintained within a group, never across groups). A uid
    is rendered ["group/item"]. *)

type t = private { group : string; item : string }

val make : group:string -> item:string -> t
(** @raise Invalid_argument if either part is empty or contains '/'. *)

val group : t -> string
val item : t -> string
val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
