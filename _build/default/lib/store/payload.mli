(** Wire messages between clients and servers.

    A {!write} is the unit of replication and the unit of signing: the
    signature covers the item uid, the timestamp, the writer context (if
    any) and the value, so no server can alter any of it undetected and
    gossip can forward whole write messages verbatim (section 5.2). *)

type write = {
  uid : Uid.t;
  stamp : Stamp.t;
  wctx : Context.t option;  (** CC writes carry the writer's context *)
  value : string;
  writer : string;  (** client uid *)
  signature : string;
}

val write_body : write -> string
(** The canonical bytes the writer signs (everything but the signature). *)

type ctx_record = { seq : int; ctx : Context.t; signature : string }
(** A stored context: [seq] is the client's session counter, so "latest"
    is well defined even before checking vector dominance. *)

val ctx_body : client:string -> group:string -> seq:int -> Context.t -> string
(** Canonical signed bytes for a context write. *)

type request =
  | Ctx_read of { client : string; group : string }
  | Ctx_write of { client : string; group : string; record : ctx_record }
  | Meta_query of { uid : Uid.t }
  | Value_read of { uid : Uid.t; stamp : Stamp.t }
  | Write_req of { write : write; await_ack : bool }
  | Log_query of { uid : Uid.t }
  | Read_inline of { uid : Uid.t }
      (** one-round read: the server returns its whole current write
          (value included), trading bandwidth for a round trip —
          section 6's "read cost equals write cost" best case *)
  | Group_query of { group : string }
      (** all current writes in a group — context reconstruction *)
  | Gossip_push of { writes : write list; have : (Uid.t * Stamp.t) list }
      (** [have] is the sender's current stamp per item — the replication
          evidence behind section 5.3's log erasure rule ("old values
          could be erased once a server learns that a new value is
          available at at least 2b+1 servers") *)

type envelope = { token : string option; request : request }

type response =
  | Ctx_reply of ctx_record option
  | Meta_reply of { stamp : Stamp.t option; writer_faulty : bool }
  | Value_reply of write option
  | Ack
  | Log_reply of { writes : write list; writer_faulty : bool }
  | Group_reply of write list
  | Denied of string

val encode_envelope : envelope -> string
val decode_envelope : string -> envelope option
val encode_response : response -> string
val decode_response : string -> response option

val pp_response : Format.formatter -> response -> unit
