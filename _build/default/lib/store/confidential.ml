type t = {
  mutable client : Client.t;
  mutable key : Crypto.Aead.key;
  rng : Crypto.Prng.t;
}

let make ~client ~key ?(rng_seed = "confidential-nonce-seed") () =
  {
    client;
    key = Crypto.Aead.key_of_string key;
    rng = Crypto.Prng.create ~seed:(rng_seed ^ "/" ^ Client.uid client);
  }

let client t = t.client

let write t ~item value =
  let nonce = Crypto.Aead.random_nonce t.rng in
  let blob = Crypto.Aead.encrypt t.key ~nonce ~ad:item value in
  Client.write t.client ~item blob

let read_opt t ~item =
  match Client.read t.client ~item with
  | Error e -> Error e
  | Ok blob -> Ok (Crypto.Aead.decrypt t.key ~ad:item blob)

let read t ~item =
  match read_opt t ~item with
  | Error e -> Error e
  | Ok (Some v) -> Ok v
  | Ok None -> Error Client.Write_rejected

let rotate_key t ~new_key ~items =
  (* Read everything under the old key first; abort before writing if any
     item is unavailable, so a half-rotated group is never produced by a
     clean failure (a crash mid-loop still can be, as in the paper). *)
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match read t ~item with
      | Ok v -> collect ((item, v) :: acc) rest
      | Error e -> Error e)
  in
  match collect [] items with
  | Error e -> Error e
  | Ok values ->
    t.key <- Crypto.Aead.key_of_string new_key;
    let rec rewrite = function
      | [] -> Ok ()
      | (item, v) :: rest -> (
        match write t ~item v with Ok () -> rewrite rest | Error e -> Error e)
    in
    rewrite values
