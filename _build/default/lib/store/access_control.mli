(** Capability tokens for request authorization.

    The paper assumes "a secure authorization mechanism … effected by
    using authorization tokens issued to clients by some secure
    authorization service"; non-faulty servers reject unauthorized reads
    and writes. This is that service: HMAC-sealed capabilities binding a
    client to a group, a rights mask and an expiry. Servers share the
    issuing secret (they are the relying parties). *)

type service
type rights = Read_only | Write_only | Read_write

val create_service : secret:string -> service

val issue :
  service -> client:string -> group:string -> rights:rights -> expires:float -> string
(** An opaque token string for the client to attach to requests. *)

type verdict = Authorized | Denied of string

val check :
  service ->
  now:float ->
  token:string option ->
  ?expect_client:string ->
  group:string ->
  op:[ `Read | `Write ] ->
  unit ->
  verdict
(** Validates seal, group binding, rights and expiry. Writes additionally
    pass [expect_client] (the message signer), which must match the
    client the token was issued to — a stolen token cannot authorize
    someone else's signed writes. *)
