(** Signature production and verification with cost accounting.

    Every sign/verify passes through here so the section 6 computational
    cost claims (E2/E3) can be measured rather than asserted. *)

val sign_write :
  key:Crypto.Rsa.keypair ->
  writer:string ->
  uid:Uid.t ->
  stamp:Stamp.t ->
  ?wctx:Context.t ->
  string ->
  Payload.write

val verify_write : Keyring.t -> Payload.write -> bool
(** Client-side verification (counts toward [verifies]). *)

val server_verify_write : Keyring.t -> Payload.write -> bool
(** Same check, counted as a server-side verification. *)

val check_write_quiet : Keyring.t -> Payload.write -> bool
(** Verification without cost accounting — used when classifying an
    already-failed reply for fault evidence, so diagnostics do not skew
    the section 6 counters. *)

val sign_context :
  key:Crypto.Rsa.keypair ->
  client:string ->
  group:string ->
  seq:int ->
  Context.t ->
  Payload.ctx_record

val verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool

val server_verify_context :
  Keyring.t -> client:string -> group:string -> Payload.ctx_record -> bool
