(** Fragmentation-scattering storage (the technique the paper cites from
    Fray et al. and Rabin as complementary to replication).

    A value is AEAD-encrypted under a key the servers never see, the
    ciphertext is split with {!Crypto.Ida} into [n] fragments of which
    any [k] reconstruct, and fragment [i] is written (signed, stamped)
    to server [i] only. Compared to full replication this stores
    [n/k ≈ n/(b+1)] of the value instead of [b+1] whole copies, while
    still tolerating [b] faulty servers:

    - availability: reads need any [k = b+1] authentic fragments and
      [n >= 3b+1] leaves at least [n - b >= 2b+1 > k] honest holders;
    - integrity: every fragment carries the writer's signature and the
      AEAD tag covers the reassembled ciphertext;
    - confidentiality: a server sees one encrypted fragment.

    Fragments are ordinary signed writes on items named ["item#i"], so
    gossip, logs and auditing all apply to them unchanged. *)

type t

type error =
  | Not_enough_fragments of { needed : int; got : int }
  | Write_unacked of { needed : int; got : int }
  | Decrypt_failed
  | Not_found

val make :
  n:int ->
  b:int ->
  ?k:int ->
  ?servers:Sim.Runtime.node_id list ->
  ?timeout:float ->
  ?token:string ->
  writer:string ->
  key:Crypto.Rsa.keypair ->
  keyring:Keyring.t ->
  group:string ->
  secret:string ->
  unit ->
  t
(** [k] defaults to [b+1]. [secret] keys the AEAD layer.
    @raise Invalid_argument unless [b+1 <= k <= n-2b] (write liveness
    needs [k+b] ackers among [n] with [b] silent). *)

val write : t -> item:string -> string -> (unit, error) result
(** Disperse a value: one signed fragment per server, acknowledged by at
    least [k+b] servers so that [k] honest fragments certainly exist. *)

val read : t -> item:string -> (string, error) result
(** Gather fragments (stopping at [k] authentic ones of the newest
    version), reconstruct and decrypt. *)

val fragment_item : item:string -> int -> string
(** The item name fragment [i] is stored under (exposed for tests). *)

val error_to_string : error -> string
