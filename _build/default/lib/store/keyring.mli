(** Directory of client public keys.

    The paper assumes clients and servers own key pairs whose public
    halves are well known; key management itself is out of scope. This
    directory is that assumption made concrete — servers verify writer
    signatures against it, clients verify each other's writes. *)

type t

val create : unit -> t
val register : t -> string -> Crypto.Rsa.public -> unit
(** @raise Invalid_argument if the uid is already bound to a different key. *)

val find : t -> string -> Crypto.Rsa.public option
val known : t -> string -> bool
val size : t -> int
