type t = (string, Crypto.Rsa.public) Hashtbl.t

let create () = Hashtbl.create 16

let register t uid key =
  match Hashtbl.find_opt t uid with
  | Some existing when Crypto.Rsa.public_to_string existing <> Crypto.Rsa.public_to_string key ->
    invalid_arg ("Keyring.register: uid already bound: " ^ uid)
  | _ -> Hashtbl.replace t uid key

let find t uid = Hashtbl.find_opt t uid
let known t uid = Hashtbl.mem t uid
let size t = Hashtbl.length t
