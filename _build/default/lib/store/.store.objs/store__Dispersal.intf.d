lib/store/dispersal.mli: Crypto Keyring Sim
