lib/store/confidential.mli: Client
