lib/store/stamp.ml: Crypto Format Int String Wire
