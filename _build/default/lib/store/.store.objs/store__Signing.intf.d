lib/store/signing.mli: Context Crypto Keyring Payload Stamp Uid
