lib/store/gossip.ml: Array Fun List Payload Server Sim
