lib/store/fault_evidence.mli: Format
