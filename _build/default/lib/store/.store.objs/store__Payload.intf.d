lib/store/payload.mli: Context Format Stamp Uid
