lib/store/server.mli: Access_control Keyring Payload Sim Stamp Uid
