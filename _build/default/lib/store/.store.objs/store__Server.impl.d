lib/store/server.ml: Access_control Context Dec Enc Fun Hashtbl Keyring List Option Payload Signing Stamp String Sys Uid Wire
