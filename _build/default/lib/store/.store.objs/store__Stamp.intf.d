lib/store/stamp.mli: Format Wire
