lib/store/access_control.ml: Codec Crypto Wire
