lib/store/confidential.ml: Client Crypto List
