lib/store/gossip.mli: Server Sim
