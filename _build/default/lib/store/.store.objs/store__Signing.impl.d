lib/store/signing.ml: Crypto Keyring Metrics Payload Stamp
