lib/store/audit.ml: Array Crypto List Option Payload Server String
