lib/store/client.ml: Array Context Crypto Fault_evidence Format Fun Hashtbl Keyring List Metrics Option Payload Quorums Result Signing Sim Stamp String Uid
