lib/store/quorums.ml: Printf
