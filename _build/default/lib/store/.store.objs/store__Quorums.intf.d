lib/store/quorums.mli:
