lib/store/fault_evidence.ml: Format Hashtbl Int List Printf String
