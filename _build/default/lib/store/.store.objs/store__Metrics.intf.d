lib/store/metrics.mli: Format
