lib/store/faults.mli: Keyring Payload Server Sim Uid
