lib/store/keyring.ml: Crypto Hashtbl
