lib/store/dispersal.ml: Array Crypto Fun Hashtbl Keyring List Metrics Payload Printf Signing Sim Stamp String Uid
