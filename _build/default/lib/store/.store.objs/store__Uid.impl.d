lib/store/uid.ml: Format String Wire
