lib/store/context.mli: Format Stamp Uid Wire
