lib/store/keyring.mli: Crypto
