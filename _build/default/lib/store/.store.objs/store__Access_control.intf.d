lib/store/access_control.mli:
