lib/store/audit.mli: Crypto Payload Server
