lib/store/faults.ml: Char List Option Payload Server Stamp String
