lib/store/uid.mli: Format Wire
