lib/store/context.ml: Format List Map Stamp Uid Wire
