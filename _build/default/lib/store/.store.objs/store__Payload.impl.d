lib/store/payload.ml: Codec Context Format List Stamp Uid Wire
