lib/store/metrics.ml: Format
