lib/store/client.mli: Context Crypto Fault_evidence Format Keyring Payload Sim Stamp Uid
