let sign_write ~key ~writer ~uid ~stamp ?wctx value =
  let unsigned =
    { Payload.uid; stamp; wctx; value; writer; signature = "" }
  in
  Metrics.incr_sign ();
  { unsigned with signature = Crypto.Rsa.sign key (Payload.write_body unsigned) }

let check_write keyring (w : Payload.write) =
  match Keyring.find keyring w.writer with
  | None -> false
  | Some pub ->
    Crypto.Rsa.verify pub ~msg:(Payload.write_body w) ~signature:w.signature
    && Stamp.matches_value w.stamp w.value

let verify_write keyring w =
  Metrics.incr_verify ();
  check_write keyring w

let check_write_quiet = check_write

let server_verify_write keyring w =
  Metrics.incr_server_verify ();
  check_write keyring w

let sign_context ~key ~client ~group ~seq ctx =
  Metrics.incr_sign ();
  let body = Payload.ctx_body ~client ~group ~seq ctx in
  { Payload.seq; ctx; signature = Crypto.Rsa.sign key body }

let check_context keyring ~client ~group (r : Payload.ctx_record) =
  match Keyring.find keyring client with
  | None -> false
  | Some pub ->
    let body = Payload.ctx_body ~client ~group ~seq:r.seq r.ctx in
    Crypto.Rsa.verify pub ~msg:body ~signature:r.signature

let verify_context keyring ~client ~group r =
  Metrics.incr_verify ();
  check_context keyring ~client ~group r

let server_verify_context keyring ~client ~group r =
  Metrics.incr_server_verify ();
  check_context keyring ~client ~group r
