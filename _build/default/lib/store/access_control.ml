open Wire

type service = { secret : string }
type rights = Read_only | Write_only | Read_write

let create_service ~secret = { secret }

let rights_tag = function Read_only -> 0 | Write_only -> 1 | Read_write -> 2

let rights_of_tag = function
  | 0 -> Some Read_only
  | 1 -> Some Write_only
  | 2 -> Some Read_write
  | _ -> None

let body ~client ~group ~rights ~expires =
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc client;
      Codec.Enc.string enc group;
      Codec.Enc.u8 enc (rights_tag rights);
      Codec.Enc.float enc expires)
    ()

let issue t ~client ~group ~rights ~expires =
  let b = body ~client ~group ~rights ~expires in
  let seal = Crypto.Hmac.sha256 ~key:t.secret b in
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc b;
      Codec.Enc.string enc seal)
    ()

type verdict = Authorized | Denied of string

let permits rights op =
  match (rights, op) with
  | (Read_only | Read_write), `Read -> true
  | (Write_only | Read_write), `Write -> true
  | Read_only, `Write | Write_only, `Read -> false

let check t ~now ~token ?expect_client ~group ~op () =
  match token with
  | None -> Denied "missing token"
  | Some token -> (
    let parsed =
      Codec.decode_opt
        (fun dec ->
          let b = Codec.Dec.string dec in
          let seal = Codec.Dec.string dec in
          (b, seal))
        token
    in
    match parsed with
    | None -> Denied "malformed token"
    | Some (b, seal) ->
      if not (Crypto.Hmac.verify ~key:t.secret ~msg:b ~tag:seal) then
        Denied "bad seal"
      else begin
        match
          Codec.decode_opt
            (fun dec ->
              let client = Codec.Dec.string dec in
              let group = Codec.Dec.string dec in
              let rights = Codec.Dec.u8 dec in
              let expires = Codec.Dec.float dec in
              (client, group, rights, expires))
            b
        with
        | None -> Denied "malformed token body"
        | Some (tok_client, tok_group, tag, expires) -> (
          match rights_of_tag tag with
          | None -> Denied "bad rights"
          | Some rights ->
            let client_mismatch =
              match expect_client with
              | Some c -> tok_client <> c
              | None -> false
            in
            if client_mismatch then Denied "token bound to another client"
            else if tok_group <> group then Denied "token bound to another group"
            else if now > expires then Denied "token expired"
            else if not (permits rights op) then Denied "insufficient rights"
            else Authorized)
      end)
