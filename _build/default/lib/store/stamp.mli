(** Write timestamps.

    Single-writer data uses scalar timestamps (a version number / clock
    value chosen by the one writer, paper section 5.2). Multi-writer data
    uses the 3-tuple [(time, writer, digest)] of section 5.3: the writer
    id breaks ties between independent clients, and the value digest
    makes it evident when a malicious client signs two different values
    with one timestamp (a "fork"). *)

type t =
  | Scalar of int
  | Multi of { time : int; writer : string; digest : string }

val zero : t
(** The stamp every item implicitly starts with; less than every real
    write. *)

val scalar : int -> t

val multi : time:int -> writer:string -> value:string -> t
(** Computes the SHA-256 digest of [value]. *)

val time : t -> int

val compare : t -> t -> int
(** Total order: time first, then writer id, then digest. [Scalar]
    orders below [Multi] at equal times (mixing kinds on one item is a
    configuration error that {!Server} rejects; the order here just keeps
    [compare] total). *)

val equal : t -> t -> bool
val newer : t -> than:t -> bool

val is_fork : t -> t -> bool
(** Two multi-writer stamps with the same time and writer but different
    digests — proof the writer is faulty. *)

val matches_value : t -> string -> bool
(** For [Multi], does the embedded digest match this value? [Scalar]
    stamps carry no digest, so always true. *)

val pp : Format.formatter -> t -> unit
val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
