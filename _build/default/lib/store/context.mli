(** Client context: the per-group vector of (uid, timestamp) pairs that
    records which writes the client has observed (paper section 5.1).

    The client — not the servers — enforces consistency by comparing
    server-reported timestamps against this vector. CC write messages
    carry the writer's whole context so readers can pull causal
    dependencies forward. *)

type t

val empty : t
val is_empty : t -> bool
val find : t -> Uid.t -> Stamp.t
(** The recorded stamp, or {!Stamp.zero} when the item is unknown. *)

val mem : t -> Uid.t -> bool
val set : t -> Uid.t -> Stamp.t -> t
(** Unconditional update. *)

val observe : t -> Uid.t -> Stamp.t -> t
(** Keep the pointwise maximum — how reads advance the context. *)

val merge : t -> t -> t
(** Pointwise maximum of two vectors (CC read pulling in the writer's
    context, Fig. 2). *)

val dominates : t -> t -> bool
(** [dominates a b] iff every entry of [b] is <= the matching entry of
    [a]. The paper's rule for choosing the "latest" stored context. *)

val bindings : t -> (Uid.t * Stamp.t) list
val cardinal : t -> int
val of_bindings : (Uid.t * Stamp.t) list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
