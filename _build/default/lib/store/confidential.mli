(** Value confidentiality (sections 5.2–5.3).

    Values are encrypted under a key the servers never learn, so a
    compromised server can disclose only meta-data. Timestamps are
    additionally advanced by a random increment on each write so servers
    cannot even count a client's updates. Key rotation re-encrypts every
    item in the group and writes it back (the paper's owner-key-change
    procedure). *)

type t

val make :
  client:Client.t -> key:string -> ?rng_seed:string -> unit -> t
(** Wrap a connected session with an encryption key (any string; expanded
    internally). The paper's three sharing patterns map to who holds
    [key]: only the owner (non-shared), the readers (single-writer
    shared), or all writers (multi-writer). *)

val write : t -> item:string -> string -> (unit, Client.error) result
val read : t -> item:string -> (string, Client.error) result
(** [Error Write_rejected] also covers decryption failure on read —
    surfaced distinctly by {!read_opt}. *)

val read_opt : t -> item:string -> (string option, Client.error) result
(** [Ok None] when the stored blob does not authenticate under the
    current key (e.g. a malicious server replayed a blob from before a
    key rotation). *)

val rotate_key : t -> new_key:string -> items:string list -> (unit, Client.error) result
(** Re-encrypt the listed items under [new_key] and write them back. *)

val client : t -> Client.t
