(** Write-log auditing (the Bayou follow-up's logging-and-auditing idea,
    which the paper cites as the recovery story for corrupted servers).

    Each server's announced-write history is committed to a Merkle root;
    an auditor can demand inclusion proofs for any write a client claims
    to have made, and compare roots across servers after full
    dissemination. *)

type commitment = { server : int; size : int; root : string }

val commit : Server.t -> commitment
(** Commit the server's audit log (oldest write first). *)

val prove_write :
  Server.t -> Payload.write -> (Crypto.Merkle.proof * commitment) option
(** Inclusion proof for a specific write in the server's log. *)

val check_proof : commitment -> Payload.write -> Crypto.Merkle.proof -> bool

val roots_agree : Server.t array -> bool
(** After {!Gossip.flood}, honest servers that saw the same writes in the
    same order agree; disagreement localizes tampering. Order can differ
    benignly, so this checks multiset equality of log entries, not raw
    root equality. *)
