let ceil_div a b = (a + b - 1) / b
let context_quorum ~n ~b = ceil_div (n + b + 1) 2
let write_set ~b = b + 1
let read_set ~b = b + 1
let mw_write_set ~b = (2 * b) + 1
let mw_read_quorum ~b = (2 * b) + 1
let mw_vouch ~b = b + 1
let masking_quorum ~n ~b = ceil_div (n + (2 * b) + 1) 2
let majority_quorum ~n = ceil_div (n + 1) 2
let context_overlap ~n ~b = (2 * context_quorum ~n ~b) - n
let max_b ~n = (n - 1) / 3

let validate ~n ~b =
  if n <= 0 then Error "need at least one server"
  else if b < 0 then Error "b must be non-negative"
  else if n < (3 * b) + 1 then
    Error (Printf.sprintf "n=%d cannot tolerate b=%d faults: need n >= 3b+1 = %d" n b ((3 * b) + 1))
  else Ok ()
