lib/tcpnet/server_host.ml: Char Frame Fun List Mutex Store String Thread Unix
