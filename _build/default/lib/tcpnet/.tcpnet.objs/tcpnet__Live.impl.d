lib/tcpnet/live.ml: Effect Frame Fun List Mutex Sim String Thread Unix
