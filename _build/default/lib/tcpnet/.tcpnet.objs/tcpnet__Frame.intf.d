lib/tcpnet/frame.mli: Unix
