lib/tcpnet/frame.ml: Bytes Char String Unix
