lib/tcpnet/server_host.mli: Store
