lib/tcpnet/live.mli: Sim
