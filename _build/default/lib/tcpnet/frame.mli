(** Length-prefixed framing over stream sockets.

    A frame is a 4-byte big-endian length followed by that many bytes.
    Frames are capped at 16 MiB — a malformed or malicious peer cannot
    make us allocate unboundedly. *)

val max_frame : int

val write_frame : Unix.file_descr -> string -> unit
(** @raise Unix.Unix_error on socket errors.
    @raise Invalid_argument if the payload exceeds {!max_frame}. *)

val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF before or inside a frame, or on an oversized
    length prefix. *)
