(** Real-time, real-socket interpretation of the {!Sim.Runtime} effects.

    The third interpreter for the same protocol code: [Now] is the wall
    clock, [Sleep] blocks the thread, [Call_many] fans out one thread
    per destination and wakes the caller at quorum or deadline, and
    one-way sends are fire-and-forget. Endpoint resolution maps node ids
    to [(host, port)] pairs served by {!Server_host}. *)

type endpoints = Sim.Runtime.node_id -> (string * int) option

val run : endpoints:endpoints -> (unit -> 'a) -> 'a
(** Interpret the thunk's effects over TCP. Unresolvable or unreachable
    destinations simply never reply (indistinguishable from a crashed
    server, as in the paper's model). *)
