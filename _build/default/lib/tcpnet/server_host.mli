(** Host a {!Store.Server} behind a TCP listener.

    Wire sub-protocol (inside {!Frame}s):
    - request frame:  one tag byte — [0x00] one-way, [0x01] call — then
      the {!Store.Payload.envelope} bytes;
    - response frame (calls only): [0x00] for "no reply" or [0x01]
      followed by the {!Store.Payload.response} bytes.

    One thread per connection; the store state is guarded by a mutex so
    the passive-server semantics match the in-process ones. An optional
    gossip thread pushes newly accepted writes to peer endpoints. *)

type gossip = { peers : (string * int) list; period : float }

type t

val start : ?gossip:gossip -> server:Store.Server.t -> port:int -> unit -> t
(** Bind, listen and serve on a background thread; returns immediately.
    [port = 0] picks an ephemeral port (see {!port}). *)

val port : t -> int
val stop : t -> unit
(** Close the listener and stop the gossip thread. In-flight connection
    threads finish their current request. *)
