let max_frame = 16 * 1024 * 1024

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Frame.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf 0 (4 + len)

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go pos =
    if pos >= len then Some (Bytes.unsafe_to_string buf)
    else begin
      match Unix.read fd buf pos (len - pos) with
      | 0 -> None
      | n -> go (pos + n)
    end
  in
  go 0

let read_frame fd =
  match read_exactly fd 4 with
  | None -> None
  | Some header ->
    let b i = Char.code header.[i] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then None else read_exactly fd len
