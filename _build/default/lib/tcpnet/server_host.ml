type gossip = { peers : (string * int) list; period : float }

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  mutable running : bool;
  lock : Mutex.t;
}

let with_lock t fn =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) fn

let handle_connection t server fd =
  let rec loop () =
    match Frame.read_frame fd with
    | None -> ()
    | Some request when String.length request >= 1 ->
      let tag = Char.code request.[0] in
      let payload = String.sub request 1 (String.length request - 1) in
      let response =
        with_lock t (fun () ->
            Store.Server.handler server ~now:(Unix.gettimeofday ()) ~from:(-1)
              payload)
      in
      if tag = 1 then begin
        match response with
        | Some r -> Frame.write_frame fd ("\x01" ^ r)
        | None -> Frame.write_frame fd "\x00"
      end;
      loop ()
    | Some _ -> ()
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let push_to_peer ~host ~port payload =
  match
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | fd ->
    (try Frame.write_frame fd ("\x00" ^ payload)
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception (Unix.Unix_error _ | Failure _) -> ()

let gossip_loop t server { peers; period } =
  while t.running do
    Thread.delay period;
    let writes = with_lock t (fun () -> Store.Server.take_gossip_buffer server) in
    match writes with
    | [] -> ()
    | writes ->
      let payload =
        Store.Payload.encode_envelope
          {
            Store.Payload.token = None;
            request =
              Store.Payload.Gossip_push
                { writes; have = Store.Server.gossip_summary server };
          }
      in
      List.iter (fun (host, port) -> push_to_peer ~host ~port payload) peers
  done

let start ?gossip ~server ~port () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listener 64;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t = { listener; bound_port; running = true; lock = Mutex.create () } in
  let accept_loop () =
    while t.running do
      match Unix.accept listener with
      | fd, _ -> ignore (Thread.create (handle_connection t server) fd)
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    done
  in
  ignore (Thread.create accept_loop ());
  (match gossip with
  | Some g -> ignore (Thread.create (gossip_loop t server) g)
  | None -> ());
  t

let port t = t.bound_port

let stop t =
  t.running <- false;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
