open Effect.Deep

type endpoints = Sim.Runtime.node_id -> (string * int) option

let connect_to (host, port) =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> Some fd
  | exception _ ->
    (try Unix.close fd with _ -> ());
    None

(* One request per connection: simple and adequate for a demo transport
   (a production build would pool connections). *)
let call_once endpoint payload =
  match connect_to endpoint with
  | None -> None
  | Some fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        match
          Frame.write_frame fd ("\x01" ^ payload);
          Frame.read_frame fd
        with
        | Some r when String.length r >= 1 && r.[0] = '\x01' ->
          Some (String.sub r 1 (String.length r - 1))
        | Some _ | None -> None
        | exception _ -> None)

let send_once endpoint payload =
  match connect_to endpoint with
  | None -> ()
  | Some fd ->
    (try Frame.write_frame fd ("\x00" ^ payload) with _ -> ());
    (try Unix.close fd with _ -> ())

let do_call_many ~endpoints (spec : Sim.Runtime.call_spec) =
  let lock = Mutex.create () in
  let replies = ref [] in
  let arrived = ref 0 in
  List.iter
    (fun dst ->
      match endpoints dst with
      | None -> ()
      | Some endpoint ->
        ignore
          (Thread.create
             (fun () ->
               match call_once endpoint spec.Sim.Runtime.request with
               | Some payload ->
                 Mutex.lock lock;
                 replies := { Sim.Runtime.from = dst; payload } :: !replies;
                 incr arrived;
                 Mutex.unlock lock
               | None -> ())
             ()))
    spec.Sim.Runtime.dsts;
  (* OCaml's Condition has no timed wait; poll at 1 ms granularity. *)
  let deadline = Unix.gettimeofday () +. spec.Sim.Runtime.timeout in
  let quorum = spec.Sim.Runtime.quorum in
  let rec wait () =
    let done_ =
      Mutex.lock lock;
      let d = !arrived >= quorum in
      Mutex.unlock lock;
      d
    in
    if done_ || Unix.gettimeofday () >= deadline then ()
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ();
  Mutex.lock lock;
  let result = List.rev !replies in
  Mutex.unlock lock;
  result

let run ~endpoints fn =
  let rec interpret : 'a. (unit -> 'a) -> 'a =
    fun fn ->
      match_with fn ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Sim.Runtime.Now ->
                Some
                  (fun (k : (a, _) continuation) ->
                    continue k (Unix.gettimeofday ()))
              | Sim.Runtime.Sleep d ->
                Some
                  (fun (k : (a, _) continuation) ->
                    Thread.delay (max 0.0 d);
                    continue k ())
              | Sim.Runtime.Fork f ->
                Some
                  (fun (k : (a, _) continuation) ->
                    ignore (Thread.create (fun () -> interpret f) ());
                    continue k ())
              | Sim.Runtime.Send_oneway (dst, payload) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    (match endpoints dst with
                    | Some endpoint -> send_once endpoint payload
                    | None -> ());
                    continue k ())
              | Sim.Runtime.Call_many spec ->
                Some
                  (fun (k : (a, _) continuation) ->
                    continue k (do_call_many ~endpoints spec))
              | _ -> None);
        }
  in
  interpret fn
