(** Authenticated encryption: ChaCha20 encrypt-then-HMAC-SHA256.

    Used by the store's confidentiality layer (paper section 5.2/5.3):
    values are encrypted under keys the servers never learn, so a
    compromised server can leak only meta-data. Encryption and MAC keys
    are derived from one master key; the tag covers nonce, associated
    data, and ciphertext. *)

type key

val key_of_string : string -> key
(** Any string; internally expanded with HKDF-style HMAC derivation. *)

val encrypt : key -> nonce:string -> ?ad:string -> string -> string
(** [encrypt k ~nonce pt] is [nonce || ciphertext || tag].
    Nonce must be 12 bytes; never reuse one per key. *)

val decrypt : key -> ?ad:string -> string -> string option
(** [None] if the tag fails or the blob is malformed. *)

val random_nonce : Prng.t -> string
