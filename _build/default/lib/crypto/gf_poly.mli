(** Polynomials over GF(2^8), coefficient arrays lowest-degree first. *)

val eval : int array -> int -> int
(** Horner evaluation. *)

val interpolate : (int * int) list -> int array
(** Coefficients of the unique polynomial of degree < #points through
    the given (x, y) points.
    @raise Invalid_argument on duplicate x values or an empty list. *)

val interpolate_at : (int * int) list -> int -> int
(** Lagrange evaluation at a single point without building coefficients
    (what Shamir reconstruction at x = 0 needs).
    @raise Invalid_argument on duplicate x values or an empty list. *)
