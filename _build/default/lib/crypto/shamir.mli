(** Shamir secret sharing over GF(2^8), byte-wise.

    Any [threshold] of the [shares] reconstruct the secret; fewer reveal
    information-theoretically nothing. The paper cites fragmentation-
    scattering [Fray et al.] as a complementary technique: this is the
    threshold primitive behind it, usable e.g. to escrow a family's
    master key among trustees. *)

type share = { x : int; data : string }
(** [x] in [1, 255] identifies the share; [data] has the secret's length. *)

val split : Prng.t -> threshold:int -> shares:int -> string -> share list
(** @raise Invalid_argument unless 1 <= threshold <= shares <= 255. *)

val combine : threshold:int -> share list -> string option
(** Reconstruct from at least [threshold] shares (extras ignored).
    [None] if there are too few shares, duplicate indices, or mismatched
    lengths. Wrong-but-well-formed shares yield garbage, not an error —
    pair with a digest or AEAD when integrity matters. *)

val share_to_string : share -> string
val share_of_string : string -> share option
(** Compact serialization: 1 index byte then the data. *)
