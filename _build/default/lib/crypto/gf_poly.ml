let eval coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Gf256.add (Gf256.mul !acc x) coeffs.(i)
  done;
  !acc

let check_points points =
  if points = [] then invalid_arg "Gf_poly: no points";
  let xs = List.map fst points in
  if List.length (List.sort_uniq Int.compare xs) <> List.length xs then
    invalid_arg "Gf_poly: duplicate x values"

(* Multiply polynomial [p] by the monomial (x + c) — remember that + and
   - coincide in GF(2^8), so (x - xj) is (x + xj). *)
let mul_monomial p c =
  let n = Array.length p in
  let out = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    out.(i + 1) <- Gf256.add out.(i + 1) p.(i);
    out.(i) <- Gf256.add out.(i) (Gf256.mul c p.(i))
  done;
  out

let add_scaled target p scale =
  Array.iteri
    (fun i coeff -> target.(i) <- Gf256.add target.(i) (Gf256.mul scale coeff))
    p

(* Lagrange basis expansion: sum_j y_j * prod_{m<>j} (x + x_m)/(x_j + x_m). *)
let interpolate points =
  check_points points;
  let k = List.length points in
  let out = Array.make k 0 in
  List.iter
    (fun (xj, yj) ->
      if yj <> 0 then begin
        let basis = ref [| 1 |] in
        let denom = ref 1 in
        List.iter
          (fun (xm, _) ->
            if xm <> xj then begin
              basis := mul_monomial !basis xm;
              denom := Gf256.mul !denom (Gf256.add xj xm)
            end)
          points;
        add_scaled out !basis (Gf256.div yj !denom)
      end)
    points;
  out

let interpolate_at points x0 =
  check_points points;
  List.fold_left
    (fun acc (xj, yj) ->
      let num = ref 1 and denom = ref 1 in
      List.iter
        (fun (xm, _) ->
          if xm <> xj then begin
            num := Gf256.mul !num (Gf256.add x0 xm);
            denom := Gf256.mul !denom (Gf256.add xj xm)
          end)
        points;
      Gf256.add acc (Gf256.mul yj (Gf256.div !num !denom)))
    0 points
