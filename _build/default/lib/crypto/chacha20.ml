let key_size = 32
let nonce_size = 12
let mask32 = 0xffffffff

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let word32_le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let init_state ~key ~nonce ~counter =
  if String.length key <> key_size then invalid_arg "Chacha20: key size";
  if String.length nonce <> nonce_size then invalid_arg "Chacha20: nonce size";
  let st = Array.make 16 0 in
  (* "expand 32-byte k" *)
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- word32_le key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- word32_le nonce (4 * i)
  done;
  st

let block ~key ~nonce ~counter =
  let init = init_state ~key ~nonce ~counter in
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = (st.(i) + init.(i)) land mask32 in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  Bytes.unsafe_to_string out

let keystream ~key ~nonce ~counter n =
  let out = Buffer.create n in
  let blocks = (n + 63) / 64 in
  for i = 0 to blocks - 1 do
    let b = block ~key ~nonce ~counter:(counter + i) in
    let take = min 64 (n - (64 * i)) in
    Buffer.add_substring out b 0 take
  done;
  Buffer.contents out

let encrypt ~key ~nonce ?(counter = 1) plaintext =
  let n = String.length plaintext in
  let ks = keystream ~key ~nonce ~counter n in
  String.init n (fun i -> Char.chr (Char.code plaintext.[i] lxor Char.code ks.[i]))
