let leaf_hash payload = Sha256.digest ("\x00" ^ payload)
let node_hash l r = Sha256.digest ("\x01" ^ l ^ r)
let empty_root = Sha256.digest "\x02merkle-empty"

type tree = { leaves : string array; levels : string array list }
(* [levels] runs from the leaf-hash level up to the singleton root level.
   An odd node at the end of a level is promoted unchanged. *)

type proof = { index : int; path : (string * [ `Left | `Right ]) list }

let build_levels leaf_hashes =
  let rec up acc level =
    if Array.length level <= 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init ((n + 1) / 2) (fun i ->
            if (2 * i) + 1 < n then node_hash level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) parent
    end
  in
  up [] leaf_hashes

let of_leaves payloads =
  let leaves = Array.of_list payloads in
  if Array.length leaves = 0 then { leaves; levels = [] }
  else { leaves; levels = build_levels (Array.map leaf_hash leaves) }

let size t = Array.length t.leaves

let root t =
  match List.rev t.levels with
  | [] -> empty_root
  | top :: _ -> top.(0)

let prove t index =
  if index < 0 || index >= Array.length t.leaves then None
  else begin
    let rec walk i levels acc =
      match levels with
      | [] | [ _ ] -> List.rev acc
      | level :: rest ->
        let sibling = if i land 1 = 0 then i + 1 else i - 1 in
        let acc =
          if sibling < Array.length level then
            (level.(sibling), (if i land 1 = 0 then `Right else `Left)) :: acc
          else acc
        in
        walk (i / 2) rest acc
    in
    Some { index; path = walk index t.levels [] }
  end

let verify ~root:expected ~leaf proof =
  let h =
    List.fold_left
      (fun h (sibling, side) ->
        match side with
        | `Right -> node_hash h sibling
        | `Left -> node_hash sibling h)
      (leaf_hash leaf) proof.path
  in
  Hmac.equal_constant_time h expected
