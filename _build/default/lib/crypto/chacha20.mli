(** ChaCha20 stream cipher (RFC 8439).

    Keys are 32 bytes, nonces 12 bytes. Encryption and decryption are the
    same XOR operation. *)

val key_size : int
(** 32. *)

val nonce_size : int
(** 12. *)

val block : key:string -> nonce:string -> counter:int -> string
(** One 64-byte keystream block for the given 32-bit block [counter]. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the input with the keystream starting at block [counter]
    (default 1, per the RFC's AEAD convention). *)

val keystream : key:string -> nonce:string -> counter:int -> int -> string
(** [keystream ~key ~nonce ~counter n] is [n] bytes of raw keystream. *)
