type t = {
  key : string;
  mutable block_counter : int;
  mutable buffer : string;
  mutable pos : int;
}

let nonce = String.make Chacha20.nonce_size '\000'

let create ~seed =
  { key = Sha256.digest seed; block_counter = 0; buffer = ""; pos = 0 }

let refill t =
  (* Pull 16 blocks (1 KiB) at a time to amortize setup. *)
  t.buffer <- Chacha20.keystream ~key:t.key ~nonce ~counter:t.block_counter 1024;
  t.block_counter <- t.block_counter + 16;
  t.pos <- 0

let bytes t n =
  let out = Buffer.create n in
  let remaining = ref n in
  while !remaining > 0 do
    if t.pos >= String.length t.buffer then refill t;
    let take = min !remaining (String.length t.buffer - t.pos) in
    Buffer.add_substring out t.buffer t.pos take;
    t.pos <- t.pos + take;
    remaining := !remaining - take
  done;
  Buffer.contents out

let byte t = Char.code (bytes t 1).[0]

let uint62 t =
  let s = bytes t 8 in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v land max_int

let int_below t bound =
  if bound <= 0 then invalid_arg "Prng.int_below: non-positive bound";
  (* Rejection sampling over the smallest power-of-two envelope. *)
  let rec mask_for m = if m >= bound - 1 then m else mask_for ((m lsl 1) lor 1) in
  let mask = if bound = 1 then 0 else mask_for 1 in
  let rec draw () =
    let v = uint62 t land mask in
    if v < bound then v else draw ()
  in
  draw ()

let float_unit t = float_of_int (uint62 t land ((1 lsl 53) - 1)) /. 9007199254740992.0

let bits t k =
  if k <= 0 then Bignum.zero
  else begin
    let nbytes = (k + 7) / 8 in
    let s = Bytes.of_string (bytes t nbytes) in
    let extra = (8 * nbytes) - k in
    (* Zero the surplus high bits of the leading byte. *)
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land (0xff lsr extra)));
    Bignum.of_bytes_be (Bytes.unsafe_to_string s)
  end

let odd_with_top_bits t k =
  if k < 3 then invalid_arg "Prng.odd_with_top_bits: too few bits";
  let v = bits t k in
  let v = Bignum.(if is_even v then add_int v 1 else v) in
  let top = Bignum.(add (shift_left one (k - 1)) (shift_left one (k - 2))) in
  (* Force the two top bits by OR-style addition of any missing one. *)
  let v = if Bignum.bit v (k - 1) then v else Bignum.(add v (shift_left one (k - 1))) in
  let v = if Bignum.bit v (k - 2) then v else Bignum.(add v (shift_left one (k - 2))) in
  assert (Bignum.compare v top >= 0);
  v

let split t ~label = create ~seed:(t.key ^ ":" ^ label)
