let block_size = Sha256.block_size

let normalize_key key =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with s byte =
  String.init (String.length s) (fun i -> Char.chr (Char.code s.[i] lxor byte))

let sha256 ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_with key 0x36);
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer (xor_with key 0x5c);
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let equal_constant_time a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0

let verify ~key ~msg ~tag = equal_constant_time (sha256 ~key msg) tag
