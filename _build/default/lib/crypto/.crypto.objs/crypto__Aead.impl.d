lib/crypto/aead.ml: Chacha20 Hmac Printf Prng String
