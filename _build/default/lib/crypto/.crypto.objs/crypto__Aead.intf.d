lib/crypto/aead.mli: Prng
