lib/crypto/gf_poly.mli:
