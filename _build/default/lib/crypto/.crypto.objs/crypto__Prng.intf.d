lib/crypto/prng.mli: Bignum
