lib/crypto/shamir.mli: Prng
