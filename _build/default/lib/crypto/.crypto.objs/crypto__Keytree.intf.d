lib/crypto/keytree.mli:
