lib/crypto/prime.mli: Bignum Prng
