lib/crypto/rsa.ml: Bignum Hexs Hmac Prime Sha256 String
