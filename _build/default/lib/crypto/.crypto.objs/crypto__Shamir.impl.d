lib/crypto/shamir.ml: Array Bytes Char Gf_poly Int List Prng String
