lib/crypto/merkle.mli:
