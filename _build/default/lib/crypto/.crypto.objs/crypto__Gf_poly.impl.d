lib/crypto/gf_poly.ml: Array Gf256 Int List
