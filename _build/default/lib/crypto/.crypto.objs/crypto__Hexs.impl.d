lib/crypto/hexs.ml: Bytes Char String
