lib/crypto/prime.ml: Array Bignum Prng
