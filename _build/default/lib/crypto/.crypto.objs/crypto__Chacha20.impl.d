lib/crypto/chacha20.ml: Array Buffer Bytes Char String
