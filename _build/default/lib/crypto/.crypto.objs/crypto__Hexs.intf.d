lib/crypto/hexs.mli:
