lib/crypto/hmac.mli:
