lib/crypto/keytree.ml: Aead Array Hashtbl List Option Prng
