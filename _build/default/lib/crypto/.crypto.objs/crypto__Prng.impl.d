lib/crypto/prng.ml: Bignum Buffer Bytes Chacha20 Char Sha256 String
