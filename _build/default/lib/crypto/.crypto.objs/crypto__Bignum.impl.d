lib/crypto/bignum.ml: Array Char Format Hexs Stdlib String
