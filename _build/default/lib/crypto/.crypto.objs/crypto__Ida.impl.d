lib/crypto/ida.ml: Array Bytes Char Gf_poly Int List String
