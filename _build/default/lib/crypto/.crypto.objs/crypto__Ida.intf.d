lib/crypto/ida.mli:
