type share = { x : int; data : string }

let split rng ~threshold ~shares secret =
  if threshold < 1 || threshold > shares || shares > 255 then
    invalid_arg "Shamir.split: need 1 <= threshold <= shares <= 255";
  let len = String.length secret in
  let outputs = Array.init shares (fun _ -> Bytes.create len) in
  (* One random polynomial per secret byte, constant term = the byte. *)
  let coeffs = Array.make threshold 0 in
  for pos = 0 to len - 1 do
    coeffs.(0) <- Char.code secret.[pos];
    let random = Prng.bytes rng (threshold - 1) in
    for i = 1 to threshold - 1 do
      coeffs.(i) <- Char.code random.[i - 1]
    done;
    for s = 0 to shares - 1 do
      Bytes.set outputs.(s) pos (Char.chr (Gf_poly.eval coeffs (s + 1)))
    done
  done;
  List.init shares (fun s -> { x = s + 1; data = Bytes.unsafe_to_string outputs.(s) })

let combine ~threshold shares =
  let distinct =
    List.sort_uniq (fun a b -> Int.compare a.x b.x) shares
    |> List.filteri (fun i _ -> i < threshold)
  in
  match distinct with
  | first :: _ when List.length distinct >= threshold ->
    let len = String.length first.data in
    if List.exists (fun s -> String.length s.data <> len) distinct then None
    else if List.exists (fun s -> s.x < 1 || s.x > 255) distinct then None
    else begin
      let out = Bytes.create len in
      for pos = 0 to len - 1 do
        let points = List.map (fun s -> (s.x, Char.code s.data.[pos])) distinct in
        Bytes.set out pos (Char.chr (Gf_poly.interpolate_at points 0))
      done;
      Some (Bytes.unsafe_to_string out)
    end
  | _ -> None

let share_to_string s = String.make 1 (Char.chr s.x) ^ s.data

let share_of_string s =
  if String.length s < 1 then None
  else begin
    let x = Char.code s.[0] in
    if x < 1 then None else Some { x; data = String.sub s 1 (String.length s - 1) }
  end
