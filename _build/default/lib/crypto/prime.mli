(** Probabilistic primality testing and prime generation. *)

val small_primes : int array
(** Primes below 2000, for trial division. *)

val is_probably_prime : ?rounds:int -> Prng.t -> Bignum.t -> bool
(** Trial division by {!small_primes} followed by [rounds] Miller-Rabin
    iterations with bases drawn from the generator (default 24 rounds,
    error probability below 4^-24). *)

val generate : ?rounds:int -> Prng.t -> bits:int -> Bignum.t
(** A random probable prime with exactly [bits] bits and the two top bits
    set. [bits] must be at least 8. *)
