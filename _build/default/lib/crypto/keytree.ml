(* Heap-shaped binary tree: root is node 1, node v's children are 2v and
   2v+1, leaves occupy [capacity, 2*capacity). A node's key exists iff
   some member sits in its subtree (plus the root, which the manager
   always keeps so the group key is defined). *)

type rekey_message = { node : int; under : int; sealed : string }

type manager = {
  capacity : int;
  keys : string option array; (* length 2*capacity *)
  leaves : (string, int) Hashtbl.t; (* member name -> leaf node *)
  prng : Prng.t;
}

type member = {
  name : string;
  leaf_key : string;
  known : (int, string) Hashtbl.t; (* tree node -> key *)
}

let round_up_pow2 v =
  let rec go p = if p >= v then p else go (2 * p) in
  go 1

let create_manager ~capacity ~seed =
  if capacity < 1 then invalid_arg "Keytree.create_manager: capacity";
  let capacity = round_up_pow2 capacity in
  let t =
    {
      capacity;
      keys = Array.make (2 * capacity) None;
      leaves = Hashtbl.create 16;
      prng = Prng.create ~seed:("keytree/" ^ seed);
    }
  in
  t.keys.(1) <- Some (Prng.bytes t.prng 32);
  t

let group_key t = Option.get t.keys.(1)
let members t = Hashtbl.fold (fun name _ acc -> name :: acc) t.leaves []

let seal t ~under_key ~node newkey =
  let key = Aead.key_of_string under_key in
  let nonce = Aead.random_nonce t.prng in
  Aead.encrypt key ~nonce ~ad:(string_of_int node) newkey

(* Bottom-up list of the strict ancestors of [leaf]: parent first, root
   last. *)
let path_to_root _t leaf =
  let rec up v acc = if v < 1 then List.rev acc else up (v / 2) (v :: acc) in
  up (leaf / 2) []

(* Re-key every strict ancestor of [leaf], bottom-up, emitting one sealed
   copy of each new key per live child. Assumes the leaf's own key slot
   already reflects the operation (set on join, cleared on leave). *)
let rekey_path t leaf =
  let messages = ref [] in
  List.iter
    (fun v ->
      let live c = t.keys.(c) <> None in
      let children = [ 2 * v; (2 * v) + 1 ] in
      let live_children = List.filter live children in
      if live_children = [] && v <> 1 then t.keys.(v) <- None
      else begin
        let fresh = Prng.bytes t.prng 32 in
        List.iter
          (fun c ->
            match t.keys.(c) with
            | Some child_key ->
              messages :=
                { node = v; under = c; sealed = seal t ~under_key:child_key ~node:v fresh }
                :: !messages
            | None -> ())
          children;
        t.keys.(v) <- Some fresh
      end)
    (path_to_root t leaf);
  List.rev !messages

let free_leaf t =
  let rec find l =
    if l >= 2 * t.capacity then None
    else if t.keys.(l) = None then Some l
    else find (l + 1)
  in
  find t.capacity

let join t ~name ~leaf_key =
  if Hashtbl.mem t.leaves name then
    invalid_arg ("Keytree.join: member already present: " ^ name);
  match free_leaf t with
  | None -> invalid_arg "Keytree.join: group full"
  | Some leaf ->
    Hashtbl.replace t.leaves name leaf;
    t.keys.(leaf) <- Some leaf_key;
    rekey_path t leaf

let leave t ~name =
  match Hashtbl.find_opt t.leaves name with
  | None -> raise Not_found
  | Some leaf ->
    Hashtbl.remove t.leaves name;
    t.keys.(leaf) <- None;
    rekey_path t leaf

(* --- member side -------------------------------------------------------- *)

let create_member ~name ~leaf_key = { name; leaf_key; known = Hashtbl.create 8 }

let try_open ~under_key ~node sealed =
  Aead.decrypt (Aead.key_of_string under_key) ~ad:(string_of_int node) sealed

let apply m messages =
  (* Iterate to a fixpoint so message order does not matter. *)
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun { node; under; sealed } ->
        let attempt under_key remember_leaf =
          match try_open ~under_key ~node sealed with
          | Some key ->
            if Hashtbl.find_opt m.known node <> Some key then begin
              Hashtbl.replace m.known node key;
              if remember_leaf then Hashtbl.replace m.known under m.leaf_key;
              progressed := true
            end
          | None -> ()
        in
        match Hashtbl.find_opt m.known under with
        | Some key -> attempt key false
        | None ->
          (* Maybe this is sealed under our personal leaf key; success
             also teaches us our leaf's node id. *)
          attempt m.leaf_key true)
      messages
  done

let member_group_key m = Hashtbl.find_opt m.known 1
