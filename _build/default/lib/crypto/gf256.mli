(** Arithmetic in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.

    Elements are ints in [0, 255]. Addition is XOR; multiplication uses
    log/antilog tables over the generator 3. Substrate for
    {!Shamir} secret sharing and {!Ida} information dispersal. *)

val add : int -> int -> int
val sub : int -> int -> int
(** Same as {!add} in characteristic 2. *)

val mul : int -> int -> int

val inv : int -> int
(** @raise Division_by_zero on 0. *)

val div : int -> int -> int
val pow : int -> int -> int
(** [pow a k] with [k >= 0]. *)
