(** Deterministic cryptographic pseudo-random generator.

    ChaCha20 keystream keyed by SHA-256 of a seed string. Deterministic by
    construction: the same seed always yields the same stream, which keeps
    key generation and experiments reproducible. *)

type t

val create : seed:string -> t

val bytes : t -> int -> string
(** The next [n] bytes of the stream. *)

val byte : t -> int
(** One byte, as an int in [0, 255]. *)

val int_below : t -> int -> int
(** Uniform in [0, bound); rejection-sampled. [bound] must be positive and
    fit in 62 bits. *)

val float_unit : t -> float
(** Uniform in [0, 1). *)

val bits : t -> int -> Bignum.t
(** A uniform [k]-bit value (top bits may be zero). *)

val odd_with_top_bits : t -> int -> Bignum.t
(** A [k]-bit odd value with the two most significant bits set — the shape
    of an RSA prime candidate (ensures products of two such reach the full
    modulus width). *)

val split : t -> label:string -> t
(** An independent generator derived from this one's seed and [label]. *)
