(* Log/antilog tables over generator 3 (a primitive element for the AES
   polynomial 0x11b). exp is doubled so that exp.(log a + log b) needs no
   mod 255. *)

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    (* multiply by the generator 3 = x + 1: shift-add with reduction *)
    let doubled = !x lsl 1 in
    let doubled = if doubled land 0x100 <> 0 then doubled lxor 0x11b else doubled in
    x := doubled lxor !x
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add a b = a lxor b
let sub = add

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero else exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let pow a k =
  if k < 0 then invalid_arg "Gf256.pow: negative exponent";
  if a = 0 then if k = 0 then 1 else 0
  else exp_table.(log_table.(a) * k mod 255)
