let small_primes =
  (* Sieve of Eratosthenes below 2000. *)
  let limit = 2000 in
  let composite = Array.make limit false in
  for i = 2 to limit - 1 do
    if not composite.(i) then begin
      let j = ref (i * i) in
      while !j < limit do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit - 1 downto 2 do
    if not composite.(i) then out := i :: !out
  done;
  Array.of_list !out

let passes_trial_division n =
  let small = Bignum.to_int_opt n in
  Array.for_all
    (fun p ->
      match small with
      | Some v when v = p -> true
      | _ -> Bignum.mod_int n p <> 0)
    small_primes

(* One Miller-Rabin round with base [a] for odd n = d * 2^s + 1. *)
let miller_rabin_round ~n ~n1 ~d ~s a =
  let x = Bignum.modexp ~base:a ~exp:d ~modulus:n in
  if Bignum.equal x Bignum.one || Bignum.equal x n1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Bignum.modexp ~base:x ~exp:Bignum.two ~modulus:n in
        if Bignum.equal x n1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 24) rng n =
  match Bignum.to_int_opt n with
  | Some v when v < 4000000 ->
    (* Exact for small values: trial-divide up to sqrt. *)
    v >= 2
    &&
    let rec go d = d * d > v || (v mod d <> 0 && go (d + 1)) in
    go 2
  | _ ->
    (not (Bignum.is_even n))
    && passes_trial_division n
    &&
    let n1 = Bignum.sub_int n 1 in
    let rec decompose d s =
      if Bignum.is_even d then decompose (Bignum.shift_right d 1) (s + 1)
      else (d, s)
    in
    let d, s = decompose n1 0 in
    let kbits = Bignum.num_bits n in
    let rec run i =
      i >= rounds
      ||
      (* Base uniform-ish in [2, n-2]: draw kbits and reduce. *)
      let a = Bignum.(add_int (rem (Prng.bits rng kbits) (sub_int n 3)) 2) in
      miller_rabin_round ~n ~n1 ~d ~s a && run (i + 1)
    in
    run 0

let generate ?rounds rng ~bits =
  if bits < 8 then invalid_arg "Prime.generate: too few bits";
  let rec search () =
    let candidate = Prng.odd_with_top_bits rng bits in
    if is_probably_prime ?rounds rng candidate then candidate else search ()
  in
  search ()
