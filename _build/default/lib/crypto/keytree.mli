(** Logical key hierarchy (LKH) for group key management — the
    Wong-Gouda-Lam key-graph scheme the store's paper cites for
    distributing and rotating the encryption key shared by a data item's
    readers (section 5.2).

    A manager (the data owner) maintains a binary tree of key-encrypting
    keys; each member holds the keys on its leaf-to-root path, and the
    root is the group key. Joining or evicting a member re-keys only that
    path: O(log n) small rekey messages instead of O(n) unicast keys, and
    an evicted member's stale keys decrypt none of them (forward
    secrecy); path re-keying on join also denies new members old traffic
    (backward secrecy).

    Leaf keys stand for each member's personal secure channel with the
    manager and are passed in explicitly. *)

type manager
type member

type rekey_message = {
  node : int;  (** tree node whose new key this carries *)
  under : int;  (** tree node whose (current) key encrypts it *)
  sealed : string;
}

val create_manager : capacity:int -> seed:string -> manager
(** [capacity] (a power of two is rounded up to) bounds group size. *)

val group_key : manager -> string
(** The current root key (use it to key {!Aead}). *)

val join : manager -> name:string -> leaf_key:string -> rekey_message list
(** Admit a member. The returned messages must be broadcast to the whole
    group (members ignore what they cannot decrypt). The new member's
    path keys are sealed under [leaf_key].
    @raise Invalid_argument if full or the name is already present. *)

val leave : manager -> name:string -> rekey_message list
(** Evict a member and re-key its path.
    @raise Not_found for unknown members. *)

val members : manager -> string list

val create_member : name:string -> leaf_key:string -> member
val apply : member -> rekey_message list -> unit
(** Process a rekey broadcast: decrypt what the member's keys reach,
    learning new path keys. Undecryptable messages are skipped. *)

val member_group_key : member -> string option
(** The group key as this member currently knows it; [None] before the
    member has processed its join broadcast. *)
