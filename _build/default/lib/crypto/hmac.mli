(** HMAC-SHA256 (RFC 2104 / RFC 4231). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys longer than the SHA-256 block size are hashed first, per the RFC. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of [tag] against the recomputed tag. *)

val equal_constant_time : string -> string -> bool
(** Timing-safe string equality (length leaks, contents do not). *)
