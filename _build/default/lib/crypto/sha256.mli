(** SHA-256 (FIPS 180-4), pure OCaml.

    Digests are returned as raw 32-byte strings; use {!Hexs.encode} for a
    printable form. The streaming interface ({!init} / {!update} /
    {!finalize}) processes input incrementally; {!digest} is the one-shot
    convenience. *)

type ctx
(** Mutable hashing state. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64. *)

val init : unit -> ctx

val update : ctx -> string -> unit
(** Absorb the whole string. *)

val update_sub : ctx -> string -> pos:int -> len:int -> unit
(** Absorb [len] bytes of [s] starting at [pos]. *)

val finalize : ctx -> string
(** Pad, produce the 32-byte digest, and invalidate [ctx] for further
    updates (further use raises [Invalid_argument]). *)

val digest : string -> string
(** [digest s] is the SHA-256 of [s] as a raw 32-byte string. *)

val hex_digest : string -> string
(** [hex_digest s = Hexs.encode (digest s)]. *)
