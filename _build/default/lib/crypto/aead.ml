type key = { enc : string; mac : string }

let key_of_string master =
  {
    enc = Hmac.sha256 ~key:master "securestore/aead/enc";
    mac = Hmac.sha256 ~key:master "securestore/aead/mac";
  }

let tag_size = 32

let mac_input ~nonce ~ad ~ct =
  (* Unambiguous framing: lengths precede variable fields. *)
  Printf.sprintf "%d:%d:%s%s%s" (String.length ad) (String.length ct) nonce ad
    ct

let encrypt key ~nonce ?(ad = "") plaintext =
  if String.length nonce <> Chacha20.nonce_size then
    invalid_arg "Aead.encrypt: nonce size";
  let ct = Chacha20.encrypt ~key:key.enc ~nonce plaintext in
  let tag = Hmac.sha256 ~key:key.mac (mac_input ~nonce ~ad ~ct) in
  nonce ^ ct ^ tag

let decrypt key ?(ad = "") blob =
  let n = String.length blob in
  if n < Chacha20.nonce_size + tag_size then None
  else begin
    let nonce = String.sub blob 0 Chacha20.nonce_size in
    let ct_len = n - Chacha20.nonce_size - tag_size in
    let ct = String.sub blob Chacha20.nonce_size ct_len in
    let tag = String.sub blob (Chacha20.nonce_size + ct_len) tag_size in
    if Hmac.verify ~key:key.mac ~msg:(mac_input ~nonce ~ad ~ct) ~tag then
      Some (Chacha20.encrypt ~key:key.enc ~nonce ct)
    else None
  end

let random_nonce rng = Prng.bytes rng Chacha20.nonce_size
