(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of the raw bytes [s]. *)

val decode : string -> string
(** [decode h] parses a hex string (case insensitive) back to raw bytes.
    @raise Invalid_argument on odd length or non-hex characters. *)
