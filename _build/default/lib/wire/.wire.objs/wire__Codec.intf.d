lib/wire/codec.mli:
