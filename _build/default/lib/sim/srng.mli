(** Fast deterministic random numbers for simulation (splitmix64).

    Not cryptographic — use {!Crypto.Prng} for keys. Every experiment
    threads one of these, seeded explicitly, so runs are reproducible. *)

type t

val create : int -> t
val copy : t -> t
val split : t -> t
(** An independently-seeded child generator. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int_below : t -> int -> int
(** Uniform in [0, bound); [bound] must be positive. *)

val uniform : t -> lo:float -> hi:float -> float
val exponential : t -> mean:float -> float
val lognormal : t -> mu:float -> sigma:float -> float
val bool_with_probability : t -> float -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
