type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let float t =
  (* 53 top bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int_below t bound =
  if bound <= 0 then invalid_arg "Srng.int_below: non-positive bound";
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* Box-Muller, one sample per call (the spare is discarded for
   reproducibility independence from call order). *)
let gaussian t =
  let u1 = max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))
let bool_with_probability t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Srng.pick: empty list"
  | l -> List.nth l (int_below t (List.length l))
