(** Network latency and loss models for the simulator.

    All times are in seconds. A sample of [None] means the message is
    dropped (loss, not delay). *)

type model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Lognormal of { mu : float; sigma : float }
      (** One-way delay exp(mu + sigma·N(0,1)); heavy-tailed, WAN-like. *)

type t = { model : model; drop_probability : float }

val make : ?drop_probability:float -> model -> t

val sample : t -> Srng.t -> float option
(** One-way delay for a message, or [None] if dropped. *)

val lan : t
(** 0.1–0.5 ms uniform, lossless; a datacenter or home network. *)

val wan : t
(** Lognormal with ~40 ms median and a heavy tail to ~200 ms, 0.5% loss —
    the widely-distributed community setting the paper targets. *)

val describe : t -> string
