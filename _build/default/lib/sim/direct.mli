(** Synchronous, zero-latency interpretation of the {!Runtime} effects.

    Unit tests use this to exercise protocol logic without a simulator:
    every call reaches every destination instantly and in destination
    order, time advances by a fixed epsilon per effect, forks run to
    completion immediately. *)

type handlers = Runtime.node_id -> from:Runtime.node_id -> string -> string option
(** [handlers dst ~from request] dispatches to server [dst]; [None] means
    no such server or no reply. *)

val run : handlers:handlers -> (unit -> 'a) -> 'a
(** Interpret the effects performed by the thunk. *)
