lib/sim/srng.mli:
