lib/sim/stats.mli:
