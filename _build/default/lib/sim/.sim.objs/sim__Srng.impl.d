lib/sim/srng.ml: Array Float Int64 List
