lib/sim/direct.ml: Effect Fun List Runtime
