lib/sim/runtime.ml: Effect List
