lib/sim/stats.ml: Array Float Printf
