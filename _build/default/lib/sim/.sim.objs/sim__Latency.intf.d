lib/sim/latency.mli: Srng
