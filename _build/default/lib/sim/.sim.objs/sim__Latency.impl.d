lib/sim/latency.ml: Printf Srng
