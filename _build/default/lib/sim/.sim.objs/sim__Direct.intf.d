lib/sim/direct.mli: Runtime
