lib/sim/heap.mli:
