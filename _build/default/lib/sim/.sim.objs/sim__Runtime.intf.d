lib/sim/runtime.mli: Effect
