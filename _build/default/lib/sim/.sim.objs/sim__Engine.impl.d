lib/sim/engine.ml: Effect Float Fun Hashtbl Heap Int Latency List Runtime Srng String
