lib/sim/engine.mli: Latency Runtime Srng
