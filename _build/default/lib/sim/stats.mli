(** Sample collection with summary statistics and percentiles. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t 50.0] is the median (nearest-rank on the sorted
    samples). Raises [Invalid_argument] when empty. *)

val summary : ?unit_label:string -> t -> string
(** "n=…, mean=…, p50=…, p99=…, max=…" one-liner. *)

val values : t -> float array
(** Copy of collected samples, insertion order. *)
