(** Imperative binary min-heap. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val size : 'a t -> int
val is_empty : 'a t -> bool
