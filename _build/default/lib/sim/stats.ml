type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : float array option; (* cache, invalidated on add *)
}

let create () = { data = [||]; size = 0; sorted = None }

let add t v =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let data = Array.make (max 64 (2 * cap)) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  t.sorted <- None

let count t = t.size
let values t = Array.sub t.data 0 t.size

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let require_nonempty t name =
  if t.size = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let mean t =
  require_nonempty t "mean";
  fold ( +. ) 0.0 t /. float_of_int t.size

let min_value t =
  require_nonempty t "min_value";
  fold min infinity t

let max_value t =
  require_nonempty t "max_value";
  fold max neg_infinity t

let stddev t =
  require_nonempty t "stddev";
  let m = mean t in
  let var = fold (fun acc v -> acc +. ((v -. m) ** 2.0)) 0.0 t /. float_of_int t.size in
  sqrt var

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = values t in
    Array.sort Float.compare s;
    t.sorted <- Some s;
    s

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  let s = sorted t in
  let n = Array.length s in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  s.(max 0 (min (n - 1) (rank - 1)))

let summary ?(unit_label = "") t =
  if t.size = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.4g%s p50=%.4g%s p99=%.4g%s max=%.4g%s" t.size
      (mean t) unit_label (percentile t 50.0) unit_label (percentile t 99.0)
      unit_label (max_value t) unit_label
