(** Deterministic discrete-event network simulator.

    Servers are registered as passive request handlers; client protocol
    code runs as fibers whose {!Runtime} effects the engine interprets
    under virtual time. Message delays come from a {!Latency} model and a
    seeded {!Srng}, so every run is reproducible from its seed. *)

type t

type counters = {
  mutable messages_sent : int;  (** requests + replies + one-way sends *)
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

val create : ?seed:int -> ?latency:Latency.t -> unit -> t

val add_server :
  t -> Runtime.node_id -> (now:float -> from:Runtime.node_id -> string -> string option) -> unit
(** Register the handler for a server id. A handler returning [None]
    sends no reply (the paper's "faulty servers may choose not to
    respond" is modelled this way too). Re-registering replaces the
    handler (used to swap in Byzantine wrappers). *)

val set_down : t -> Runtime.node_id -> bool -> unit
(** A down server receives nothing and sends nothing (crash failure). *)

val set_reachable : t -> (Runtime.node_id -> Runtime.node_id -> bool) -> unit
(** Network partition predicate [reachable src dst]; default always true. *)

val spawn : t -> ?at:float -> ?client:Runtime.node_id -> (unit -> unit) -> unit
(** Schedule a fiber. [client] is informational (the node id stamped as
    the sender of its requests; defaults to -1). *)

val post : t -> src:Runtime.node_id -> dst:Runtime.node_id -> string -> unit
(** One-way message injection from *outside* a fiber — the escape hatch
    that lets registered handlers themselves originate messages (e.g.
    PBFT replicas multicasting PREPAREs when a PRE-PREPARE arrives).
    Subject to the same latency, loss, partition and down-server rules. *)

type periodic
val every : t -> ?start:float -> period:float -> ?client:Runtime.node_id -> (unit -> unit) -> periodic
(** Run [fn] as a fresh fiber every [period] seconds of virtual time. *)

val cancel : periodic -> unit

val run : ?until:float -> t -> unit
(** Drain the event queue (or stop once virtual time passes [until]).
    Raises [Invalid_argument] if called re-entrantly from inside a fiber. *)

val now : t -> float
val counters : t -> counters
val reset_counters : t -> unit
val rng : t -> Srng.t
(** The engine's root RNG (e.g. to derive workload generators). *)
