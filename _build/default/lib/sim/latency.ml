type model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Lognormal of { mu : float; sigma : float }

type t = { model : model; drop_probability : float }

let make ?(drop_probability = 0.0) model = { model; drop_probability }

let sample_delay model rng =
  match model with
  | Constant d -> d
  | Uniform { lo; hi } -> Srng.uniform rng ~lo ~hi
  | Exponential { mean } -> Srng.exponential rng ~mean
  | Lognormal { mu; sigma } -> Srng.lognormal rng ~mu ~sigma

let sample t rng =
  if t.drop_probability > 0.0 && Srng.bool_with_probability rng t.drop_probability
  then None
  else Some (sample_delay t.model rng)

let lan = make (Uniform { lo = 0.0001; hi = 0.0005 })

(* exp(mu) is the median: mu = ln 0.040 for a 40 ms median one-way delay;
   sigma 0.5 puts the 99th percentile around 130 ms. *)
let wan = make ~drop_probability:0.005 (Lognormal { mu = log 0.040; sigma = 0.5 })

let describe t =
  let base =
    match t.model with
    | Constant d -> Printf.sprintf "constant %.4fs" d
    | Uniform { lo; hi } -> Printf.sprintf "uniform [%.4fs, %.4fs]" lo hi
    | Exponential { mean } -> Printf.sprintf "exponential mean %.4fs" mean
    | Lognormal { mu; sigma } ->
      Printf.sprintf "lognormal median %.4fs sigma %.2f" (exp mu) sigma
  in
  if t.drop_probability > 0.0 then
    Printf.sprintf "%s, %.2f%% loss" base (100.0 *. t.drop_probability)
  else base
