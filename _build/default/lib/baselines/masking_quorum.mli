(** Byzantine masking-quorum replicated register (Malkhi-Reiter; the
    Phalanx/Fleet construction the paper compares against in section 6).

    Quorums of ⌈(n+2b+1)/2⌉ servers; any two overlap in at least 2b+1
    servers, so b+1 correct servers witness every write — a reader
    accepts the highest timestamp vouched for by b+1 identical replies.
    Strong (safe-variable) semantics, paid for with larger quorums and
    one verification per quorum member on write.

    Writes are signed (self-verifying data); servers verify before
    storing. The optional [two_phase] write first reads the quorum to
    pick a timestamp — the classic protocol; the default single-phase
    variant uses a client-local timestamp, matching the paper's
    one-round-per-op accounting. *)

module Server : sig
  type t

  val create : id:int -> keyring:Store.Keyring.t -> t
  val handler : t -> now:float -> from:Sim.Runtime.node_id -> string -> string option
end

type error = No_quorum of { wanted : int; got : int } | Not_found

type t

val create :
  n:int ->
  b:int ->
  ?servers:Sim.Runtime.node_id list ->
  ?timeout:float ->
  ?two_phase:bool ->
  uid:string ->
  key:Crypto.Rsa.keypair ->
  keyring:Store.Keyring.t ->
  unit ->
  t

val quorum : t -> int
val write : t -> item:string -> string -> (unit, error) result
val read : t -> item:string -> (string, error) result
val error_to_string : error -> string
