(** PBFT-style state-machine replication (Castro & Liskov), reduced to
    the normal-case three-phase protocol: PRE-PREPARE, PREPARE, COMMIT,
    then execution in sequence order and replies to the client, which
    accepts f+1 matching replies. View changes are not implemented — the
    paper's comparison (section 6) is about normal-case cost, where the
    protocol exchanges O(n²) messages per operation against the secure
    store's O(b).

    Replicas authenticate pairwise with HMAC session keys (the MAC-based
    authenticators that make PBFT computationally cheap); every MAC
    computed is counted in {!Store.Metrics} so the signature-vs-MAC
    trade-off is measurable.

    Runs only under {!Sim.Engine} (replicas originate messages on
    receipt, which needs the engine's [post]). *)

type cluster

val create_cluster : engine:Sim.Engine.t -> n:int -> f:int -> cluster
(** Registers replicas at node ids 0..n-1. Requires n >= 3f+1; replica 0
    is the (fixed) primary. *)

val expected_messages_per_op : n:int -> int
(** The closed-form normal-case count:
    1 + (n-1) + (n-1)² + n(n-1) + n. *)

type client

val client : cluster -> id:int -> client
(** Register a client mailbox at node id [id] (use ids >= n). *)

type op = Put of { item : string; value : string } | Get of { item : string }
type error = Timeout

val execute : ?timeout:float -> client -> op -> (string, error) result
(** Run one operation through consensus. Must be called from an engine
    fiber. [Put] returns "", [Get] the stored value ("" if absent). *)
