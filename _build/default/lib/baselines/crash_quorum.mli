(** Majority-quorum replicated register tolerating crash faults only.

    The classical baseline: quorums of ⌈(n+1)/2⌉, any reply trusted.
    Correct only when servers never lie — included so experiments can
    show what Byzantine tolerance costs over plain fault tolerance. *)

module Server : sig
  type t

  val create : id:int -> t
  val handler : t -> now:float -> from:Sim.Runtime.node_id -> string -> string option
end

type error = No_quorum of { wanted : int; got : int } | Not_found

type t

val create :
  n:int ->
  ?servers:Sim.Runtime.node_id list ->
  ?timeout:float ->
  uid:string ->
  unit ->
  t

val quorum : t -> int
val write : t -> item:string -> string -> (unit, error) result
val read : t -> item:string -> (string, error) result
val error_to_string : error -> string
