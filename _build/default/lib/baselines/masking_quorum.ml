open Wire

(* ---- wire messages ---------------------------------------------------- *)

type stored = { ts : int; writer : string; value : string; signature : string }

type request = Read of { item : string } | Write of { item : string; s : stored }
type response = Value of stored option | Ack

let body ~item (s : stored) =
  Codec.encode
    (fun enc () ->
      Codec.Enc.string enc "mq";
      Codec.Enc.string enc item;
      Codec.Enc.varint enc s.ts;
      Codec.Enc.string enc s.writer;
      Codec.Enc.string enc s.value)
    ()

let encode_stored enc s =
  Codec.Enc.varint enc s.ts;
  Codec.Enc.string enc s.writer;
  Codec.Enc.string enc s.value;
  Codec.Enc.string enc s.signature

let decode_stored dec =
  let ts = Codec.Dec.varint dec in
  let writer = Codec.Dec.string dec in
  let value = Codec.Dec.string dec in
  let signature = Codec.Dec.string dec in
  { ts; writer; value; signature }

let encode_request r =
  Codec.encode
    (fun enc () ->
      match r with
      | Read { item } ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.string enc item
      | Write { item; s } ->
        Codec.Enc.u8 enc 1;
        Codec.Enc.string enc item;
        encode_stored enc s)
    ()

let decode_request s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 -> Read { item = Codec.Dec.string dec }
      | 1 ->
        let item = Codec.Dec.string dec in
        let s = decode_stored dec in
        Write { item; s }
      | _ -> raise (Codec.Error "bad request"))
    s

let encode_response r =
  Codec.encode
    (fun enc () ->
      match r with
      | Value v ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.option enc encode_stored v
      | Ack -> Codec.Enc.u8 enc 1)
    ()

let decode_response s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 -> Value (Codec.Dec.option dec decode_stored)
      | 1 -> Ack
      | _ -> raise (Codec.Error "bad response"))
    s

(* ---- server ------------------------------------------------------------ *)

module Server = struct
  type t = {
    id : int;
    keyring : Store.Keyring.t;
    items : (string, stored) Hashtbl.t;
  }

  let create ~id ~keyring = { id; keyring; items = Hashtbl.create 16 }

  let verify t ~item (s : stored) =
    Store.Metrics.incr_server_verify ();
    match Store.Keyring.find t.keyring s.writer with
    | None -> false
    | Some pub ->
      Crypto.Rsa.verify pub ~msg:(body ~item s) ~signature:s.signature

  let handle t = function
    | Read { item } -> Value (Hashtbl.find_opt t.items item)
    | Write { item; s } ->
      if verify t ~item s then begin
        (match Hashtbl.find_opt t.items item with
        | Some existing
          when existing.ts > s.ts
               || (existing.ts = s.ts && existing.writer >= s.writer) ->
          ()
        | Some _ | None -> Hashtbl.replace t.items item s)
      end;
      (* Ack regardless; a rejected forgery just wastes the attacker's
         message (replying keeps the protocol oblivious). *)
      Ack

  let handler t ~now:_ ~from:_ payload =
    Option.map (fun r -> encode_response (handle t r)) (decode_request payload)
end

(* ---- client ------------------------------------------------------------ *)

type error = No_quorum of { wanted : int; got : int } | Not_found

let error_to_string = function
  | No_quorum { wanted; got } ->
    Printf.sprintf "no quorum: wanted %d, got %d" wanted got
  | Not_found -> "not found"

type t = {
  n : int;
  b : int;
  q : int;
  servers : Sim.Runtime.node_id list;
  timeout : float;
  two_phase : bool;
  uid : string;
  key : Crypto.Rsa.keypair;
  keyring : Store.Keyring.t;
  mutable ts : int;
}

let create ~n ~b ?servers ?(timeout = Sim.Runtime.default_timeout)
    ?(two_phase = false) ~uid ~key ~keyring () =
  if n < (4 * b) + 1 then
    invalid_arg "Masking_quorum.create: liveness needs n >= 4b+1";
  let servers = match servers with Some s -> s | None -> List.init n Fun.id in
  {
    n;
    b;
    q = Store.Quorums.masking_quorum ~n ~b;
    servers;
    timeout;
    two_phase;
    uid;
    key;
    keyring;
    ts = 0;
  }

let quorum t = t.q

let rpc t ~quorum dsts request =
  let payload = encode_request request in
  let replies = Sim.Runtime.call_many ~timeout:t.timeout ~quorum dsts payload in
  Store.Metrics.add_messages (List.length dsts + List.length replies);
  List.filter_map
    (fun (r : Sim.Runtime.reply) ->
      Option.map (fun resp -> (r.from, resp)) (decode_response r.payload))
    replies

let first_k k l = List.filteri (fun i _ -> i < k) l
let rest_after chosen t = List.filter (fun s -> not (List.mem s chosen)) t.servers

(* Gather at least [t.q] responses, expanding beyond the initial quorum
   if some of its members are silent. *)
let quorum_rpc t request =
  let initial = first_k t.q t.servers in
  let replies = rpc t ~quorum:t.q initial request in
  if List.length replies >= t.q then Ok replies
  else begin
    let more =
      rpc t ~quorum:(t.q - List.length replies) (rest_after initial t) request
    in
    let all = replies @ more in
    if List.length all >= t.q then Ok all
    else Error (No_quorum { wanted = t.q; got = List.length all })
  end

let max_ts replies =
  List.fold_left
    (fun acc (_, resp) ->
      match resp with Value (Some s) -> max acc s.ts | _ -> acc)
    0 replies

let write t ~item value =
  let ts =
    if t.two_phase then begin
      (* Classic first phase: read the quorum to choose a timestamp. *)
      match quorum_rpc t (Read { item }) with
      | Ok replies -> max (max_ts replies) t.ts + 1
      | Error _ -> t.ts + 1
    end
    else t.ts + 1
  in
  t.ts <- ts;
  Store.Metrics.incr_sign ();
  let unsigned = { ts; writer = t.uid; value; signature = "" } in
  let s =
    { unsigned with signature = Crypto.Rsa.sign t.key (body ~item unsigned) }
  in
  (* Expand past the initial quorum until q servers have *acked*: a
     Byzantine quorum member that answers writes with garbage is treated
     like a silent one. *)
  let request = Write { item; s } in
  let acks replies = List.length (List.filter (fun (_, r) -> r = Ack) replies) in
  let initial = first_k t.q t.servers in
  let got = acks (rpc t ~quorum:t.q initial request) in
  let got =
    if got >= t.q then got
    else got + acks (rpc t ~quorum:(t.q - got) (rest_after initial t) request)
  in
  if got >= t.q then Ok () else Error (No_quorum { wanted = t.q; got })

(* A reply only counts once per server; b+1 *identical* replies mask the
   b possibly-lying servers. *)
let read t ~item =
  match quorum_rpc t (Read { item }) with
  | Error e -> Error e
  | Ok replies ->
    let votes : (stored, int list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (from, resp) ->
        match resp with
        | Value (Some s) -> (
          match Hashtbl.find_opt votes s with
          | Some froms -> if not (List.mem from !froms) then froms := from :: !froms
          | None -> Hashtbl.add votes s (ref [ from ]))
        | Value None | Ack -> ())
      replies;
    let best = ref None in
    Hashtbl.iter
      (fun (s : stored) froms ->
        if List.length !froms >= t.b + 1 then
          match !best with
          | Some (chosen : stored) when chosen.ts >= s.ts -> ()
          | _ -> best := Some s)
      votes;
    (match !best with
    | None -> Error Not_found
    | Some s ->
      Store.Metrics.incr_verify ();
      (match Store.Keyring.find t.keyring s.writer with
      | Some pub when Crypto.Rsa.verify pub ~msg:(body ~item s) ~signature:s.signature ->
        Ok s.value
      | Some _ | None -> Error Not_found))
