open Wire

type op = Put of { item : string; value : string } | Get of { item : string }

let encode_op enc = function
  | Put { item; value } ->
    Codec.Enc.u8 enc 0;
    Codec.Enc.string enc item;
    Codec.Enc.string enc value
  | Get { item } ->
    Codec.Enc.u8 enc 1;
    Codec.Enc.string enc item

let decode_op dec =
  match Codec.Dec.u8 dec with
  | 0 ->
    let item = Codec.Dec.string dec in
    let value = Codec.Dec.string dec in
    Put { item; value }
  | 1 -> Get { item = Codec.Dec.string dec }
  | _ -> raise (Codec.Error "bad op")

type message =
  | Request of { client : int; op_id : int; op : op }
  | Pre_prepare of { seq : int; digest : string; client : int; op_id : int; op : op }
  | Prepare of { seq : int; digest : string; replica : int }
  | Commit of { seq : int; digest : string; replica : int }
  | Reply of { op_id : int; replica : int; result : string }

let encode_message m =
  Codec.encode
    (fun enc () ->
      match m with
      | Request { client; op_id; op } ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.varint enc client;
        Codec.Enc.varint enc op_id;
        encode_op enc op
      | Pre_prepare { seq; digest; client; op_id; op } ->
        Codec.Enc.u8 enc 1;
        Codec.Enc.varint enc seq;
        Codec.Enc.string enc digest;
        Codec.Enc.varint enc client;
        Codec.Enc.varint enc op_id;
        encode_op enc op
      | Prepare { seq; digest; replica } ->
        Codec.Enc.u8 enc 2;
        Codec.Enc.varint enc seq;
        Codec.Enc.string enc digest;
        Codec.Enc.varint enc replica
      | Commit { seq; digest; replica } ->
        Codec.Enc.u8 enc 3;
        Codec.Enc.varint enc seq;
        Codec.Enc.string enc digest;
        Codec.Enc.varint enc replica
      | Reply { op_id; replica; result } ->
        Codec.Enc.u8 enc 4;
        Codec.Enc.varint enc op_id;
        Codec.Enc.varint enc replica;
        Codec.Enc.string enc result)
    ()

let decode_message s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 ->
        let client = Codec.Dec.varint dec in
        let op_id = Codec.Dec.varint dec in
        let op = decode_op dec in
        Request { client; op_id; op }
      | 1 ->
        let seq = Codec.Dec.varint dec in
        let digest = Codec.Dec.string dec in
        let client = Codec.Dec.varint dec in
        let op_id = Codec.Dec.varint dec in
        let op = decode_op dec in
        Pre_prepare { seq; digest; client; op_id; op }
      | 2 ->
        let seq = Codec.Dec.varint dec in
        let digest = Codec.Dec.string dec in
        let replica = Codec.Dec.varint dec in
        Prepare { seq; digest; replica }
      | 3 ->
        let seq = Codec.Dec.varint dec in
        let digest = Codec.Dec.string dec in
        let replica = Codec.Dec.varint dec in
        Commit { seq; digest; replica }
      | 4 ->
        let op_id = Codec.Dec.varint dec in
        let replica = Codec.Dec.varint dec in
        let result = Codec.Dec.string dec in
        Reply { op_id; replica; result }
      | _ -> raise (Codec.Error "bad message"))
    s

(* Pairwise session-key MAC authenticators (Castro-Liskov's trick for
   avoiding signatures in the common case). The wire format is
   body || 32-byte tag. *)
let session_key ~src ~dst =
  Printf.sprintf "pbft-session-%d-%d" (min src dst) (max src dst)

let seal ~src ~dst body =
  Store.Metrics.incr_mac ();
  body ^ Crypto.Hmac.sha256 ~key:(session_key ~src ~dst) body

let unseal ~src ~dst payload =
  let n = String.length payload in
  if n < 32 then None
  else begin
    let body = String.sub payload 0 (n - 32) in
    let tag = String.sub payload (n - 32) 32 in
    Store.Metrics.incr_mac ();
    if Crypto.Hmac.verify ~key:(session_key ~src ~dst) ~msg:body ~tag then Some body
    else None
  end

(* ----------------------------------------------------------------------- *)

type slot = {
  mutable digest : string option; (* from pre-prepare *)
  mutable client : int;
  mutable op_id : int;
  mutable op : op option;
  mutable prepares : int list; (* distinct replica ids *)
  mutable commits : int list;
  mutable prepare_sent : bool;
  mutable commit_sent : bool;
  mutable executed : bool;
}

let fresh_slot () =
  {
    digest = None;
    client = -1;
    op_id = -1;
    op = None;
    prepares = [];
    commits = [];
    prepare_sent = false;
    commit_sent = false;
    executed = false;
  }

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Sim.Engine.t;
  slots : (int, slot) Hashtbl.t;
  kv : (string, string) Hashtbl.t;
  mutable next_seq : int; (* primary only *)
  mutable last_executed : int;
}

type cluster = { engine : Sim.Engine.t; n : int; f : int; replicas : replica array }

let digest_of ~client ~op_id ~op =
  Crypto.Sha256.digest
    (Codec.encode
       (fun enc () ->
         Codec.Enc.varint enc client;
         Codec.Enc.varint enc op_id;
         encode_op enc op)
       ())

let post (r : replica) ~dst msg =
  Store.Metrics.add_messages 1;
  Sim.Engine.post r.engine ~src:r.id ~dst (seal ~src:r.id ~dst (encode_message msg))

let multicast (r : replica) msg =
  for dst = 0 to r.n - 1 do
    if dst <> r.id then post r ~dst msg
  done

let slot (r : replica) seq =
  match Hashtbl.find_opt r.slots seq with
  | Some s -> s
  | None ->
    let s = fresh_slot () in
    Hashtbl.replace r.slots seq s;
    s

let apply (r : replica) = function
  | Put { item; value } ->
    Hashtbl.replace r.kv item value;
    ""
  | Get { item } -> (
    match Hashtbl.find_opt r.kv item with Some v -> v | None -> "")

(* Execute committed slots strictly in sequence order. *)
let rec try_execute (r : replica) =
  let seq = r.last_executed + 1 in
  match Hashtbl.find_opt r.slots seq with
  | Some s
    when (not s.executed)
         && List.length s.commits >= (2 * r.f) + 1
         && s.digest <> None -> (
    match s.op with
    | None -> ()
    | Some op ->
      s.executed <- true;
      r.last_executed <- seq;
      let result = apply r op in
      post r ~dst:s.client (Reply { op_id = s.op_id; replica = r.id; result });
      try_execute r)
  | Some _ | None -> ()

let record_prepare (r : replica) seq =
  let s = slot r seq in
  if
    (not s.commit_sent)
    && s.digest <> None
    && List.length s.prepares >= 2 * r.f
  then begin
    s.commit_sent <- true;
    (match s.digest with
    | Some digest ->
      s.commits <- r.id :: s.commits;
      multicast r (Commit { seq; digest; replica = r.id })
    | None -> ());
    try_execute r
  end

let on_message (r : replica) = function
  | Request { client; op_id; op } ->
    if r.id = 0 then begin
      (* Primary: order the request and open the three-phase exchange.
         The pre-prepare stands in for the primary's prepare. *)
      r.next_seq <- r.next_seq + 1;
      let seq = r.next_seq in
      let digest = digest_of ~client ~op_id ~op in
      let s = slot r seq in
      s.digest <- Some digest;
      s.client <- client;
      s.op_id <- op_id;
      s.op <- Some op;
      multicast r (Pre_prepare { seq; digest; client; op_id; op });
      record_prepare r seq
    end
  | Pre_prepare { seq; digest; client; op_id; op } ->
    let s = slot r seq in
    if s.digest = None && String.equal digest (digest_of ~client ~op_id ~op)
    then begin
      s.digest <- Some digest;
      s.client <- client;
      s.op_id <- op_id;
      s.op <- Some op;
      if not s.prepare_sent then begin
        s.prepare_sent <- true;
        (* Own prepare counts; the primary's pre-prepare is implicit in
           the 2f-from-backups rule and is never added here. *)
        s.prepares <- r.id :: s.prepares;
        multicast r (Prepare { seq; digest; replica = r.id })
      end;
      record_prepare r seq
    end
  | Prepare { seq; digest; replica } ->
    let s = slot r seq in
    (match s.digest with
    | Some d when not (String.equal d digest) -> ()
    | Some _ | None ->
      if not (List.mem replica s.prepares) then
        s.prepares <- replica :: s.prepares;
      record_prepare r seq)
  | Commit { seq; digest; replica } ->
    let s = slot r seq in
    (match s.digest with
    | Some d when not (String.equal d digest) -> ()
    | Some _ | None ->
      if not (List.mem replica s.commits) then s.commits <- replica :: s.commits;
      try_execute r)
  | Reply _ -> ()

let replica_handler (r : replica) ~now:_ ~from payload =
  (match unseal ~src:from ~dst:r.id payload with
  | None -> ()
  | Some body -> (
    match decode_message body with
    | None -> ()
    | Some msg -> on_message r msg));
  None

let create_cluster ~engine ~n ~f =
  if n < (3 * f) + 1 then invalid_arg "Pbft_lite: need n >= 3f+1";
  let replicas =
    Array.init n (fun id ->
        {
          id;
          n;
          f;
          engine;
          slots = Hashtbl.create 64;
          kv = Hashtbl.create 16;
          next_seq = 0;
          last_executed = 0;
        })
  in
  Array.iter
    (fun r -> Sim.Engine.add_server engine r.id (replica_handler r))
    replicas;
  { engine; n; f; replicas }

let expected_messages_per_op ~n = 1 + (n - 1) + ((n - 1) * (n - 1)) + (n * (n - 1)) + n

(* ----------------------------------------------------------------------- *)

type client = {
  cluster : cluster;
  id : int;
  mutable next_op : int;
  replies : (int, (int * string) list ref) Hashtbl.t; (* op_id -> (replica, result) *)
}

type error = Timeout

let client cluster ~id =
  if id < cluster.n then invalid_arg "Pbft_lite.client: id collides with replicas";
  let c = { cluster; id; next_op = 0; replies = Hashtbl.create 8 } in
  Sim.Engine.add_server cluster.engine id (fun ~now:_ ~from payload ->
      (match unseal ~src:from ~dst:id payload with
      | None -> ()
      | Some body -> (
        match decode_message body with
        | Some (Reply { op_id; replica; result }) -> (
          match Hashtbl.find_opt c.replies op_id with
          | Some cell ->
            if not (List.mem_assoc replica !cell) then
              cell := (replica, result) :: !cell
          | None -> Hashtbl.add c.replies op_id (ref [ (replica, result) ]))
        | Some _ | None -> ()));
      None);
  c

(* f+1 matching results from distinct replicas. *)
let accepted c ~op_id =
  match Hashtbl.find_opt c.replies op_id with
  | None -> None
  | Some cell ->
    let counts = Hashtbl.create 4 in
    List.iter
      (fun (_, result) ->
        let k = match Hashtbl.find_opt counts result with Some v -> v | None -> 0 in
        Hashtbl.replace counts result (k + 1))
      !cell;
    Hashtbl.fold
      (fun result count acc ->
        if count >= c.cluster.f + 1 then Some result else acc)
      counts None

let execute ?(timeout = 10.0) c op =
  c.next_op <- c.next_op + 1;
  let op_id = c.next_op in
  Hashtbl.replace c.replies op_id (ref []);
  let msg = Request { client = c.id; op_id; op } in
  Store.Metrics.add_messages 1;
  Sim.Runtime.send 0 (seal ~src:c.id ~dst:0 (encode_message msg));
  let deadline = Sim.Runtime.now () +. timeout in
  let rec wait () =
    match accepted c ~op_id with
    | Some result -> Ok result
    | None ->
      if Sim.Runtime.now () > deadline then Error Timeout
      else begin
        Sim.Runtime.sleep 0.0002;
        wait ()
      end
  in
  wait ()
