open Wire

type stored = { ts : int; writer : string; value : string }
type request = Read of { item : string } | Write of { item : string; s : stored }
type response = Value of stored option | Ack

let encode_stored enc s =
  Codec.Enc.varint enc s.ts;
  Codec.Enc.string enc s.writer;
  Codec.Enc.string enc s.value

let decode_stored dec =
  let ts = Codec.Dec.varint dec in
  let writer = Codec.Dec.string dec in
  let value = Codec.Dec.string dec in
  { ts; writer; value }

let encode_request r =
  Codec.encode
    (fun enc () ->
      match r with
      | Read { item } ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.string enc item
      | Write { item; s } ->
        Codec.Enc.u8 enc 1;
        Codec.Enc.string enc item;
        encode_stored enc s)
    ()

let decode_request s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 -> Read { item = Codec.Dec.string dec }
      | 1 ->
        let item = Codec.Dec.string dec in
        let s = decode_stored dec in
        Write { item; s }
      | _ -> raise (Codec.Error "bad request"))
    s

let encode_response r =
  Codec.encode
    (fun enc () ->
      match r with
      | Value v ->
        Codec.Enc.u8 enc 0;
        Codec.Enc.option enc encode_stored v
      | Ack -> Codec.Enc.u8 enc 1)
    ()

let decode_response s =
  Codec.decode_opt
    (fun dec ->
      match Codec.Dec.u8 dec with
      | 0 -> Value (Codec.Dec.option dec decode_stored)
      | 1 -> Ack
      | _ -> raise (Codec.Error "bad response"))
    s

module Server = struct
  type t = { id : int; items : (string, stored) Hashtbl.t }

  let create ~id = { id; items = Hashtbl.create 16 }

  let handle t = function
    | Read { item } -> Value (Hashtbl.find_opt t.items item)
    | Write { item; s } ->
      (match Hashtbl.find_opt t.items item with
      | Some existing
        when existing.ts > s.ts || (existing.ts = s.ts && existing.writer >= s.writer)
        ->
        ()
      | Some _ | None -> Hashtbl.replace t.items item s);
      Ack

  let handler t ~now:_ ~from:_ payload =
    Option.map (fun r -> encode_response (handle t r)) (decode_request payload)
end

type error = No_quorum of { wanted : int; got : int } | Not_found

let error_to_string = function
  | No_quorum { wanted; got } ->
    Printf.sprintf "no quorum: wanted %d, got %d" wanted got
  | Not_found -> "not found"

type t = {
  n : int;
  q : int;
  servers : Sim.Runtime.node_id list;
  timeout : float;
  uid : string;
  mutable ts : int;
}

let create ~n ?servers ?(timeout = Sim.Runtime.default_timeout) ~uid () =
  let servers = match servers with Some s -> s | None -> List.init n Fun.id in
  { n; q = Store.Quorums.majority_quorum ~n; servers; timeout; uid; ts = 0 }

let quorum t = t.q

let rpc t ~quorum dsts request =
  let payload = encode_request request in
  let replies = Sim.Runtime.call_many ~timeout:t.timeout ~quorum dsts payload in
  Store.Metrics.add_messages (List.length dsts + List.length replies);
  List.filter_map
    (fun (r : Sim.Runtime.reply) -> decode_response r.payload)
    replies

let first_k k l = List.filteri (fun i _ -> i < k) l

let quorum_rpc t request =
  let initial = first_k t.q t.servers in
  let replies = rpc t ~quorum:t.q initial request in
  if List.length replies >= t.q then Ok replies
  else begin
    let remaining = List.filter (fun s -> not (List.mem s initial)) t.servers in
    let all = replies @ rpc t ~quorum:(t.q - List.length replies) remaining request in
    if List.length all >= t.q then Ok all
    else Error (No_quorum { wanted = t.q; got = List.length all })
  end

let write t ~item value =
  t.ts <- t.ts + 1;
  let s = { ts = t.ts; writer = t.uid; value } in
  match quorum_rpc t (Write { item; s }) with
  | Ok replies ->
    let acks = List.length (List.filter (fun r -> r = Ack) replies) in
    if acks >= t.q then Ok () else Error (No_quorum { wanted = t.q; got = acks })
  | Error e -> Error e

let read t ~item =
  match quorum_rpc t (Read { item }) with
  | Error e -> Error e
  | Ok replies ->
    let best =
      List.fold_left
        (fun acc r ->
          match r with
          | Value (Some s) -> (
            match acc with
            | Some (b : stored) when b.ts >= s.ts -> acc
            | _ -> Some s)
          | Value None | Ack -> acc)
        None replies
    in
    (match best with Some s -> Ok s.value | None -> Error Not_found)
