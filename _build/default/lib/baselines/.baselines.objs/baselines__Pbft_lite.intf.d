lib/baselines/pbft_lite.mli: Sim
