lib/baselines/pbft_lite.ml: Array Codec Crypto Hashtbl List Printf Sim Store String Wire
