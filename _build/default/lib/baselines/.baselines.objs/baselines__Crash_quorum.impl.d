lib/baselines/crash_quorum.ml: Codec Fun Hashtbl List Option Printf Sim Store Wire
