lib/baselines/crash_quorum.mli: Sim
