lib/baselines/masking_quorum.ml: Codec Crypto Fun Hashtbl List Option Printf Sim Store Wire
