lib/baselines/masking_quorum.mli: Crypto Sim Store
