lib/workload/worlds.mli: Crypto Sim Store
