lib/workload/table.ml: Format List Printf String
