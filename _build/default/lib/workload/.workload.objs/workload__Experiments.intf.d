lib/workload/experiments.mli: Table
