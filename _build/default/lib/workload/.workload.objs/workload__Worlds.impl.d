lib/workload/worlds.ml: Array Crypto Fun Hashtbl List Sim Store
