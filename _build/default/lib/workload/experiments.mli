(** The paper's section 6 evaluation, regenerated.

    The paper's evaluation is analytic (cost formulas and comparisons);
    each function here runs the corresponding *measured* experiment and
    returns a table whose measured columns must match the closed forms.
    EXPERIMENTS.md records paper-claim vs measured for each id. *)

val e1_context_messages : unit -> Table.t
(** Context read/write message cost: 2·⌈(n+b+1)/2⌉, vs masking quorums. *)

val e2_context_crypto : unit -> Table.t
(** Context op crypto cost: 1 sign, quorum server-verifies, 1 best-case
    client verify. *)

val e3_data_costs : unit -> Table.t
(** Single-writer data ops, MRC and CC: b+1 write messages, best-case
    read cost, 1 sign / b+1 server verifies / 1 client verify. *)

val e4_multi_writer_costs : unit -> Table.t
(** Malicious-client variant: 2b+1 fan-outs, b+1 vouching, no client
    verification on reads. *)

val e5_quorum_comparison : unit -> Table.t
(** Ours vs Byzantine masking quorum vs crash majority, same ops. *)

val e6_pbft_messages : unit -> Table.t
(** PBFT-lite messages per op: measured = 1+(n-1)+(n-1)²+n(n-1)+n. *)

val e7_dissemination : ?seed:int -> unit -> Table.t
(** Read freshness and cost vs gossip period under timed simulation. *)

val e8_fault_injection : ?seed:int -> unit -> Table.t
(** Availability and safety under each Byzantine server behaviour. *)

val e8b_spurious_context : unit -> Table.t
(** The section 5.3 denial-of-service by malicious context, with the
    server-side guard off vs on. *)

val e10_wan_latency : ?seed:int -> unit -> Table.t
(** Operation latency distributions, LAN vs WAN, ours vs baselines. *)

val e11_read_strategies : unit -> Table.t
(** Ablation: two-round (Fig. 2) vs inline one-round reads, across value
    sizes — the message/bandwidth trade behind section 6's "read cost
    can equal write cost" remark. *)

val e12_dispersal : unit -> Table.t
(** Ablation: replication vs fragmentation-scattering (IDA): bytes on
    the wire and stored per server, across value sizes. *)

val e13_dynamic_quorums : unit -> Table.t
(** Ablation: read/context costs before and after a client proves a
    server faulty (the dynamic Byzantine quorum idea). *)

val e14_context_size : unit -> Table.t
(** Section 6's context-size discussion: context op messages stay at 2q
    while bytes grow with the related-group size; reconstruction after a
    crashed session costs a full 2n-message group scan. *)

val all : ?seed:int -> unit -> Table.t list
(** E1..E8b, E10..E14, in order (E9 is the Bechamel microbenchmark suite
    in bench/main.ml). *)
