type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let cell_int = string_of_int
let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_ms v = Printf.sprintf "%.2f" (1000.0 *. v)
let cell_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let print fmt t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let render_row row =
    let cells =
      List.mapi
        (fun c w -> pad (match List.nth_opt row c with Some s -> s | None -> "") w)
        widths
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf fmt "@.== %s: %s ==@." t.id t.title;
  Format.fprintf fmt "%s@." (render_row t.header);
  Format.fprintf fmt "%s@." rule;
  List.iter (fun row -> Format.fprintf fmt "%s@." (render_row row)) t.rows;
  List.iter (fun note -> Format.fprintf fmt "  note: %s@." note) t.notes
