(** Plain-text result tables, one per reproduced experiment. *)

type t = {
  id : string;  (** "E1" … *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** paper claim, caveats, seeds *)
}

val print : Format.formatter -> t -> unit
(** Column-aligned ASCII rendering with the id, title and notes. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ms : float -> string
(** Seconds rendered as milliseconds with 2 decimals. *)

val cell_pct : float -> string
(** Fraction rendered as a percentage. *)
