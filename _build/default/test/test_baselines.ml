open Baselines

let key_cache : (string, Crypto.Rsa.keypair) Hashtbl.t = Hashtbl.create 4

let key_of name =
  match Hashtbl.find_opt key_cache name with
  | Some k -> k
  | None ->
    let k = Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("bk-" ^ name)) in
    Hashtbl.replace key_cache name k;
    k

(* ------------------------------------------------------------------ *)
(* Masking quorum                                                     *)
(* ------------------------------------------------------------------ *)

type mq_world = {
  n : int;
  keyring : Store.Keyring.t;
  hmap : (now:float -> from:int -> string -> string option) array;
}

let mq_world ?(n = 5) () =
  let keyring = Store.Keyring.create () in
  List.iter
    (fun c -> Store.Keyring.register keyring c (key_of c).Crypto.Rsa.public)
    [ "alice"; "bob" ];
  let servers = Array.init n (fun id -> Masking_quorum.Server.create ~id ~keyring) in
  { n; keyring; hmap = Array.map Masking_quorum.Server.handler servers }

let mq_handlers w dst ~from request =
  if dst >= 0 && dst < w.n then w.hmap.(dst) ~now:0.0 ~from request else None

let mq_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "masking quorum error: %s" (Masking_quorum.error_to_string e)

let test_mq_roundtrip () =
  let w = mq_world () in
  Sim.Direct.run ~handlers:(mq_handlers w) (fun () ->
      let c =
        Masking_quorum.create ~n:w.n ~b:1 ~uid:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ()
      in
      Alcotest.(check int) "quorum size" 4 (Masking_quorum.quorum c);
      mq_ok (Masking_quorum.write c ~item:"x" "v1");
      Alcotest.(check string) "read" "v1" (mq_ok (Masking_quorum.read c ~item:"x"));
      mq_ok (Masking_quorum.write c ~item:"x" "v2");
      Alcotest.(check string) "overwrite" "v2" (mq_ok (Masking_quorum.read c ~item:"x"));
      match Masking_quorum.read c ~item:"nothing" with
      | Error Masking_quorum.Not_found -> ()
      | _ -> Alcotest.fail "expected Not_found")

let test_mq_crash_tolerated () =
  let w = mq_world ~n:5 () in
  w.hmap.(4) <- (fun ~now:_ ~from:_ _ -> None);
  Sim.Direct.run ~handlers:(mq_handlers w) (fun () ->
      let c =
        Masking_quorum.create ~n:5 ~b:1 ~uid:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ()
      in
      mq_ok (Masking_quorum.write c ~item:"x" "v1");
      Alcotest.(check string) "read with crash" "v1"
        (mq_ok (Masking_quorum.read c ~item:"x")))

let test_mq_liars_masked () =
  let w = mq_world ~n:5 () in
  (* One Byzantine server fabricates a high-timestamp value. It can never
     gather b+1 vouches, so readers ignore it. *)
  let forged =
    Wire.Codec.encode
      (fun enc () ->
        Wire.Codec.Enc.u8 enc 0;
        Wire.Codec.Enc.u8 enc 1;
        (* stored *)
        Wire.Codec.Enc.varint enc 999999;
        Wire.Codec.Enc.string enc "alice";
        Wire.Codec.Enc.string enc "forged!";
        Wire.Codec.Enc.string enc (String.make 64 'z'))
      ()
  in
  w.hmap.(0) <- (fun ~now:_ ~from:_ _ -> Some forged);
  Sim.Direct.run ~handlers:(mq_handlers w) (fun () ->
      let c =
        Masking_quorum.create ~n:5 ~b:1 ~uid:"alice" ~key:(key_of "alice")
          ~keyring:w.keyring ()
      in
      mq_ok (Masking_quorum.write c ~item:"x" "truth");
      Alcotest.(check string) "lie masked" "truth"
        (mq_ok (Masking_quorum.read c ~item:"x")))

let test_mq_message_costs () =
  List.iter
    (fun (n, b) ->
      let w = mq_world ~n () in
      let q = Store.Quorums.masking_quorum ~n ~b in
      Sim.Direct.run ~handlers:(mq_handlers w) (fun () ->
          let c =
            Masking_quorum.create ~n ~b ~uid:"alice" ~key:(key_of "alice")
              ~keyring:w.keyring ()
          in
          Store.Metrics.reset ();
          mq_ok (Masking_quorum.write c ~item:"x" "v");
          let m = Store.Metrics.read () in
          Alcotest.(check int)
            (Printf.sprintf "write msgs 2q (n=%d b=%d)" n b)
            (2 * q) m.Store.Metrics.messages;
          Alcotest.(check int) "q server verifies" q m.Store.Metrics.server_verifies;
          Store.Metrics.reset ();
          Alcotest.(check string) "read" "v" (mq_ok (Masking_quorum.read c ~item:"x"));
          let m = Store.Metrics.read () in
          Alcotest.(check int)
            (Printf.sprintf "read msgs 2q (n=%d b=%d)" n b)
            (2 * q) m.Store.Metrics.messages))
    [ (5, 1); (9, 2); (13, 3) ]

let test_mq_two_phase_costs () =
  let n = 5 and b = 1 in
  let w = mq_world ~n () in
  let q = Store.Quorums.masking_quorum ~n ~b in
  Sim.Direct.run ~handlers:(mq_handlers w) (fun () ->
      let c =
        Masking_quorum.create ~n ~b ~two_phase:true ~uid:"alice"
          ~key:(key_of "alice") ~keyring:w.keyring ()
      in
      Store.Metrics.reset ();
      mq_ok (Masking_quorum.write c ~item:"x" "v");
      Alcotest.(check int) "two-phase write msgs 4q" (4 * q)
        (Store.Metrics.read ()).Store.Metrics.messages)

(* ------------------------------------------------------------------ *)
(* Crash quorum                                                       *)
(* ------------------------------------------------------------------ *)

let cq_world ?(n = 5) () =
  let servers = Array.init n (fun id -> Crash_quorum.Server.create ~id) in
  Array.map Crash_quorum.Server.handler servers

let cq_handlers hmap dst ~from request =
  if dst >= 0 && dst < Array.length hmap then hmap.(dst) ~now:0.0 ~from request
  else None

let cq_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "crash quorum error: %s" (Crash_quorum.error_to_string e)

let test_cq_roundtrip () =
  let hmap = cq_world () in
  Sim.Direct.run ~handlers:(cq_handlers hmap) (fun () ->
      let c = Crash_quorum.create ~n:5 ~uid:"alice" () in
      Alcotest.(check int) "majority" 3 (Crash_quorum.quorum c);
      cq_ok (Crash_quorum.write c ~item:"x" "v1");
      Alcotest.(check string) "read" "v1" (cq_ok (Crash_quorum.read c ~item:"x")))

let test_cq_minority_crash () =
  let hmap = cq_world ~n:5 () in
  hmap.(0) <- (fun ~now:_ ~from:_ _ -> None);
  hmap.(1) <- (fun ~now:_ ~from:_ _ -> None);
  Sim.Direct.run ~handlers:(cq_handlers hmap) (fun () ->
      let c = Crash_quorum.create ~n:5 ~uid:"alice" () in
      cq_ok (Crash_quorum.write c ~item:"x" "v1");
      Alcotest.(check string) "survives 2/5 down" "v1"
        (cq_ok (Crash_quorum.read c ~item:"x")))

let test_cq_majority_crash_blocks () =
  let hmap = cq_world ~n:5 () in
  for i = 0 to 2 do
    hmap.(i) <- (fun ~now:_ ~from:_ _ -> None)
  done;
  Sim.Direct.run ~handlers:(cq_handlers hmap) (fun () ->
      let c = Crash_quorum.create ~n:5 ~uid:"alice" () in
      match Crash_quorum.write c ~item:"x" "v1" with
      | Error (Crash_quorum.No_quorum _) -> ()
      | _ -> Alcotest.fail "expected No_quorum")

(* ------------------------------------------------------------------ *)
(* PBFT-lite                                                          *)
(* ------------------------------------------------------------------ *)

let pbft_engine ?(n = 4) ?(f = 1) () =
  let engine =
    Sim.Engine.create ~seed:5 ~latency:(Sim.Latency.make (Sim.Latency.Constant 0.001)) ()
  in
  let cluster = Pbft_lite.create_cluster ~engine ~n ~f in
  (engine, cluster)

let test_pbft_put_get () =
  let engine, cluster = pbft_engine () in
  let result = ref "" in
  Sim.Engine.spawn engine ~client:10 (fun () ->
      let c = Pbft_lite.client cluster ~id:10 in
      (match Pbft_lite.execute c (Pbft_lite.Put { item = "x"; value = "v1" }) with
      | Ok _ -> ()
      | Error Pbft_lite.Timeout -> Alcotest.fail "put timed out");
      match Pbft_lite.execute c (Pbft_lite.Get { item = "x" }) with
      | Ok v -> result := v
      | Error Pbft_lite.Timeout -> Alcotest.fail "get timed out");
  Sim.Engine.run engine;
  Alcotest.(check string) "linearized get" "v1" !result

let test_pbft_ordering () =
  let engine, cluster = pbft_engine () in
  let result = ref "" in
  Sim.Engine.spawn engine ~client:10 (fun () ->
      let c = Pbft_lite.client cluster ~id:10 in
      List.iter
        (fun v ->
          match Pbft_lite.execute c (Pbft_lite.Put { item = "x"; value = v }) with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "put failed")
        [ "v1"; "v2"; "v3" ];
      match Pbft_lite.execute c (Pbft_lite.Get { item = "x" }) with
      | Ok v -> result := v
      | Error _ -> Alcotest.fail "get failed");
  Sim.Engine.run engine;
  Alcotest.(check string) "last write wins" "v3" !result

let test_pbft_message_count () =
  List.iter
    (fun (n, f) ->
      let engine, cluster = pbft_engine ~n ~f () in
      let ok = ref false in
      Store.Metrics.reset ();
      Sim.Engine.spawn engine ~client:(n + 5) (fun () ->
          let c = Pbft_lite.client cluster ~id:(n + 5) in
          match Pbft_lite.execute c (Pbft_lite.Put { item = "x"; value = "v" }) with
          | Ok _ -> ok := true
          | Error _ -> ());
      Sim.Engine.run engine;
      Alcotest.(check bool) "committed" true !ok;
      let m = Store.Metrics.read () in
      Alcotest.(check int)
        (Printf.sprintf "O(n^2) messages (n=%d)" n)
        (Pbft_lite.expected_messages_per_op ~n)
        m.Store.Metrics.messages;
      Alcotest.(check bool) "uses MACs, not signatures" true
        (m.Store.Metrics.macs > 0 && m.Store.Metrics.signs = 0))
    [ (4, 1); (7, 2); (10, 3) ]

let test_pbft_tolerates_f_crashes () =
  let engine, cluster = pbft_engine ~n:4 ~f:1 () in
  Sim.Engine.set_down engine 3 true;
  let result = ref "" in
  Sim.Engine.spawn engine ~client:10 (fun () ->
      let c = Pbft_lite.client cluster ~id:10 in
      (match Pbft_lite.execute c (Pbft_lite.Put { item = "x"; value = "v1" }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "put with crash failed");
      match Pbft_lite.execute c (Pbft_lite.Get { item = "x" }) with
      | Ok v -> result := v
      | Error _ -> Alcotest.fail "get with crash failed");
  Sim.Engine.run engine;
  Alcotest.(check string) "commits with f down" "v1" !result

let test_pbft_latency_hops () =
  (* With constant 1 ms links the commit path is a fixed number of
     one-way hops: request, pre-prepare, prepare, commit, reply = 5. *)
  let engine, cluster = pbft_engine ~n:4 ~f:1 () in
  let elapsed = ref 0.0 in
  Sim.Engine.spawn engine ~client:10 (fun () ->
      let c = Pbft_lite.client cluster ~id:10 in
      let start = Sim.Runtime.now () in
      ignore (Pbft_lite.execute c (Pbft_lite.Put { item = "x"; value = "v" }));
      elapsed := Sim.Runtime.now () -. start);
  Sim.Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "5 hops ~ 5ms (got %.4fs)" !elapsed)
    true
    (!elapsed >= 0.005 && !elapsed < 0.007)

let () =
  Alcotest.run "baselines"
    [
      ( "masking-quorum",
        [
          Alcotest.test_case "roundtrip" `Quick test_mq_roundtrip;
          Alcotest.test_case "crash tolerated" `Quick test_mq_crash_tolerated;
          Alcotest.test_case "liars masked" `Quick test_mq_liars_masked;
          Alcotest.test_case "message costs" `Quick test_mq_message_costs;
          Alcotest.test_case "two-phase costs" `Quick test_mq_two_phase_costs;
        ] );
      ( "crash-quorum",
        [
          Alcotest.test_case "roundtrip" `Quick test_cq_roundtrip;
          Alcotest.test_case "minority crash" `Quick test_cq_minority_crash;
          Alcotest.test_case "majority crash blocks" `Quick test_cq_majority_crash_blocks;
        ] );
      ( "pbft-lite",
        [
          Alcotest.test_case "put/get" `Quick test_pbft_put_get;
          Alcotest.test_case "ordering" `Quick test_pbft_ordering;
          Alcotest.test_case "message count" `Quick test_pbft_message_count;
          Alcotest.test_case "f crashes" `Quick test_pbft_tolerates_f_crashes;
          Alcotest.test_case "latency hops" `Quick test_pbft_latency_hops;
        ] );
    ]
