(* The experiment drivers are part of the deliverable (they regenerate
   the paper's evaluation), so they are tested like everything else:
   fast experiments run for real and their measured columns must equal
   the paper's closed forms. *)

let find_col (t : Workload.Table.t) name =
  let rec idx i = function
    | [] -> Alcotest.failf "no column %s in %s" name t.Workload.Table.id
    | h :: _ when h = name -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 t.Workload.Table.header

let cell t row col_name = List.nth row (find_col t col_name)

let test_e1_matches_formula () =
  let t = Workload.Experiments.e1_context_messages () in
  Alcotest.(check bool) "has rows" true (List.length t.Workload.Table.rows >= 4);
  List.iter
    (fun row ->
      Alcotest.(check string) "read msgs = paper" (cell t row "paper 2q")
        (cell t row "read msgs");
      Alcotest.(check string) "store msgs = paper" (cell t row "paper 2q")
        (cell t row "store msgs"))
    t.Workload.Table.rows

let test_e2_single_sign () =
  let t = Workload.Experiments.e2_context_crypto () in
  List.iter
    (fun row ->
      Alcotest.(check string) "1 sign" "1" (cell t row "store signs");
      Alcotest.(check string) "1 read verify" "1" (cell t row "read verifies");
      Alcotest.(check string) "q server verifies" (cell t row "q")
        (cell t row "store srv-verifies"))
    t.Workload.Table.rows

let test_e3_matches_formula () =
  let t = Workload.Experiments.e3_data_costs () in
  List.iter
    (fun row ->
      Alcotest.(check string) "write = b+1" (cell t row "paper b+1")
        (cell t row "write msgs");
      Alcotest.(check string) "read formula" (cell t row "paper 2(b+1)+2")
        (cell t row "read msgs"))
    t.Workload.Table.rows

let test_e4_matches_formula () =
  let t = Workload.Experiments.e4_multi_writer_costs () in
  List.iter
    (fun row ->
      Alcotest.(check string) "write = 2b+1" (cell t row "paper 2b+1")
        (cell t row "write msgs");
      Alcotest.(check string) "no client verify" "0" (cell t row "read verifies"))
    t.Workload.Table.rows

let test_e6_matches_formula () =
  let t = Workload.Experiments.e6_pbft_messages () in
  List.iter
    (fun row ->
      Alcotest.(check string) "pbft O(n^2)" (cell t row "formula")
        (cell t row "msgs/op"))
    t.Workload.Table.rows

let test_e8b_guard () =
  let t = Workload.Experiments.e8b_spurious_context () in
  match t.Workload.Table.rows with
  | [ off_row; on_row ] ->
    Alcotest.(check string) "guard-off poisoned ctx" "yes"
      (cell t off_row "reader ctx poisoned");
    Alcotest.(check string) "guard-off DoS on dep" "(stale forever: DoS)"
      (cell t off_row "dep read");
    Alcotest.(check string) "guard-on clean ctx" "no"
      (cell t on_row "reader ctx poisoned");
    Alcotest.(check string) "guard-on invisible" "(not visible)"
      (cell t on_row "doc read");
    Alcotest.(check string) "guard-on dep readable" "base" (cell t on_row "dep read")
  | _ -> Alcotest.fail "expected exactly two rows"

let test_e8_no_violations () =
  let t = Workload.Experiments.e8_fault_injection ~seed:3 () in
  List.iter
    (fun row ->
      Alcotest.(check string) "no MRC violations" "0" (cell t row "MRC violations");
      Alcotest.(check string) "no integrity violations" "0"
        (cell t row "integrity violations"))
    t.Workload.Table.rows

let test_table_printing () =
  let t =
    {
      Workload.Table.id = "T";
      title = "test";
      header = [ "a"; "bee" ];
      rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
      notes = [ "a note" ];
    }
  in
  let rendered = Format.asprintf "%a" Workload.Table.print t in
  Alcotest.(check bool) "mentions title" true
    (String.length rendered > 0
    &&
    let re = Str.regexp_string "test" in
    (try
       ignore (Str.search_forward re rendered 0);
       true
     with Not_found -> false))

let () =
  Alcotest.run "workload"
    [
      ( "experiments",
        [
          Alcotest.test_case "e1 formulas" `Quick test_e1_matches_formula;
          Alcotest.test_case "e2 crypto" `Quick test_e2_single_sign;
          Alcotest.test_case "e3 formulas" `Quick test_e3_matches_formula;
          Alcotest.test_case "e4 formulas" `Quick test_e4_matches_formula;
          Alcotest.test_case "e6 pbft" `Slow test_e6_matches_formula;
          Alcotest.test_case "e8 safety" `Slow test_e8_no_violations;
          Alcotest.test_case "e8b guard" `Quick test_e8b_guard;
        ] );
      ("table", [ Alcotest.test_case "printing" `Quick test_table_printing ]);
    ]
