test/test_tcpnet.mli:
