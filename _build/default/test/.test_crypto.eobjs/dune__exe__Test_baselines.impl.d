test/test_baselines.ml: Alcotest Array Baselines Crash_quorum Crypto Hashtbl List Masking_quorum Pbft_lite Printf Sim Store String Wire
