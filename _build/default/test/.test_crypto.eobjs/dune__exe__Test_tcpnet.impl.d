test/test_tcpnet.ml: Alcotest Array Crypto Fun List Store String Tcpnet Thread Unix
