test/test_workload.ml: Alcotest Format List Str String Workload
