test/test_wire.ml: Alcotest Char Codec Float List Printf QCheck QCheck_alcotest Store String Wire
