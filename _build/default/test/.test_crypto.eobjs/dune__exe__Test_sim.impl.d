test/test_sim.ml: Alcotest Array Direct Engine Fun Heap Int Latency List Option Printf QCheck QCheck_alcotest Runtime Sim Srng Stats String
