(* Networked-transport tests: frame codec and full client sessions over
   real loopback sockets (the third interpreter of the Runtime effects). *)

let key_of name =
  Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("tk-" ^ name))

let alice_key = key_of "alice"
let bob_key = key_of "bob"

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Unix.close b)
    (fun () ->
      let payloads = [ ""; "x"; String.make 100_000 'q'; "\x00\x01\xff" ] in
      List.iter
        (fun p ->
          Tcpnet.Frame.write_frame a p;
          match Tcpnet.Frame.read_frame b with
          | Some p' -> Alcotest.(check string) "frame roundtrip" p p'
          | None -> Alcotest.fail "unexpected EOF")
        payloads;
      Unix.close a;
      Alcotest.(check bool) "EOF" true (Tcpnet.Frame.read_frame b = None))

let test_frame_oversize_rejected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      Unix.close b)
    (fun () ->
      (* A length prefix over the cap must be refused without allocating. *)
      let evil = "\x7f\xff\xff\xff" in
      ignore (Unix.write_substring a evil 0 4);
      Unix.close a;
      Alcotest.(check bool) "oversize rejected" true (Tcpnet.Frame.read_frame b = None))

let with_cluster ?(n = 4) ?(b = 1) fn =
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  Fun.protect
    ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
    (fun () -> fn ~keyring ~endpoints ~hosts ~n ~b)

let connect ~keyring ~n ~b ?(timeout = 2.0) name key =
  let config = { (Store.Client.default_config ~n ~b) with Store.Client.timeout } in
  match Store.Client.connect ~config ~uid:name ~key ~keyring ~group:"net" () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Store.Client.error_to_string e)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Store.Client.error_to_string e)

let test_live_write_read () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "over tcp");
          Alcotest.(check string) "read" "over tcp" (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.disconnect alice);
          (* A second session restores the context from the store. *)
          let again = connect ~keyring ~n ~b "alice" alice_key in
          Alcotest.(check string) "cross-session" "over tcp"
            (ok (Store.Client.read again ~item:"x"))))

let test_live_other_reader () =
  with_cluster (fun ~keyring ~endpoints ~hosts:_ ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"news" "hello bob");
          let bob = connect ~keyring ~n ~b "bob" bob_key in
          Alcotest.(check string) "bob reads" "hello bob"
            (ok (Store.Client.read bob ~item:"news"))))

let test_live_crash_tolerated () =
  with_cluster (fun ~keyring ~endpoints ~hosts ~n ~b ->
      Tcpnet.Live.run ~endpoints (fun () ->
          let alice = connect ~timeout:0.5 ~keyring ~n ~b "alice" alice_key in
          ok (Store.Client.write alice ~item:"x" "v1");
          (* Kill the last server: within the b=1 bound. *)
          Tcpnet.Server_host.stop hosts.(n - 1);
          Alcotest.(check string) "read with crash" "v1"
            (ok (Store.Client.read alice ~item:"x"));
          ok (Store.Client.write alice ~item:"x" "v2");
          Alcotest.(check string) "write with crash" "v2"
            (ok (Store.Client.read alice ~item:"x"))))

let test_gossip_over_tcp () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  (* Start hosts first without gossip to learn ports, then wire a second
     fleet is overkill: instead start sequentially with known ports. *)
  let hosts = Array.make n None in
  let port_of i = match hosts.(i) with Some h -> Tcpnet.Server_host.port h | None -> 0 in
  Array.iteri
    (fun i server -> hosts.(i) <- Some (Tcpnet.Server_host.start ~server ~port:0 ()))
    servers;
  let eps = Array.init n (fun i -> ("127.0.0.1", port_of i)) in
  (* Re-start server 0 host's gossip by pushing manually: exercise the
     push path through a one-way frame. *)
  let uid = Store.Uid.make ~group:"net" ~item:"g" in
  let w =
    Store.Signing.sign_write ~key:alice_key ~writer:"alice" ~uid
      ~stamp:(Store.Stamp.scalar 5) "gossiped"
  in
  let payload =
    Store.Payload.encode_envelope
      { Store.Payload.token = None; request = Store.Payload.Gossip_push { writes = [ w ]; have = [] } }
  in
  let host, port = eps.(2) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  Tcpnet.Frame.write_frame fd ("\x00" ^ payload);
  Unix.close fd;
  (* One-way delivery is asynchronous; poll briefly. *)
  let rec wait tries =
    if Store.Server.current_write servers.(2) uid <> None then true
    else if tries = 0 then false
    else begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  let delivered = wait 100 in
  Array.iter (function Some h -> Tcpnet.Server_host.stop h | None -> ()) hosts;
  Alcotest.(check bool) "gossip push delivered over tcp" true delivered

let () =
  Alcotest.run "tcpnet"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversize" `Quick test_frame_oversize_rejected;
        ] );
      ( "live",
        [
          Alcotest.test_case "write/read" `Quick test_live_write_read;
          Alcotest.test_case "other reader" `Quick test_live_other_reader;
          Alcotest.test_case "crash tolerated" `Quick test_live_crash_tolerated;
          Alcotest.test_case "gossip push" `Quick test_gossip_over_tcp;
        ] );
    ]
