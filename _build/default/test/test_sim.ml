open Sim

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "size" 7 (Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  let drained = List.init 7 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check (option int)) "empty pop" None (Heap.pop h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare l)

(* ------------------------------------------------------------------ *)
(* Srng                                                               *)
(* ------------------------------------------------------------------ *)

let test_srng_deterministic () =
  let a = Srng.create 42 and b = Srng.create 42 in
  let seq r = List.init 20 (fun _ -> Srng.int64 r) in
  Alcotest.(check bool) "same seed same stream" true (seq a = seq b);
  let c = Srng.create 43 in
  Alcotest.(check bool) "different seed" false
    (seq (Srng.create 42) = seq c)

let test_srng_ranges () =
  let r = Srng.create 7 in
  for _ = 1 to 2000 do
    let f = Srng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    let i = Srng.int_below r 13 in
    if i < 0 || i >= 13 then Alcotest.failf "int out of range: %d" i;
    let u = Srng.uniform r ~lo:2.0 ~hi:3.0 in
    if u < 2.0 || u > 3.0 then Alcotest.failf "uniform out of range: %f" u;
    let e = Srng.exponential r ~mean:1.0 in
    if e < 0.0 then Alcotest.failf "negative exponential: %f" e
  done

let test_srng_exponential_mean () =
  let r = Srng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Srng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 5.0" mean)
    true
    (abs_float (mean -. 5.0) < 0.2)

let test_srng_shuffle_permutation () =
  let r = Srng.create 3 in
  let a = Array.init 50 Fun.id in
  Srng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Latency                                                            *)
(* ------------------------------------------------------------------ *)

let test_latency_models () =
  let r = Srng.create 5 in
  for _ = 1 to 500 do
    (match Latency.sample Latency.lan r with
    | Some d when d >= 0.0001 && d <= 0.0005 -> ()
    | Some d -> Alcotest.failf "lan out of range: %f" d
    | None -> Alcotest.fail "lan should be lossless");
    match Latency.sample (Latency.make (Latency.Constant 0.01)) r with
    | Some d -> Alcotest.(check (float 1e-9)) "constant" 0.01 d
    | None -> Alcotest.fail "constant should be lossless"
  done

let test_latency_drop () =
  let r = Srng.create 9 in
  let lossy = Latency.make ~drop_probability:0.5 (Latency.Constant 0.001) in
  let drops = ref 0 in
  for _ = 1 to 2000 do
    if Latency.sample lossy r = None then incr drops
  done;
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %d/2000 near half" !drops)
    true
    (!drops > 850 && !drops < 1150)

let test_latency_describe () =
  Alcotest.(check bool) "wan mentions loss" true
    (String.length (Latency.describe Latency.wan) > 0
    && String.length (Latency.describe Latency.lan) > 0)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "p50" 3.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) (Stats.stddev s)

let test_stats_percentile_after_add () =
  (* The sorted cache must invalidate when samples arrive out of order. *)
  let s = Stats.create () in
  Stats.add s 10.0;
  ignore (Stats.percentile s 50.0);
  Stats.add s 1.0;
  Alcotest.(check (float 1e-9)) "median updates" 1.0 (Stats.percentile s 50.0)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean s))

(* ------------------------------------------------------------------ *)
(* Direct runtime                                                     *)
(* ------------------------------------------------------------------ *)

let echo_handlers dst ~from:_ request =
  if dst >= 0 && dst < 5 then Some (Printf.sprintf "%d:%s" dst request)
  else None

let test_direct_call_many () =
  let replies =
    Direct.run ~handlers:echo_handlers (fun () ->
        Runtime.call_many ~quorum:3 [ 0; 1; 2; 3; 4 ] "ping")
  in
  Alcotest.(check int) "all respond" 5 (List.length replies);
  let r0 = List.find (fun r -> r.Runtime.from = 0) replies in
  Alcotest.(check string) "payload" "0:ping" r0.Runtime.payload

let test_direct_missing_server () =
  let reply =
    Direct.run ~handlers:echo_handlers (fun () -> Runtime.call_one 99 "ping")
  in
  Alcotest.(check (option string)) "no such server" None reply

let test_direct_time_advances () =
  Direct.run ~handlers:echo_handlers (fun () ->
      let t1 = Runtime.now () in
      let t2 = Runtime.now () in
      Alcotest.(check bool) "monotonic" true (t2 > t1))

let test_direct_fork_runs () =
  let hit = ref false in
  Direct.run ~handlers:echo_handlers (fun () ->
      Runtime.fork (fun () -> hit := true));
  Alcotest.(check bool) "fork executed" true !hit

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let engine_with_echo ?latency ?seed () =
  let eng = Engine.create ?seed ?latency () in
  for i = 0 to 4 do
    Engine.add_server eng i (fun ~now:_ ~from:_ request ->
        Some (Printf.sprintf "%d:%s" i request))
  done;
  eng

let test_engine_quorum_resume () =
  let eng = engine_with_echo () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      got := Runtime.call_many ~quorum:3 [ 0; 1; 2; 3; 4 ] "hello");
  Engine.run eng;
  (* Quorum of 3 resumes at the 3rd reply; remaining replies are late. *)
  Alcotest.(check int) "resumes at quorum" 3 (List.length !got)

let test_engine_timeout_partial () =
  let eng = Engine.create () in
  Engine.add_server eng 0 (fun ~now:_ ~from:_ _ -> Some "ok");
  Engine.add_server eng 1 (fun ~now:_ ~from:_ _ -> None) (* silent server *);
  let got = ref [] and elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      let start = Runtime.now () in
      got := Runtime.call_many ~timeout:0.5 ~quorum:2 [ 0; 1 ] "hello";
      elapsed := Runtime.now () -. start);
  Engine.run eng;
  Alcotest.(check int) "only the live reply" 1 (List.length !got);
  Alcotest.(check bool) "waited for timeout" true (!elapsed >= 0.5)

let test_engine_virtual_time_and_sleep () =
  let eng = engine_with_echo () in
  let times = ref [] in
  Engine.spawn eng (fun () ->
      times := Runtime.now () :: !times;
      Runtime.sleep 2.5;
      times := Runtime.now () :: !times);
  Engine.run eng;
  match !times with
  | [ t2; t1 ] ->
    Alcotest.(check (float 1e-9)) "start at 0" 0.0 t1;
    Alcotest.(check (float 1e-9)) "sleep advances clock" 2.5 t2
  | _ -> Alcotest.fail "expected two timestamps"

let test_engine_latency_affects_completion () =
  let slow = Latency.make (Latency.Constant 0.1) in
  let eng = engine_with_echo ~latency:slow () in
  let elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      let start = Runtime.now () in
      ignore (Runtime.call_many ~quorum:5 [ 0; 1; 2; 3; 4 ] "x");
      elapsed := Runtime.now () -. start);
  Engine.run eng;
  (* Constant 0.1 s each way: the call takes one round trip. *)
  Alcotest.(check (float 1e-6)) "round trip" 0.2 !elapsed

let test_engine_down_server () =
  let eng = engine_with_echo () in
  Engine.set_down eng 0 true;
  let got = ref [] in
  Engine.spawn eng (fun () ->
      got := Runtime.call_many ~timeout:0.2 ~quorum:5 [ 0; 1; 2; 3; 4 ] "x");
  Engine.run eng;
  Alcotest.(check int) "crashed server silent" 4 (List.length !got);
  Alcotest.(check bool) "others respond" true
    (List.for_all (fun r -> r.Runtime.from <> 0) !got)

let test_engine_partition () =
  let eng = engine_with_echo () in
  (* Client (-1) can reach only servers 0-2. *)
  Engine.set_reachable eng (fun src dst ->
      let blocked n = n = 3 || n = 4 in
      not (blocked src || blocked dst));
  let got = ref [] in
  Engine.spawn eng (fun () ->
      got := Runtime.call_many ~timeout:0.2 ~quorum:5 [ 0; 1; 2; 3; 4 ] "x");
  Engine.run eng;
  Alcotest.(check int) "partitioned away" 3 (List.length !got)

let test_engine_counters () =
  let eng = engine_with_echo () in
  Engine.spawn eng (fun () ->
      ignore (Runtime.call_many ~quorum:5 [ 0; 1; 2; 3; 4 ] "abc"));
  Engine.run eng;
  let c = Engine.counters eng in
  (* 5 requests + 5 replies. *)
  Alcotest.(check int) "messages" 10 c.Engine.messages_sent;
  Alcotest.(check bool) "bytes counted" true (c.Engine.bytes_sent >= 5 * 3);
  Engine.reset_counters eng;
  Alcotest.(check int) "reset" 0 (Engine.counters eng).Engine.messages_sent

let test_engine_periodic () =
  let eng = engine_with_echo () in
  let ticks = ref 0 in
  let p = Engine.every eng ~period:1.0 (fun () -> incr ticks) in
  Engine.run ~until:5.5 eng;
  Engine.cancel p;
  Engine.run eng;
  (* Ticks at 0,1,2,3,4,5 = 6 ticks; cancel stops the rest. *)
  Alcotest.(check int) "six ticks" 6 !ticks

let test_engine_determinism () =
  let run_once () =
    let eng =
      engine_with_echo ~seed:77 ~latency:(Latency.make (Latency.Uniform { lo = 0.001; hi = 0.050 })) ()
    in
    let order = ref [] in
    Engine.spawn eng (fun () ->
        let replies = Runtime.call_many ~quorum:5 [ 0; 1; 2; 3; 4 ] "x" in
        order := List.map (fun r -> r.Runtime.from) replies);
    Engine.run eng;
    !order
  in
  Alcotest.(check (list int)) "same seed, same arrival order" (run_once ())
    (run_once ())

let test_engine_lossy_links () =
  (* 100% loss: every call times out with zero replies; the client is not
     stuck, just empty-handed. *)
  let lossy = Latency.make ~drop_probability:1.0 (Latency.Constant 0.001) in
  let eng = Engine.create ~latency:lossy () in
  Engine.add_server eng 0 (fun ~now:_ ~from:_ _ -> Some "ok");
  let got = ref [ { Runtime.from = 99; payload = "sentinel" } ] in
  let elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      let start = Runtime.now () in
      got := Runtime.call_many ~timeout:0.3 ~quorum:1 [ 0 ] "x";
      elapsed := Runtime.now () -. start);
  Engine.run eng;
  Alcotest.(check int) "no replies" 0 (List.length !got);
  Alcotest.(check bool) "timed out" true (!elapsed >= 0.3);
  Alcotest.(check bool) "drops counted" true
    ((Engine.counters eng).Engine.messages_dropped >= 1)

let test_engine_partial_loss_statistics () =
  (* 30% loss: over many calls, roughly 70% single-destination round
     trips succeed; none crash the engine. *)
  let lossy = Latency.make ~drop_probability:0.3 (Latency.Constant 0.001) in
  let eng = Engine.create ~seed:17 ~latency:lossy () in
  Engine.add_server eng 0 (fun ~now:_ ~from:_ _ -> Some "ok");
  let successes = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 200 do
        match Runtime.call_many ~timeout:0.05 ~quorum:1 [ 0 ] "x" with
        | _ :: _ -> incr successes
        | [] -> ()
      done);
  Engine.run eng;
  (* Both legs must survive: P(success) = 0.7^2 = 0.49. *)
  Alcotest.(check bool)
    (Printf.sprintf "success rate %d/200 near 49%%" !successes)
    true
    (!successes > 60 && !successes < 140)

let test_engine_zero_quorum_immediate () =
  let eng = engine_with_echo () in
  let elapsed = ref 1.0 in
  Engine.spawn eng (fun () ->
      let start = Runtime.now () in
      ignore (Runtime.call_many ~quorum:0 [ 0; 1 ] "x");
      elapsed := Runtime.now () -. start);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "quorum 0 returns immediately" 0.0 !elapsed

let test_engine_fork_concurrent () =
  let eng = engine_with_echo ~latency:(Latency.make (Latency.Constant 0.1)) () in
  let finished = ref [] in
  Engine.spawn eng (fun () ->
      Runtime.fork (fun () ->
          ignore (Runtime.call_one 0 "a");
          finished := "fork" :: !finished);
      ignore (Runtime.call_one 1 "b");
      finished := "main" :: !finished);
  Engine.run eng;
  (* Both complete at the same virtual time; both must have run. *)
  Alcotest.(check int) "both fibers ran" 2 (List.length !finished)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering ]
        @ qsuite [ prop_heap_sorts ] );
      ( "srng",
        [
          Alcotest.test_case "deterministic" `Quick test_srng_deterministic;
          Alcotest.test_case "ranges" `Quick test_srng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_srng_exponential_mean;
          Alcotest.test_case "shuffle" `Quick test_srng_shuffle_permutation;
        ] );
      ( "latency",
        [
          Alcotest.test_case "models" `Quick test_latency_models;
          Alcotest.test_case "drop" `Quick test_latency_drop;
          Alcotest.test_case "describe" `Quick test_latency_describe;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "cache invalidation" `Quick test_stats_percentile_after_add;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "direct",
        [
          Alcotest.test_case "call_many" `Quick test_direct_call_many;
          Alcotest.test_case "missing server" `Quick test_direct_missing_server;
          Alcotest.test_case "time advances" `Quick test_direct_time_advances;
          Alcotest.test_case "fork" `Quick test_direct_fork_runs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "quorum resume" `Quick test_engine_quorum_resume;
          Alcotest.test_case "timeout partial" `Quick test_engine_timeout_partial;
          Alcotest.test_case "virtual time" `Quick test_engine_virtual_time_and_sleep;
          Alcotest.test_case "latency" `Quick test_engine_latency_affects_completion;
          Alcotest.test_case "down server" `Quick test_engine_down_server;
          Alcotest.test_case "partition" `Quick test_engine_partition;
          Alcotest.test_case "counters" `Quick test_engine_counters;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "lossy links" `Quick test_engine_lossy_links;
          Alcotest.test_case "partial loss" `Quick test_engine_partial_loss_statistics;
          Alcotest.test_case "zero quorum" `Quick test_engine_zero_quorum_immediate;
          Alcotest.test_case "fork concurrency" `Quick test_engine_fork_concurrent;
        ] );
    ]
