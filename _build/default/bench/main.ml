(* Benchmark harness: regenerates every quantitative claim of the paper's
   section 6 (experiments E1-E10; see DESIGN.md and EXPERIMENTS.md).

     dune exec bench/main.exe            -- all experiments + E9 microbench
     dune exec bench/main.exe -- e3 e9   -- a subset
     dune exec bench/main.exe -- --seed 7 e7

   Output is plain text, one table per experiment. *)

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* E9: crypto and protocol microbenchmarks via Bechamel                *)
(* ------------------------------------------------------------------ *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let e9 () =
  let open Bechamel in
  let data n = String.init n (fun i -> Char.chr (i land 0xff)) in
  let d64 = data 64 and d1k = data 1024 and d64k = data 65536 in
  let prng = Crypto.Prng.create ~seed:"bench" in
  let rsa512 = Crypto.Rsa.generate ~bits:512 prng in
  let rsa1024 = Crypto.Rsa.generate ~bits:1024 prng in
  let sig512 = Crypto.Rsa.sign rsa512 d64 in
  let sig1024 = Crypto.Rsa.sign rsa1024 d64 in
  let chacha_key = Crypto.Sha256.digest "bench-key" in
  let nonce = String.make 12 '\x01' in
  let tests =
    Test.make_grouped ~name:"crypto"
      [
        Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Crypto.Sha256.digest d64));
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d1k));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d64k));
        Test.make ~name:"hmac-1KiB"
          (Staged.stage (fun () -> Crypto.Hmac.sha256 ~key:"k" d1k));
        Test.make ~name:"chacha20-1KiB"
          (Staged.stage (fun () -> Crypto.Chacha20.encrypt ~key:chacha_key ~nonce d1k));
        Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa512 d64));
        Test.make ~name:"rsa512-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa512.Crypto.Rsa.public ~msg:d64 ~signature:sig512));
        Test.make ~name:"rsa1024-sign"
          (Staged.stage (fun () -> Crypto.Rsa.sign rsa1024 d64));
        Test.make ~name:"rsa1024-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa1024.Crypto.Rsa.public ~msg:d64 ~signature:sig1024));
      ]
  in
  let rows = bechamel_run tests in
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let table =
    {
      Workload.Table.id = "E9";
      title = "Crypto microbenchmarks (Bechamel, monotonic clock)";
      header = [ "primitive"; "time/op" ];
      rows = List.map (fun (name, ns) -> [ name; pp_ns ns ]) rows;
      notes =
        [
          "the paper's section 6 cost model rests on sign >> verify >> digest;";
          "PBFT's MAC-based authenticators correspond to the hmac row";
        ];
    }
  in
  Workload.Table.print fmt table

(* One Bechamel test per full protocol op, run against an in-process
   world: the end-to-end computational cost of each store operation. *)
let e9_protocol () =
  let open Bechamel in
  let w = Workload.Worlds.make ~n:4 ~b:1 () in
  let counter = ref 0 in
  let in_world fn = Workload.Worlds.in_direct w fn in
  let alice =
    in_world (fun () -> Workload.Worlds.connect w "alice" ~group:"bench")
  in
  in_world (fun () ->
      match Store.Client.write alice ~item:"x" "seed-value" with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  (* Store a context for bob so the connect benchmark includes the
     signature verification of a restored session. *)
  in_world (fun () ->
      let bob = Workload.Worlds.connect w "bob" ~group:"bench" in
      match Store.Client.disconnect bob with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  let tests =
    Test.make_grouped ~name:"store-ops"
      [
        Test.make ~name:"write(b+1)"
          (Staged.stage (fun () ->
               incr counter;
               in_world (fun () ->
                   Store.Client.write alice ~item:"x" (string_of_int !counter))));
        Test.make ~name:"read(b+1)"
          (Staged.stage (fun () ->
               in_world (fun () -> Store.Client.read alice ~item:"x")));
        Test.make ~name:"connect(ctx q)"
          (Staged.stage (fun () ->
               in_world (fun () -> Workload.Worlds.connect w "bob" ~group:"bench")));
      ]
  in
  let rows = bechamel_run tests in
  let table =
    {
      Workload.Table.id = "E9b";
      title = "End-to-end op compute cost (in-process, n=4 b=1, RSA-512)";
      header = [ "operation"; "time/op" ];
      rows =
        List.map
          (fun (name, ns) -> [ name; Printf.sprintf "%.2f ms" (ns /. 1e6) ])
          rows;
      notes = [ "dominated by the signature asymmetry measured in E9" ];
    }
  in
  Workload.Table.print fmt table

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments seed : (string * (unit -> unit)) list =
  let t f () = Workload.Table.print fmt (f ()) in
  [
    ("e1", t Workload.Experiments.e1_context_messages);
    ("e2", t Workload.Experiments.e2_context_crypto);
    ("e3", t Workload.Experiments.e3_data_costs);
    ("e4", t Workload.Experiments.e4_multi_writer_costs);
    ("e5", t Workload.Experiments.e5_quorum_comparison);
    ("e6", t Workload.Experiments.e6_pbft_messages);
    ("e7", t (fun () -> Workload.Experiments.e7_dissemination ~seed ()));
    ("e8", t (fun () -> Workload.Experiments.e8_fault_injection ~seed ()));
    ("e8b", t Workload.Experiments.e8b_spurious_context);
    ( "e9",
      fun () ->
        e9 ();
        e9_protocol () );
    ("e10", t (fun () -> Workload.Experiments.e10_wan_latency ~seed ()));
    ("e11", t Workload.Experiments.e11_read_strategies);
    ("e12", t Workload.Experiments.e12_dispersal);
    ("e13", t Workload.Experiments.e13_dynamic_quorums);
    ("e14", t Workload.Experiments.e14_context_size);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse seed picked = function
    | [] -> (seed, List.rev picked)
    | "--seed" :: v :: rest -> parse (int_of_string v) picked rest
    | name :: rest -> parse seed (String.lowercase_ascii name :: picked) rest
  in
  let seed, picked = parse 42 [] args in
  let table = experiments seed in
  let to_run = match picked with [] -> List.map fst table | _ -> picked in
  Format.fprintf fmt
    "secure store benchmark harness — reproducing section 6 of Lakshmanan, \
     Ahamad & Venkateswaran, DSN 2001 (seed %d)@."
    seed;
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | Some run -> run ()
      | None ->
        Format.fprintf fmt "unknown experiment %S (known: %s)@." name
          (String.concat ", " (List.map fst table)))
    to_run
