bin/store_server.mli:
