bin/keys.ml: Crypto List Store String
