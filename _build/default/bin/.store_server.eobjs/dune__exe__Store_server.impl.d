bin/store_server.ml: Arg Cmd Cmdliner Keys Mutex Printf Store Sys Tcpnet Term Thread
