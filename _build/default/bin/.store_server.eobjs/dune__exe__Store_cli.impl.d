bin/store_cli.ml: Arg Array Cmd Cmdliner Keys Printf Store String Tcpnet Term
