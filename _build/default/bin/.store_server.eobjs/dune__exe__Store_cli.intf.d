bin/store_cli.mli:
