(* The paper's motivating scenario (section 2, class 1): an Aware Home
   resident stores non-shared medical records. Requirements exercised:

   - confidentiality: records are encrypted under a key the servers
     never see; a compromised server leaks only meta-data;
   - high availability: an "emergency read" succeeds while a server is
     crashed and another is Byzantine (n = 7, b = 2);
   - key rotation after a suspected key compromise.

     dune exec examples/aware_home.exe *)

let printf = Printf.printf

let () =
  let n = 7 and b = 2 in
  let keyring = Store.Keyring.create () in
  let resident_key = Crypto.Rsa.generate (Crypto.Prng.create ~seed:"resident") in
  Store.Keyring.register keyring "resident" resident_key.Crypto.Rsa.public;
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hmap = Array.map Store.Server.handler servers in
  (* Fault injection: one server stops responding entirely (stolen?) and
     another one serves corrupted data. That is exactly b = 2 faults. *)
  hmap.(1) <- Store.Faults.wrap Store.Faults.Crash servers.(1);
  hmap.(4) <- Store.Faults.wrap Store.Faults.Corrupt_value servers.(4);
  let handlers dst ~from request =
    if dst >= 0 && dst < n then hmap.(dst) ~now:0.0 ~from request else None
  in

  let ok = function
    | Ok v -> v
    | Error e -> failwith (Store.Client.error_to_string e)
  in

  Sim.Direct.run ~handlers (fun () ->
      let config = Store.Client.default_config ~n ~b in
      let session =
        ok
          (Store.Client.connect ~config ~uid:"resident" ~key:resident_key
             ~keyring ~group:"medical" ())
      in
      (* All records are sealed client-side: AEAD under a family secret. *)
      let sealed =
        Store.Confidential.make ~client:session ~key:"family-master-secret" ()
      in
      ok (Store.Confidential.write sealed ~item:"allergies" "penicillin");
      ok (Store.Confidential.write sealed ~item:"medication" "metformin 500mg");
      ok (Store.Confidential.write sealed ~item:"contact" "dr. gray, +1 404 555 0100");
      printf "stored 3 encrypted records across the store\n";

      (* What a compromised server actually holds: ciphertext. *)
      let uid = Store.Uid.make ~group:"medical" ~item:"allergies" in
      (match Store.Server.current_write servers.(0) uid with
      | Some w ->
        printf "server 0 sees only ciphertext: %s...\n"
          (String.sub (Crypto.Hexs.encode w.Store.Payload.value) 0 32)
      | None -> printf "server 0 has no copy yet (will arrive by gossip)\n");

      (* Emergency: a paramedic terminal (with the family secret and the
         resident's session) must read records NOW, despite the crash and
         the corruption. *)
      let allergies = ok (Store.Confidential.read sealed ~item:"allergies") in
      let meds = ok (Store.Confidential.read sealed ~item:"medication") in
      printf "emergency read ok: allergies=%S medication=%S\n" allergies meds;

      (* The resident suspects the old key leaked: rotate it. Every item
         is re-encrypted and written back with fresh timestamps. *)
      ok
        (Store.Confidential.rotate_key sealed ~new_key:"rotated-secret"
           ~items:[ "allergies"; "medication"; "contact" ]);
      printf "key rotated; old-key readers are locked out: %s\n"
        (let old =
           Store.Confidential.make ~client:session ~key:"family-master-secret" ()
         in
         match Store.Confidential.read_opt old ~item:"allergies" with
         | Ok None -> "yes"
         | _ -> "NO (bug)");
      ok (Store.Client.disconnect session));
  printf "aware_home ok\n"
