(* The paper's class-2 application (section 2): a school publishes a
   newsletter that many families read — single writer, many readers,
   monotonic-read consistency, and timed dissemination over a simulated
   wide-area network.

   The run shows the paper's section 6 point about read cost and
   dissemination: right after publication only b+1 servers hold the new
   issue, so readers polling other servers pay extra rounds; once gossip
   spreads it, reads settle at the 2(b+1)+2-message best case.

     dune exec examples/school_news.exe *)

let printf = Printf.printf

let () =
  let n = 7 and b = 2 in
  let w = Workload.Worlds.make ~n ~b ~clients:[ "school"; "family1"; "family2" ] () in
  let engine =
    Sim.Engine.create ~seed:2026
      ~latency:(Sim.Latency.make (Sim.Latency.Lognormal { mu = log 0.030; sigma = 0.4 }))
      ()
  in
  Workload.Worlds.register_engine w engine;
  ignore
    (Store.Gossip.install engine ~servers:w.servers ~period:2.0
       ~rng:(Sim.Srng.create 7) ());

  (* The school publishes a new issue every ~10 s of simulated time. *)
  Sim.Engine.spawn engine ~client:(-2) (fun () ->
      let school =
        Workload.Worlds.connect w "school" ~group:"news"
          ~cfg:(fun c -> { c with Store.Client.timeout = 1.0 })
      in
      for issue = 1 to 5 do
        let body = Printf.sprintf "issue #%d: bake sale friday" issue in
        (match Store.Client.write school ~item:"newsletter" body with
        | Ok () -> printf "[%6.2fs] school published issue %d\n" (Sim.Runtime.now ()) issue
        | Error e -> printf "publish failed: %s\n" (Store.Client.error_to_string e));
        Sim.Runtime.sleep 10.0
      done);

  (* Two families poll the newsletter from random server subsets. MRC
     guarantees a family never sees an issue older than one it already
     read, even though the servers they poll differ each time. *)
  let family name offset =
    Sim.Engine.spawn engine ~client:(-3) ~at:offset (fun () ->
        let session =
          Workload.Worlds.connect w name ~group:"news"
            ~cfg:(fun c ->
              {
                c with
                Store.Client.read_spread = true;
                seed = Hashtbl.hash name;
                timeout = 1.0;
              })
        in
        let last = ref "" in
        for _ = 1 to 12 do
          Sim.Runtime.sleep 4.0;
          match Store.Client.read session ~item:"newsletter" with
          | Ok v ->
            if v <> !last then begin
              printf "[%6.2fs] %s now reads: %S (%d msgs so far)\n"
                (Sim.Runtime.now ()) name v
                (Store.Client.stats session).Store.Client.messages;
              last := v
            end
          | Error _ -> ()
        done)
  in
  family "family1" 1.0;
  family "family2" 2.5;

  Sim.Engine.run ~until:60.0 engine;
  let c = Sim.Engine.counters engine in
  printf "simulated 60s: %d messages, %d bytes on the wire, %d dropped\n"
    c.Sim.Engine.messages_sent c.Sim.Engine.bytes_sent c.Sim.Engine.messages_dropped;
  printf "school_news ok\n"
