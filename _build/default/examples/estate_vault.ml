(* Fragmentation-scattering and threshold secrets — the complementary
   techniques the paper cites (section 3: Fray et al., Rabin) built on
   the same store.

   Scenario: a family vault. Large documents are dispersed across n=7
   servers so that no single server (not even with its disk stolen)
   holds a reconstructable copy, reads survive b=2 bad servers, and the
   vault's master key itself is never stored anywhere — it is split
   among 5 trustees with a 3-of-5 Shamir threshold.

     dune exec examples/estate_vault.exe *)

let printf = Printf.printf

let () =
  let n = 7 and b = 2 in
  let keyring = Store.Keyring.create () in
  let owner = Crypto.Rsa.generate (Crypto.Prng.create ~seed:"owner") in
  Store.Keyring.register keyring "owner" owner.Crypto.Rsa.public;
  let servers = Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ()) in
  let hmap = Array.map Store.Server.handler servers in
  (* Two faulty servers: one crashed, one corrupting everything. *)
  hmap.(2) <- Store.Faults.wrap Store.Faults.Crash servers.(2);
  hmap.(5) <- Store.Faults.wrap Store.Faults.Corrupt_value servers.(5);
  let handlers dst ~from request =
    if dst >= 0 && dst < n then hmap.(dst) ~now:0.0 ~from request else None
  in

  (* 1. The vault master key exists only in trustee shares. *)
  let master_key = "vault-master-key-0123456789abcdef" in
  let trustee_rng = Crypto.Prng.create ~seed:"trustee-shares" in
  let shares = Crypto.Shamir.split trustee_rng ~threshold:3 ~shares:5 master_key in
  printf "master key split into %d trustee shares (any 3 recover it)\n"
    (List.length shares);
  (match
     Crypto.Shamir.combine ~threshold:3
       [ List.nth shares 0; List.nth shares 1 ]
   with
  | None -> printf "two trustees alone recover nothing\n"
  | Some _ -> printf "BUG: threshold violated\n");

  (* 2. Three trustees convene and unlock the vault. *)
  let recovered =
    match
      Crypto.Shamir.combine ~threshold:3
        [ List.nth shares 4; List.nth shares 1; List.nth shares 3 ]
    with
    | Some k -> k
    | None -> failwith "reconstruction failed"
  in
  assert (recovered = master_key);
  printf "trustees 2, 4 and 5 reconstructed the vault key\n";

  (* 3. Documents are encrypted under the vault key and dispersed:
     each server stores one signed fragment of ~1/(b+1) the size. *)
  let deed = String.concat "\n" (List.init 200 (fun i ->
      Printf.sprintf "deed clause %d: lorem ipsum dolor sit amet" i))
  in
  Sim.Direct.run ~handlers (fun () ->
      let vault =
        Store.Dispersal.make ~n ~b ~writer:"owner" ~key:owner ~keyring
          ~group:"estate" ~secret:recovered ()
      in
      (match Store.Dispersal.write vault ~item:"deed" deed with
      | Ok () -> printf "deed dispersed: %d fragments, any %d reconstruct\n" n (b + 1)
      | Error e -> failwith (Store.Dispersal.error_to_string e));

      (* What one server actually holds. *)
      let frag_uid =
        Store.Uid.make ~group:"estate"
          ~item:(Store.Dispersal.fragment_item ~item:"deed" 1)
      in
      (match Store.Server.current_write servers.(0) frag_uid with
      | Some w ->
        printf "server 0 holds a %d-byte encrypted fragment of a %d-byte deed\n"
          (String.length w.Store.Payload.value)
          (String.length deed)
      | None -> printf "server 0 fragment missing\n");

      (* 4. Reading works despite the crash and the corrupter. *)
      match Store.Dispersal.read vault ~item:"deed" with
      | Ok v when v = deed ->
        printf "deed reconstructed intact through %d faulty servers\n" 2
      | Ok _ -> printf "BUG: reconstructed garbage\n"
      | Error e -> failwith (Store.Dispersal.error_to_string e));

  (* 5. Without the key, fragments are useless even all together. *)
  Sim.Direct.run ~handlers (fun () ->
      let thief =
        Store.Dispersal.make ~n ~b ~writer:"owner" ~key:owner ~keyring
          ~group:"estate" ~secret:"guessed-wrong" ()
      in
      match Store.Dispersal.read thief ~item:"deed" with
      | Error Store.Dispersal.Decrypt_failed ->
        printf "an attacker with every fragment but no key gets nothing\n"
      | Ok _ -> printf "BUG: key did not matter\n"
      | Error e -> printf "read failed differently: %s\n" (Store.Dispersal.error_to_string e));
  printf "estate_vault ok\n"
