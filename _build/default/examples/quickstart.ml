(* Quickstart: stand up a 4-server secure store in-process, write and
   read a value, survive a Byzantine server, carry a session context.

     dune exec examples/quickstart.exe *)

let printf = Printf.printf

let () =
  (* 1. Every client owns a keypair; public halves live in a keyring that
     servers and clients share (the paper's PKI assumption). *)
  let keyring = Store.Keyring.create () in
  let key_alice = Crypto.Rsa.generate (Crypto.Prng.create ~seed:"alice") in
  Store.Keyring.register keyring "alice" key_alice.Crypto.Rsa.public;

  (* 2. n = 4 replicated servers, of which up to b = 1 may be Byzantine. *)
  let n = 4 and b = 1 in
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hmap = Array.map Store.Server.handler servers in

  (* Make server 0 malicious: it corrupts every value it returns. *)
  hmap.(0) <- Store.Faults.wrap Store.Faults.Corrupt_value servers.(0);

  (* 3. Protocol code talks to servers through Sim.Runtime effects; the
     Direct handler interprets them as plain in-process calls. *)
  let handlers dst ~from request =
    if dst >= 0 && dst < n then hmap.(dst) ~now:0.0 ~from request else None
  in
  Sim.Direct.run ~handlers (fun () ->
      let config = Store.Client.default_config ~n ~b in
      let alice =
        match
          Store.Client.connect ~config ~uid:"alice" ~key:key_alice ~keyring
            ~group:"notes" ()
        with
        | Ok c -> c
        | Error e -> failwith (Store.Client.error_to_string e)
      in

      (* 4. Write: signed, sent to b+1 servers. *)
      (match Store.Client.write alice ~item:"todo" "buy milk" with
      | Ok () -> printf "wrote 'buy milk' to %d servers\n" (b + 1)
      | Error e -> failwith (Store.Client.error_to_string e));

      (* 5. Read: the corrupted reply from server 0 fails its signature
         check and the client falls through to an honest server. *)
      (match Store.Client.read alice ~item:"todo" with
      | Ok v -> printf "read back: %S (despite a Byzantine server)\n" v
      | Error e -> failwith (Store.Client.error_to_string e));

      (* 6. End the session: the context (which versions alice has seen)
         is signed and stored on a quorum of ceil((n+b+1)/2) servers. *)
      (match Store.Client.disconnect alice with
      | Ok () -> printf "session context stored on a quorum\n"
      | Error e -> failwith (Store.Client.error_to_string e));

      (* 7. A later session restores the context and read-your-writes
         holds across sessions. *)
      let alice2 =
        match
          Store.Client.connect ~config ~uid:"alice" ~key:key_alice ~keyring
            ~group:"notes" ()
        with
        | Ok c -> c
        | Error e -> failwith (Store.Client.error_to_string e)
      in
      match Store.Client.read alice2 ~item:"todo" with
      | Ok v -> printf "new session still reads: %S\n" v
      | Error e -> failwith (Store.Client.error_to_string e));
  printf "quickstart ok\n"
