examples/quickstart.ml: Array Crypto Printf Sim Store
