examples/aware_home.ml: Array Crypto Printf Sim Store String
