examples/community_plan.ml: Array Crypto Printf Sim Store
