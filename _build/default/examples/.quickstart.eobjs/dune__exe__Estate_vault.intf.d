examples/estate_vault.mli:
