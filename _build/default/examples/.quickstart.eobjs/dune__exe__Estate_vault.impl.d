examples/estate_vault.ml: Array Crypto List Printf Sim Store String
