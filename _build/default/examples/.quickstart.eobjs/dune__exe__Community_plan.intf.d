examples/community_plan.mli:
