examples/aware_home.mli:
