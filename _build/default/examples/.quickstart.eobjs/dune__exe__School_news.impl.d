examples/school_news.ml: Hashtbl Printf Sim Store Workload
