examples/school_news.mli:
