examples/quickstart.mli:
