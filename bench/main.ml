(* Benchmark harness: regenerates every quantitative claim of the paper's
   section 6 (experiments E1-E10; see DESIGN.md and EXPERIMENTS.md).

     dune exec bench/main.exe            -- all experiments + E9 microbench
     dune exec bench/main.exe -- e3 e9   -- a subset
     dune exec bench/main.exe -- --seed 7 e7
     dune exec bench/main.exe -- e9 --json   -- also write BENCH_crypto.json

   Output is plain text, one table per experiment. With --json, the E9
   crypto and end-to-end numbers are additionally written to
   BENCH_crypto.json (ns/op) so the perf trajectory is machine-tracked;
   an existing "baseline" object in that file is preserved across runs. *)

let fmt = Format.std_formatter

(* Latency distributions throughout the harness use the obs log-scale
   histograms — the same counters a /metrics scrape exports — so bench
   tables and live exposition agree on what a percentile means. (This
   replaced per-experiment Sim.Stats reservoirs and hand-rolled
   percentile helpers.) *)
let time_ns f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  ((Unix.gettimeofday () -. t0) *. 1e9, r)

let observe_ns histo f =
  let ns, r = time_ns f in
  Obs.Histo.observe histo ns;
  r

let histo_mean h =
  let n = Obs.Histo.count h in
  if n = 0 then 0.0 else Obs.Histo.sum h /. float_of_int n

(* ------------------------------------------------------------------ *)
(* E9: crypto and protocol microbenchmarks via Bechamel                *)
(* ------------------------------------------------------------------ *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* ---- BENCH_crypto.json -------------------------------------------- *)

let json_key name =
  (* "crypto/rsa1024-sign" -> "rsa1024_sign"; "store-ops/write(b+1)" ->
     "write_b_1": drop the group prefix, map non-alphanumerics to '_',
     squeeze and trim the underscores. *)
  let name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | _ ->
        if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '_'
        then Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let results_json rows =
  "{ "
  ^ String.concat ", "
      (List.map
         (fun (name, ns) ->
           Printf.sprintf "\"%s_ns\": %.1f" (json_key name) ns)
         rows)
  ^ " }"

(* The first --json run records its numbers as the baseline; later runs
   keep that baseline so before/after is visible in one committed file. *)
let existing_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let key = "\"baseline\"" in
    let klen = String.length key and n = String.length s in
    let rec find i =
      if i + klen > n then None
      else if String.sub s i klen = key then Some (i + klen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some after -> (
      match String.index_from_opt s after '{' with
      | None -> None
      | Some opening ->
        let rec close i depth =
          if i >= n then None
          else
            match s.[i] with
            | '{' -> close (i + 1) (depth + 1)
            | '}' -> if depth = 1 then Some i else close (i + 1) (depth - 1)
            | _ -> close (i + 1) depth
        in
        Option.map
          (fun closing -> String.sub s opening (closing - opening + 1))
          (close opening 0))
  end

(* [baseline_rows], when given, seeds the baseline of a first-run file
   (e.g. the legacy-transport numbers measured in the same process);
   an existing committed baseline always wins. *)
let write_bench_json ~path ~schema ?baseline_rows rows =
  let current = results_json rows in
  let baseline =
    match existing_baseline path with
    | Some b -> b
    | None -> (
      match baseline_rows with Some b -> results_json b | None -> current)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"%s\",\n  \"unit\": \"ns/op\",\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        schema baseline current);
  Format.fprintf fmt "wrote %s@." path

let e9 () =
  let open Bechamel in
  let data n = String.init n (fun i -> Char.chr (i land 0xff)) in
  let d64 = data 64 and d1k = data 1024 and d64k = data 65536 in
  let prng = Crypto.Prng.create ~seed:"bench" in
  let rsa512 = Crypto.Rsa.generate ~bits:512 prng in
  let rsa1024 = Crypto.Rsa.generate ~bits:1024 prng in
  let sig512 = Crypto.Rsa.sign rsa512 d64 in
  let sig1024 = Crypto.Rsa.sign rsa1024 d64 in
  let chacha_key = Crypto.Sha256.digest "bench-key" in
  let nonce = String.make 12 '\x01' in
  let tests =
    Test.make_grouped ~name:"crypto"
      [
        Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Crypto.Sha256.digest d64));
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d1k));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d64k));
        Test.make ~name:"hmac-1KiB"
          (Staged.stage (fun () -> Crypto.Hmac.sha256 ~key:"k" d1k));
        Test.make ~name:"chacha20-1KiB"
          (Staged.stage (fun () -> Crypto.Chacha20.encrypt ~key:chacha_key ~nonce d1k));
        Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa512 d64));
        Test.make ~name:"rsa512-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa512.Crypto.Rsa.public ~msg:d64 ~signature:sig512));
        Test.make ~name:"rsa1024-sign"
          (Staged.stage (fun () -> Crypto.Rsa.sign rsa1024 d64));
        Test.make ~name:"rsa1024-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa1024.Crypto.Rsa.public ~msg:d64 ~signature:sig1024));
      ]
  in
  let rows = bechamel_run tests in
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let table =
    {
      Workload.Table.id = "E9";
      title = "Crypto microbenchmarks (Bechamel, monotonic clock)";
      header = [ "primitive"; "time/op" ];
      rows = List.map (fun (name, ns) -> [ name; pp_ns ns ]) rows;
      notes =
        [
          "the paper's section 6 cost model rests on sign >> verify >> digest;";
          "PBFT's MAC-based authenticators correspond to the hmac row";
        ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* One Bechamel test per full protocol op, run against an in-process
   world: the end-to-end computational cost of each store operation. *)
let e9_protocol () =
  let open Bechamel in
  let w = Workload.Worlds.make ~n:4 ~b:1 () in
  let counter = ref 0 in
  let in_world fn = Workload.Worlds.in_direct w fn in
  let alice =
    in_world (fun () -> Workload.Worlds.connect w "alice" ~group:"bench")
  in
  in_world (fun () ->
      match Store.Client.write alice ~item:"x" "seed-value" with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  (* Store a context for bob so the connect benchmark includes the
     signature verification of a restored session. *)
  in_world (fun () ->
      let bob = Workload.Worlds.connect w "bob" ~group:"bench" in
      match Store.Client.disconnect bob with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  let tests =
    Test.make_grouped ~name:"store-ops"
      [
        Test.make ~name:"write(b+1)"
          (Staged.stage (fun () ->
               incr counter;
               in_world (fun () ->
                   Store.Client.write alice ~item:"x" (string_of_int !counter))));
        Test.make ~name:"read(b+1)"
          (Staged.stage (fun () ->
               in_world (fun () -> Store.Client.read alice ~item:"x")));
        Test.make ~name:"connect(ctx q)"
          (Staged.stage (fun () ->
               in_world (fun () -> Workload.Worlds.connect w "bob" ~group:"bench")));
      ]
  in
  let rows = bechamel_run tests in
  let table =
    {
      Workload.Table.id = "E9b";
      title = "End-to-end op compute cost (in-process, n=4 b=1, RSA-512)";
      header = [ "operation"; "time/op" ];
      rows =
        List.map
          (fun (name, ns) -> [ name; Printf.sprintf "%.2f ms" (ns /. 1e6) ])
          rows;
      notes = [ "dominated by the signature asymmetry measured in E9" ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* ------------------------------------------------------------------ *)
(* E10 (live half): loopback RPC over the real TCP transport           *)
(* ------------------------------------------------------------------ *)

(* A real n=4, b=1 cluster of Server_hosts on loopback; each measured
   op is one quorum RPC round (fan out to all n, resume at the write
   quorum ceil((n+b+1)/2) = 3), the access pattern every store
   operation reduces to. Run once over the legacy connect-per-request
   transport (the baseline BENCH_net.json preserves) and once over the
   pooled pipelined one. *)
let e10_net ~json () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let payload =
    Store.Payload.encode_envelope
      {
        Store.Payload.token = None; epoch = 0;
        request =
          Store.Payload.Meta_query
            { uid = Store.Uid.make ~group:"bench" ~item:"x" };
      }
  in
  let quorum = (n + b + 1 + 1) / 2 in
  let all = List.init n Fun.id in
  let one_round () =
    ignore
      (Sim.Runtime.call_many ~timeout:2.0 ~quorum all payload
        : Sim.Runtime.reply list)
  in
  let latency transport iters =
    let histo = Obs.Histo.create () in
    Tcpnet.Live.run ~transport ~endpoints (fun () ->
        for _ = 1 to 10 do
          one_round ()
        done;
        for _ = 1 to iters do
          observe_ns histo one_round
        done);
    histo
  in
  let throughput transport threads iters =
    let workers =
      List.init threads (fun _ ->
          Thread.create
            (fun () ->
              Tcpnet.Live.run ~transport ~endpoints (fun () ->
                  for _ = 1 to iters do
                    one_round ()
                  done))
            ())
    in
    let t0 = Unix.gettimeofday () in
    List.iter Thread.join workers;
    let dt = Unix.gettimeofday () -. t0 in
    dt *. 1e9 /. float_of_int (threads * iters)
  in
  let measure transport =
    let histo = latency transport 300 in
    let c8 = throughput transport 8 150 in
    [
      ("net/rpc-quorum-p50", Obs.Histo.percentile histo 50.0);
      ("net/rpc-quorum-p95", Obs.Histo.percentile histo 95.0);
      ("net/rpc-quorum-mean", histo_mean histo);
      ("net/rpc-quorum-c8", c8);
    ]
  in
  let legacy = measure `Legacy in
  let pooled = measure `Pooled in
  Array.iter Tcpnet.Server_host.stop hosts;
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.1f us" (ns /. 1e3)
  in
  let table =
    {
      Workload.Table.id = "E10b";
      title =
        Printf.sprintf
          "Loopback quorum RPC (real TCP, n=%d b=%d, quorum %d-of-%d)" n b
          quorum n;
      header = [ "metric"; "per-connection"; "pooled+pipelined"; "speedup" ];
      rows =
        List.map2
          (fun (name, base_ns) (_, pooled_ns) ->
            [
              name;
              pp_ns base_ns;
              pp_ns pooled_ns;
              Printf.sprintf "%.1fx" (base_ns /. pooled_ns);
            ])
          legacy pooled;
      notes =
        [
          "per-connection: dial + thread per destination per call, 1 ms poll-wait";
          "pooled: persistent connections, correlation-id pipelining, condition wakeup";
          "rpc-quorum-c8: ns/op across 8 concurrent client threads";
        ];
    }
  in
  Workload.Table.print fmt table;
  let s = Store.Metrics.rpc_latency_stats () in
  Format.fprintf fmt
    "transport metrics: %d rpcs, in-flight hwm %d, pool rpc p50 %.1f us \
     (p99 %.1f us)@."
    s.Store.Metrics.rpc_count
    (Store.Metrics.inflight_high_water ())
    (s.Store.Metrics.p50_ns /. 1e3)
    (s.Store.Metrics.p99_ns /. 1e3);
  if json then
    write_bench_json ~path:"BENCH_net.json" ~schema:"bench-net-v1"
      ~baseline_rows:legacy pooled

(* ------------------------------------------------------------------ *)
(* E15: chaos soak — live cluster under fault injection                *)
(* ------------------------------------------------------------------ *)

(* BENCH_chaos.json is counts and milliseconds, not ns/op, so it gets
   its own writer (same baseline-preserving convention as
   [write_bench_json]). *)
let write_chaos_json ~path ~seed ~digest rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-chaos-v1\",\n  \"seed\": %d,\n\
        \  \"schedule_digest\": \"%s\",\n  \"baseline\": %s,\n\
        \  \"current\": %s\n}\n"
        seed digest baseline current);
  Format.fprintf fmt "wrote %s@." path

(* A real n=4 b=1 loopback cluster where every endpoint sits behind a
   seeded {!Tcpnet.Chaos} proxy (drops, delays, corruption, mid-frame
   resets, partition windows) and one server is Byzantine
   (Corrupt_value). Two client sessions soak it — alice writes, bob
   reads concurrently — and the harness asserts the paper's safety
   invariants hold throughout:

     1. every value a read returns was actually written by alice
        (no forged or corrupted value survives verification);
     2. within bob's session, per-item reads never go backwards (MRC);
     3. after the chaos heals, alice's final writes become visible to a
        fresh session on every item (gossip recovers partition losses);
     4. no worker dies and the process fd table does not grow
        (connection churn is bounded).

   Liveness under chaos is *degraded*, never traded against safety:
   failed ops count as degraded, and the time from first failure to
   next success feeds the recovery-time percentiles. *)
let e15_chaos ~seed ~json () =
  let n = 4 and b = 1 in
  Store.Metrics.reset ();
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e15-" ^ name))
  in
  let alice_key = key_of "alice" and bob_key = key_of "bob" in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  (* Pairwise MAC secrets: alice soaks the MAC-vector fast path, so the
     write path under chaos is MAC + background escalation, not one RSA
     signature per write. *)
  List.iter
    (fun client ->
      for server = 0 to n - 1 do
        Store.Keyring.register_mac keyring ~client ~server
          (Crypto.Sha256.digest (Printf.sprintf "e15-mac!%s!%d" client server))
      done)
    [ "alice"; "bob" ];
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  (* Proxies must know the server ports and servers gossip *through the
     proxies*, so: reserve the server ports first, aim a proxy at each,
     then bind the hosts to the reserved ports. *)
  let reserve_port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    Unix.close fd;
    p
  in
  let host_ports = Array.init n (fun _ -> reserve_port ()) in
  let plans =
    [|
      Tcpnet.Chaos.plan ~seed ~drop:0.04 ~delay:0.001 ~jitter:0.004
        ~reset:0.02 ();
      Tcpnet.Chaos.plan ~seed:(seed + 1) ~drop:0.04 ~delay:0.001 ~jitter:0.004
        ~blackhole:[ (1.5, 2.5); (4.0, 4.8) ] ();
      Tcpnet.Chaos.plan ~seed:(seed + 2) ~drop:0.03 ~corrupt:0.06
        ~drip_bytes:512 ~drip_delay:0.0005 ();
      Tcpnet.Chaos.plan ~seed:(seed + 3) ~drop:0.03 ~delay:0.002 ();
    |]
  in
  let digest = Tcpnet.Chaos.decision_digest plans.(0) ~frames:128 in
  (* Same seed, same schedule — the digest is pure, so an identically
     rebuilt plan must agree before anything runs. *)
  assert (
    String.equal digest
      (Tcpnet.Chaos.decision_digest
         (Tcpnet.Chaos.plan ~seed ~drop:0.04 ~delay:0.001 ~jitter:0.004
            ~reset:0.02 ())
         ~frames:128));
  let proxies =
    Array.init n (fun i ->
        Tcpnet.Chaos.start ~plan:plans.(i)
          ~target:("127.0.0.1", host_ports.(i))
          ())
  in
  let proxy_eps =
    Array.map (fun p -> ("127.0.0.1", Tcpnet.Chaos.port p)) proxies
  in
  let hosts =
    Array.init n (fun i ->
        let peers =
          List.filteri (fun j _ -> j <> i) (Array.to_list proxy_eps)
        in
        (* Downgrade: leaks MAC-held writes (not third-party verifiable)
           and strips batch inclusion proofs — the Byzantine behaviours
           aimed squarely at the fast path. Safety invariant 1 must hold
           regardless: honest clients reject both mutations. *)
        let behavior =
          if i = 3 then Store.Faults.Downgrade else Store.Faults.Honest
        in
        Tcpnet.Server_host.start
          ~gossip:{ Tcpnet.Server_host.peers; period = 0.15 }
          ~behavior ~server:servers.(i) ~port:host_ports.(i) ())
  in
  let endpoints id = if id >= 0 && id < n then Some proxy_eps.(id) else None in
  let base_cfg = Store.Client.default_config ~n ~b in
  let cfg_alice =
    {
      base_cfg with
      Store.Client.timeout = 0.3;
      read_retries = 3;
      write_retries = 3;
      retry_delay = 0.05;
      retry_backoff_max = 0.4;
      op_deadline = 4.0;
      signing = Store.Client.Mac_fast;
    }
  in
  let cfg_bob =
    {
      cfg_alice with
      Store.Client.read_spread = true;
      seed;
      signing = Store.Client.Per_write_sig;
    }
  in
  let lock = Mutex.create () in
  let violations = ref [] in
  let violate fmt_ =
    Printf.ksprintf
      (fun s ->
        Mutex.lock lock;
        violations := s :: !violations;
        Mutex.unlock lock)
      fmt_
  in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_attempt item value =
    Mutex.lock lock;
    Hashtbl.replace attempted (item ^ "=" ^ value) ();
    Mutex.unlock lock
  in
  let was_attempted item value =
    Mutex.lock lock;
    let r = Hashtbl.mem attempted (item ^ "=" ^ value) in
    Mutex.unlock lock;
    r
  in
  let ops_attempted = ref 0 and ops_succeeded = ref 0 in
  (* Recovery times (ns) go into an obs histogram: lock-cheap to record
     from both workers and the same percentile machinery every other
     latency number uses. *)
  let recovery = Obs.Histo.create () in
  (* Per-worker recovery tracking: first failure of a failing streak to
     the next success. *)
  let make_op_tracker () =
    let fail_since = ref nan in
    fun run ->
      Mutex.lock lock;
      incr ops_attempted;
      Mutex.unlock lock;
      let ok = run () in
      let now = Unix.gettimeofday () in
      if ok then begin
        Mutex.lock lock;
        incr ops_succeeded;
        Mutex.unlock lock;
        if not (Float.is_nan !fail_since) then
          Obs.Histo.observe recovery ((now -. !fail_since) *. 1e9);
        fail_since := nan
      end
      else if Float.is_nan !fail_since then fail_since := now
  in
  let rec connect_retry name key cfg tries =
    match
      Store.Client.connect ~config:cfg ~uid:name ~key ~keyring ~group:"chaos" ()
    with
    | Ok c -> c
    | Error e when tries > 0 ->
      ignore e;
      Thread.delay 0.2;
      connect_retry name key cfg (tries - 1)
    | Error e ->
      failwith
        (Printf.sprintf "e15 connect %s: %s" name
           (Store.Client.error_to_string e))
  in
  let items = [| "k0"; "k1"; "k2"; "k3" |] in
  let soak_writes = 60 in
  let writer_done = ref false in
  let writer () =
    Tcpnet.Live.run ~endpoints (fun () ->
        let alice = connect_retry "alice" alice_key cfg_alice 10 in
        let op = make_op_tracker () in
        for i = 1 to soak_writes do
          let item = items.(i mod Array.length items) in
          let value = Printf.sprintf "%s#%d" item i in
          note_attempt item value;
          op (fun () ->
              match Store.Client.write alice ~item value with
              | Ok () -> true
              | Error _ -> false);
          Thread.delay 0.03
        done;
        ignore (Store.Client.disconnect alice))
  in
  let reader () =
    Tcpnet.Live.run ~endpoints (fun () ->
        let bob = connect_retry "bob" bob_key cfg_bob 10 in
        let op = make_op_tracker () in
        let last_seq : (string, int) Hashtbl.t = Hashtbl.create 4 in
        let i = ref 0 in
        while not !writer_done do
          incr i;
          let item = items.(!i mod Array.length items) in
          op (fun () ->
              match Store.Client.read bob ~item with
              | Error _ -> false
              | Ok v ->
                (* Invariant 1: only values alice actually wrote. *)
                if not (was_attempted item v) then
                  violate "read of %s returned un-written value %S" item v;
                (* Invariant 2: per-item monotonicity within the session
                   (values encode the writer's sequence number). *)
                (match String.index_opt v '#' with
                | Some h -> (
                  match
                    int_of_string_opt
                      (String.sub v (h + 1) (String.length v - h - 1))
                  with
                  | Some seq ->
                    (match Hashtbl.find_opt last_seq item with
                    | Some prev when seq < prev ->
                      violate "read of %s went backwards: %d after %d" item
                        seq prev
                    | _ -> ());
                    Hashtbl.replace last_seq item seq
                  | None -> ())
                | None -> ());
                true);
          Thread.delay 0.02
        done)
  in
  let crashes = ref 0 in
  let guard name fn () =
    try fn ()
    with e ->
      Mutex.lock lock;
      incr crashes;
      violations :=
        Printf.sprintf "%s worker died: %s" name (Printexc.to_string e)
        :: !violations;
      Mutex.unlock lock
  in
  (* Warm the shared pool (timekeeper thread, self-pipe) before the fd
     baseline, so only connection churn counts as growth. *)
  Tcpnet.Live.run ~endpoints (fun () ->
      let alice = connect_retry "alice" alice_key cfg_alice 10 in
      let _ = Store.Client.write alice ~item:"warmup" "w" in
      ());
  let live_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let fd_baseline = live_fds () in
  let t0 = Unix.gettimeofday () in
  let wt = Thread.create (guard "writer" writer) () in
  let rt = Thread.create (guard "reader" reader) () in
  Thread.join wt;
  writer_done := true;
  Thread.join rt;
  let soak_secs = Unix.gettimeofday () -. t0 in
  (* Heal every proxy, then prove recovery: final writes must become
     visible to a fresh session on every item once gossip catches up. *)
  Array.iter Tcpnet.Chaos.heal proxies;
  let final_values : (string, string) Hashtbl.t = Hashtbl.create 4 in
  Tcpnet.Live.run ~endpoints (fun () ->
      let alice =
        connect_retry "alice" alice_key
          { cfg_alice with Store.Client.op_deadline = 10.0 }
          10
      in
      Array.iter
        (fun item ->
          let value = Printf.sprintf "%s#final" item in
          Hashtbl.replace final_values item value;
          note_attempt item value;
          match Store.Client.write alice ~item value with
          | Ok () -> ()
          | Error e ->
            violate "post-heal write of %s failed: %s" item
              (Store.Client.error_to_string e))
        items;
      (* Disconnect flushes the escalation queue: the final MAC-fast
         writes must be signed and announced before bob's convergence
         reads, which only accept verifiable evidence. *)
      (match Store.Client.disconnect alice with
      | Ok () -> ()
      | Error e ->
        violate "post-heal disconnect failed: %s"
          (Store.Client.error_to_string e));
      let bob =
        connect_retry "bob" bob_key
          { cfg_bob with Store.Client.op_deadline = 10.0 }
          10
      in
      let deadline = Unix.gettimeofday () +. 15.0 in
      let rec converge remaining =
        match remaining with
        | [] -> ()
        | _ when Unix.gettimeofday () > deadline ->
          violate "post-heal convergence timed out on: %s"
            (String.concat ", " remaining)
        | _ ->
          let remaining' =
            List.filter
              (fun item ->
                match Store.Client.read bob ~item with
                | Ok v -> not (String.equal v (Hashtbl.find final_values item))
                | Error _ -> true)
              remaining
          in
          if remaining' <> [] then Thread.delay 0.1;
          converge remaining'
      in
      converge (Array.to_list items));
  let fd_growth = live_fds () - fd_baseline in
  (* Invariant 4: bounded connection churn. Generous slack: the pool
     may legitimately hold a couple of connections per endpoint that
     the warmup had not dialed yet, each spliced through a proxy. *)
  if fd_growth > 40 then
    violate "fd table grew by %d (baseline %d)" fd_growth fd_baseline;
  let cstats =
    Array.to_list (Array.map Tcpnet.Chaos.stats proxies)
  in
  let sum f = List.fold_left (fun a s -> a + f s) 0 cstats in
  let dropped = sum (fun (s : Tcpnet.Chaos.stats) -> s.dropped) in
  let corrupted = sum (fun (s : Tcpnet.Chaos.stats) -> s.corrupted) in
  let resets = sum (fun (s : Tcpnet.Chaos.stats) -> s.resets) in
  let refused = sum (fun (s : Tcpnet.Chaos.stats) -> s.refused) in
  let killed = sum (fun (s : Tcpnet.Chaos.stats) -> s.killed) in
  let forwarded = sum (fun (s : Tcpnet.Chaos.stats) -> s.forwarded) in
  Array.iter Tcpnet.Chaos.stop proxies;
  Array.iter Tcpnet.Server_host.stop hosts;
  (* ns -> ms at the reporting boundary; percentiles resolve to the
     histogram's bucket bounds. *)
  let rec_pct p = Obs.Histo.percentile recovery p /. 1e6 in
  let m = Store.Metrics.read () in
  (* --- Sharded-isolation phase: a Byzantine replica *inside one
     shard* must leave the other shard untouched, and its own shard's
     quorums must mask it (b=1). Two shards, four multi-shard hosts
     (each serving one replica of both shards on one port); host 2 runs
     Corrupt_value on shard 1 only. A router writes and reads groups on
     both shards; every op must succeed and read back exactly what was
     written, and the per-shard client metrics must show zero failures
     on the clean shard. *)
  let iso_shards = 2 in
  Store.Metrics.reset ();
  let iso_key = key_of "iso" in
  let iso_keyring = Store.Keyring.create () in
  Store.Keyring.register iso_keyring "iso" iso_key.Crypto.Rsa.public;
  for gid = 0 to (iso_shards * n) - 1 do
    Store.Keyring.register_mac iso_keyring ~client:"iso" ~server:gid
      (Crypto.Sha256.digest (Printf.sprintf "e15-iso-mac!%d" gid))
  done;
  let iso_servers =
    Array.init (iso_shards * n) (fun gid ->
        Store.Server.create ~id:gid ~keyring:iso_keyring ~n ~b ())
  in
  let iso_ports = Array.init n (fun _ -> reserve_port ()) in
  let iso_hosts =
    Array.init n (fun r ->
        let peers =
          List.filteri (fun j _ -> j <> r)
            (Array.to_list (Array.map (fun p -> ("127.0.0.1", p)) iso_ports))
        in
        let specs =
          List.init iso_shards (fun s ->
              {
                Tcpnet.Server_host.shard = s;
                server = iso_servers.((s * n) + r);
                behavior =
                  (if r = 2 && s = 1 then Store.Faults.Corrupt_value
                   else Store.Faults.Honest);
                peers;
              })
        in
        Tcpnet.Server_host.start_sharded ~gossip_period:0.2 ~shards:specs
          ~port:iso_ports.(r) ())
  in
  let iso_table = Store.Shardmap.make ~seed:"e15-iso" ~shards:iso_shards () in
  (* Enough groups that both shards get some (deterministic: same seed,
     same table, same split in every run). *)
  let iso_groups = List.init 8 (fun g -> Printf.sprintf "iso%d" g) in
  let groups_on s =
    List.filter
      (fun g -> Store.Shardmap.shard_of_group iso_table g = s)
      iso_groups
  in
  List.iter
    (fun s ->
      if groups_on s = [] then
        violate "sharded isolation: no sample group landed on shard %d" s)
    (List.init iso_shards Fun.id);
  let iso_eps gid =
    if gid >= 0 && gid < iso_shards * n then
      Some ("127.0.0.1", iso_ports.(gid mod n))
    else None
  in
  let iso_config_of shard =
    {
      base_cfg with
      Store.Client.servers = Store.Router.shard_servers ~n shard;
      timeout = 1.0;
      signing = Store.Client.Mac_fast;
      op_deadline = 5.0;
      write_retries = 1;
      read_retries = 2;
      retry_delay = 0.02;
      retry_backoff_max = 0.1;
    }
  in
  let iso_ops = ref 0 in
  Tcpnet.Live.run ~endpoints:iso_eps
    ~shard_of:(fun node -> Some (node / n))
    (fun () ->
      let router =
        Store.Router.create ~table:iso_table ~uid:"iso" ~key:iso_key
          ~keyring:iso_keyring ~config_of:iso_config_of ()
      in
      for i = 1 to 8 do
        List.iter
          (fun g ->
            let uid =
              Store.Uid.make ~group:g ~item:(Printf.sprintf "k%d" (i mod 3))
            in
            let value = Printf.sprintf "%s#%d" g i in
            incr iso_ops;
            (match Store.Router.write router ~uid value with
            | Ok () -> ()
            | Error e ->
              violate "sharded isolation: write %s (shard %d) failed: %s"
                (Store.Uid.to_string uid)
                (Store.Shardmap.shard_of_uid iso_table uid)
                (Store.Client.error_to_string e));
            incr iso_ops;
            match Store.Router.read router ~uid with
            | Ok v when String.equal v value -> ()
            | Ok v ->
              violate "sharded isolation: read %s got %S want %S"
                (Store.Uid.to_string uid) v value
            | Error e ->
              violate "sharded isolation: read %s (shard %d) failed: %s"
                (Store.Uid.to_string uid)
                (Store.Shardmap.shard_of_uid iso_table uid)
                (Store.Client.error_to_string e))
          iso_groups
      done;
      ignore (Store.Router.disconnect router));
  let iso_failures s =
    match List.assoc_opt s (Store.Metrics.shard_client_stats ()) with
    | Some c -> c.Store.Metrics.shard_failures
    | None -> 0
  in
  let iso_shard0_failures = iso_failures 0 in
  let iso_shard1_failures = iso_failures 1 in
  if iso_shard0_failures > 0 then
    violate
      "sharded isolation: %d client-op failure(s) on shard 0, which hosts \
       no Byzantine replica"
      iso_shard0_failures;
  Array.iter Tcpnet.Server_host.stop iso_hosts;
  let degraded = !ops_attempted - !ops_succeeded in
  let nviol = List.length !violations in
  List.iter (fun v -> Format.fprintf fmt "VIOLATION: %s@." v) (List.rev !violations);
  let table =
    {
      Workload.Table.id = "E15";
      title =
        Printf.sprintf
          "Chaos soak (n=%d b=%d, seeded fault proxies + Downgrade server, \
           mac-fast writer, %.1f s)"
          n b soak_secs;
      header = [ "metric"; "value" ];
      rows =
        [
          [ "ops attempted"; string_of_int !ops_attempted ];
          [ "ops succeeded"; string_of_int !ops_succeeded ];
          [ "ops degraded (failed under chaos)"; string_of_int degraded ];
          [ "safety violations"; string_of_int nviol ];
          [ "client retries / escalations";
            Printf.sprintf "%d / %d" m.Store.Metrics.retries
              m.Store.Metrics.escalations ];
          [ "recovery p50 / p95 / max (ms)";
            Printf.sprintf "%.0f / %.0f / %.0f" (rec_pct 50.0) (rec_pct 95.0)
              (Obs.Histo.max_value recovery /. 1e6) ];
          [ "frames forwarded / dropped / corrupted";
            Printf.sprintf "%d / %d / %d" forwarded dropped corrupted ];
          [ "resets / conns refused / conns killed";
            Printf.sprintf "%d / %d / %d" resets refused killed ];
          [ "fd growth over soak"; string_of_int fd_growth ];
          [ Printf.sprintf
              "sharded isolation (S=%d, Corrupt_value in shard 1): ops / \
               shard-0 / shard-1 failures"
              iso_shards;
            Printf.sprintf "%d / %d / %d" !iso_ops iso_shard0_failures
              iso_shard1_failures ];
        ];
      notes =
        [
          "safety invariants: no un-written value returned, per-session";
          "monotonic reads, post-heal convergence, zero worker deaths,";
          Printf.sprintf "bounded fd churn; schedule digest %s"
            (String.sub digest 0 16);
          "sharded isolation: a Byzantine replica inside one shard is \
           masked by its own quorum and invisible to the other shard.";
        ];
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_chaos_json ~path:"BENCH_chaos.json" ~seed ~digest
      [
        ("ops_attempted", string_of_int !ops_attempted);
        ("ops_succeeded", string_of_int !ops_succeeded);
        ("ops_degraded", string_of_int degraded);
        ("safety_violations", string_of_int nviol);
        ("worker_crashes", string_of_int !crashes);
        ("client_retries", string_of_int m.Store.Metrics.retries);
        ("client_escalations", string_of_int m.Store.Metrics.escalations);
        ("recovery_p50_ms", Printf.sprintf "%.1f" (rec_pct 50.0));
        ("recovery_p95_ms", Printf.sprintf "%.1f" (rec_pct 95.0));
        ("recovery_max_ms",
          Printf.sprintf "%.1f" (Obs.Histo.max_value recovery /. 1e6));
        ("frames_forwarded", string_of_int forwarded);
        ("frames_dropped", string_of_int dropped);
        ("frames_corrupted", string_of_int corrupted);
        ("resets", string_of_int resets);
        ("conns_refused", string_of_int refused);
        ("conns_killed", string_of_int killed);
        ("fd_growth", string_of_int fd_growth);
        ("sharded_iso_shards", string_of_int iso_shards);
        ("sharded_iso_ops", string_of_int !iso_ops);
        ("sharded_iso_shard0_failures", string_of_int iso_shard0_failures);
        ("sharded_iso_shard1_failures", string_of_int iso_shard1_failures);
      ];
  if nviol > 0 then begin
    Format.fprintf fmt "E15: %d safety violation(s) — failing@." nviol;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E16: consistency oracle — seeded schedule exploration               *)
(* ------------------------------------------------------------------ *)

(* BENCH_check.json is pass/fail counts, not ns/op and not a perf
   baseline: every run must report zero violations, so there is nothing
   to compare against. *)
let write_check_json ~path ~seed ~schedules ~events ~ops_ok ~ops_failed
    ~violations ~canary_caught ~control_clean ~canary_shrunk_to
    ~determinism_ok ~router_shards ~router_events ~router_violations
    ~reconfig_schedules ~reconfig_events ~reconfig_violations =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-check-v1\",\n  \"seed\": %d,\n\
        \  \"schedules\": %d,\n  \"events\": %d,\n  \"ops_ok\": %d,\n\
        \  \"ops_failed\": %d,\n  \"violations\": %d,\n\
        \  \"canary_caught\": %b,\n  \"control_clean\": %b,\n\
        \  \"canary_shrunk_to\": \"%s\",\n  \"determinism_ok\": %b,\n\
        \  \"router_shards\": %d,\n  \"router_events\": %d,\n\
        \  \"router_violations\": %d,\n  \"reconfig_schedules\": %d,\n\
        \  \"reconfig_events\": %d,\n  \"reconfig_violations\": %d\n}\n"
        seed schedules events ops_ok ops_failed violations canary_caught
        control_clean canary_shrunk_to determinism_ok router_shards
        router_events router_violations reconfig_schedules reconfig_events
        reconfig_violations);
  Format.fprintf fmt "wrote %s@." path

(* Hundreds of seeded fault schedules (random latency and loss, crash
   windows, partitions, <= b Byzantine servers, mixed sw/mw mrc/cc
   workloads), every client history checked by {!Check.Oracle}. Three
   meta-checks keep the harness honest: the canary (a client whose
   freshness check is disabled) must be flagged and must shrink to its
   one relevant fault category; the same choreography with an honest
   client must pass; and re-running a schedule must reproduce the exact
   history digest (seed-only reproducibility). *)
let e16_check ~seed ~json () =
  let module E = Check.Explorer in
  let schedules =
    match Sys.getenv_opt "CHECK_SCHEDULES" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 500)
    | None -> 500
  in
  (* Canary and control. *)
  let canary = E.run (E.canary_schedule ~seed) in
  let control = E.run { (E.canary_schedule ~seed) with E.canary = false } in
  let canary_caught = canary.E.violations <> [] in
  let control_clean = control.E.violations = [] in
  Format.fprintf fmt "E16 canary (%s):@." (E.describe canary.E.schedule);
  List.iter
    (fun v -> Format.fprintf fmt "  caught: %s@." (Check.Oracle.violation_to_string v))
    canary.E.violations;
  if not canary_caught then
    Format.fprintf fmt "  MISSED: the oracle did not flag the broken client@.";
  if not control_clean then
    Format.fprintf fmt "  control run unexpectedly violated@.";
  let shrunk, kept = E.shrink canary in
  let canary_shrunk_to =
    String.concat "," (List.map E.category_name kept)
  in
  Format.fprintf fmt
    "  shrink: %d fault categories -> {%s} (violation %s)@."
    (List.length (E.active_categories canary.E.schedule))
    canary_shrunk_to
    (if shrunk.E.violations <> [] then "persists" else "LOST");
  (* Determinism: the same seed must reproduce the same history. *)
  let d1 = E.run (E.schedule_of_seed seed) in
  let d2 = E.run (E.schedule_of_seed seed) in
  let determinism_ok = String.equal d1.E.history_digest d2.E.history_digest in
  if not determinism_ok then
    Format.fprintf fmt "E16: seed %d did NOT reproduce its history digest@."
      seed;
  (* Router segment: the oracle over a *sharded* world. A client-side
     router (one session per group, groups consistently hashed onto
     shards, global server ids s*n+r) must preserve every guarantee
     unchanged, because no context crosses a shard boundary — checked
     on the combined history and again on each shard's partition. *)
  let router_shards = 2 in
  let router_events, router_violations =
    let rn = 4 and rb = 1 in
    let key_of name =
      Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e16r-" ^ name))
    in
    let alice_key = key_of "alice" and bob_key = key_of "bob" in
    let keyring = Store.Keyring.create () in
    Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
    Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
    let servers =
      Array.init (router_shards * rn) (fun gid ->
          Store.Server.create ~id:gid ~keyring ~n:rn ~b:rb ())
    in
    let handlers dst ~from req =
      if dst >= 0 && dst < Array.length servers then
        Store.Server.handler servers.(dst) ~now:0.0 ~from req
      else None
    in
    let tbl =
      Store.Shardmap.make ~seed:"e16-router" ~shards:router_shards ()
    in
    let config_of shard =
      {
        (Store.Client.default_config ~n:rn ~b:rb) with
        Store.Client.servers = Store.Router.shard_servers ~n:rn shard;
      }
    in
    let groups = List.init 12 (fun g -> Printf.sprintf "rg%d" g) in
    let fail ctx e = failwith (ctx ^ ": " ^ Store.Client.error_to_string e) in
    let hist = Check.History.create () in
    Check.History.recording hist (fun () ->
        Sim.Direct.run ~handlers (fun () ->
            (* Alice writes every group (interleaved across shards) and
               reads some of her own writes back mid-stream. *)
            let ra =
              Store.Router.create ~table:tbl ~uid:"alice" ~key:alice_key
                ~keyring ~config_of ()
            in
            for i = 0 to 5 do
              List.iter
                (fun g ->
                  let uid =
                    Store.Uid.make ~group:g
                      ~item:(Printf.sprintf "k%d" (i mod 3))
                  in
                  (match
                     Store.Router.write ra ~uid (Printf.sprintf "%s=%d" g i)
                   with
                  | Ok () -> ()
                  | Error e -> fail "e16 router write" e);
                  if i land 1 = 1 then
                    match Store.Router.read ra ~uid with
                    | Ok _ -> ()
                    | Error e -> fail "e16 router read-own" e)
                groups
            done;
            (match Store.Router.disconnect ra with
            | Ok () -> ()
            | Error e -> fail "e16 router disconnect" e);
            (* Bob reads everything twice (monotonic reads + linkage). *)
            let rbr =
              Store.Router.create ~table:tbl ~uid:"bob" ~key:bob_key ~keyring
                ~config_of ()
            in
            List.iter
              (fun g ->
                for i = 0 to 2 do
                  for _pass = 1 to 2 do
                    let uid =
                      Store.Uid.make ~group:g ~item:(Printf.sprintf "k%d" i)
                    in
                    match Store.Router.read rbr ~uid with
                    | Ok _ -> ()
                    | Error e -> fail "e16 router read" e
                  done
                done)
              groups;
            ignore (Store.Router.disconnect rbr)));
    let events = Check.History.events hist in
    (* A session serves exactly one group, so partitioning by the shard
       of the uids a session touched is total on uid-bearing events;
       connect/disconnect events follow their session. *)
    let session_shard = Hashtbl.create 64 in
    List.iter
      (fun (e : Store.Trace.event) ->
        match e.Store.Trace.kind with
        | Store.Trace.Write { uid; _ } | Store.Trace.Read { uid } ->
          if not (Hashtbl.mem session_shard (e.client, e.session)) then
            Hashtbl.replace session_shard (e.client, e.session)
              (Store.Shardmap.shard_of_uid tbl uid)
        | _ -> ())
      events;
    let viol = ref (Check.Oracle.check events) in
    List.iter
      (fun s ->
        let evs =
          List.filter
            (fun (e : Store.Trace.event) ->
              Hashtbl.find_opt session_shard (e.client, e.session) = Some s)
            events
        in
        Format.fprintf fmt "E16 router: shard %d history: %d events@." s
          (List.length evs);
        if evs = [] then
          Format.fprintf fmt
            "  EMPTY: shard %d saw no operations (table imbalance?)@." s;
        viol := !viol @ Check.Oracle.check evs)
      (List.init router_shards Fun.id);
    List.iter
      (fun v ->
        Format.fprintf fmt "E16 router VIOLATION: %s@."
          (Check.Oracle.violation_to_string v))
      !viol;
    (List.length events, List.length !viol)
  in
  Format.fprintf fmt
    "E16 router: %d events over %d shards, %d violation(s)@." router_events
    router_shards router_violations;
  (* The sweep. *)
  let t0 = Unix.gettimeofday () in
  let events = ref 0 and ops_ok = ref 0 and ops_failed = ref 0 in
  let violated = ref [] in
  for i = 0 to schedules - 1 do
    let out = E.run (E.schedule_of_seed (seed + i)) in
    events := !events + out.E.events;
    ops_ok := !ops_ok + out.E.ops_ok;
    ops_failed := !ops_failed + out.E.ops_failed;
    if out.E.violations <> [] then begin
      violated := out :: !violated;
      let path = Printf.sprintf "CHECK_violation_%d.json" out.E.schedule.E.seed in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (E.violation_report_json out));
      Format.fprintf fmt "E16 VIOLATION (%s) -> %s@."
        (E.describe out.E.schedule) path;
      List.iter
        (fun v ->
          Format.fprintf fmt "  %s@." (Check.Oracle.violation_to_string v))
        out.E.violations
    end;
    if (i + 1) mod 100 = 0 then
      Format.fprintf fmt "E16: %d/%d schedules, %d events, 0 + %d violations@."
        (i + 1) schedules !events
        (List.length !violated)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let nviol =
    List.fold_left (fun n o -> n + List.length o.E.violations) 0 !violated
  in
  (* Reconfiguration sweep: the same seeds again, each schedule now with
     1-2 admin-signed membership transitions interleaved with its faults.
     Every oracle property must hold across epoch boundaries too. *)
  let reconfig_schedules =
    match Sys.getenv_opt "CHECK_RECONFIG_SCHEDULES" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 200)
    | None -> max 200 (min schedules 500)
  in
  let rt0 = Unix.gettimeofday () in
  let reconfig_events = ref 0 and reconfig_hist_events = ref 0 in
  let reconfig_ok = ref 0 and reconfig_failed = ref 0 in
  let reconfig_violated = ref 0 in
  for i = 0 to reconfig_schedules - 1 do
    let sched = E.reconfig_schedule_of_seed (seed + i) in
    if sched.E.reconfigs = [] then begin
      Format.fprintf fmt "E16 reconfig: seed %d drew NO membership events@."
        (seed + i);
      reconfig_violated := !reconfig_violated + 1
    end;
    reconfig_events := !reconfig_events + List.length sched.E.reconfigs;
    let out = E.run sched in
    reconfig_hist_events := !reconfig_hist_events + out.E.events;
    reconfig_ok := !reconfig_ok + out.E.ops_ok;
    reconfig_failed := !reconfig_failed + out.E.ops_failed;
    if out.E.violations <> [] then begin
      reconfig_violated := !reconfig_violated + List.length out.E.violations;
      let path =
        Printf.sprintf "CHECK_violation_reconfig_%d.json" out.E.schedule.E.seed
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (E.violation_report_json out));
      Format.fprintf fmt "E16 RECONFIG VIOLATION (%s) -> %s@."
        (E.describe out.E.schedule) path;
      List.iter
        (fun v ->
          Format.fprintf fmt "  %s@." (Check.Oracle.violation_to_string v))
        out.E.violations
    end;
    if (i + 1) mod 100 = 0 then
      Format.fprintf fmt
        "E16 reconfig: %d/%d schedules, %d transitions, %d violations@."
        (i + 1) reconfig_schedules !reconfig_events !reconfig_violated
  done;
  let reconfig_elapsed = Unix.gettimeofday () -. rt0 in
  Format.fprintf fmt
    "E16 reconfig: %d schedules, %d membership transitions, %d history \
     events, %d / %d ops ok/failed, %d violation(s) (%.1f s)@."
    reconfig_schedules !reconfig_events !reconfig_hist_events !reconfig_ok
    !reconfig_failed !reconfig_violated reconfig_elapsed;
  let table =
    {
      Workload.Table.id = "E16";
      title =
        Printf.sprintf
          "Consistency oracle over %d seeded schedules (seeds %d..%d, %.1f s)"
          schedules seed (seed + schedules - 1) elapsed;
      header = [ "metric"; "value" ];
      rows =
        [
          [ "schedules explored"; string_of_int schedules ];
          [ "history events checked"; string_of_int !events ];
          [ "client ops ok / failed";
            Printf.sprintf "%d / %d" !ops_ok !ops_failed ];
          [ "oracle violations"; string_of_int nviol ];
          [ "canary caught / control clean";
            Printf.sprintf "%b / %b" canary_caught control_clean ];
          [ "canary shrunk to"; "{" ^ canary_shrunk_to ^ "}" ];
          [ "seed-reproducible history"; Printf.sprintf "%b" determinism_ok ];
          [ Printf.sprintf "router world (%d shards): events / violations"
              router_shards;
            Printf.sprintf "%d / %d" router_events router_violations ];
          [ "reconfig schedules / transitions";
            Printf.sprintf "%d / %d" reconfig_schedules !reconfig_events ];
          [ "reconfig violations"; string_of_int !reconfig_violated ];
        ];
      notes =
        List.map
          (fun (name, def) -> Printf.sprintf "%s: %s" name def)
          Check.Oracle.properties;
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_check_json ~path:"BENCH_check.json" ~seed ~schedules ~events:!events
      ~ops_ok:!ops_ok ~ops_failed:!ops_failed ~violations:nviol ~canary_caught
      ~control_clean ~canary_shrunk_to ~determinism_ok ~router_shards
      ~router_events ~router_violations ~reconfig_schedules
      ~reconfig_events:!reconfig_events ~reconfig_violations:!reconfig_violated;
  if
    nviol > 0 || (not canary_caught) || (not control_clean)
    || (not determinism_ok) || router_violations > 0
    || !reconfig_violated > 0
  then begin
    Format.fprintf fmt "E16: oracle harness failed — see above@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E17: observability — per-phase latency and tracing overhead         *)
(* ------------------------------------------------------------------ *)

(* BENCH_obs.json mixes units (ns medians, bucket-bound percentiles,
   an overhead percentage), so it gets its own writer on the shared
   baseline-preserving convention. *)
let write_obs_json ~path rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-obs-v1\",\n  \"baseline\": %s,\n\
        \  \"current\": %s\n}\n"
        baseline current);
  Format.fprintf fmt "wrote %s@." path

(* The E10b setup (real n=4 b=1 cluster on loopback, pooled transport)
   driven through full client ops, twice over: tracing off and tracing
   on, in interleaved batches so thermal/scheduler drift hits both
   sides equally. Medians of per-batch means answer "what does tracing
   cost" (budget: < 3% on the pooled path — percentile buckets are too
   coarse at ~26% steps, means are exact); the tracing-on batches also
   fill the span registry, which answers "where does the time go"
   per phase. *)
let e17_obs ~json () =
  let n = 4 and b = 1 in
  Store.Metrics.reset ();
  Obs.Span.set_enabled false;
  Obs.Span.reset_stats ();
  Obs.Span.reset_journal ();
  (* The cluster is in-process, so server_request spans would serialize
     into client latency through the shared runtime lock and be billed
     to tracing — cost that lives in other processes in a deployment.
     Measure the client side only. *)
  Tcpnet.Server_host.set_request_tracing false;
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e17-" ^ name))
  in
  let alice_key = key_of "alice" and bob_key = key_of "bob" in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let cfg = { (Store.Client.default_config ~n ~b) with Store.Client.timeout = 2.0 } in
  let connect name key =
    match
      Store.Client.connect ~config:cfg ~uid:name ~key ~keyring ~group:"obs" ()
    with
    | Ok c -> c
    | Error e -> failwith ("e17 connect: " ^ Store.Client.error_to_string e)
  in
  let batches = 5 and iters = 200 in
  (* (write_off, write_on, read_off, read_on) medians per batch, once
     for whole-op wall time and once for the op's pooled-transport time
     (sum of its rpc rounds, diffed off the always-on rpc histogram —
     the window [Pool.run_group] itself measures, which contains every
     transport tracing hook and none of the client span machinery). *)
  let op_results = ref [] and tr_results = ref [] in
  Tcpnet.Live.run ~endpoints (fun () ->
      let alice = connect "alice" alice_key in
      let bob = connect "bob" bob_key in
      let counter = ref 0 in
      let one_write () =
        incr counter;
        match Store.Client.write alice ~item:"k" (string_of_int !counter) with
        | Ok () -> ()
        | Error e -> failwith ("e17 write: " ^ Store.Client.error_to_string e)
      in
      let one_read () =
        match Store.Client.read bob ~item:"k" with
        | Ok _ -> ()
        | Error e -> failwith ("e17 read: " ^ Store.Client.error_to_string e)
      in
      (* Loopback op latency is heavily right-skewed: a single
         descheduled op (3 ms against a 70 us read) would dominate a
         batch mean and read as fake tracing overhead. Compare batch
         medians instead — robust against the scheduler tail on both
         sides of the pairing. *)
      let batch_median samples =
        Array.sort compare samples;
        samples.(Array.length samples / 2)
      in
      (* Alternate tracing off/on per op, not per batch: loopback RPC
         latency drifts on the order of the effect being measured, and
         pairing at the finest grain cancels that drift. *)
      let rpc_h = Store.Metrics.rpc_latency_histo () in
      let batch () =
        let wo = Array.make iters 0.0 and wn = Array.make iters 0.0 in
        let ro = Array.make iters 0.0 and rn = Array.make iters 0.0 in
        let wto = Array.make iters 0.0 and wtn = Array.make iters 0.0 in
        let rto = Array.make iters 0.0 and rtn = Array.make iters 0.0 in
        let timed op_arr tr_arr i f =
          let s = Obs.Histo.sum rpc_h in
          op_arr.(i) <- fst (time_ns f);
          tr_arr.(i) <- Obs.Histo.sum rpc_h -. s
        in
        for i = 0 to iters - 1 do
          Obs.Span.set_enabled false;
          timed wo wto i one_write;
          timed ro rto i one_read;
          Obs.Span.set_enabled true;
          timed wn wtn i one_write;
          timed rn rtn i one_read
        done;
        Obs.Span.set_enabled false;
        op_results :=
          (batch_median wo, batch_median wn, batch_median ro, batch_median rn)
          :: !op_results;
        tr_results :=
          (batch_median wto, batch_median wtn, batch_median rto,
           batch_median rtn)
          :: !tr_results
      in
      (* Warmup: dials, sigcache, allocator. *)
      for _ = 1 to 10 do one_write (); one_read () done;
      for _ = 1 to batches do batch () done;
      ignore (Store.Client.disconnect alice);
      ignore (Store.Client.disconnect bob));
  Array.iter Tcpnet.Server_host.stop hosts;
  Tcpnet.Server_host.set_request_tracing true;
  let median xs =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let pick results f = median (List.map f !results) in
  let quad results =
    ( pick results (fun (w, _, _, _) -> w),
      pick results (fun (_, w, _, _) -> w),
      pick results (fun (_, _, r, _) -> r),
      pick results (fun (_, _, _, r) -> r) )
  in
  let w_off, w_on, r_off, r_on = quad op_results in
  let tw_off, tw_on, tr_off, tr_on = quad tr_results in
  let pct off on = if off = 0.0 then 0.0 else (on -. off) /. off *. 100.0 in
  let w_overhead = pct w_off w_on and r_overhead = pct r_off r_on in
  let tw_overhead = pct tw_off tw_on and tr_overhead = pct tr_off tr_on in
  let budget = 3.0 in
  let phase_rows =
    List.filter_map
      (fun (op, phase, h) ->
        if op = "read" || op = "write" then
          Some
            [
              op;
              phase;
              string_of_int (Obs.Histo.count h);
              Printf.sprintf "%.0f" (Obs.Histo.percentile h 50.0 /. 1e3);
              Printf.sprintf "%.0f" (Obs.Histo.percentile h 95.0 /. 1e3);
              Printf.sprintf "%.0f" (Obs.Histo.percentile h 99.0 /. 1e3);
            ]
        else None)
      (Obs.Span.phase_stats ())
  in
  let table =
    {
      Workload.Table.id = "E17";
      title =
        Printf.sprintf
          "Tracing spans: per-phase latency and overhead (real TCP, n=%d \
           b=%d, %d batches x %d op-paired off/on samples)"
          n b batches iters;
      header = [ "op"; "phase"; "n"; "p50 (us)"; "p95 (us)"; "p99 (us)" ];
      rows = phase_rows;
      notes =
        [
          Printf.sprintf
            "whole op:  write off %.0f us -> on %.0f us (%+.1f%%), read \
             off %.0f us -> on %.0f us (%+.1f%%)"
            (w_off /. 1e3) (w_on /. 1e3) w_overhead (r_off /. 1e3)
            (r_on /. 1e3) r_overhead;
          Printf.sprintf
            "transport: write off %.0f us -> on %.0f us (%+.1f%%), read \
             off %.0f us -> on %.0f us (%+.1f%%)"
            (tw_off /. 1e3) (tw_on /. 1e3) tw_overhead (tr_off /. 1e3)
            (tr_on /. 1e3) tr_overhead;
          Printf.sprintf
            "tracing budget %.0f%% on the pooled-transport path%s" budget
            (if tw_overhead <= budget && tr_overhead <= budget then " — met"
             else " — EXCEEDED");
          "transport = the op's rpc rounds (the Pool.run_group window, \
           which contains every transport hook);";
          "whole op adds the client span machinery on top — an \
           in-process worst case (sub-100us loopback ops);";
          "percentiles resolve to log-bucket bounds (10/decade);";
          Printf.sprintf
            "overheads compare per-batch medians (%d paired samples), \
             median of %d batches"
            iters batches;
        ];
    }
  in
  Workload.Table.print fmt table;
  (* The journal captured the traced batches: show one read span's shape. *)
  (match
     List.find_opt (fun c -> c.Obs.Span.op = "read") (Obs.Span.recent ())
   with
  | None -> ()
  | Some c ->
    Format.fprintf fmt "sample read span (%.0f us): %s@."
      (c.Obs.Span.dur_ns /. 1e3)
      (String.concat ", "
         (List.map
            (fun p ->
              Printf.sprintf "%s %.0fus" p.Obs.Span.pname
                (p.Obs.Span.pdur_ns /. 1e3))
            c.Obs.Span.phases)));
  if json then begin
    let key op phase stat =
      let buf = Buffer.create 32 in
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
          | _ -> Buffer.add_char buf '_')
        (op ^ "_" ^ phase);
      Buffer.contents buf ^ "_" ^ stat
    in
    let phase_json =
      List.concat_map
        (fun (op, phase, h) ->
          if op = "read" || op = "write" then
            [
              (key op phase "p50_ns",
               Printf.sprintf "%.0f" (Obs.Histo.percentile h 50.0));
              (key op phase "p95_ns",
               Printf.sprintf "%.0f" (Obs.Histo.percentile h 95.0));
              (key op phase "p99_ns",
               Printf.sprintf "%.0f" (Obs.Histo.percentile h 99.0));
            ]
          else [])
        (Obs.Span.phase_stats ())
    in
    write_obs_json ~path:"BENCH_obs.json"
      ([
         ("write_off_ns", Printf.sprintf "%.0f" w_off);
         ("write_on_ns", Printf.sprintf "%.0f" w_on);
         ("read_off_ns", Printf.sprintf "%.0f" r_off);
         ("read_on_ns", Printf.sprintf "%.0f" r_on);
         ("overhead_write_pct", Printf.sprintf "%.2f" w_overhead);
         ("overhead_read_pct", Printf.sprintf "%.2f" r_overhead);
         ("transport_write_off_ns", Printf.sprintf "%.0f" tw_off);
         ("transport_write_on_ns", Printf.sprintf "%.0f" tw_on);
         ("transport_read_off_ns", Printf.sprintf "%.0f" tr_off);
         ("transport_read_on_ns", Printf.sprintf "%.0f" tr_on);
         ("overhead_transport_write_pct", Printf.sprintf "%.2f" tw_overhead);
         ("overhead_transport_read_pct", Printf.sprintf "%.2f" tr_overhead);
         ("overhead_budget_pct", Printf.sprintf "%.0f" budget);
       ]
      @ phase_json)
  end

(* ---- BENCH_sign.json ---------------------------------------------- *)

let write_sign_json ~path rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-sign-v1\",\n  \"baseline\": %s,\n\
        \  \"current\": %s\n}\n"
        baseline current);
  Format.fprintf fmt "wrote %s@." path

(* E17 put the number on the table: RSA signing is ~80%% of write
   latency on loopback. E18 measures what the two fast paths buy back,
   against the same real n=4 b=1 TCP cluster:

     per-write-sig  — the paper's baseline, one RSA signature per write;
     merkle-batch k — write_batch signs one Merkle root per k writes;
     mac-fast       — per-server HMAC vectors, signatures deferred to
                      the background escalation (every 8 writes here, so
                      its cost shows up in the tail, not the median).

   All three modes run in one process against fresh items; each mode
   ends with a read-back so the numbers only count writes that really
   became readable. Exact percentiles from the raw sample arrays (no
   histogram bucketing — the differences being measured are smaller
   than a log bucket). *)
let e18_sign ~json () =
  let n = 4 and b = 1 in
  Obs.Span.set_enabled false;
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e18-" ^ name))
  in
  let alice_key = key_of "alice" in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  for server = 0 to n - 1 do
    Store.Keyring.register_mac keyring ~client:"alice" ~server
      (Crypto.Sha256.digest (Printf.sprintf "e18-mac!%d" server))
  done;
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let batch_k = 8 in
  let writes = 304 (* divisible by batch_k *) in
  let pct sorted p =
    let len = Array.length sorted in
    let rank = max 1 (min len (int_of_float (ceil (p /. 100.0 *. float_of_int len)))) in
    sorted.(rank - 1)
  in
  (* Run one mode: fresh client, warmup, [writes] measured writes (as
     write_batch chunks under Merkle batching, each sample = batch time /
     batch size), read-back check, then metrics. *)
  let run_mode (label, signing) =
    Store.Metrics.reset ();
    Store.Signing.reset_sigcache ();
    let cfg =
      {
        (Store.Client.default_config ~n ~b) with
        Store.Client.timeout = 2.0;
        signing;
        escalate_every = batch_k;
      }
    in
    let samples = ref [] in
    Tcpnet.Live.run ~endpoints (fun () ->
        let alice =
          match
            Store.Client.connect ~config:cfg ~uid:"alice" ~key:alice_key
              ~keyring ~group:("e18-" ^ label) ()
          with
          | Ok c -> c
          | Error e -> failwith ("e18 connect: " ^ Store.Client.error_to_string e)
        in
        let item i = "k" ^ string_of_int (i mod 16) in
        let fail_op e = failwith ("e18 write: " ^ Store.Client.error_to_string e) in
        for i = 1 to 24 do
          (* warmup: dials, sigcache, allocator *)
          match Store.Client.write alice ~item:(item i) (Printf.sprintf "warm%d" i) with
          | Ok () -> ()
          | Error e -> fail_op e
        done;
        (match signing with
        | Store.Client.Merkle_batch k ->
          for batch = 0 to (writes / k) - 1 do
            let items =
              List.init k (fun j ->
                  let i = (batch * k) + j in
                  (item i, Printf.sprintf "%s-%d" label i))
            in
            let ns, results = time_ns (fun () -> Store.Client.write_batch alice items) in
            List.iter (function Ok () -> () | Error e -> fail_op e) results;
            samples := (ns /. float_of_int k) :: !samples
          done
        | Store.Client.Per_write_sig | Store.Client.Mac_fast ->
          for i = 0 to writes - 1 do
            let ns, r =
              time_ns (fun () ->
                  Store.Client.write alice ~item:(item i)
                    (Printf.sprintf "%s-%d" label i))
            in
            (match r with Ok () -> () | Error e -> fail_op e);
            samples := ns :: !samples
          done);
        (* Read-back: the mode's last write on item (writes-1) must be
           readable — for mac-fast this forces and checks escalation. *)
        let last = writes - 1 in
        (match Store.Client.read alice ~item:(item last) with
        | Ok v ->
          let expect = Printf.sprintf "%s-%d" label last in
          if not (String.equal v expect) then
            failwith (Printf.sprintf "e18 %s read-back: got %S want %S" label v expect)
        | Error e -> failwith ("e18 read-back: " ^ Store.Client.error_to_string e));
        ignore (Store.Client.disconnect alice));
    let sorted = Array.of_list !samples in
    Array.sort compare sorted;
    let m = Store.Metrics.read () in
    (label, sorted, m)
  in
  let modes =
    [
      ("per_write_sig", Store.Client.Per_write_sig);
      ("merkle_batch8", Store.Client.Merkle_batch batch_k);
      ("mac_fast", Store.Client.Mac_fast);
    ]
  in
  let results = List.map run_mode modes in
  Array.iter Tcpnet.Server_host.stop hosts;
  let p50_of label =
    let _, sorted, _ = List.find (fun (l, _, _) -> l = label) results in
    pct sorted 50.0
  in
  let base_p50 = p50_of "per_write_sig" in
  let target_ns = 150e3 in
  let rows =
    List.map
      (fun (label, sorted, m) ->
        [
          label;
          string_of_int (Array.length sorted);
          Printf.sprintf "%.0f" (pct sorted 50.0 /. 1e3);
          Printf.sprintf "%.0f" (pct sorted 95.0 /. 1e3);
          Printf.sprintf "%.0f" (pct sorted 99.0 /. 1e3);
          Printf.sprintf "%.1fx" (base_p50 /. pct sorted 50.0);
          string_of_int m.Store.Metrics.signs;
          string_of_int m.Store.Metrics.macs;
        ])
      results
  in
  let table =
    {
      Workload.Table.id = "E18";
      title =
        Printf.sprintf
          "Write-path signing modes (real TCP, n=%d b=%d, %d writes per \
           mode, batch k=%d, escalate every %d)"
          n b writes batch_k batch_k;
      header =
        [ "mode"; "samples"; "p50 (us)"; "p95 (us)"; "p99 (us)"; "speedup";
          "signs"; "macs" ];
      rows;
      notes =
        [
          "per-write-sig = the paper's baseline (one RSA sign per write);";
          "merkle-batch samples are batch wall time / k (one sign per k \
           writes);";
          "mac-fast medians exclude signing entirely — escalation (every \
           8 writes) lands in the tail;";
          Printf.sprintf
            "target: fast-mode write p50 < %.0f us on loopback%s"
            (target_ns /. 1e3)
            (if
               List.exists
                 (fun (l, sorted, _) ->
                   l <> "per_write_sig" && pct sorted 50.0 < target_ns)
                 results
             then " — met"
             else " — MISSED");
          "exact percentiles over raw samples (no histogram bucketing).";
        ];
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_sign_json ~path:"BENCH_sign.json"
      (List.concat_map
         (fun (label, sorted, m) ->
           [
             (label ^ "_p50_ns", Printf.sprintf "%.0f" (pct sorted 50.0));
             (label ^ "_p95_ns", Printf.sprintf "%.0f" (pct sorted 95.0));
             (label ^ "_p99_ns", Printf.sprintf "%.0f" (pct sorted 99.0));
             (label ^ "_signs", string_of_int m.Store.Metrics.signs);
             (label ^ "_macs", string_of_int m.Store.Metrics.macs);
           ])
         results
      @ [
          ("writes_per_mode", string_of_int writes);
          ("batch_k", string_of_int batch_k);
          ("target_fast_p50_ns", Printf.sprintf "%.0f" target_ns);
        ])

(* ------------------------------------------------------------------ *)
(* E19: keyspace sharding — multi-process scale-out, open-loop zipfian *)
(* ------------------------------------------------------------------ *)

(* BENCH_shard.json records saturation throughput per (shards, workers)
   cell plus the measured core count: scale-out is a statement about
   hardware — one core cannot run S quorum groups in parallel no matter
   how the keyspace is partitioned — so CI gates its scaling assertion
   on "cores", never on hope. *)
let write_shard_json ~path ~cores rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-shard-v1\",\n  \"cores\": %d,\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        cores baseline current);
  Format.fprintf fmt "wrote %s@." path

let cpu_cores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let count = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.length line >= 9 && String.sub line 0 9 = "processor"
             then incr count
           done
         with End_of_file -> ());
        max 1 !count)
  with Sys_error _ -> 1

let reserve_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  p

(* One bench worker (the hidden [e19-worker] argv mode): a shard router
   over live TCP driving one open-loop plan, as its own process so
   client-side crypto runs beside the servers the way a real client
   fleet would. The parent owns the sweep; a worker knows only its cell
   and prints one RESULT line to merge.

   Latency is measured from each op's *scheduled* arrival (see
   {!Workload.Openloop}), so queueing under overload counts; an op
   "meets SLO" when it completed (ok, or a clean miss on a never-written
   key) within [slo_ms] of when it was due. Groups are spread over the
   worker's [conc] threads by group id, which combined with the plan's
   owned-group write remapping keeps every group single-writer and
   every {!Store.Client} session single-threaded. *)
let e19_worker argv =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match String.index_opt a '=' with
      | Some i ->
        Hashtbl.replace tbl (String.sub a 0 i)
          (String.sub a (i + 1) (String.length a - i - 1))
      | None -> ())
    argv;
  let geti k = int_of_string (Hashtbl.find tbl k) in
  let getf k = float_of_string (Hashtbl.find tbl k) in
  let gets k = Hashtbl.find tbl k in
  let windex = geti "windex" and workers = geti "workers" in
  let shards = geti "shards" and n = geti "n" and b = geti "b" in
  let rate = getf "rate" and duration = getf "duration" in
  let theta = getf "theta" and keys = geti "keys" and groups = geti "groups" in
  let write_ratio = getf "wr" and conc = geti "conc" in
  let slo_ns = getf "slo_ms" *. 1e6 in
  let seed = gets "seed" in
  let eps =
    match Demokeys.parse_endpoints (gets "eps") with
    | Some l -> Array.of_list l
    | None -> failwith "e19-worker: bad eps"
  in
  let uid = Printf.sprintf "w%d" windex in
  let key = Demokeys.keypair uid in
  let keyring =
    Demokeys.keyring ~mac_servers:(shards * n)
      (List.init workers (fun i -> Printf.sprintf "w%d" i))
  in
  let table = Store.Shardmap.make ~seed:("e19!" ^ seed) ~shards () in
  let owned =
    List.filter (fun g -> g mod workers = windex) (List.init groups Fun.id)
  in
  let plan =
    Workload.Openloop.plan
      ~seed:(Printf.sprintf "%s!w%d!%.3f" seed windex rate)
      ~keys ~theta ~groups ~rate ~duration ~write_ratio ~owned_groups:owned
  in
  let config_of shard =
    {
      (Store.Client.default_config ~n ~b) with
      Store.Client.servers = Store.Router.shard_servers ~n shard;
      timeout = 1.0;
      signing = Store.Client.Mac_fast;
      escalate_every = 64;
      read_retries = 2;
      write_retries = 1;
      retry_delay = 0.02;
      retry_backoff_max = 0.1;
      op_deadline = 5.0;
    }
  in
  let gid_of u =
    let g = Store.Uid.group u in
    int_of_string (String.sub g 1 (String.length g - 1))
  in
  let endpoints id =
    if id >= 0 && id < Array.length eps then Some eps.(id) else None
  in
  let lock = Mutex.create () and cond = Condition.create () in
  let ready = ref 0 and start = ref 0.0 in
  let offered = ref 0 and ok = ref 0 and failed = ref 0 in
  let miss = ref 0 and in_slo = ref 0 in
  let histos = Array.init conc (fun _ -> Obs.Histo.create ()) in
  let run_thread tid =
    Tcpnet.Live.run ~endpoints
      ~shard_of:(fun node -> Some (node / n))
      (fun () ->
        let router =
          Store.Router.create ~table ~uid ~key ~keyring ~config_of ()
        in
        (* Prewarm every session this thread will use — connects (RSA,
           context recovery) happen before the clock starts, the way a
           fleet holds warm sessions. *)
        for g = 0 to groups - 1 do
          if g mod conc = tid then
            ignore
              (Store.Router.session router ~group:(Printf.sprintf "g%d" g))
        done;
        Mutex.lock lock;
        incr ready;
        Condition.broadcast cond;
        while !start = 0.0 do
          Condition.wait cond lock
        done;
        let t0 = !start in
        Mutex.unlock lock;
        let nops = ref 0 and nok = ref 0 and nfail = ref 0 in
        let nmiss = ref 0 and nslo = ref 0 in
        Array.iteri
          (fun i (op : Workload.Openloop.op) ->
            if gid_of op.uid mod conc = tid then begin
              incr nops;
              let due = t0 +. op.at in
              let now = Unix.gettimeofday () in
              if due > now then Thread.delay (due -. now);
              let outcome =
                match op.kind with
                | Workload.Openloop.Write -> (
                  match
                    Store.Router.write router ~uid:op.uid
                      (Printf.sprintf "v%d.%d" windex i)
                  with
                  | Ok () -> `Ok
                  | Error _ -> `Fail)
                | Workload.Openloop.Read -> (
                  match Store.Router.read router ~uid:op.uid with
                  | Ok _ -> `Ok
                  | Error (Store.Client.Not_found _) -> `Miss
                  | Error _ -> `Fail)
              in
              let lat = (Unix.gettimeofday () -. due) *. 1e9 in
              Obs.Histo.observe histos.(tid) lat;
              (match outcome with
              | `Ok -> incr nok
              | `Miss -> incr nmiss
              | `Fail -> incr nfail);
              if outcome <> `Fail && lat <= slo_ns then incr nslo
            end)
          plan;
        ignore (Store.Router.flush_all router);
        ignore (Store.Router.disconnect router);
        Mutex.lock lock;
        offered := !offered + !nops;
        ok := !ok + !nok;
        failed := !failed + !nfail;
        miss := !miss + !nmiss;
        in_slo := !in_slo + !nslo;
        Mutex.unlock lock)
  in
  let threads = Array.init conc (fun tid -> Thread.create run_thread tid) in
  Mutex.lock lock;
  while !ready < conc do
    Condition.wait cond lock
  done;
  start := Unix.gettimeofday () +. 0.05;
  Condition.broadcast cond;
  Mutex.unlock lock;
  Array.iter Thread.join threads;
  let h = Array.fold_left Obs.Histo.merge (Obs.Histo.create ()) histos in
  Printf.printf
    "RESULT offered=%d ok=%d failed=%d miss=%d in_slo=%d count=%d sum=%.0f \
     max=%.0f counts=%s\n%!"
    !offered !ok !failed !miss !in_slo (Obs.Histo.count h) (Obs.Histo.sum h)
    (Obs.Histo.max_value h)
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Obs.Histo.counts h))))

type e19_merged = {
  sh_offered : int;
  sh_ok : int;
  sh_failed : int;
  sh_miss : int;
  sh_in_slo : int;
  sh_count : int;
  sh_sum : float;
  sh_max : float;
  sh_counts : int array;
}

(* Nearest-rank percentile over merged histogram counts, resolved to the
   bucket's upper bound (the overflow bucket answers with the max). *)
let e19_pct m p =
  if m.sh_count = 0 then 0.0
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int m.sh_count)))
    in
    let acc = ref 0 and res = ref m.sh_max in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             (res :=
                if i < Array.length Obs.Histo.bounds then Obs.Histo.bounds.(i)
                else m.sh_max);
             raise Exit
           end)
         m.sh_counts
     with Exit -> ());
    !res
  end

(* The tentpole's scaling question, answered end to end: S independent
   shard groups (each its own n=4 b=1 quorum group, hosted by real
   store_server processes that serve several shard replicas per port),
   W router workers (separate processes) offering a zipfian open-loop
   load, rates swept per cell until the completion-within-SLO ratio
   drops below 0.95. Saturation = the completed-in-SLO throughput of
   the highest passing rate. Fresh cluster per step so every
   measurement starts from empty stores and cold queues.

   Env knobs (CI runs a reduced sweep): E19_SHARDS, E19_WORKERS,
   E19_RATES (per-worker op/s ladder), E19_DURATION, E19_KEYS,
   E19_SLO_MS. *)
let e19_shard ~seed ~json () =
  let n = 4 and b = 1 in
  let env_list name default parse =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
      match List.filter_map parse (Demokeys.split_commas s) with
      | [] -> default
      | l -> l)
  in
  let env_float name default =
    match Sys.getenv_opt name with
    | None -> default
    | Some s -> (
      match float_of_string_opt s with Some f -> f | None -> default)
  in
  let env_int name default = int_of_float (env_float name (float_of_int default)) in
  let shards_list = env_list "E19_SHARDS" [ 1; 2; 4; 8 ] int_of_string_opt in
  let workers_list = env_list "E19_WORKERS" [ 2; 4 ] int_of_string_opt in
  let rates =
    env_list "E19_RATES" [ 100.; 200.; 400.; 800.; 1600. ] float_of_string_opt
  in
  let duration = env_float "E19_DURATION" 1.5 in
  let keys = env_int "E19_KEYS" 10_000 in
  let slo_ms = env_float "E19_SLO_MS" 250.0 in
  let theta = 0.9 and groups = 64 and conc = 4 and write_ratio = 0.5 in
  let cores = cpu_cores () in
  let self = Sys.executable_name in
  let server_exe =
    Filename.concat
      (Filename.dirname (Filename.dirname self))
      "bin/store_server.exe"
  in
  if not (Sys.file_exists server_exe) then
    failwith
      (Printf.sprintf "e19: %s not built (run a full dune build)" server_exe);
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let clients_arg w =
    String.concat "," (List.init w (fun i -> Printf.sprintf "w%d" i))
  in
  (* Server layout for S shards: columns c = 0..min(S,4)-1, replica rows
     r = 0..n-1. Process (r,c) hosts replica r of every shard s with
     s mod cols = c, so S=8 exercises multi-shard hosting (two shards
     per port) while S<=4 is one shard per process. Ports are reserved
     up front so --peers (gossip, per shard, through the shard-tagged
     frames) can be passed at spawn. *)
  let spawn_cluster ~shards ~w =
    let cols = min shards 4 in
    let ports =
      Array.init n (fun _ -> Array.init cols (fun _ -> reserve_port ()))
    in
    let pids = ref [] in
    for r = 0 to n - 1 do
      for c = 0 to cols - 1 do
        let shard_ids =
          List.filter (fun s -> s mod cols = c) (List.init shards Fun.id)
        in
        let peers =
          String.concat ","
            (List.filter_map
               (fun r' ->
                 if r' = r then None
                 else Some (Printf.sprintf "127.0.0.1:%d" ports.(r').(c)))
               (List.init n Fun.id))
        in
        let argv =
          [|
            server_exe;
            "--id"; string_of_int r;
            "--port"; string_of_int ports.(r).(c);
            "-n"; string_of_int n;
            "-b"; string_of_int b;
            "--shards"; String.concat "," (List.map string_of_int shard_ids);
            "--shards-total"; string_of_int shards;
            "--clients"; clients_arg w;
            "--peers"; peers;
            "--gossip-period"; "0.5";
          |]
        in
        pids := Unix.create_process server_exe argv devnull devnull devnull
                :: !pids
      done
    done;
    let eps =
      String.concat ","
        (List.init (shards * n) (fun gid ->
             let s = gid / n and r = gid mod n in
             Printf.sprintf "127.0.0.1:%d" ports.(r).(s mod cols)))
    in
    (!pids, ports, eps)
  in
  let kill_cluster pids =
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      pids;
    List.iter
      (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      pids
  in
  let wait_listening port =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec loop () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let up =
        try
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          true
        with Unix.Unix_error _ -> false
      in
      Unix.close fd;
      if not up then
        if Unix.gettimeofday () > deadline then
          failwith (Printf.sprintf "e19: server on port %d never came up" port)
        else begin
          Thread.delay 0.02;
          loop ()
        end
    in
    loop ()
  in
  let parse_result line =
    let kvs =
      List.filter_map
        (fun part ->
          match String.index_opt part '=' with
          | Some i ->
            Some
              ( String.sub part 0 i,
                String.sub part (i + 1) (String.length part - i - 1) )
          | None -> None)
        (String.split_on_char ' ' line)
    in
    let geti k = int_of_string (List.assoc k kvs) in
    let getf k = float_of_string (List.assoc k kvs) in
    {
      sh_offered = geti "offered";
      sh_ok = geti "ok";
      sh_failed = geti "failed";
      sh_miss = geti "miss";
      sh_in_slo = geti "in_slo";
      sh_count = geti "count";
      sh_sum = getf "sum";
      sh_max = getf "max";
      sh_counts =
        Array.of_list
          (List.map int_of_string
             (String.split_on_char ',' (List.assoc "counts" kvs)));
    }
  in
  let merge a b =
    {
      sh_offered = a.sh_offered + b.sh_offered;
      sh_ok = a.sh_ok + b.sh_ok;
      sh_failed = a.sh_failed + b.sh_failed;
      sh_miss = a.sh_miss + b.sh_miss;
      sh_in_slo = a.sh_in_slo + b.sh_in_slo;
      sh_count = a.sh_count + b.sh_count;
      sh_sum = a.sh_sum +. b.sh_sum;
      sh_max = Float.max a.sh_max b.sh_max;
      sh_counts =
        (if Array.length a.sh_counts = 0 then b.sh_counts
         else Array.mapi (fun i c -> c + b.sh_counts.(i)) a.sh_counts);
    }
  in
  let empty =
    {
      sh_offered = 0; sh_ok = 0; sh_failed = 0; sh_miss = 0; sh_in_slo = 0;
      sh_count = 0; sh_sum = 0.0; sh_max = 0.0; sh_counts = [||];
    }
  in
  (* One ladder step: fresh cluster, W worker processes at [rate] ops/s
     each, merged worker results. Workers re-exec this binary in the
     e19-worker mode; a worker that dies without a RESULT line makes the
     step count as fully failed rather than killing the sweep. *)
  let run_step ~shards ~w ~rate =
    let pids, ports, eps = spawn_cluster ~shards ~w in
    Fun.protect
      ~finally:(fun () -> kill_cluster pids)
      (fun () ->
        Array.iter (fun row -> Array.iter wait_listening row) ports;
        let workers =
          List.init w (fun i ->
              let rd, wr = Unix.pipe () in
              let argv =
                [|
                  self; "e19-worker";
                  Printf.sprintf "windex=%d" i;
                  Printf.sprintf "workers=%d" w;
                  Printf.sprintf "shards=%d" shards;
                  Printf.sprintf "n=%d" n;
                  Printf.sprintf "b=%d" b;
                  Printf.sprintf "seed=%d" seed;
                  Printf.sprintf "rate=%f" rate;
                  Printf.sprintf "duration=%f" duration;
                  Printf.sprintf "theta=%f" theta;
                  Printf.sprintf "keys=%d" keys;
                  Printf.sprintf "groups=%d" groups;
                  Printf.sprintf "wr=%f" write_ratio;
                  Printf.sprintf "conc=%d" conc;
                  Printf.sprintf "slo_ms=%f" slo_ms;
                  "eps=" ^ eps;
                |]
              in
              let pid = Unix.create_process self argv devnull wr Unix.stderr in
              Unix.close wr;
              (pid, Unix.in_channel_of_descr rd))
        in
        List.fold_left
          (fun acc (pid, ic) ->
            let result = ref None in
            (try
               while true do
                 let line = input_line ic in
                 if
                   String.length line >= 7 && String.sub line 0 7 = "RESULT "
                 then result := Some (parse_result line)
               done
             with End_of_file -> ());
            close_in_noerr ic;
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            match !result with
            | Some m -> merge acc m
            | None ->
              Format.fprintf fmt "E19: worker died without a RESULT line@.";
              acc)
          empty workers)
  in
  (* One cell: climb the rate ladder until the in-SLO completion ratio
     drops below 0.95; saturation is the last passing step. *)
  let run_cell ~shards ~w =
    let ratio m =
      if m.sh_offered = 0 then 0.0
      else float_of_int m.sh_in_slo /. float_of_int m.sh_offered
    in
    let rec climb best = function
      | [] -> (best, best)
      | rate :: rest ->
        Format.fprintf fmt "E19: shards=%d workers=%d rate=%.0f/worker ...@."
          shards w rate;
        let m = run_step ~shards ~w ~rate in
        Format.fprintf fmt
          "  offered %d | ok %d miss %d failed %d | in-SLO ratio %.3f@."
          m.sh_offered m.sh_ok m.sh_miss m.sh_failed (ratio m);
        if ratio m >= 0.95 then
          match rest with
          | [] -> (Some (rate, m), Some (rate, m))
          | _ -> climb (Some (rate, m)) rest
        else (best, Some (rate, m))
    in
    let best, last = climb None rates in
    let sat, satm =
      match (best, last) with
      | Some (rate, m), _ -> (rate, m)
      | None, Some (rate, m) -> (rate, m)
      | None, None -> (0.0, empty)
    in
    let saturated = best <> None in
    let sat_ops =
      if duration > 0.0 then float_of_int satm.sh_in_slo /. duration else 0.0
    in
    (shards, w, saturated, sat *. float_of_int w, sat_ops, ratio satm, satm)
  in
  let cells =
    List.concat_map
      (fun s -> List.map (fun w -> run_cell ~shards:s ~w) workers_list)
      shards_list
  in
  Unix.close devnull;
  let rows =
    List.map
      (fun (s, w, saturated, offered_rate, sat_ops, r, m) ->
        [
          string_of_int s;
          string_of_int w;
          Printf.sprintf "%.0f%s" offered_rate (if saturated then "" else "*");
          Printf.sprintf "%.0f" sat_ops;
          Printf.sprintf "%.3f" r;
          Printf.sprintf "%.1f" (e19_pct m 50.0 /. 1e6);
          Printf.sprintf "%.1f" (e19_pct m 95.0 /. 1e6);
          Printf.sprintf "%.1f" (e19_pct m 99.0 /. 1e6);
        ])
      cells
  in
  (* Scaling ratio at the largest worker count present: S-shard
     saturation over 1-shard saturation. *)
  let wmax = List.fold_left max 0 workers_list in
  let sat_of s =
    List.find_map
      (fun (s', w, _, _, sat_ops, _, _) ->
        if s' = s && w = wmax then Some sat_ops else None)
      cells
  in
  let speedups =
    List.filter_map
      (fun s ->
        if s = 1 then None
        else
          match (sat_of 1, sat_of s) with
          | Some one, Some many when one > 0.0 -> Some (s, many /. one)
          | _ -> None)
      shards_list
  in
  let table =
    {
      Workload.Table.id = "E19";
      title =
        Printf.sprintf
          "Keyspace sharding scale-out (open-loop zipfian theta=%.2f, %d \
           keys, %d groups, write ratio %.2f, SLO %.0f ms, %.1f s/step, %d \
           core%s)"
          theta keys groups write_ratio slo_ms duration cores
          (if cores = 1 then "" else "s");
      header =
        [ "shards"; "workers"; "offered/s"; "sat ops/s"; "in-SLO";
          "p50 (ms)"; "p95 (ms)"; "p99 (ms)" ];
      rows;
      notes =
        [
          "sat ops/s = completed-within-SLO throughput at the highest \
           offered rate whose in-SLO ratio stayed >= 0.95;";
          "offered/s marked * = never saturated cleanly (first ladder rate \
           already below 0.95) — numbers are that step's;";
          (match speedups with
          | [] -> "scaling ratio: n/a (no 1-shard cell to compare against)"
          | sp ->
            "scaling vs 1 shard: "
            ^ String.concat ", "
                (List.map
                   (fun (s, r) -> Printf.sprintf "%dx shards -> %.2fx" s r)
                   sp));
          "latency counted from each op's scheduled arrival (queueing \
           under overload included); see EXPERIMENTS.md on core-count \
           caveats.";
        ];
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_shard_json ~path:"BENCH_shard.json" ~cores
      (List.concat_map
         (fun (s, w, saturated, offered_rate, sat_ops, r, m) ->
           let p = Printf.sprintf "s%dw%d_" s w in
           [
             (p ^ "sat_ops_per_s", Printf.sprintf "%.1f" sat_ops);
             (p ^ "offered_per_s", Printf.sprintf "%.1f" offered_rate);
             (p ^ "saturated", string_of_bool saturated);
             (p ^ "in_slo_ratio", Printf.sprintf "%.3f" r);
             (p ^ "p50_ns", Printf.sprintf "%.0f" (e19_pct m 50.0));
             (p ^ "p95_ns", Printf.sprintf "%.0f" (e19_pct m 95.0));
             (p ^ "p99_ns", Printf.sprintf "%.0f" (e19_pct m 99.0));
           ])
         cells
      @ List.map
          (fun (s, r) ->
            (Printf.sprintf "speedup_%dx_over_1" s, Printf.sprintf "%.3f" r))
          speedups
      @ [
          ("duration_s", Printf.sprintf "%.2f" duration);
          ("slo_ms", Printf.sprintf "%.1f" slo_ms);
          ("theta", Printf.sprintf "%.2f" theta);
          ("keys", string_of_int keys);
          ("groups", string_of_int groups);
          ("worker_threads", string_of_int conc);
        ])

(* ------------------------------------------------------------------ *)
(* E20: asynchronous reconfiguration — rolling replacement under chaos *)
(* ------------------------------------------------------------------ *)

let write_reconfig_json ~path ~seed rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-reconfig-v1\",\n  \"seed\": %d,\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        seed baseline current);
  Format.fprintf fmt "wrote %s@." path

(* Live-TCP churn soak: an n=4, b=1 fleet behind chaos proxies has every
   server replaced, one at a time, by a fresh standby — four admin-signed
   epoch transitions (v2..v5) while a writer and a reader keep operating.
   Per transition: start the standby's host, announce the next epoch,
   wait until every member of the new epoch reports it over Epoch_get
   (the convergence latency), then gracefully retire the departing
   server (drain -> snapshot -> verify the snapshot reloads -> stop) and
   evict its endpoint from the connection pool. Clients ride across all
   four epochs in one session: a superseded write hits Stale_epoch,
   adopts the piggybacked config and retries against the re-derived
   quorums. Standbys bootstrap through ordinary gossip — surviving
   members re-announce their state when they see a joiner.

   Scored: op availability (>= 99% required), safety (reads return only
   written values, per-session per-item monotonicity, zero oracle
   violations on the recorded history), epoch convergence latency, and
   bootstrap bytes. *)
let e20_reconfig ~seed ~json () =
  let n = 4 and b = 1 in
  let capacity = 2 * n in
  Store.Metrics.reset ();
  Store.Metrics.reset_gauges ();
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e20-" ^ name))
  in
  let alice_key = key_of "alice" and bob_key = key_of "bob" in
  let admin_key = key_of "admin" in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  List.iter
    (fun client ->
      for server = 0 to capacity - 1 do
        Store.Keyring.register_mac keyring ~client ~server
          (Crypto.Sha256.digest (Printf.sprintf "e20-mac!%s!%d" client server))
      done)
    [ "alice"; "bob" ];
  let sconfig =
    {
      (Store.Server.default_config ~n ~b) with
      Store.Server.epoch_admin = Some admin_key.Crypto.Rsa.public;
    }
  in
  let servers =
    Array.init capacity (fun id ->
        Store.Server.create ~config:sconfig ~id ~keyring ~n ~b ())
  in
  let genesis =
    match Store.Config_epoch.genesis ~servers:(List.init n Fun.id) ~b () with
    | Ok e -> Store.Config_epoch.sign e admin_key
    | Error m -> failwith ("e20 genesis: " ^ m)
  in
  (* Only the initial members hold the genesis; standbys learn whatever
     epoch makes them members from the announcement or from gossip. *)
  for id = 0 to n - 1 do
    Store.Server.set_epoch servers.(id) genesis
  done;
  let host_ports = Array.init capacity (fun _ -> reserve_port ()) in
  let plans =
    Array.init capacity (fun i ->
        Tcpnet.Chaos.plan ~seed:(seed + i) ~drop:0.01 ~delay:0.0005
          ~jitter:0.002 ())
  in
  let proxies =
    Array.init capacity (fun i ->
        Tcpnet.Chaos.start ~plan:plans.(i)
          ~target:("127.0.0.1", host_ports.(i))
          ())
  in
  let proxy_eps =
    Array.map (fun p -> ("127.0.0.1", Tcpnet.Chaos.port p)) proxies
  in
  (* Peer lists cover the whole capacity: gossip to a not-yet-started
     standby fails harmlessly (bounded backlog, endpoint suspicion) and
     starts landing the moment its host comes up. *)
  let peers_for i =
    List.filteri (fun j _ -> j <> i) (Array.to_list proxy_eps)
  in
  let start_host i =
    Tcpnet.Server_host.start
      ~gossip:{ Tcpnet.Server_host.peers = peers_for i; period = 0.1 }
      ~server:servers.(i) ~port:host_ports.(i) ()
  in
  let hosts = Array.make capacity None in
  for i = 0 to n - 1 do
    hosts.(i) <- Some (start_host i)
  done;
  let endpoints id =
    if id >= 0 && id < capacity then Some proxy_eps.(id) else None
  in
  let base_cfg = Store.Client.default_config ~n ~b in
  let cfg_alice =
    {
      base_cfg with
      Store.Client.timeout = 0.3;
      read_retries = 3;
      write_retries = 3;
      retry_delay = 0.05;
      retry_backoff_max = 0.4;
      op_deadline = 8.0;
      epoch_admin = Some admin_key.Crypto.Rsa.public;
    }
  in
  let cfg_bob = { cfg_alice with Store.Client.read_spread = true; seed } in
  let lock = Mutex.create () in
  let violations = ref [] in
  let violate fmt_ =
    Printf.ksprintf
      (fun s ->
        Mutex.lock lock;
        violations := s :: !violations;
        Mutex.unlock lock)
      fmt_
  in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_attempt item value =
    Mutex.lock lock;
    Hashtbl.replace attempted (item ^ "=" ^ value) ();
    Mutex.unlock lock
  in
  let was_attempted item value =
    Mutex.lock lock;
    let r = Hashtbl.mem attempted (item ^ "=" ^ value) in
    Mutex.unlock lock;
    r
  in
  let ops_attempted = ref 0 and ops_succeeded = ref 0 in
  let op run =
    Mutex.lock lock;
    incr ops_attempted;
    Mutex.unlock lock;
    if run () then begin
      Mutex.lock lock;
      incr ops_succeeded;
      Mutex.unlock lock
    end
  in
  let rec connect_retry name key cfg tries =
    match
      Store.Client.connect ~config:cfg ~uid:name ~key ~keyring ~group:"churn"
        ()
    with
    | Ok c -> c
    | Error e when tries > 0 ->
      ignore e;
      Thread.delay 0.2;
      connect_retry name key cfg (tries - 1)
    | Error e ->
      failwith
        (Printf.sprintf "e20 connect %s: %s" name
           (Store.Client.error_to_string e))
  in
  (* Rolling replacement: epoch v(2+i) swaps server i for standby n+i. *)
  let transitions = List.init n (fun i -> (i, n + i, 2 + i)) in
  let convergence_ms = ref [] in
  let epoch_chain = ref genesis in
  let controller_done = ref false in
  let writer_done = ref false in
  let snapshot_reloads = ref 0 in
  let final_epoch_seen = ref 0 in
  let controller () =
    Tcpnet.Live.run ~endpoints (fun () ->
        List.iter
          (fun (old_id, fresh_id, version) ->
            Sim.Runtime.sleep 0.8;
            hosts.(fresh_id) <- Some (start_host fresh_id);
            (* The pool has watched this endpoint refuse connections all
               soak; reset its suspicion so the join is not served with a
               stale backoff. *)
            Tcpnet.Pool.evict (Tcpnet.Pool.shared ()) proxy_eps.(fresh_id);
            let prev = !epoch_chain in
            let next_servers =
              fresh_id
              :: List.filter (fun s -> s <> old_id)
                   (Store.Config_epoch.servers prev)
            in
            let e =
              match
                Store.Config_epoch.next prev ~servers:next_servers ~b ()
              with
              | Ok e -> Store.Config_epoch.sign e admin_key
              | Error m -> failwith ("e20 epoch v" ^ string_of_int version ^ ": " ^ m)
            in
            epoch_chain := e;
            let announce =
              Store.Payload.encode_envelope
                {
                  Store.Payload.token = None;
                  epoch = 0;
                  request = Store.Payload.Epoch_announce e;
                }
            in
            let dsts = List.sort_uniq compare (old_id :: next_servers) in
            let t0 = Unix.gettimeofday () in
            ignore
              (Sim.Runtime.call_many ~timeout:1.0
                 ~quorum:(List.length dsts) dsts announce);
            (* Convergence: every member of the new epoch reports it. *)
            let get =
              Store.Payload.encode_envelope
                {
                  Store.Payload.token = None;
                  epoch = 0;
                  request = Store.Payload.Epoch_get;
                }
            in
            let deadline = t0 +. 10.0 in
            let rec wait remaining =
              match remaining with
              | [] ->
                convergence_ms :=
                  ((Unix.gettimeofday () -. t0) *. 1e3) :: !convergence_ms
              | _ when Unix.gettimeofday () > deadline ->
                violate "epoch v%d did not converge on servers: %s" version
                  (String.concat "," (List.map string_of_int remaining))
              | _ ->
                let remaining' =
                  List.filter
                    (fun sid ->
                      match Sim.Runtime.call_one ~timeout:0.5 sid get with
                      | None -> true
                      | Some payload -> (
                        match Store.Payload.decode_response payload with
                        | Some (Store.Payload.Epoch_reply (Some got)) ->
                          Store.Config_epoch.version got < version
                        | _ -> true))
                    remaining
                in
                if remaining' <> [] then Sim.Runtime.sleep 0.05;
                wait remaining'
            in
            wait next_servers;
            (* Graceful departure: drain (deny new writes, flush gossip
               backlog), snapshot, prove the snapshot reloads with the
               epoch and drain flag intact, stop, evict the endpoint. *)
            (match hosts.(old_id) with
            | None -> ()
            | Some h ->
              Tcpnet.Server_host.drain h;
              let path = Filename.temp_file "e20-snap" ".bin" in
              Store.Server.save_file servers.(old_id) ~path;
              (match
                 Store.Server.load_result ~config:sconfig ~id:old_id ~keyring
                   ~n ~b ~path ()
               with
              | Ok reloaded
                when Store.Server.epoch_version reloaded
                     = Store.Server.epoch_version servers.(old_id)
                     && Store.Server.draining reloaded ->
                incr snapshot_reloads
              | Ok _ ->
                violate
                  "departing server %d: snapshot reloaded without its epoch \
                   or drain flag"
                  old_id
              | Error m ->
                violate "departing server %d: snapshot did not reload: %s"
                  old_id m);
              Sys.remove path;
              Tcpnet.Server_host.stop h;
              hosts.(old_id) <- None);
            Tcpnet.Chaos.stop proxies.(old_id);
            Tcpnet.Pool.evict (Tcpnet.Pool.shared ()) proxy_eps.(old_id))
          transitions);
    controller_done := true
  in
  let items = [| "k0"; "k1"; "k2"; "k3" |] in
  let writer () =
    Tcpnet.Live.run ~endpoints (fun () ->
        let alice = connect_retry "alice" alice_key cfg_alice 10 in
        let i = ref 0 in
        while not !controller_done do
          incr i;
          let item = items.(!i mod Array.length items) in
          let value = Printf.sprintf "%s#%d" item !i in
          note_attempt item value;
          op (fun () ->
              match Store.Client.write alice ~item value with
              | Ok () -> true
              | Error _ -> false);
          Thread.delay 0.03
        done;
        (* Final writes land on the fully rotated fleet. *)
        Array.iter
          (fun item ->
            let value = Printf.sprintf "%s#final" item in
            note_attempt item value;
            op (fun () ->
                match Store.Client.write alice ~item value with
                | Ok () -> true
                | Error _ -> false))
          items;
        final_epoch_seen :=
          (match Store.Client.epoch alice with
          | Some e -> Store.Config_epoch.version e
          | None -> 0);
        ignore (Store.Client.disconnect alice))
  in
  let reader () =
    Tcpnet.Live.run ~endpoints (fun () ->
        let bob = connect_retry "bob" bob_key cfg_bob 10 in
        let last_seq : (string, int) Hashtbl.t = Hashtbl.create 4 in
        let i = ref 0 in
        while not !writer_done do
          incr i;
          let item = items.(!i mod Array.length items) in
          op (fun () ->
              match Store.Client.read bob ~item with
              | Error _ -> false
              | Ok v ->
                if not (was_attempted item v) then
                  violate "read of %s returned un-written value %S" item v;
                (match String.index_opt v '#' with
                | Some h -> (
                  match
                    int_of_string_opt
                      (String.sub v (h + 1) (String.length v - h - 1))
                  with
                  | Some sq ->
                    (match Hashtbl.find_opt last_seq item with
                    | Some prev when sq < prev ->
                      violate "read of %s went backwards: %d after %d" item
                        sq prev
                    | _ -> ());
                    Hashtbl.replace last_seq item sq
                  | None -> ())
                | None -> ());
                true);
          Thread.delay 0.02
        done;
        ignore (Store.Client.disconnect bob))
  in
  let crashes = ref 0 in
  let guard name fn () =
    try fn ()
    with e ->
      Mutex.lock lock;
      incr crashes;
      violations :=
        Printf.sprintf "%s worker died: %s" name (Printexc.to_string e)
        :: !violations;
      Mutex.unlock lock
  in
  let history = Check.History.create () in
  let soak_secs = ref 0.0 in
  Check.History.recording history (fun () ->
      let t0 = Unix.gettimeofday () in
      let ct = Thread.create (guard "controller" controller) () in
      let wt = Thread.create (guard "writer" writer) () in
      let rt = Thread.create (guard "reader" reader) () in
      Thread.join ct;
      controller_done := true;
      Thread.join wt;
      writer_done := true;
      Thread.join rt;
      soak_secs := Unix.gettimeofday () -. t0;
      (* Post-churn convergence: a fresh session, configured with the
         final membership the way any new client would be, must read
         every item's final value once gossip settles. *)
      Array.iteri
        (fun i p -> if hosts.(i) <> None then Tcpnet.Chaos.heal p)
        proxies;
      let final_members = Store.Config_epoch.servers !epoch_chain in
      Tcpnet.Live.run ~endpoints (fun () ->
          let bob =
            connect_retry "bob" bob_key
              {
                cfg_bob with
                Store.Client.servers = final_members;
                op_deadline = 10.0;
              }
              10
          in
          let deadline = Unix.gettimeofday () +. 15.0 in
          let rec converge remaining =
            match remaining with
            | [] -> ()
            | _ when Unix.gettimeofday () > deadline ->
              violate "post-churn convergence timed out on: %s"
                (String.concat ", " remaining)
            | _ ->
              let remaining' =
                List.filter
                  (fun item ->
                    match Store.Client.read bob ~item with
                    | Ok v -> not (String.equal v (item ^ "#final"))
                    | Error _ -> true)
                  remaining
              in
              if remaining' <> [] then Thread.delay 0.1;
              converge remaining'
          in
          converge (Array.to_list items);
          ignore (Store.Client.disconnect bob)));
  let oracle_violations =
    Check.Oracle.check (Check.History.events history)
  in
  List.iter
    (fun v ->
      violate "oracle: %s" (Check.Oracle.violation_to_string v))
    oracle_violations;
  Array.iteri
    (fun i h -> match h with Some h -> (Tcpnet.Server_host.stop h; Tcpnet.Chaos.stop proxies.(i)) | None -> ())
    hosts;
  let m = Store.Metrics.read () in
  let availability =
    if !ops_attempted = 0 then 0.0
    else 100.0 *. float_of_int !ops_succeeded /. float_of_int !ops_attempted
  in
  let conv = !convergence_ms in
  let conv_max = List.fold_left Float.max 0.0 conv in
  let conv_mean =
    if conv = [] then 0.0
    else List.fold_left ( +. ) 0.0 conv /. float_of_int (List.length conv)
  in
  let nviol = List.length !violations in
  List.iter
    (fun v -> Format.fprintf fmt "VIOLATION: %s@." v)
    (List.rev !violations);
  let table =
    {
      Workload.Table.id = "E20";
      title =
        Printf.sprintf
          "Reconfiguration soak (n=%d b=%d, rolling replacement of every \
           server under chaos proxies, %.1f s)"
          n b !soak_secs;
      header = [ "metric"; "value" ];
      rows =
        [
          [ "epoch transitions announced";
            string_of_int (List.length transitions) ];
          [ "final epoch version (client view)";
            string_of_int !final_epoch_seen ];
          [ "ops attempted / succeeded";
            Printf.sprintf "%d / %d" !ops_attempted !ops_succeeded ];
          [ "availability"; Printf.sprintf "%.2f%%" availability ];
          [ "safety violations (incl. oracle)"; string_of_int nviol ];
          [ "oracle events checked";
            string_of_int (Check.History.length history) ];
          [ "epoch convergence mean / max (ms)";
            Printf.sprintf "%.0f / %.0f" conv_mean conv_max ];
          [ "bootstrap bytes re-announced";
            string_of_int (Store.Metrics.bootstrap_bytes ()) ];
          [ "server epoch adoptions / stale-epoch rejections";
            Printf.sprintf "%d / %d"
              (Store.Metrics.epoch_transitions ())
              (Store.Metrics.epoch_rejections ()) ];
          [ "departing snapshots reloaded"; string_of_int !snapshot_reloads ];
          [ "client retries / escalations";
            Printf.sprintf "%d / %d" m.Store.Metrics.retries
              m.Store.Metrics.escalations ];
        ];
      notes =
        [
          "every server of the initial membership is drained out and";
          "replaced by a standby mid-soak; clients cross all four epoch";
          "boundaries inside one session via Stale_epoch adoption.";
        ];
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_reconfig_json ~path:"BENCH_reconfig.json" ~seed
      [
        ("transitions", string_of_int (List.length transitions));
        ("final_epoch_version", string_of_int !final_epoch_seen);
        ("ops_attempted", string_of_int !ops_attempted);
        ("ops_succeeded", string_of_int !ops_succeeded);
        ("availability_pct", Printf.sprintf "%.2f" availability);
        ("safety_violations", string_of_int nviol);
        ("oracle_events", string_of_int (Check.History.length history));
        ("oracle_violations", string_of_int (List.length oracle_violations));
        ("convergence_ms_mean", Printf.sprintf "%.1f" conv_mean);
        ("convergence_ms_max", Printf.sprintf "%.1f" conv_max);
        ("bootstrap_bytes", string_of_int (Store.Metrics.bootstrap_bytes ()));
        ("epoch_adoptions", string_of_int (Store.Metrics.epoch_transitions ()));
        ("stale_epoch_rejections",
          string_of_int (Store.Metrics.epoch_rejections ()));
        ("snapshot_reloads", string_of_int !snapshot_reloads);
        ("worker_crashes", string_of_int !crashes);
        ("client_retries", string_of_int m.Store.Metrics.retries);
      ];
  if nviol > 0 || availability < 99.0 || !final_epoch_seen <> n + 1 then begin
    Format.fprintf fmt
      "E20: failed — %d violation(s), %.2f%% availability, final epoch v%d@."
      nviol availability !final_epoch_seen;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E21: coded bulk storage — dispersal as the live transport path      *)
(* ------------------------------------------------------------------ *)

let write_dispersal_json ~path rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-dispersal-v1\",\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        baseline current);
  Format.fprintf fmt "wrote %s@." path

(* Coded bulk transport vs full replication, over real sockets: an
   n=4, b=1 fleet with live gossip, one fresh cluster per (mode, value
   size) cell. Per cell a writer stores two values, the writer and a
   second client read them all back, and the cell then waits for full
   dissemination (every server announces every write; under dispersal
   every server also holds its verified fragment). Bytes on wire =
   client RPC bytes + gossip push bytes, both counted into the global
   tally by the transport; storage = every server's retained
   value-plus-fragment bytes. Every operation is recorded into the E16
   oracle's history — a coded read returning wrong or stale bytes would
   be flagged — and the bench fails on any violation or if the 1 MiB
   savings fall under 1.5x. *)
let e21_dispersal ~seed:_ ~json () =
  let n = 4 and b = 1 in
  let items = 2 in
  let sizes = [ 65_536; 262_144; 1_048_576 ] in
  let reserve_port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    Unix.close fd;
    p
  in
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e21-" ^ name))
  in
  let alice_key = key_of "alice" and bob_key = key_of "bob" in
  let mk_value ~label ~size i =
    let tag = Printf.sprintf "e21-%s-%d-%d:" label size i in
    tag
    ^ String.init (size - String.length tag) (fun j ->
          Char.chr ((j * 131 + i) land 0xff))
  in
  let violations = ref [] in
  let violate fmt_str = Printf.ksprintf (fun s -> violations := s :: !violations) fmt_str in
  let history = Check.History.create () in
  let cell ~label ~dispersed ~size =
    let keyring = Store.Keyring.create () in
    Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
    Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
    let servers =
      Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
    in
    let ports = Array.init n (fun _ -> reserve_port ()) in
    let eps = Array.map (fun p -> ("127.0.0.1", p)) ports in
    let hosts =
      Array.mapi
        (fun i server ->
          let peers = List.filteri (fun j _ -> j <> i) (Array.to_list eps) in
          Tcpnet.Server_host.start
            ~gossip:{ Tcpnet.Server_host.peers; period = 0.02 }
            ~server ~port:ports.(i) ())
        servers
    in
    Fun.protect ~finally:(fun () -> Array.iter Tcpnet.Server_host.stop hosts)
    @@ fun () ->
    let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
    (* unique group per cell: cells are independent clusters and must
       not alias item uids in the shared oracle history *)
    let group = Printf.sprintf "e21-%s-%d" label size in
    let names = Array.init items (fun i -> Printf.sprintf "doc%d" i) in
    let values = Array.init items (mk_value ~label ~size) in
    let m0 = Store.Metrics.read () in
    let t0 = Unix.gettimeofday () in
    Tcpnet.Live.run ~endpoints (fun () ->
        let cfg =
          {
            (Store.Client.default_config ~n ~b) with
            Store.Client.timeout = 5.0;
            dispersal_threshold = (if dispersed then 4096 else 0);
            dispersal_chunk = 262_144;
          }
        in
        let connect name key =
          match
            Store.Client.connect ~config:cfg ~uid:name ~key ~keyring ~group ()
          with
          | Ok c -> c
          | Error e -> failwith ("e21 connect: " ^ Store.Client.error_to_string e)
        in
        let alice = connect "alice" alice_key in
        Array.iteri
          (fun i item ->
            match Store.Client.write alice ~item values.(i) with
            | Ok () -> ()
            | Error e -> failwith ("e21 write: " ^ Store.Client.error_to_string e))
          names;
        let read_all c who =
          Array.iteri
            (fun i item ->
              match Store.Client.read c ~item with
              | Ok v when String.equal v values.(i) -> ()
              | Ok _ -> violate "%s: %s read wrong bytes for %s" group who item
              | Error e ->
                failwith ("e21 read: " ^ Store.Client.error_to_string e))
            names
        in
        read_all alice "alice";
        let bob = connect "bob" bob_key in
        read_all bob "bob";
        ignore (Store.Client.disconnect alice);
        ignore (Store.Client.disconnect bob));
    let ops_s = Unix.gettimeofday () -. t0 in
    let uids = Array.map (fun item -> Store.Uid.make ~group ~item) names in
    let settled () =
      Array.for_all
        (fun s ->
          Array.for_all
            (fun uid -> Store.Server.current_write s uid <> None)
            uids
          && ((not dispersed) || Store.Server.fragment_count s >= items))
        servers
    in
    let deadline = Unix.gettimeofday () +. 30.0 in
    while (not (settled ())) && Unix.gettimeofday () < deadline do
      Thread.delay 0.05
    done;
    if not (settled ()) then violate "%s: dissemination never settled" group;
    (* a final beat so in-flight gossip byte accounting lands *)
    Thread.delay 0.1;
    let d = Store.Metrics.diff (Store.Metrics.read ()) m0 in
    let storage =
      Array.fold_left (fun acc s -> acc + Store.Server.storage_bytes s) 0 servers
    in
    (label, size, d.Store.Metrics.bytes, d.Store.Metrics.messages, storage, ops_s)
  in
  let cells = ref [] in
  Check.History.recording history (fun () ->
      List.iter
        (fun size ->
          cells := cell ~label:"replicated" ~dispersed:false ~size :: !cells;
          cells := cell ~label:"dispersed" ~dispersed:true ~size :: !cells)
        sizes);
  let cells = List.rev !cells in
  let oracle_violations = Check.Oracle.check (Check.History.events history) in
  List.iter
    (fun v -> violate "oracle: %s" (Check.Oracle.violation_to_string v))
    oracle_violations;
  let find label size =
    List.find_map
      (fun (l, s, bytes, msgs, storage, el) ->
        if String.equal l label && s = size then Some (bytes, msgs, storage, el)
        else None)
      cells
  in
  let ratios =
    List.filter_map
      (fun size ->
        match (find "replicated" size, find "dispersed" size) with
        | Some (rb, _, rs, _), Some (db, _, ds, _) when db > 0 && ds > 0 ->
          Some
            ( size,
              float_of_int rb /. float_of_int db,
              float_of_int rs /. float_of_int ds )
        | _ -> None)
      sizes
  in
  let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0) in
  List.iter
    (fun v -> Format.fprintf fmt "VIOLATION: %s@." v)
    (List.rev !violations);
  let table =
    {
      Workload.Table.id = "E21";
      title =
        Printf.sprintf
          "Coded bulk storage: dispersal (k=%d of %d) vs full replication \
           over live TCP with gossip (%d values per cell, 2 readers)"
          (b + 1) n items;
      header =
        [ "mode"; "value"; "wire (MiB)"; "msgs"; "stored (MiB)"; "ops (s)" ];
      rows =
        List.map
          (fun (label, size, bytes, msgs, storage, el) ->
            [
              label;
              Printf.sprintf "%d KiB" (size / 1024);
              Printf.sprintf "%.2f" (mib bytes);
              string_of_int msgs;
              Printf.sprintf "%.2f" (mib storage);
              Printf.sprintf "%.2f" el;
            ])
          cells;
      notes =
        [
          "wire = client RPC bytes + gossip push bytes to full dissemination;";
          "stored = retained write bodies + verified fragments across all \
           servers;";
          (match ratios with
          | [] -> "savings: n/a"
          | rs ->
            "savings (replicated/dispersed): "
            ^ String.concat ", "
                (List.map
                   (fun (size, w, s) ->
                     Printf.sprintf "%d KiB wire %.2fx storage %.2fx"
                       (size / 1024) w s)
                   rs));
          Printf.sprintf
            "oracle: %d events checked, %d violation(s); every read's \
             reconstructed bytes fed the linkage/freshness checks"
            (Check.History.length history)
            (List.length oracle_violations);
        ];
    }
  in
  Workload.Table.print fmt table;
  let wire_1m, storage_1m =
    match List.find_opt (fun (s, _, _) -> s = 1_048_576) ratios with
    | Some (_, w, s) -> (w, s)
    | None -> (0.0, 0.0)
  in
  if json then
    write_dispersal_json ~path:"BENCH_dispersal.json"
      (List.concat_map
         (fun (label, size, bytes, msgs, storage, el) ->
           let p = Printf.sprintf "%s_%dk_" label (size / 1024) in
           [
             (p ^ "wire_bytes", string_of_int bytes);
             (p ^ "messages", string_of_int msgs);
             (p ^ "storage_bytes", string_of_int storage);
             (p ^ "ops_s", Printf.sprintf "%.3f" el);
           ])
         cells
      @ List.concat_map
          (fun (size, w, s) ->
            let p = Printf.sprintf "savings_%dk_" (size / 1024) in
            [
              (p ^ "wire", Printf.sprintf "%.3f" w);
              (p ^ "storage", Printf.sprintf "%.3f" s);
            ])
          ratios
      @ [
          ("oracle_events", string_of_int (Check.History.length history));
          ("oracle_violations", string_of_int (List.length oracle_violations));
          ("safety_violations", string_of_int (List.length !violations));
        ]);
  if !violations <> [] || wire_1m < 1.5 || storage_1m < 1.5 then begin
    Format.fprintf fmt
      "E21: failed — %d violation(s), 1 MiB savings wire %.2fx storage %.2fx \
       (want >= 1.5x)@."
      (List.length !violations) wire_1m storage_1m;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)
(* E22: end-to-end distributed tracing                                 *)
(* ------------------------------------------------------------------ *)

let write_trace_json ~path rows =
  let obj rows =
    "{ "
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) rows)
    ^ " }"
  in
  let current = obj rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-trace-v1\",\n  \"baseline\": %s,\n\
        \  \"current\": %s\n}\n"
        baseline current);
  Format.fprintf fmt "wrote %s@." path

(* Three questions, one experiment. (1) What does end-to-end tracing
   cost when on — trace minting, the 26-byte wire extension on every
   frame, server-side context parsing — measured with E17's paired-op
   methodology against the same 3% transport budget. (2) Does a
   sharded, chaos-proxied transaction stitch into ONE trace: client
   phases, a write quorum's worth of server spans on each of two
   shards, and a gossip hop, assembled by the flight recorder and
   fetchable over /trace (saved as TRACE_sample.json). (3) Does an
   injected freshness violation — a canary client reading from servers
   swapped to Stale mid-run — yield an oracle report whose trace id
   resolves in the flight recorder (dumped as
   FLIGHT_violation_<id>.json)? *)
let e22_trace ~seed ~json () =
  let failures = ref [] in
  let fail fmt_ =
    Printf.ksprintf (fun s -> failures := s :: !failures) fmt_
  in
  let reserve_port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    Unix.close fd;
    p
  in
  let key_of name =
    Crypto.Rsa.generate ~bits:512 (Crypto.Prng.create ~seed:("e22-" ^ name))
  in
  (* --- (1) overhead: E17's interleaved off/on batches --------------- *)
  let n = 4 and b = 1 in
  Store.Metrics.reset ();
  Obs.Span.set_enabled false;
  Obs.Span.reset_stats ();
  Obs.Span.reset_journal ();
  Obs.Span.reset_flight ();
  (* Client-side cost only, like E17: the in-process servers would bill
     their span work to client latency through the shared machine. The
     wire extension still rides every traced frame and the server still
     parses it — that cost is in scope and measured. *)
  Tcpnet.Server_host.set_request_tracing false;
  let alice_key = key_of "alice" and bob_key = key_of "bob" in
  let keyring = Store.Keyring.create () in
  Store.Keyring.register keyring "alice" alice_key.Crypto.Rsa.public;
  Store.Keyring.register keyring "bob" bob_key.Crypto.Rsa.public;
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let cfg =
    { (Store.Client.default_config ~n ~b) with Store.Client.timeout = 2.0 }
  in
  let batches = 5 and iters = 150 in
  let op_results = ref [] and tr_results = ref [] in
  (* Every paired sample, pooled across batches, so the JSON can carry
     off/on percentiles and not just the batch-median headline. *)
  let pool_w_off = ref [] and pool_w_on = ref [] in
  let pool_r_off = ref [] and pool_r_on = ref [] in
  Tcpnet.Live.run ~endpoints (fun () ->
      let connect name key =
        match
          Store.Client.connect ~config:cfg ~uid:name ~key ~keyring ~group:"e22"
            ()
        with
        | Ok c -> c
        | Error e -> failwith ("e22 connect: " ^ Store.Client.error_to_string e)
      in
      let alice = connect "alice" alice_key in
      let bob = connect "bob" bob_key in
      let counter = ref 0 in
      let one_write () =
        incr counter;
        match Store.Client.write alice ~item:"k" (string_of_int !counter) with
        | Ok () -> ()
        | Error e -> failwith ("e22 write: " ^ Store.Client.error_to_string e)
      in
      let one_read () =
        match Store.Client.read bob ~item:"k" with
        | Ok _ -> ()
        | Error e -> failwith ("e22 read: " ^ Store.Client.error_to_string e)
      in
      let batch_median samples =
        Array.sort compare samples;
        samples.(Array.length samples / 2)
      in
      let rpc_h = Store.Metrics.rpc_latency_histo () in
      let batch () =
        let wo = Array.make iters 0.0 and wn = Array.make iters 0.0 in
        let ro = Array.make iters 0.0 and rn = Array.make iters 0.0 in
        let wto = Array.make iters 0.0 and wtn = Array.make iters 0.0 in
        let rto = Array.make iters 0.0 and rtn = Array.make iters 0.0 in
        let timed op_arr tr_arr i f =
          let s = Obs.Histo.sum rpc_h in
          op_arr.(i) <- fst (time_ns f);
          tr_arr.(i) <- Obs.Histo.sum rpc_h -. s
        in
        for i = 0 to iters - 1 do
          Obs.Span.set_enabled false;
          timed wo wto i one_write;
          timed ro rto i one_read;
          Obs.Span.set_enabled true;
          timed wn wtn i one_write;
          timed rn rtn i one_read
        done;
        Obs.Span.set_enabled false;
        let pour pool arr = pool := Array.to_list arr @ !pool in
        pour pool_w_off wo;
        pour pool_w_on wn;
        pour pool_r_off ro;
        pour pool_r_on rn;
        op_results :=
          (batch_median wo, batch_median wn, batch_median ro, batch_median rn)
          :: !op_results;
        tr_results :=
          (batch_median wto, batch_median wtn, batch_median rto,
           batch_median rtn)
          :: !tr_results
      in
      for _ = 1 to 10 do one_write (); one_read () done;
      for _ = 1 to batches do batch () done;
      ignore (Store.Client.disconnect alice);
      ignore (Store.Client.disconnect bob));
  Array.iter Tcpnet.Server_host.stop hosts;
  Tcpnet.Server_host.set_request_tracing true;
  let median xs =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let pick results f = median (List.map f !results) in
  let quad results =
    ( pick results (fun (w, _, _, _) -> w),
      pick results (fun (_, w, _, _) -> w),
      pick results (fun (_, _, r, _) -> r),
      pick results (fun (_, _, _, r) -> r) )
  in
  let w_off, w_on, r_off, r_on = quad op_results in
  let tw_off, tw_on, tr_off, tr_on = quad tr_results in
  let pct off on = if off = 0.0 then 0.0 else (on -. off) /. off *. 100.0 in
  let w_overhead = pct w_off w_on and r_overhead = pct r_off r_on in
  let tw_overhead = pct tw_off tw_on and tr_overhead = pct tr_off tr_on in
  let budget = 3.0 in
  let percentile p pool =
    match Array.of_list !pool with
    | [||] -> 0.0
    | a ->
      Array.sort compare a;
      let i = int_of_float (p /. 100.0 *. float_of_int (Array.length a - 1)) in
      a.(i)
  in
  let pct_fields tag pool =
    List.map
      (fun p ->
        ( Printf.sprintf "%s_p%.0f_ns" tag p,
          Printf.sprintf "%.0f" (percentile p pool) ))
      [ 50.0; 90.0; 99.0 ]
  in
  (* --- (2) one stitched trace across shards, chaos in the path ------ *)
  let shards = 2 in
  Store.Metrics.reset ();
  Obs.Span.reset_stats ();
  Obs.Span.reset_journal ();
  Obs.Span.reset_flight ();
  Obs.Span.set_node "bench-e22";
  (* Head-sample everything: this phase is about stitching, not the
     sampling rate, and the one transaction must be retained. *)
  Obs.Span.set_sample_interval 1;
  Obs.Span.set_enabled true;
  let tr_key = key_of "tr" in
  let tr_keyring = Store.Keyring.create () in
  Store.Keyring.register tr_keyring "tr" tr_key.Crypto.Rsa.public;
  let sh_servers =
    Array.init (shards * n) (fun gid ->
        Store.Server.create ~id:gid ~keyring:tr_keyring ~n ~b ())
  in
  let sh_ports = Array.init n (fun _ -> reserve_port ()) in
  (* Mild seeded chaos between everyone — clients and gossip alike go
     through the proxies, so the stitched trace is of a transaction
     that really crossed a lossy network. *)
  let sh_plans =
    Array.init n (fun i ->
        Tcpnet.Chaos.plan ~seed:(seed + i) ~drop:0.01 ~delay:0.001
          ~jitter:0.002 ())
  in
  let sh_proxies =
    Array.init n (fun i ->
        Tcpnet.Chaos.start ~plan:sh_plans.(i)
          ~target:("127.0.0.1", sh_ports.(i))
          ())
  in
  let sh_proxy_eps =
    Array.map (fun p -> ("127.0.0.1", Tcpnet.Chaos.port p)) sh_proxies
  in
  let gossip_period = 0.1 in
  let sh_hosts =
    Array.init n (fun r ->
        let peers =
          List.filteri (fun j _ -> j <> r) (Array.to_list sh_proxy_eps)
        in
        let specs =
          List.init shards (fun s ->
              {
                Tcpnet.Server_host.shard = s;
                server = sh_servers.((s * n) + r);
                behavior = Store.Faults.Honest;
                peers;
              })
        in
        Tcpnet.Server_host.start_sharded ~gossip_period ~shards:specs
          ~port:sh_ports.(r) ())
  in
  let sh_table = Store.Shardmap.make ~seed:"e22-shard" ~shards () in
  let groups = List.init 8 (fun g -> Printf.sprintf "tg%d" g) in
  let group_on s =
    List.find_opt
      (fun g -> Store.Shardmap.shard_of_group sh_table g = s)
      groups
  in
  let sh_eps gid =
    if gid >= 0 && gid < shards * n then Some sh_proxy_eps.(gid mod n)
    else None
  in
  let config_of shard =
    {
      (Store.Client.default_config ~n ~b) with
      Store.Client.servers = Store.Router.shard_servers ~n shard;
      timeout = 1.0;
      op_deadline = 6.0;
      write_retries = 2;
      read_retries = 2;
      retry_delay = 0.02;
      retry_backoff_max = 0.1;
    }
  in
  let trace_hex = ref "" in
  (match (group_on 0, group_on 1) with
  | Some ga, Some gb ->
    Tcpnet.Live.run ~endpoints:sh_eps
      ~shard_of:(fun node -> Some (node / n))
      (fun () ->
        let router =
          Store.Router.create ~table:sh_table ~uid:"tr" ~key:tr_key
            ~keyring:tr_keyring ~config_of ()
        in
        (* The transaction: one op spanning writes to both shards. The
           first nested client op mints the trace on this root;
           everything after — second shard's quorum, retries, the
           servers' decode/verify/apply, the gossip pushes — joins it. *)
        Obs.Span.with_op "sharded_txn" (fun () ->
            List.iter
              (fun g ->
                let uid = Store.Uid.make ~group:g ~item:"k" in
                match Store.Router.write router ~uid (g ^ "#payload") with
                | Ok () -> ()
                | Error e ->
                  fail "E22 stitched write %s failed: %s" g
                    (Store.Client.error_to_string e))
              [ ga; gb ];
            match Obs.Span.current_ctx () with
            | Some c -> trace_hex := Obs.Jsonx.to_hex c.Obs.Span.trace
            | None -> fail "E22: no trace context on the transaction root");
        (* Two gossip periods: each shard's gossip round adopts the
           trace it last served and pushes under it. *)
        Thread.delay (2.5 *. gossip_period);
        ignore (Store.Router.disconnect router))
  | _ -> fail "E22: shard table put all sample groups on one shard");
  Array.iter Tcpnet.Server_host.stop sh_hosts;
  Array.iter Tcpnet.Chaos.stop sh_proxies;
  Obs.Span.set_sample_interval 8;
  (* Assemble, assert, and save the artifact through the same HTTP
     route a deployment scrapes. *)
  let spans =
    match Obs.Jsonx.of_hex !trace_hex with
    | Some raw when String.length raw = Obs.Span.trace_bytes ->
      Obs.Span.trace_spans ~trace:raw
    | _ -> []
  in
  let with_op op = List.filter (fun c -> c.Obs.Span.op = op) spans in
  let server_spans = with_op "server_request" in
  let shard_of_span c =
    List.find_map
      (fun a ->
        let t = Obs.Span.attr_text a in
        try Scanf.sscanf t "server=%d shard=%d" (fun s sh -> Some (s, sh))
        with Scanf.Scan_failure _ | End_of_file -> None)
      (List.rev c.Obs.Span.attrs)
  in
  let servers_on shard =
    List.sort_uniq compare
      (List.filter_map
         (fun c ->
           match shard_of_span c with
           | Some (s, sh) when sh = shard -> Some s
           | _ -> None)
         server_spans)
  in
  let wq = n - b in
  let gossip_spans = with_op "gossip_round" in
  (match with_op "sharded_txn" with
  | [ root ] ->
    if root.Obs.Span.parent <> 0 then fail "E22: transaction root has a parent";
    if root.Obs.Span.phases = [] then
      fail "E22: transaction root carries no client phases"
  | l -> fail "E22: expected exactly one transaction root, found %d"
           (List.length l));
  List.iter
    (fun s ->
      let got = List.length (servers_on s) in
      if got < wq then
        fail "E22: shard %d shows %d traced server spans, want >= %d (quorum)"
          s got wq)
    [ 0; 1 ];
  if gossip_spans = [] then
    fail "E22: no gossip span joined the trace within %.1fs"
      (2.5 *. gossip_period);
  let fetched =
    let http =
      Tcpnet.Metrics_http.start ~port:0
        ~routes:
          [
            ( "/trace",
              fun query ->
                let id =
                  List.find_map
                    (fun kv ->
                      match String.index_opt kv '=' with
                      | Some i when String.sub kv 0 i = "id" ->
                        Some
                          (String.sub kv (i + 1) (String.length kv - i - 1))
                      | _ -> None)
                    (String.split_on_char '&' query)
                in
                ( "application/json",
                  Obs.Span.trace_json
                    ~id:(Option.value ~default:"" id)
                    () ) );
          ]
        ()
    in
    Fun.protect ~finally:(fun () -> Tcpnet.Metrics_http.stop http) @@ fun () ->
    Tcpnet.Metrics_http.get
      ~port:(Tcpnet.Metrics_http.port http)
      ~path:("/trace?id=" ^ !trace_hex)
      ()
  in
  (match fetched with
  | Error e -> fail "E22: /trace fetch failed: %s" e
  | Ok body -> (
    match Obs.Jsonx.parse body with
    | None -> fail "E22: /trace body is not valid JSON"
    | Some v ->
      (match Option.bind (Obs.Jsonx.member "trace" v) Obs.Jsonx.str_of with
      | Some t when t = !trace_hex -> ()
      | _ -> fail "E22: /trace body names the wrong trace");
      let oc = open_out "TRACE_sample.json" in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc body);
      Format.fprintf fmt "wrote TRACE_sample.json@."));
  (* --- (3) violation-triggered flight dump -------------------------- *)
  Obs.Span.reset_journal ();
  Obs.Span.reset_flight ();
  let v_keyring = Store.Keyring.create () in
  let canary_key = key_of "canary" in
  Store.Keyring.register v_keyring "canary" canary_key.Crypto.Rsa.public;
  let v_servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring:v_keyring ~n ~b ())
  in
  let v_ports = Array.init n (fun _ -> reserve_port ()) in
  let start_host ?behavior i =
    Tcpnet.Server_host.start ?behavior ~server:v_servers.(i) ~port:v_ports.(i)
      ()
  in
  let v_hosts = Array.init n (fun i -> start_host i) in
  let v_eps gid =
    if gid >= 0 && gid < n then Some ("127.0.0.1", v_ports.(gid)) else None
  in
  let v_cfg =
    {
      (Store.Client.default_config ~n ~b) with
      Store.Client.timeout = 0.5;
      read_retries = 1;
      write_retries = 1;
      (* The broken client the oracle must catch: skips the
         context-freshness floor, so the stale pair below satisfies its
         read. Never enable outside oracle tests. *)
      canary_skip_freshness = true;
    }
  in
  let history = Check.History.create () in
  let got_stale_read = ref false in
  Check.History.recording history (fun () ->
      Tcpnet.Live.run ~endpoints:v_eps (fun () ->
          match
            Store.Client.connect ~config:v_cfg ~uid:"canary" ~key:canary_key
              ~keyring:v_keyring ~group:"flight" ()
          with
          | Error e ->
            fail "E22 canary connect: %s" (Store.Client.error_to_string e)
          | Ok canary ->
            (match Store.Client.write canary ~item:"x" "v1" with
            | Ok () -> ()
            | Error e ->
              fail "E22 canary write v1: %s" (Store.Client.error_to_string e));
            (* Freeze the two servers the canary's read set will hit:
               they hold v1, will ack v2 without storing it, and serve
               v1 back — the freshness violation the canary cannot see
               without its floor. *)
            Tcpnet.Server_host.stop v_hosts.(0);
            Tcpnet.Server_host.stop v_hosts.(1);
            v_hosts.(0) <- start_host ~behavior:Store.Faults.Stale 0;
            v_hosts.(1) <- start_host ~behavior:Store.Faults.Stale 1;
            (match Store.Client.write canary ~item:"x" "v2" with
            | Ok () -> ()
            | Error e ->
              fail "E22 canary write v2: %s" (Store.Client.error_to_string e));
            (match Store.Client.read canary ~item:"x" with
            | Ok "v1" -> got_stale_read := true
            | Ok v -> fail "E22 canary read returned %S, want the stale v1" v
            | Error e ->
              fail "E22 canary read: %s" (Store.Client.error_to_string e));
            (* Stale servers sit on Ctx_write, so the disconnect times
               out its context quorum; the violation is already on
               record either way. *)
            ignore (Store.Client.disconnect canary)));
  Array.iter Tcpnet.Server_host.stop v_hosts;
  Obs.Span.set_enabled false;
  let violations = Check.Oracle.check (Check.History.events history) in
  let flight_dump = ref "" in
  (match violations with
  | [] -> fail "E22: seeded stale schedule produced no oracle violation"
  | v :: _ -> (
    Format.fprintf fmt "oracle: %a@." Check.Oracle.pp_violation v;
    let vid = v.Check.Oracle.first.Store.Trace.trace in
    if vid = "" then fail "E22: violation event carries no trace id"
    else
      match Obs.Jsonx.of_hex vid with
      | Some raw when String.length raw = Obs.Span.trace_bytes ->
        if not (Obs.Span.pin ~trace:raw) then
          fail "E22: violation trace %s not held by the flight recorder" vid
        else begin
          let dump = Obs.Span.trace_json ~id:vid () in
          (match Obs.Jsonx.parse dump with
          | Some d
            when Option.bind (Obs.Jsonx.member "trace" d) Obs.Jsonx.str_of
                 = Some vid
                 && (match
                       Option.bind (Obs.Jsonx.member "spans" d)
                         Obs.Jsonx.arr_of
                     with
                    | Some (_ :: _) -> true
                    | _ -> false) ->
            ()
          | _ -> fail "E22: flight dump for %s is empty or malformed" vid);
          let path = Printf.sprintf "FLIGHT_violation_%s.json" vid in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc dump);
          flight_dump := path;
          Format.fprintf fmt "wrote %s@." path
        end
      | _ -> fail "E22: violation trace id %S is not a 128-bit hex id" vid));
  (* --- report -------------------------------------------------------- *)
  let sampled, forced, occupancy = Obs.Span.flight_stats () in
  let table =
    {
      Workload.Table.id = "E22";
      title =
        Printf.sprintf
          "End-to-end distributed tracing (n=%d b=%d; %d batches x %d \
           op-paired off/on samples; S=%d stitched sharded txn under \
           chaos; canary flight dump)"
          n b batches iters shards;
      header = [ "metric"; "value" ];
      rows =
        [
          [ "whole op: write off -> on (us)";
            Printf.sprintf "%.0f -> %.0f (%+.1f%%)" (w_off /. 1e3)
              (w_on /. 1e3) w_overhead ];
          [ "whole op: read off -> on (us)";
            Printf.sprintf "%.0f -> %.0f (%+.1f%%)" (r_off /. 1e3)
              (r_on /. 1e3) r_overhead ];
          [ "transport: write off -> on (us)";
            Printf.sprintf "%.0f -> %.0f (%+.1f%%)" (tw_off /. 1e3)
              (tw_on /. 1e3) tw_overhead ];
          [ "transport: read off -> on (us)";
            Printf.sprintf "%.0f -> %.0f (%+.1f%%)" (tr_off /. 1e3)
              (tr_on /. 1e3) tr_overhead ];
          [ Printf.sprintf "transport budget %.0f%%" budget;
            (if tw_overhead <= budget && tr_overhead <= budget then "met"
             else "EXCEEDED") ];
          [ "stitched trace id"; !trace_hex ];
          [ "stitched spans (total / server / gossip)";
            Printf.sprintf "%d / %d / %d" (List.length spans)
              (List.length server_spans)
              (List.length gossip_spans) ];
          [ "traced server quorum (shard 0 / shard 1, want >= 3)";
            Printf.sprintf "%d / %d" (List.length (servers_on 0))
              (List.length (servers_on 1)) ];
          [ "canary stale read observed"; string_of_bool !got_stale_read ];
          [ "oracle violations"; string_of_int (List.length violations) ];
          [ "flight dump"; (if !flight_dump = "" then "MISSING" else !flight_dump) ];
          [ "flight recorder (sampled / forced / held)";
            Printf.sprintf "%d / %d / %d" sampled forced occupancy ];
        ];
      notes =
        [
          "overheads compare per-batch medians of paired off/on ops (E17 \
           methodology);";
          "transport = the op's rpc rounds; whole op adds client span + \
           trace minting;";
          "the stitched trace crosses 2 shards and a chaos proxy, and is \
           fetched over /trace?id=...;";
          "the flight dump is the full causal trace of the op the \
           consistency oracle flagged.";
        ];
    }
  in
  Workload.Table.print fmt table;
  if json then
    write_trace_json ~path:"BENCH_trace.json"
      ([
        ("write_off_ns", Printf.sprintf "%.0f" w_off);
        ("write_on_ns", Printf.sprintf "%.0f" w_on);
        ("read_off_ns", Printf.sprintf "%.0f" r_off);
        ("read_on_ns", Printf.sprintf "%.0f" r_on);
        ("overhead_write_pct", Printf.sprintf "%.2f" w_overhead);
        ("overhead_read_pct", Printf.sprintf "%.2f" r_overhead);
        ("transport_write_off_ns", Printf.sprintf "%.0f" tw_off);
        ("transport_write_on_ns", Printf.sprintf "%.0f" tw_on);
        ("transport_read_off_ns", Printf.sprintf "%.0f" tr_off);
        ("transport_read_on_ns", Printf.sprintf "%.0f" tr_on);
        ("overhead_transport_write_pct", Printf.sprintf "%.2f" tw_overhead);
        ("overhead_transport_read_pct", Printf.sprintf "%.2f" tr_overhead);
        ("overhead_budget_pct", Printf.sprintf "%.0f" budget);
      ]
      @ pct_fields "write_off" pool_w_off
      @ pct_fields "write_on" pool_w_on
      @ pct_fields "read_off" pool_r_off
      @ pct_fields "read_on" pool_r_on
      @ [
        ("stitched_spans", string_of_int (List.length spans));
        ("stitched_server_spans", string_of_int (List.length server_spans));
        ("stitched_gossip_spans", string_of_int (List.length gossip_spans));
        ("stitched_shard0_servers",
         string_of_int (List.length (servers_on 0)));
        ("stitched_shard1_servers",
         string_of_int (List.length (servers_on 1)));
        ("oracle_violations", string_of_int (List.length violations));
        ("violation_trace_resolved",
         string_of_bool (!flight_dump <> ""));
      ]);
  if !failures <> [] then begin
    List.iter (fun s -> Format.fprintf fmt "E22 FAILURE: %s@." s)
      (List.rev !failures);
    exit 1
  end

(* ------------------------------------------------------------------ *)

let experiments ~seed ~json : (string * (unit -> unit)) list =
  let t f () = Workload.Table.print fmt (f ()) in
  [
    ("e1", t Workload.Experiments.e1_context_messages);
    ("e2", t Workload.Experiments.e2_context_crypto);
    ("e3", t Workload.Experiments.e3_data_costs);
    ("e4", t Workload.Experiments.e4_multi_writer_costs);
    ("e5", t Workload.Experiments.e5_quorum_comparison);
    ("e6", t Workload.Experiments.e6_pbft_messages);
    ("e7", t (fun () -> Workload.Experiments.e7_dissemination ~seed ()));
    ("e8", t (fun () -> Workload.Experiments.e8_fault_injection ~seed ()));
    ("e8b", t Workload.Experiments.e8b_spurious_context);
    ( "e9",
      fun () ->
        let micro = e9 () in
        let proto = e9_protocol () in
        if json then
          write_bench_json ~path:"BENCH_crypto.json" ~schema:"bench-crypto-v1"
            (micro @ proto) );
    ( "e10",
      fun () ->
        Workload.Table.print fmt (Workload.Experiments.e10_wan_latency ~seed ());
        e10_net ~json () );
    ("e11", t Workload.Experiments.e11_read_strategies);
    ("e12", t Workload.Experiments.e12_dispersal);
    ("e13", t Workload.Experiments.e13_dynamic_quorums);
    ("e14", t Workload.Experiments.e14_context_size);
    ("e15", fun () -> e15_chaos ~seed ~json ());
    ("e16", fun () -> e16_check ~seed ~json ());
    ("e17", fun () -> e17_obs ~json ());
    ("e18", fun () -> e18_sign ~json ());
    ("e19", fun () -> e19_shard ~seed ~json ());
    ("e20", fun () -> e20_reconfig ~seed ~json ());
    ("e21", fun () -> e21_dispersal ~seed ~json ());
    ("e22", fun () -> e22_trace ~seed ~json ());
  ]

let main args =
  let rec parse seed json picked = function
    | [] -> (seed, json, List.rev picked)
    | "--seed" :: v :: rest -> parse (int_of_string v) json picked rest
    | "--json" :: rest -> parse seed true picked rest
    | name :: rest -> parse seed json (String.lowercase_ascii name :: picked) rest
  in
  let seed, json, picked = parse 42 false [] args in
  let table = experiments ~seed ~json in
  let to_run = match picked with [] -> List.map fst table | _ -> picked in
  Format.fprintf fmt
    "secure store benchmark harness — reproducing section 6 of Lakshmanan, \
     Ahamad & Venkateswaran, DSN 2001 (seed %d)@."
    seed;
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | Some run -> run ()
      | None ->
        Format.fprintf fmt "unknown experiment %S (known: %s)@." name
          (String.concat ", " (List.map fst table)))
    to_run

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "e19-worker" :: rest -> e19_worker rest
  | args -> main args
