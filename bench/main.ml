(* Benchmark harness: regenerates every quantitative claim of the paper's
   section 6 (experiments E1-E10; see DESIGN.md and EXPERIMENTS.md).

     dune exec bench/main.exe            -- all experiments + E9 microbench
     dune exec bench/main.exe -- e3 e9   -- a subset
     dune exec bench/main.exe -- --seed 7 e7
     dune exec bench/main.exe -- e9 --json   -- also write BENCH_crypto.json

   Output is plain text, one table per experiment. With --json, the E9
   crypto and end-to-end numbers are additionally written to
   BENCH_crypto.json (ns/op) so the perf trajectory is machine-tracked;
   an existing "baseline" object in that file is preserved across runs. *)

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* E9: crypto and protocol microbenchmarks via Bechamel                *)
(* ------------------------------------------------------------------ *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* ---- BENCH_crypto.json -------------------------------------------- *)

let json_key name =
  (* "crypto/rsa1024-sign" -> "rsa1024_sign"; "store-ops/write(b+1)" ->
     "write_b_1": drop the group prefix, map non-alphanumerics to '_',
     squeeze and trim the underscores. *)
  let name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | _ ->
        if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '_'
        then Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let results_json rows =
  "{ "
  ^ String.concat ", "
      (List.map
         (fun (name, ns) ->
           Printf.sprintf "\"%s_ns\": %.1f" (json_key name) ns)
         rows)
  ^ " }"

(* The first --json run records its numbers as the baseline; later runs
   keep that baseline so before/after is visible in one committed file. *)
let existing_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let key = "\"baseline\"" in
    let klen = String.length key and n = String.length s in
    let rec find i =
      if i + klen > n then None
      else if String.sub s i klen = key then Some (i + klen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some after -> (
      match String.index_from_opt s after '{' with
      | None -> None
      | Some opening ->
        let rec close i depth =
          if i >= n then None
          else
            match s.[i] with
            | '{' -> close (i + 1) (depth + 1)
            | '}' -> if depth = 1 then Some i else close (i + 1) (depth - 1)
            | _ -> close (i + 1) depth
        in
        Option.map
          (fun closing -> String.sub s opening (closing - opening + 1))
          (close opening 0))
  end

let write_bench_json ~path rows =
  let current = results_json rows in
  let baseline =
    match existing_baseline path with Some b -> b | None -> current
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"bench-crypto-v1\",\n  \"unit\": \"ns/op\",\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        baseline current);
  Format.fprintf fmt "wrote %s@." path

let e9 () =
  let open Bechamel in
  let data n = String.init n (fun i -> Char.chr (i land 0xff)) in
  let d64 = data 64 and d1k = data 1024 and d64k = data 65536 in
  let prng = Crypto.Prng.create ~seed:"bench" in
  let rsa512 = Crypto.Rsa.generate ~bits:512 prng in
  let rsa1024 = Crypto.Rsa.generate ~bits:1024 prng in
  let sig512 = Crypto.Rsa.sign rsa512 d64 in
  let sig1024 = Crypto.Rsa.sign rsa1024 d64 in
  let chacha_key = Crypto.Sha256.digest "bench-key" in
  let nonce = String.make 12 '\x01' in
  let tests =
    Test.make_grouped ~name:"crypto"
      [
        Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Crypto.Sha256.digest d64));
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d1k));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d64k));
        Test.make ~name:"hmac-1KiB"
          (Staged.stage (fun () -> Crypto.Hmac.sha256 ~key:"k" d1k));
        Test.make ~name:"chacha20-1KiB"
          (Staged.stage (fun () -> Crypto.Chacha20.encrypt ~key:chacha_key ~nonce d1k));
        Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa512 d64));
        Test.make ~name:"rsa512-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa512.Crypto.Rsa.public ~msg:d64 ~signature:sig512));
        Test.make ~name:"rsa1024-sign"
          (Staged.stage (fun () -> Crypto.Rsa.sign rsa1024 d64));
        Test.make ~name:"rsa1024-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa1024.Crypto.Rsa.public ~msg:d64 ~signature:sig1024));
      ]
  in
  let rows = bechamel_run tests in
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let table =
    {
      Workload.Table.id = "E9";
      title = "Crypto microbenchmarks (Bechamel, monotonic clock)";
      header = [ "primitive"; "time/op" ];
      rows = List.map (fun (name, ns) -> [ name; pp_ns ns ]) rows;
      notes =
        [
          "the paper's section 6 cost model rests on sign >> verify >> digest;";
          "PBFT's MAC-based authenticators correspond to the hmac row";
        ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* One Bechamel test per full protocol op, run against an in-process
   world: the end-to-end computational cost of each store operation. *)
let e9_protocol () =
  let open Bechamel in
  let w = Workload.Worlds.make ~n:4 ~b:1 () in
  let counter = ref 0 in
  let in_world fn = Workload.Worlds.in_direct w fn in
  let alice =
    in_world (fun () -> Workload.Worlds.connect w "alice" ~group:"bench")
  in
  in_world (fun () ->
      match Store.Client.write alice ~item:"x" "seed-value" with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  (* Store a context for bob so the connect benchmark includes the
     signature verification of a restored session. *)
  in_world (fun () ->
      let bob = Workload.Worlds.connect w "bob" ~group:"bench" in
      match Store.Client.disconnect bob with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  let tests =
    Test.make_grouped ~name:"store-ops"
      [
        Test.make ~name:"write(b+1)"
          (Staged.stage (fun () ->
               incr counter;
               in_world (fun () ->
                   Store.Client.write alice ~item:"x" (string_of_int !counter))));
        Test.make ~name:"read(b+1)"
          (Staged.stage (fun () ->
               in_world (fun () -> Store.Client.read alice ~item:"x")));
        Test.make ~name:"connect(ctx q)"
          (Staged.stage (fun () ->
               in_world (fun () -> Workload.Worlds.connect w "bob" ~group:"bench")));
      ]
  in
  let rows = bechamel_run tests in
  let table =
    {
      Workload.Table.id = "E9b";
      title = "End-to-end op compute cost (in-process, n=4 b=1, RSA-512)";
      header = [ "operation"; "time/op" ];
      rows =
        List.map
          (fun (name, ns) -> [ name; Printf.sprintf "%.2f ms" (ns /. 1e6) ])
          rows;
      notes = [ "dominated by the signature asymmetry measured in E9" ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments ~seed ~json : (string * (unit -> unit)) list =
  let t f () = Workload.Table.print fmt (f ()) in
  [
    ("e1", t Workload.Experiments.e1_context_messages);
    ("e2", t Workload.Experiments.e2_context_crypto);
    ("e3", t Workload.Experiments.e3_data_costs);
    ("e4", t Workload.Experiments.e4_multi_writer_costs);
    ("e5", t Workload.Experiments.e5_quorum_comparison);
    ("e6", t Workload.Experiments.e6_pbft_messages);
    ("e7", t (fun () -> Workload.Experiments.e7_dissemination ~seed ()));
    ("e8", t (fun () -> Workload.Experiments.e8_fault_injection ~seed ()));
    ("e8b", t Workload.Experiments.e8b_spurious_context);
    ( "e9",
      fun () ->
        let micro = e9 () in
        let proto = e9_protocol () in
        if json then write_bench_json ~path:"BENCH_crypto.json" (micro @ proto)
    );
    ("e10", t (fun () -> Workload.Experiments.e10_wan_latency ~seed ()));
    ("e11", t Workload.Experiments.e11_read_strategies);
    ("e12", t Workload.Experiments.e12_dispersal);
    ("e13", t Workload.Experiments.e13_dynamic_quorums);
    ("e14", t Workload.Experiments.e14_context_size);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse seed json picked = function
    | [] -> (seed, json, List.rev picked)
    | "--seed" :: v :: rest -> parse (int_of_string v) json picked rest
    | "--json" :: rest -> parse seed true picked rest
    | name :: rest -> parse seed json (String.lowercase_ascii name :: picked) rest
  in
  let seed, json, picked = parse 42 false [] args in
  let table = experiments ~seed ~json in
  let to_run = match picked with [] -> List.map fst table | _ -> picked in
  Format.fprintf fmt
    "secure store benchmark harness — reproducing section 6 of Lakshmanan, \
     Ahamad & Venkateswaran, DSN 2001 (seed %d)@."
    seed;
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | Some run -> run ()
      | None ->
        Format.fprintf fmt "unknown experiment %S (known: %s)@." name
          (String.concat ", " (List.map fst table)))
    to_run
