(* Benchmark harness: regenerates every quantitative claim of the paper's
   section 6 (experiments E1-E10; see DESIGN.md and EXPERIMENTS.md).

     dune exec bench/main.exe            -- all experiments + E9 microbench
     dune exec bench/main.exe -- e3 e9   -- a subset
     dune exec bench/main.exe -- --seed 7 e7
     dune exec bench/main.exe -- e9 --json   -- also write BENCH_crypto.json

   Output is plain text, one table per experiment. With --json, the E9
   crypto and end-to-end numbers are additionally written to
   BENCH_crypto.json (ns/op) so the perf trajectory is machine-tracked;
   an existing "baseline" object in that file is preserved across runs. *)

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* E9: crypto and protocol microbenchmarks via Bechamel                *)
(* ------------------------------------------------------------------ *)

let bechamel_run tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* ---- BENCH_crypto.json -------------------------------------------- *)

let json_key name =
  (* "crypto/rsa1024-sign" -> "rsa1024_sign"; "store-ops/write(b+1)" ->
     "write_b_1": drop the group prefix, map non-alphanumerics to '_',
     squeeze and trim the underscores. *)
  let name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | _ ->
        if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '_'
        then Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let results_json rows =
  "{ "
  ^ String.concat ", "
      (List.map
         (fun (name, ns) ->
           Printf.sprintf "\"%s_ns\": %.1f" (json_key name) ns)
         rows)
  ^ " }"

(* The first --json run records its numbers as the baseline; later runs
   keep that baseline so before/after is visible in one committed file. *)
let existing_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let key = "\"baseline\"" in
    let klen = String.length key and n = String.length s in
    let rec find i =
      if i + klen > n then None
      else if String.sub s i klen = key then Some (i + klen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some after -> (
      match String.index_from_opt s after '{' with
      | None -> None
      | Some opening ->
        let rec close i depth =
          if i >= n then None
          else
            match s.[i] with
            | '{' -> close (i + 1) (depth + 1)
            | '}' -> if depth = 1 then Some i else close (i + 1) (depth - 1)
            | _ -> close (i + 1) depth
        in
        Option.map
          (fun closing -> String.sub s opening (closing - opening + 1))
          (close opening 0))
  end

(* [baseline_rows], when given, seeds the baseline of a first-run file
   (e.g. the legacy-transport numbers measured in the same process);
   an existing committed baseline always wins. *)
let write_bench_json ~path ~schema ?baseline_rows rows =
  let current = results_json rows in
  let baseline =
    match existing_baseline path with
    | Some b -> b
    | None -> (
      match baseline_rows with Some b -> results_json b | None -> current)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"schema\": \"%s\",\n  \"unit\": \"ns/op\",\n\
        \  \"baseline\": %s,\n  \"current\": %s\n}\n"
        schema baseline current);
  Format.fprintf fmt "wrote %s@." path

let e9 () =
  let open Bechamel in
  let data n = String.init n (fun i -> Char.chr (i land 0xff)) in
  let d64 = data 64 and d1k = data 1024 and d64k = data 65536 in
  let prng = Crypto.Prng.create ~seed:"bench" in
  let rsa512 = Crypto.Rsa.generate ~bits:512 prng in
  let rsa1024 = Crypto.Rsa.generate ~bits:1024 prng in
  let sig512 = Crypto.Rsa.sign rsa512 d64 in
  let sig1024 = Crypto.Rsa.sign rsa1024 d64 in
  let chacha_key = Crypto.Sha256.digest "bench-key" in
  let nonce = String.make 12 '\x01' in
  let tests =
    Test.make_grouped ~name:"crypto"
      [
        Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Crypto.Sha256.digest d64));
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d1k));
        Test.make ~name:"sha256-64KiB" (Staged.stage (fun () -> Crypto.Sha256.digest d64k));
        Test.make ~name:"hmac-1KiB"
          (Staged.stage (fun () -> Crypto.Hmac.sha256 ~key:"k" d1k));
        Test.make ~name:"chacha20-1KiB"
          (Staged.stage (fun () -> Crypto.Chacha20.encrypt ~key:chacha_key ~nonce d1k));
        Test.make ~name:"rsa512-sign" (Staged.stage (fun () -> Crypto.Rsa.sign rsa512 d64));
        Test.make ~name:"rsa512-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa512.Crypto.Rsa.public ~msg:d64 ~signature:sig512));
        Test.make ~name:"rsa1024-sign"
          (Staged.stage (fun () -> Crypto.Rsa.sign rsa1024 d64));
        Test.make ~name:"rsa1024-verify"
          (Staged.stage (fun () ->
               Crypto.Rsa.verify rsa1024.Crypto.Rsa.public ~msg:d64 ~signature:sig1024));
      ]
  in
  let rows = bechamel_run tests in
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let table =
    {
      Workload.Table.id = "E9";
      title = "Crypto microbenchmarks (Bechamel, monotonic clock)";
      header = [ "primitive"; "time/op" ];
      rows = List.map (fun (name, ns) -> [ name; pp_ns ns ]) rows;
      notes =
        [
          "the paper's section 6 cost model rests on sign >> verify >> digest;";
          "PBFT's MAC-based authenticators correspond to the hmac row";
        ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* One Bechamel test per full protocol op, run against an in-process
   world: the end-to-end computational cost of each store operation. *)
let e9_protocol () =
  let open Bechamel in
  let w = Workload.Worlds.make ~n:4 ~b:1 () in
  let counter = ref 0 in
  let in_world fn = Workload.Worlds.in_direct w fn in
  let alice =
    in_world (fun () -> Workload.Worlds.connect w "alice" ~group:"bench")
  in
  in_world (fun () ->
      match Store.Client.write alice ~item:"x" "seed-value" with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  (* Store a context for bob so the connect benchmark includes the
     signature verification of a restored session. *)
  in_world (fun () ->
      let bob = Workload.Worlds.connect w "bob" ~group:"bench" in
      match Store.Client.disconnect bob with
      | Ok () -> ()
      | Error e -> failwith (Store.Client.error_to_string e));
  let tests =
    Test.make_grouped ~name:"store-ops"
      [
        Test.make ~name:"write(b+1)"
          (Staged.stage (fun () ->
               incr counter;
               in_world (fun () ->
                   Store.Client.write alice ~item:"x" (string_of_int !counter))));
        Test.make ~name:"read(b+1)"
          (Staged.stage (fun () ->
               in_world (fun () -> Store.Client.read alice ~item:"x")));
        Test.make ~name:"connect(ctx q)"
          (Staged.stage (fun () ->
               in_world (fun () -> Workload.Worlds.connect w "bob" ~group:"bench")));
      ]
  in
  let rows = bechamel_run tests in
  let table =
    {
      Workload.Table.id = "E9b";
      title = "End-to-end op compute cost (in-process, n=4 b=1, RSA-512)";
      header = [ "operation"; "time/op" ];
      rows =
        List.map
          (fun (name, ns) -> [ name; Printf.sprintf "%.2f ms" (ns /. 1e6) ])
          rows;
      notes = [ "dominated by the signature asymmetry measured in E9" ];
    }
  in
  Workload.Table.print fmt table;
  rows

(* ------------------------------------------------------------------ *)
(* E10 (live half): loopback RPC over the real TCP transport           *)
(* ------------------------------------------------------------------ *)

(* A real n=4, b=1 cluster of Server_hosts on loopback; each measured
   op is one quorum RPC round (fan out to all n, resume at the write
   quorum ceil((n+b+1)/2) = 3), the access pattern every store
   operation reduces to. Run once over the legacy connect-per-request
   transport (the baseline BENCH_net.json preserves) and once over the
   pooled pipelined one. *)
let e10_net ~json () =
  let n = 4 and b = 1 in
  let keyring = Store.Keyring.create () in
  let servers =
    Array.init n (fun id -> Store.Server.create ~id ~keyring ~n ~b ())
  in
  let hosts =
    Array.map (fun server -> Tcpnet.Server_host.start ~server ~port:0 ()) servers
  in
  let eps = Array.map (fun h -> ("127.0.0.1", Tcpnet.Server_host.port h)) hosts in
  let endpoints id = if id >= 0 && id < n then Some eps.(id) else None in
  let payload =
    Store.Payload.encode_envelope
      {
        Store.Payload.token = None;
        request =
          Store.Payload.Meta_query
            { uid = Store.Uid.make ~group:"bench" ~item:"x" };
      }
  in
  let quorum = (n + b + 1 + 1) / 2 in
  let all = List.init n Fun.id in
  let one_round () =
    ignore
      (Sim.Runtime.call_many ~timeout:2.0 ~quorum all payload
        : Sim.Runtime.reply list)
  in
  let latency transport iters =
    let stats = Sim.Stats.create () in
    Tcpnet.Live.run ~transport ~endpoints (fun () ->
        for _ = 1 to 10 do
          one_round ()
        done;
        for _ = 1 to iters do
          let t0 = Unix.gettimeofday () in
          one_round ();
          Sim.Stats.add stats ((Unix.gettimeofday () -. t0) *. 1e9)
        done);
    stats
  in
  let throughput transport threads iters =
    let workers =
      List.init threads (fun _ ->
          Thread.create
            (fun () ->
              Tcpnet.Live.run ~transport ~endpoints (fun () ->
                  for _ = 1 to iters do
                    one_round ()
                  done))
            ())
    in
    let t0 = Unix.gettimeofday () in
    List.iter Thread.join workers;
    let dt = Unix.gettimeofday () -. t0 in
    dt *. 1e9 /. float_of_int (threads * iters)
  in
  let measure transport =
    let stats = latency transport 300 in
    let c8 = throughput transport 8 150 in
    [
      ("net/rpc-quorum-p50", Sim.Stats.percentile stats 50.0);
      ("net/rpc-quorum-p95", Sim.Stats.percentile stats 95.0);
      ("net/rpc-quorum-mean", Sim.Stats.mean stats);
      ("net/rpc-quorum-c8", c8);
    ]
  in
  let legacy = measure `Legacy in
  let pooled = measure `Pooled in
  Array.iter Tcpnet.Server_host.stop hosts;
  let pp_ns ns =
    if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.1f us" (ns /. 1e3)
  in
  let table =
    {
      Workload.Table.id = "E10b";
      title =
        Printf.sprintf
          "Loopback quorum RPC (real TCP, n=%d b=%d, quorum %d-of-%d)" n b
          quorum n;
      header = [ "metric"; "per-connection"; "pooled+pipelined"; "speedup" ];
      rows =
        List.map2
          (fun (name, base_ns) (_, pooled_ns) ->
            [
              name;
              pp_ns base_ns;
              pp_ns pooled_ns;
              Printf.sprintf "%.1fx" (base_ns /. pooled_ns);
            ])
          legacy pooled;
      notes =
        [
          "per-connection: dial + thread per destination per call, 1 ms poll-wait";
          "pooled: persistent connections, correlation-id pipelining, condition wakeup";
          "rpc-quorum-c8: ns/op across 8 concurrent client threads";
        ];
    }
  in
  Workload.Table.print fmt table;
  let s = Store.Metrics.rpc_latency_stats () in
  Format.fprintf fmt
    "transport metrics: %d rpcs, in-flight hwm %d, pool rpc p50 %.1f us \
     (p99 %.1f us)@."
    s.Store.Metrics.rpc_count
    (Store.Metrics.inflight_high_water ())
    (s.Store.Metrics.p50_ns /. 1e3)
    (s.Store.Metrics.p99_ns /. 1e3);
  if json then
    write_bench_json ~path:"BENCH_net.json" ~schema:"bench-net-v1"
      ~baseline_rows:legacy pooled

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments ~seed ~json : (string * (unit -> unit)) list =
  let t f () = Workload.Table.print fmt (f ()) in
  [
    ("e1", t Workload.Experiments.e1_context_messages);
    ("e2", t Workload.Experiments.e2_context_crypto);
    ("e3", t Workload.Experiments.e3_data_costs);
    ("e4", t Workload.Experiments.e4_multi_writer_costs);
    ("e5", t Workload.Experiments.e5_quorum_comparison);
    ("e6", t Workload.Experiments.e6_pbft_messages);
    ("e7", t (fun () -> Workload.Experiments.e7_dissemination ~seed ()));
    ("e8", t (fun () -> Workload.Experiments.e8_fault_injection ~seed ()));
    ("e8b", t Workload.Experiments.e8b_spurious_context);
    ( "e9",
      fun () ->
        let micro = e9 () in
        let proto = e9_protocol () in
        if json then
          write_bench_json ~path:"BENCH_crypto.json" ~schema:"bench-crypto-v1"
            (micro @ proto) );
    ( "e10",
      fun () ->
        Workload.Table.print fmt (Workload.Experiments.e10_wan_latency ~seed ());
        e10_net ~json () );
    ("e11", t Workload.Experiments.e11_read_strategies);
    ("e12", t Workload.Experiments.e12_dispersal);
    ("e13", t Workload.Experiments.e13_dynamic_quorums);
    ("e14", t Workload.Experiments.e14_context_size);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse seed json picked = function
    | [] -> (seed, json, List.rev picked)
    | "--seed" :: v :: rest -> parse (int_of_string v) json picked rest
    | "--json" :: rest -> parse seed true picked rest
    | name :: rest -> parse seed json (String.lowercase_ascii name :: picked) rest
  in
  let seed, json, picked = parse 42 false [] args in
  let table = experiments ~seed ~json in
  let to_run = match picked with [] -> List.map fst table | _ -> picked in
  Format.fprintf fmt
    "secure store benchmark harness — reproducing section 6 of Lakshmanan, \
     Ahamad & Venkateswaran, DSN 2001 (seed %d)@."
    seed;
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | Some run -> run ()
      | None ->
        Format.fprintf fmt "unknown experiment %S (known: %s)@." name
          (String.concat ", " (List.map fst table)))
    to_run
